(* bxrepo — command-line front end to the bx examples repository.

   The registry is seeded with the catalogue on every run (the repository
   is a library; persistence is the export/import pair). *)

open Cmdliner
open Bx_repo

let registry = lazy (Bx_catalogue.Catalogue.seed ())

let id_of_string s =
  match Identifier.of_string s with
  | Ok id -> Ok id
  | Error e -> Error (`Msg e)

let id_conv =
  Arg.conv
    ( id_of_string,
      fun ppf id -> Identifier.pp ppf id )

let version_conv =
  Arg.conv
    ( (fun s ->
        match Version.of_string s with
        | Ok v -> Ok v
        | Error e -> Error (`Msg e)),
      Version.pp )

let id_arg =
  Arg.(
    required
    & pos 0 (some id_conv) None
    & info [] ~docv:"ID" ~doc:"Entry identifier, e.g. COMPOSERS.")

let version_opt =
  Arg.(
    value
    & opt (some version_conv) None
    & info [ "at"; "v" ] ~docv:"VERSION" ~doc:"Entry version, e.g. 0.1.")

let or_die = function
  | Ok x -> x
  | Error e ->
      Fmt.epr "bxrepo: %s@." (Registry.error_message e);
      exit 1

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    let reg = Lazy.force registry in
    List.iter
      (fun id ->
        let t = or_die (Registry.latest reg id) in
        Fmt.pr "%-22s v%-5s %-20s %s@." (Identifier.to_string id)
          (Version.to_string t.Template.version)
          (String.concat ","
             (List.map Template.class_name t.Template.classes))
          (let o = t.Template.overview in
           if String.length o > 60 then String.sub o 0 57 ^ "..." else o))
      (Registry.ids reg)
  in
  Cmd.v (Cmd.info "list" ~doc:"List every entry in the repository.")
    Term.(const run $ const ())

(* --- show ----------------------------------------------------------- *)

let show_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit structured JSON instead.")
  in
  let run id version json =
    let reg = Lazy.force registry in
    let t =
      match version with
      | None -> or_die (Registry.latest reg id)
      | Some v -> or_die (Registry.find_version reg id v)
    in
    if json then print_endline (Json_codec.to_string ~indent:2 t)
    else Fmt.pr "%a@." Template.pp t
  in
  Cmd.v (Cmd.info "show" ~doc:"Print an entry's template.")
    Term.(const run $ id_arg $ version_opt $ json)

(* --- render --------------------------------------------------------- *)

let render_cmd =
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Render Markdown instead of wiki markup.")
  in
  let run id version markdown =
    let reg = Lazy.force registry in
    let t =
      match version with
      | None -> or_die (Registry.latest reg id)
      | Some v -> or_die (Registry.find_version reg id v)
    in
    if markdown then print_string (Markup.to_markdown (Sync.render_entry t))
    else print_string (Sync.wiki_text t)
  in
  Cmd.v
    (Cmd.info "render"
       ~doc:"Print an entry's wiki page (the Sync lens's get direction).")
    Term.(const run $ id_arg $ version_opt $ markdown)

let diff_cmd =
  let from_arg =
    Arg.(
      required
      & opt (some version_conv) None
      & info [ "from" ] ~docv:"VERSION" ~doc:"Older version.")
  in
  let to_arg =
    Arg.(
      value
      & opt (some version_conv) None
      & info [ "to" ] ~docv:"VERSION" ~doc:"Newer version (default: latest).")
  in
  let run id from_v to_v =
    let reg = Lazy.force registry in
    let old_t = or_die (Registry.find_version reg id from_v) in
    let new_t =
      match to_v with
      | None -> or_die (Registry.latest reg id)
      | Some v -> or_die (Registry.find_version reg id v)
    in
    Fmt.pr "%a@." Diff.pp (Diff.templates old_t new_t)
  in
  Cmd.v
    (Cmd.info "diff" ~doc:"Show field-level changes between two versions.")
    Term.(const run $ id_arg $ from_arg $ to_arg)

(* --- check ---------------------------------------------------------- *)

let count_opt =
  Arg.(
    value & opt int 150
    & info [ "count" ] ~docv:"N" ~doc:"Random samples per law.")

let check_cmd =
  let run id count =
    match Bx_check.Examples_check.report_for ~count (Identifier.to_string id) with
    | Error e ->
        Fmt.epr "bxrepo: %s@." e;
        exit 1
    | Ok rows ->
        Fmt.pr "%s: claimed properties vs machine verification@."
          (Identifier.to_string id);
        Fmt.pr "%a@." Bx_check.Verify.pp_report rows;
        if not (Bx_check.Verify.all_upheld rows) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Verify an entry's claimed properties against its executable bx \
          (the machine half of the review step).")
    Term.(const run $ id_arg $ count_opt)

let check_all_cmd =
  let run count =
    let reports = Bx_check.Examples_check.all_reports ~count () in
    let failed = ref false in
    List.iter
      (fun (title, rows) ->
        Fmt.pr "== %s ==@.%a@.@." title Bx_check.Verify.pp_report rows;
        if not (Bx_check.Verify.all_upheld rows) then failed := true)
      reports;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "check-all" ~doc:"Verify every entry's claimed properties.")
    Term.(const run $ count_opt)

(* --- cite ----------------------------------------------------------- *)

let cite_cmd =
  let bibtex =
    Arg.(value & flag & info [ "bibtex" ] ~doc:"Emit a BibTeX record.")
  in
  let run id version bibtex =
    let reg = Lazy.force registry in
    let text =
      if bibtex then or_die (Registry.cite_bibtex reg ?version id)
      else or_die (Registry.cite reg ?version id)
    in
    print_endline text
  in
  Cmd.v
    (Cmd.info "cite" ~doc:"Print the recommended citation for an entry.")
    Term.(const run $ id_arg $ version_opt $ bibtex)

(* --- search ---------------------------------------------------------- *)

let search_cmd =
  let cls_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "class" ] ~docv:"CLASS"
          ~doc:"Filter by class: PRECISE, INDUSTRIAL, SKETCH or BENCHMARK.")
  in
  let prop_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "property" ] ~docv:"PROP"
          ~doc:"Filter by property claim, e.g. 'correct' or 'not undoable'.")
  in
  let text_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"TEXT")
  in
  let run cls prop text =
    let reg = Lazy.force registry in
    let cls =
      Option.map
        (fun s ->
          match Template.class_of_name s with
          | Some c -> c
          | None ->
              Fmt.epr "bxrepo: unknown class %S@." s;
              exit 1)
        cls
    in
    let property =
      Option.map
        (fun s ->
          match Bx.Properties.claim_of_name s with
          | Some p -> p
          | None ->
              Fmt.epr "bxrepo: unknown property %S@." s;
              exit 1)
        prop
    in
    let q = Registry.query ?cls ?property ?text () in
    List.iter
      (fun id -> print_endline (Identifier.to_string id))
      (Registry.search reg q)
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Search entries by class, property or text.")
    Term.(const run $ cls_opt $ prop_opt $ text_arg)

(* --- glossary --------------------------------------------------------- *)

let glossary_cmd =
  let term_arg = Arg.(value & pos 0 (some string) None & info [] ~docv:"TERM") in
  let run term =
    match term with
    | Some term -> (
        match Glossary.lookup term with
        | Some def -> Fmt.pr "@[<v 2>%s@,@[%a@]@]@." term Fmt.text def
        | None ->
            Fmt.epr "bxrepo: no glossary entry for %S@." term;
            exit 1)
    | None ->
        List.iter
          (fun entry -> Fmt.pr "%a@.@." Glossary.pp_entry entry)
          (Glossary.terms ())
  in
  Cmd.v
    (Cmd.info "glossary"
       ~doc:"Look up a property or term in the repository glossary.")
    Term.(const run $ term_arg)

(* --- export ----------------------------------------------------------- *)

let dir_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

let export_cmd =
  let run dir =
    match Store.save ~dir (Lazy.force registry) with
    | Ok n -> Fmt.pr "exported %d files to %s@." n dir
    | Error e ->
        Fmt.epr "bxrepo: %s@." e;
        exit 1
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Write every entry (all versions) as wiki pages — the local, \
          markup-independent copy of section 5.4.")
    Term.(const run $ dir_arg)

let import_cmd =
  let run dir =
    match Store.load ~dir () with
    | Error e ->
        Fmt.epr "bxrepo: %s@." e;
        exit 1
    | Ok reg ->
        Fmt.pr "loaded %d entries:@." (Registry.size reg);
        List.iter
          (fun id ->
            match Registry.versions reg id with
            | Ok versions ->
                Fmt.pr "  %-22s versions %s@." (Identifier.to_string id)
                  (String.concat ", " (List.map Version.to_string versions))
            | Error e -> Fmt.pr "  %s@." (Registry.error_message e))
          (Registry.ids reg)
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:"Load a directory of exported wiki pages and summarise it.")
    Term.(const run $ dir_arg)

let lint_cmd =
  let run id =
    let reg = Lazy.force registry in
    let t = or_die (Registry.latest reg id) in
    (match Template.validate t with
    | Ok () -> Fmt.pr "validates.@."
    | Error msgs ->
        List.iter (fun m -> Fmt.pr "error: %s@." m) msgs);
    match Template.lint t with
    | [] -> Fmt.pr "no style advice.@."
    | advice -> List.iter (fun m -> Fmt.pr "advice: %s@." m) advice
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Validate an entry against the template rules and style advice.")
    Term.(const run $ id_arg)

(* --- demo-undoability --------------------------------------------------- *)

let demo_cmd =
  let run () =
    let open Bx_catalogue.Composers in
    let trace = undoability_counterexample () in
    let pp_m = m_space.Bx.Model.pp and pp_n = n_space.Bx.Model.pp in
    Fmt.pr "The COMPOSERS undoability counterexample (paper, section 4):@.@.";
    Fmt.pr "  m0 = %a@." pp_m trace.initial_m;
    Fmt.pr "  n0 = %a@.@." pp_n trace.initial_n;
    Fmt.pr "delete Britten from n:@.  n1 = %a@." pp_n trace.n_after_delete;
    Fmt.pr "enforce consistency on m (bwd):@.  m1 = %a@.@." pp_m
      trace.m_after_first_bwd;
    Fmt.pr "restore Britten to n:@.  n2 = %a@." pp_n trace.n_after_restore;
    Fmt.pr "enforce consistency on m again (bwd):@.  m2 = %a@.@." pp_m
      trace.m_after_second_bwd;
    Fmt.pr "dates lost: %b — m cannot return to its original state.@."
      trace.dates_lost
  in
  Cmd.v
    (Cmd.info "demo-undoability"
       ~doc:"Replay the paper's undoability counterexample.")
    Term.(const run $ const ())

let manuscript_cmd =
  let bibtex =
    Arg.(value & flag & info [ "bibtex" ] ~doc:"Emit the bibliography instead.")
  in
  let run bibtex =
    let reg = Lazy.force registry in
    if bibtex then print_endline (Manuscript.bibliography reg)
    else print_string (Manuscript.generate reg)
  in
  Cmd.v
    (Cmd.info "manuscript"
       ~doc:
         "Collect the latest version of every entry into the archival \
          manuscript of section 5.2 (or, with --bibtex, its bibliography).")
    Term.(const run $ bibtex)

let index_cmd =
  let related =
    Arg.(
      value
      & opt (some id_conv) None
      & info [ "related" ] ~docv:"ID"
          ~doc:"List entries related to ID (shared sources or authors).")
  in
  let run related =
    let reg = Lazy.force registry in
    match related with
    | Some id ->
        List.iter
          (fun other -> print_endline (Identifier.to_string other))
          (Catalogue_index.related reg id)
    | None -> print_string (Markup.render (Catalogue_index.render reg))
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Print the cross-reference index (by class, property, author, \
             cited source), or related entries with --related.")
    Term.(const run $ related)

let scenario_cmd =
  let size_opt =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"N" ~doc:"Scenario size.")
  in
  let policy_opt =
    Arg.(
      value
      & opt (enum [ ("prefer-parent", `Parent); ("prefer-child", `Child) ])
          `Parent
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Backward policy: prefer-parent or prefer-child.")
  in
  let run size policy =
    let policy =
      match policy with
      | `Parent -> Bx_catalogue.Families2persons.Prefer_parent
      | `Child -> Bx_catalogue.Families2persons.Prefer_child
    in
    List.iter
      (fun scenario ->
        let out = Bx_catalogue.F2p_scenarios.run ~policy scenario in
        Fmt.pr "%-28s %s@." scenario.Bx_catalogue.F2p_scenarios.scenario_name
          scenario.Bx_catalogue.F2p_scenarios.description;
        Fmt.pr
          "  families=%d persons=%d restorations=%d consistent-throughout=%b@."
          (List.length out.Bx_catalogue.F2p_scenarios.final_families)
          (List.length out.Bx_catalogue.F2p_scenarios.final_persons)
          out.Bx_catalogue.F2p_scenarios.restorations
          out.Bx_catalogue.F2p_scenarios.consistent_after_every_step)
      (Bx_catalogue.F2p_scenarios.all size)
  in
  Cmd.v
    (Cmd.info "scenario"
       ~doc:
         "Run the FAMILIES2PERSONS BenchmarX-style scenarios (the \
          BENCHMARK entry's workloads).")
    Term.(const run $ size_opt $ policy_opt)

let validate_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"A template in JSON form (see 'show --json').")
  in
  let run file =
    let ic = open_in file in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Json_codec.of_string contents with
    | Error e ->
        Fmt.epr "bxrepo: %s@." e;
        exit 1
    | Ok t -> (
        (match Template.validate t with
        | Ok () -> Fmt.pr "validates.@."
        | Error msgs ->
            List.iter (fun m -> Fmt.pr "error: %s@." m) msgs;
            exit 1);
        match Template.lint t with
        | [] -> Fmt.pr "no style advice.@."
        | advice -> List.iter (fun m -> Fmt.pr "advice: %s@." m) advice)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Validate a JSON template file against the section 3 rules — \
          the contributor's pre-submission check.")
    Term.(const run $ file_arg)

let main =
  let doc = "An executable repository of bidirectional transformation examples" in
  Cmd.group
    (Cmd.info "bxrepo" ~version:"1.0.0" ~doc)
    [
      list_cmd; show_cmd; render_cmd; diff_cmd; check_cmd; check_all_cmd; cite_cmd;
      search_cmd; glossary_cmd; export_cmd; import_cmd; lint_cmd; validate_cmd;
      manuscript_cmd; index_cmd; scenario_cmd; demo_cmd;
    ]

let () = exit (Cmd.eval main)
