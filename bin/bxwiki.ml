(* bxwiki — the repository served as an actual wiki.

   A thin CLI over Bx_server.Service: the service owns the sockets,
   worker pool, journal, cache and metrics; this file parses flags,
   mounts the /checks page, and wires SIGTERM to a graceful shutdown
   (drain, snapshot, exit). *)

let usage () =
  prerr_endline
    "usage: bxwiki [PORT] [--port PORT] [--journal DIR] [--workers N]\n\
    \              [--port-file FILE] [--quiet]\n\n\
     --port 0 binds an ephemeral port (written to --port-file).\n\
     With --journal DIR every accepted edit is fsync'd to DIR/journal.log\n\
     before the response is sent, and restarts replay it on top of\n\
     DIR/snapshot; without it, state is in-process only.";
  exit 2

(* The live claimed-vs-verified report, computed once on first request
   (it runs every entry's law checks, which takes a few seconds). *)
let checks_page =
  lazy
    (let reports = Bx_check.Examples_check.all_reports ~count:60 () in
     let fragment =
       String.concat "\n"
         (List.map
            (fun (title, rows) ->
              Printf.sprintf "<h2>%s</h2><pre>%s</pre>"
                (Bx_repo.Markup.html_escape title)
                (Bx_repo.Markup.html_escape
                   (Fmt.str "%a" Bx_check.Verify.pp_report rows)))
            reports)
     in
     ("Claimed vs verified", "<h1>Claimed vs verified</h1>" ^ fragment))

let () =
  let port = ref 8008 in
  let workers = ref 4 in
  let journal_dir = ref None in
  let port_file = ref None in
  let quiet = ref false in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ ->
        Printf.eprintf "bxwiki: %s wants a non-negative integer, got %s\n" name v;
        exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest -> port := int_arg "--port" v; parse rest
    | "--workers" :: v :: rest ->
        workers := max 1 (int_arg "--workers" v);
        parse rest
    | "--journal" :: v :: rest -> journal_dir := Some v; parse rest
    | "--port-file" :: v :: rest -> port_file := Some v; parse rest
    | "--quiet" :: rest -> quiet := true; parse rest
    | [ v ] when int_of_string_opt v <> None -> port := int_arg "PORT" v
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config =
    { Bx_server.Service.default_config with journal_dir = !journal_dir }
  in
  let pages = [ ("/checks", fun () -> Lazy.force checks_page) ] in
  (* String lenses served at POST /slens/<name>/<op>; the composers
     family exercises every alignment strategy. *)
  let lenses =
    [
      ("composers", Bx_catalogue.Composers_string.lens);
      ("composers-by-name", Bx_catalogue.Composers_string.name_keyed_lens);
      ("composers-diff", Bx_catalogue.Composers_string.diff_lens);
      ("composers-positional", Bx_catalogue.Composers_string.positional_lens);
    ]
  in
  match
    Bx_server.Service.create ~config ~pages ~lenses
      ~seed:Bx_catalogue.Catalogue.seed ()
  with
  | Error e ->
      Printf.eprintf "bxwiki: %s\n" e;
      exit 1
  | Ok service -> (
      (let applied, failed = Bx_server.Service.replay_stats service in
       if (not !quiet) && applied + failed > 0 then
         Printf.printf "bxwiki: replayed %d journaled edit(s)%s\n%!" applied
           (if failed > 0 then Printf.sprintf " (%d failed)" failed else ""));
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Bx_server.Service.shutdown service));
      match
        Bx_server.Service.serve service ~port:!port ~workers:!workers
          ?port_file:!port_file ~quiet:!quiet ()
      with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bxwiki: %s\n" e;
          exit 1)
