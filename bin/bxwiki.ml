(* bxwiki — the repository served as an actual wiki.

   A thin CLI over Bx_server.Service: the service owns the sockets,
   worker pool, journal, cache and metrics; this file parses flags,
   mounts the /checks page, and wires SIGTERM to a graceful shutdown
   (drain, snapshot, exit). *)

let usage () =
  prerr_endline
    "usage: bxwiki [PORT] [--port PORT] [--journal DIR] [--shards N]\n\
    \              [--workers N] [--port-file FILE] [--compact-every N]\n\
    \              [--failpoints SPEC] [--chaos SPEC] [--gen-entries N]\n\
    \              [--gen-seed S] [--scrub-rate N] [--quiet]\n\
    \       bxwiki replica --replicate-from [HOST:]PORT [--port PORT]\n\
    \              [--journal DIR] [--shards N] [--workers N]\n\
    \              [--port-file FILE] [--lag-threshold S] [--poll-wait S]\n\
    \              [--compact-every N] [--failpoints SPEC] [--chaos SPEC]\n\
    \              [--quiet]\n\
    \       bxwiki client [--port PORT] [--port-file FILE] [--retries N]\n\
    \              [--max-sleep S] [--deadline MS] [--fallback [HOST:]PORT]\n\
    \              [--data BODY] [--body-file FILE] METH PATH\n\
    \       bxwiki scrub --journal DIR [--shards N] [--gen-entries N]\n\
    \              [--gen-seed S] [--quiet]\n\
    \       bxwiki gen --entries N [--seed S] [--format titles|paths|wiki]\n\
    \       bxwiki loadgen [--port PORT] [--port-file FILE] [--rate RPS]\n\
    \              [--warmup S] [--duration S] [--domains N]\n\
    \              [--profile read-heavy|write-heavy|search-heavy|\n\
    \                          patch-heavy|all]\n\
    \              [--pacing MODE]\n\
    \              [--entries N] [--seed S] [--scaling 1,2,4,8]\n\
    \              [--scaling-rate RPS] [--out FILE]\n\n\
     --port 0 binds an ephemeral port (written to --port-file).\n\
     With --journal DIR every accepted edit is fsync'd to DIR/journal.log\n\
     before the response is sent, and restarts replay it on top of\n\
     DIR/snapshot; without it, state is in-process only.\n\
     --shards N partitions the registry into N identifier-hashed shards,\n\
     each with its own lock, journal segment and snapshot; the count is\n\
     part of the on-disk layout, so reopen a journal directory with the\n\
     same --shards (a legacy single-segment directory is migrated in\n\
     place), and give replicas the same --shards as their primary.\n\
     --failpoints arms the fault-injection subsystem (site=ACTION;...)\n\
     and mounts the PUT /debug/failpoints admin route, as does setting\n\
     BXWIKI_FAILPOINTS in the environment.\n\
     --chaos arms the network-chaos layer (proxy=TOXIC+...;...) and\n\
     mounts PUT /debug/chaos, as does setting BXWIKI_CHAOS; with chaos\n\
     armed a replica dials its primary through an in-process toxic\n\
     proxy named 'upstream', so partitions and latency storms can be\n\
     aimed at the replication link alone.\n\n\
     'bxwiki replica' runs a hot-standby read replica: it follows the\n\
     primary's journal stream (--replicate-from), serves reads, answers\n\
     503 to writes, reports replication lag on /readyz and /metrics, and\n\
     becomes the writable primary on POST /admin/promote.\n\n\
     'bxwiki client' issues one request and retries on 503 and on\n\
     connect/read timeouts with capped exponential backoff and\n\
     decorrelated jitter, honouring Retry-After; the response body goes\n\
     to stdout, and the exit status is 0 only for a 2xx.  A per-target\n\
     circuit breaker (closed/open/half-open with probes) is consulted\n\
     before every attempt, so a dead server fails fast instead of\n\
     eating the retry budget.  With --fallback, a GET that exhausts its\n\
     retries against the primary is retried against the fallback (reads\n\
     fail over, writes never do).  --deadline MS stamps each attempt\n\
     with the remaining budget (X-Bxwiki-Deadline); the server sheds\n\
     work whose budget has lapsed with a 504.  A response served stale\n\
     under brownout (X-Bxwiki-Stale) is noted on stderr.\n\n\
     --gen-entries seeds the server with N generated corpus entries on\n\
     top of the catalogue (deterministic in --gen-seed); 'bxwiki gen'\n\
     prints the same corpus.\n\n\
     --scrub-rate N runs a background scrubber domain that re-verifies\n\
     N items/second: journal record CRCs, snapshot checksums against\n\
     their DIGESTS manifests, entry round-trip laws, and document\n\
     view/source agreement.  Findings are quarantined — entries serve\n\
     under a Warning header, documents answer 410 — and counted at\n\
     /metrics (bxwiki_scrub_*, bxwiki_quarantine_*).  'bxwiki scrub'\n\
     runs one unmetered pass offline over a journal directory and exits\n\
     1 if anything is corrupt.\n\n\
     'bxwiki loadgen' drives a live server open-loop: arrivals are\n\
     scheduled in advance (--pacing constant|poisson) and latency is\n\
     measured from the scheduled instant, so queueing delay is not\n\
     averaged away by coordinated omission.  Give the server at least\n\
     as many --workers as --domains (keep-alive pins a connection to a\n\
     worker) and the same --entries/--seed it booted with.  --scaling\n\
     re-runs the read-heavy profile at each domain count and records\n\
     the server's lock-contention deltas; --out writes BENCH_load.json.\n\
     The patch-heavy profile ships single-line edits to lens-backed\n\
     documents via POST /slens/composers/patch (each client domain owns\n\
     one document), exercising the incremental delta-propagation path.";
  exit 2

(* "[HOST:]PORT" — the host is resolved to loopback (the service only
   binds loopback); what matters is the port. *)
let parse_hostport ~flag v fail =
  let port_part =
    match String.rindex_opt v ':' with
    | Some i -> String.sub v (i + 1) (String.length v - i - 1)
    | None -> v
  in
  match int_of_string_opt port_part with
  | Some p when p > 0 -> p
  | _ -> fail (flag ^ " wants [HOST:]PORT, got " ^ v)

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --port beats --port-file beats the default.  A server started moments
   ago may not have written its port file yet; wait for it like we wait
   for the socket. *)
let resolve_port ~port ~port_file ~fail =
  match (port, port_file) with
  | Some p, _ -> p
  | None, Some f ->
      let rec resolve tries =
        match
          if Sys.file_exists f then int_of_string_opt (String.trim (read_file f))
          else None
        with
        | Some p -> p
        | None when tries > 0 ->
            Unix.sleepf 0.1;
            resolve (tries - 1)
        | None -> fail ("unreadable port file " ^ f)
      in
      resolve 100
  | None, None -> 8008

(* ------------------------------------------------------------------ *)
(* The retrying client.  The cram tests (and any script poking a
   possibly-overloaded or failpoint-riddled server) use this instead of
   curl: a 503 or a timeout is not an error, it is a reason to back off
   and try again. *)

(* A per-target circuit breaker: closed (attempts flow), open (fail fast
   until a cooldown lapses, entered after [threshold] consecutive
   failures), half-open (exactly one probe; success closes, failure
   re-opens).  Consulted before every attempt — fallback attempts
   included — so a dead server is discovered once per cooldown, not once
   per retry, and the remaining budget goes to targets that might
   answer. *)
module Breaker = struct
  type state = Closed | Open of float (* retry-at *) | Half_open

  type t = {
    mutable state : state;
    mutable failures : int;
    threshold : int;
    cooldown : float;
  }

  let create ?(threshold = 3) ?(cooldown = 1.0) () =
    { state = Closed; failures = 0; threshold; cooldown }

  let admit t =
    match t.state with
    | Closed | Half_open -> true
    | Open retry_at ->
        if Unix.gettimeofday () >= retry_at then begin
          t.state <- Half_open;
          true
        end
        else false

  let success t =
    t.state <- Closed;
    t.failures <- 0

  let failure t =
    t.failures <- t.failures + 1;
    match t.state with
    | Half_open -> t.state <- Open (Unix.gettimeofday () +. t.cooldown)
    | _ when t.failures >= t.threshold ->
        t.state <- Open (Unix.gettimeofday () +. t.cooldown)
    | _ -> ()
end

let client_main args =
  let port = ref None in
  let port_file = ref None in
  let retries = ref 8 in
  let max_sleep = ref 2.0 in
  let data = ref None in
  let meth = ref None in
  let path = ref None in
  let fallback = ref None in
  let deadline_ms = ref None in
  let fail msg =
    Printf.eprintf "bxwiki client: %s\n" msg;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest -> port := int_of_string_opt v; parse rest
    | "--port-file" :: v :: rest -> port_file := Some v; parse rest
    | "--retries" :: v :: rest ->
        retries := (match int_of_string_opt v with
          | Some n when n >= 1 -> n
          | _ -> fail "--retries wants a positive integer");
        parse rest
    | "--max-sleep" :: v :: rest ->
        max_sleep := (match float_of_string_opt v with
          | Some s when s >= 0. -> s
          | _ -> fail "--max-sleep wants seconds");
        parse rest
    | "--data" :: v :: rest -> data := Some v; parse rest
    | "--body-file" :: v :: rest -> data := Some (read_file v); parse rest
    | "--fallback" :: v :: rest ->
        fallback := Some (parse_hostport ~flag:"--fallback" v fail);
        parse rest
    | "--deadline" :: v :: rest ->
        deadline_ms := (match float_of_string_opt v with
          | Some ms when ms > 0. -> Some ms
          | _ -> fail "--deadline wants a positive millisecond budget");
        parse rest
    | v :: rest when !meth = None -> meth := Some v; parse rest
    | v :: rest when !path = None -> path := Some v; parse rest
    | v :: _ -> fail ("unexpected argument " ^ v)
  in
  parse args;
  let meth = match !meth with Some m -> String.uppercase_ascii m | None -> usage () in
  let path = match !path with Some p -> p | None -> usage () in
  let port = resolve_port ~port:!port ~port_file:!port_file ~fail in
  let body = Option.value ~default:"" !data in
  (* The whole run's absolute deadline; each attempt ships the budget
     still remaining, so the server stops working on a request the
     moment this client would no longer read the answer. *)
  let overall_deadline =
    Option.map (fun ms -> Unix.gettimeofday () +. (ms /. 1000.)) !deadline_ms
  in
  let remaining_ms () =
    Option.map
      (fun d -> (d -. Unix.gettimeofday ()) *. 1000.)
      overall_deadline
  in
  (* One attempt: Ok (status, retry_after, stale, body) or a retryable
     error. *)
  let attempt port =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO 10.0;
        Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
        let deadline_header =
          match remaining_ms () with
          | Some ms ->
              Printf.sprintf "X-Bxwiki-Deadline: %d\r\n"
                (int_of_float (Float.max 1. ms))
          | None -> ""
        in
        let request =
          Printf.sprintf
            "%s %s HTTP/1.1\r\nContent-Length: %d\r\n%sConnection: close\r\n\r\n%s"
            meth path (String.length body) deadline_header body
        in
        let rec send off =
          if off < String.length request then
            send (off + Unix.write_substring sock request off
                          (String.length request - off))
        in
        send 0;
        let ic = Unix.in_channel_of_descr sock in
        let status_line = input_line ic in
        let status =
          match String.split_on_char ' ' status_line with
          | _ :: code :: _ -> int_of_string_opt code
          | _ -> None
        in
        match status with
        | None -> Error "malformed status line"
        | Some status ->
            let content_length = ref None in
            let retry_after = ref None in
            let stale = ref None in
            (try
               let rec headers () =
                 let line = String.trim (input_line ic) in
                 if line <> "" then begin
                   (match String.index_opt line ':' with
                   | Some i ->
                       let name =
                         String.lowercase_ascii (String.sub line 0 i)
                       in
                       let value =
                         String.trim
                           (String.sub line (i + 1) (String.length line - i - 1))
                       in
                       if name = "content-length" then
                         content_length := int_of_string_opt value
                       else if name = "retry-after" then
                         retry_after := float_of_string_opt value
                       else if name = "x-bxwiki-stale" then
                         stale := int_of_string_opt value
                   | None -> ());
                   headers ()
                 end
               in
               headers ()
             with End_of_file -> ());
            let resp_body =
              match !content_length with
              | Some n -> really_input_string ic n
              | None ->
                  let b = Buffer.create 1024 in
                  (try
                     while true do
                       Buffer.add_channel b ic 1
                     done
                   with End_of_file -> ());
                  Buffer.contents b
            in
            Ok (status, !retry_after, !stale, resp_body))
  in
  (* Capped exponential backoff with decorrelated jitter: each sleep is
     drawn from [base, 3 * previous sleep], capped — retries spread out
     instead of synchronising into waves. *)
  Random.self_init ();
  let base = 0.05 in
  let next_sleep prev retry_after =
    let jitter = base +. Random.float (Float.max base ((prev *. 3.) -. base)) in
    let hinted =
      match retry_after with Some s -> Float.max s jitter | None -> jitter
    in
    Float.min !max_sleep hinted
  in
  (* The retry loop against one server; [`Gave_up reason] when every
     attempt was retryable (503 or connection failure) — the condition
     under which a GET may fail over to --fallback.  Each target gets
     its own breaker, consulted before every attempt. *)
  let breakers = Hashtbl.create 4 in
  let breaker_for port =
    match Hashtbl.find_opt breakers port with
    | Some b -> b
    | None ->
        let b = Breaker.create ~cooldown:(Float.min 1.0 !max_sleep) () in
        Hashtbl.add breakers port b;
        b
  in
  let run port =
    let breaker = breaker_for port in
    let rec go attempt_no sleep =
      match remaining_ms () with
      | Some r when r <= 0. -> `Gave_up (attempt_no - 1, "deadline exhausted")
      | _ ->
      let outcome =
        if not (Breaker.admit breaker) then
          (* Open breaker: fail fast without touching the socket — the
             sleep below doubles as the cooldown wait. *)
          Error ("circuit open", None)
        else
          match attempt port with
          | Ok (503, retry_after, _, _) ->
              Breaker.failure breaker;
              Error ("HTTP 503", retry_after)
          | Ok (status, _, stale, resp_body) ->
              Breaker.success breaker;
              Ok (status, stale, resp_body)
          | Error e ->
              Breaker.failure breaker;
              Error (e, None)
          | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ECONNRESET
                                       | Unix.ETIMEDOUT | Unix.EPIPE
                                       | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            ->
              Breaker.failure breaker;
              Error ("connection failed or timed out", None)
          | exception End_of_file ->
              Breaker.failure breaker;
              Error ("server closed mid-response", None)
          | exception Sys_error e ->
              Breaker.failure breaker;
              Error (e, None)
      in
      match outcome with
      | Ok (status, stale, resp_body) -> `Done (status, stale, resp_body)
      | Error (reason, retry_after) ->
          if attempt_no >= !retries then `Gave_up (attempt_no, reason)
          else begin
            let sleep = next_sleep sleep retry_after in
            (* Never sleep past the deadline: better to wake with a
               sliver of budget than to oversleep the whole thing. *)
            let sleep =
              match remaining_ms () with
              | Some r -> Float.min sleep (Float.max 0. (r /. 1000.))
              | None -> sleep
            in
            Unix.sleepf sleep;
            go (attempt_no + 1) sleep
          end
    in
    go 1 base
  in
  let finish (status, stale, resp_body) =
    (match stale with
    | Some lag when status = 200 ->
        Printf.eprintf
          "bxwiki client: response served stale (%d generation(s) behind)\n"
          lag
    | _ -> ());
    print_string resp_body;
    if status >= 200 && status < 300 then exit 0
    else begin
      Printf.eprintf "bxwiki client: HTTP %d\n" status;
      exit 1
    end
  in
  match run port with
  | `Done r -> finish r
  | `Gave_up (attempts, reason) -> (
      (* Reads fail over; writes never do — a replayed POST against a
         replica (or a just-promoted primary) is how split brains are
         made. *)
      match !fallback with
      | Some fb_port when meth = "GET" -> (
          Printf.eprintf
            "bxwiki client: primary unreachable (%s), falling back to \
             replica on port %d\n"
            reason fb_port;
          match run fb_port with
          | `Done r -> finish r
          | `Gave_up (attempts, reason) ->
              Printf.eprintf
                "bxwiki client: giving up after %d attempts (%s)\n" attempts
                reason;
              exit 1)
      | _ ->
          Printf.eprintf "bxwiki client: giving up after %d attempts (%s)\n"
            attempts reason;
          exit 1)

(* The live claimed-vs-verified report, computed once on first request
   (it runs every entry's law checks, which takes a few seconds). *)
let checks_page =
  lazy
    (let reports = Bx_check.Examples_check.all_reports ~count:60 () in
     let fragment =
       String.concat "\n"
         (List.map
            (fun (title, rows) ->
              Printf.sprintf "<h2>%s</h2><pre>%s</pre>"
                (Bx_repo.Markup.html_escape title)
                (Bx_repo.Markup.html_escape
                   (Fmt.str "%a" Bx_check.Verify.pp_report rows)))
            reports)
     in
     ("Claimed vs verified", "<h1>Claimed vs verified</h1>" ^ fragment))

(* The extra deterministic law the scrubber runs on every stored entry:
   the wiki-sync lens's well-behavedness (GetPut and PutGet) on the
   entry under test, paired with view pages sampled at a fixed seed —
   the QCheck harness lives here in the CLI, so the server library
   never depends on the test stack. *)
let scrub_law =
  let s_space =
    Bx.Model.make ~name:"entry" ~equal:Bx_repo.Template.equal
      ~pp:Bx_repo.Template.pp
  in
  let v_space =
    Bx.Model.make ~name:"page" ~equal:Bx_repo.Markup.equal ~pp:Bx_repo.Markup.pp
  in
  let laws =
    Bx.Lens.well_behaved_laws s_space v_space Bx_catalogue.Wiki_sync_example.lens
  in
  let views =
    lazy
      (List.map
         (fun t -> Bx_repo.Sync.render_entry (Bx_repo.Sync.normalise t))
         (Bx_catalogue.Catalogue.all ()))
  in
  fun (template : Bx_repo.Template.t) ->
    (* GetPut holds exactly on normalised templates (see Bx_repo.Sync);
       stored entries are normalised on ingestion, but normalising again
       costs nothing and keeps the check about corruption, not about
       free-text spelling. *)
    let template = Bx_repo.Sync.normalise template in
    Bx_check.Qlaw.holds_on_samples ~seed:42 ~count:8
      (QCheck2.Gen.map (fun v -> (template, v))
         (QCheck2.Gen.oneofl (Lazy.force views)))
      laws

(* The lens families every server (and the offline scrubber) mounts. *)
let standard_lenses =
  [
    ("composers", Bx_catalogue.Composers_string.lens);
    ("composers-by-name", Bx_catalogue.Composers_string.name_keyed_lens);
    ("composers-diff", Bx_catalogue.Composers_string.diff_lens);
    ("composers-positional", Bx_catalogue.Composers_string.positional_lens);
  ]

let server_main ~replica args =
  let port = ref 8008 in
  let workers = ref 4 in
  let journal_dir = ref None in
  let port_file = ref None in
  let failpoints = ref None in
  let chaos = ref None in
  let quiet = ref false in
  let compact_every = ref Bx_server.Service.default_config.compact_every in
  let shards = ref Bx_server.Service.default_config.shards in
  let gen_entries = ref 0 in
  let gen_seed = ref 1 in
  let replicate_from = ref None in
  let lag_threshold =
    ref Bx_server.Service.default_config.replica_lag_threshold
  in
  let poll_wait = ref Bx_server.Service.default_config.stream_wait in
  let scrub_rate = ref Bx_server.Service.default_config.scrub_rate in
  let fail msg =
    Printf.eprintf "bxwiki: %s\n" msg;
    exit 2
  in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> fail (name ^ " wants a non-negative integer, got " ^ v)
  in
  let float_arg name v =
    match float_of_string_opt v with
    | Some s when s >= 0. -> s
    | _ -> fail (name ^ " wants non-negative seconds, got " ^ v)
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest -> port := int_arg "--port" v; parse rest
    | "--workers" :: v :: rest ->
        workers := max 1 (int_arg "--workers" v);
        parse rest
    | "--journal" :: v :: rest -> journal_dir := Some v; parse rest
    | "--shards" :: v :: rest ->
        shards := max 1 (int_arg "--shards" v);
        parse rest
    | "--port-file" :: v :: rest -> port_file := Some v; parse rest
    | "--failpoints" :: v :: rest -> failpoints := Some v; parse rest
    | "--chaos" :: v :: rest -> chaos := Some v; parse rest
    | "--compact-every" :: v :: rest ->
        compact_every := int_arg "--compact-every" v;
        parse rest
    | "--gen-entries" :: v :: rest ->
        gen_entries := int_arg "--gen-entries" v;
        parse rest
    | "--gen-seed" :: v :: rest ->
        gen_seed := int_arg "--gen-seed" v;
        parse rest
    | "--scrub-rate" :: v :: rest ->
        scrub_rate := int_arg "--scrub-rate" v;
        parse rest
    | "--replicate-from" :: v :: rest when replica ->
        replicate_from := Some (parse_hostport ~flag:"--replicate-from" v fail);
        parse rest
    | "--lag-threshold" :: v :: rest when replica ->
        lag_threshold := float_arg "--lag-threshold" v;
        parse rest
    | "--poll-wait" :: v :: rest when replica ->
        poll_wait := float_arg "--poll-wait" v;
        parse rest
    | "--quiet" :: rest -> quiet := true; parse rest
    | [ v ] when (not replica) && int_of_string_opt v <> None ->
        port := int_arg "PORT" v
    | _ -> usage ()
  in
  parse args;
  let upstream =
    match (replica, !replicate_from) with
    | true, None -> fail "replica mode needs --replicate-from [HOST:]PORT"
    | _, v -> v
  in
  (match !failpoints with
  | None -> ()
  | Some spec -> (
      match Bx_fault.Fault.configure spec with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bxwiki: --failpoints: %s\n" e;
          exit 2));
  (match !chaos with
  | None -> ()
  | Some spec -> (
      match Bx_fault.Netchaos.configure spec with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bxwiki: --chaos: %s\n" e;
          exit 2));
  let chaos_armed = !chaos <> None || Bx_fault.Netchaos.env_configured in
  let config =
    {
      Bx_server.Service.default_config with
      journal_dir = !journal_dir;
      shards = !shards;
      compact_every = !compact_every;
      (* One response-cache shard per worker domain: see Respcache. *)
      cache_shards = !workers;
      failpoints_admin =
        !failpoints <> None
        || Bx_server.Service.default_config.failpoints_admin;
      chaos_admin =
        chaos_armed || Bx_server.Service.default_config.chaos_admin;
      replica;
      replica_lag_threshold = !lag_threshold;
      stream_wait = !poll_wait;
      scrub_rate = !scrub_rate;
      entry_law = Some scrub_law;
    }
  in
  let pages = [ ("/checks", fun () -> Lazy.force checks_page) ] in
  (* String lenses served at POST /slens/<name>/<op>; the composers
     family exercises every alignment strategy. *)
  let lenses = standard_lenses in
  let seed =
    if !gen_entries > 0 then
      Bx_load.Corpus.seed_registry ~shards:!shards ~entries:!gen_entries
        ~seed:!gen_seed
    else fun () -> Bx_catalogue.Catalogue.seed ~shards:!shards ()
  in
  match Bx_server.Service.create ~config ~pages ~lenses ~seed () with
  | Error e ->
      Printf.eprintf "bxwiki: %s\n" e;
      exit 1
  | Ok service -> (
      (let applied, failed = Bx_server.Service.replay_stats service in
       if (not !quiet) && applied + failed > 0 then
         Printf.printf "bxwiki: replayed %d journaled edit(s)%s\n%!" applied
           (if failed > 0 then Printf.sprintf " (%d failed)" failed else ""));
      Sys.set_signal Sys.sigterm
        (Sys.Signal_handle (fun _ -> Bx_server.Service.shutdown service));
      (* The follower thread polls the primary and applies the stream;
         it stops by itself on shutdown or promotion. *)
      let follower =
        Option.map
          (fun up_port ->
            (* With chaos armed the follower dials the primary through
               an in-process toxic proxy named "upstream": partitions,
               latency storms and resets configured for that name hit
               the replication link and nothing else. *)
            let dial_port =
              if not chaos_armed then up_port
              else
                Bx_fault.Netchaos.port
                  (Bx_fault.Netchaos.create ~name:"upstream"
                     ~upstream_port:up_port ())
            in
            if not !quiet then
              Printf.printf "bxwiki: replicating from 127.0.0.1:%d%s\n%!"
                up_port
                (if chaos_armed then
                   Printf.sprintf " (via chaos proxy :%d)" dial_port
                 else "");
            Thread.create
              (fun () ->
                Bx_server.Service.follow service ~host:"127.0.0.1"
                  ~port:dial_port ~wait:!poll_wait ())
              ())
          upstream
      in
      let result =
        Bx_server.Service.serve service ~port:!port ~workers:!workers
          ?port_file:!port_file ~quiet:!quiet ()
      in
      Option.iter Thread.join follower;
      match result with
      | Ok () -> ()
      | Error e ->
          Printf.eprintf "bxwiki: %s\n" e;
          exit 1)

(* ------------------------------------------------------------------ *)
(* The offline scrubber: open a journal directory (without serving),
   run one unmetered scrub pass over every surface, report findings,
   exit 1 when anything is corrupt — the fsck for a bxwiki data dir. *)

let scrub_main args =
  let journal_dir = ref None in
  let shards = ref Bx_server.Service.default_config.shards in
  let gen_entries = ref 0 in
  let gen_seed = ref 1 in
  let quiet = ref false in
  let fail msg =
    Printf.eprintf "bxwiki scrub: %s\n" msg;
    exit 2
  in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> fail (name ^ " wants a non-negative integer, got " ^ v)
  in
  let rec parse = function
    | [] -> ()
    | "--journal" :: v :: rest -> journal_dir := Some v; parse rest
    | "--shards" :: v :: rest ->
        shards := max 1 (int_arg "--shards" v);
        parse rest
    | "--gen-entries" :: v :: rest ->
        gen_entries := int_arg "--gen-entries" v;
        parse rest
    | "--gen-seed" :: v :: rest ->
        gen_seed := int_arg "--gen-seed" v;
        parse rest
    | "--quiet" :: rest -> quiet := true; parse rest
    | v :: _ -> fail ("unexpected argument " ^ v)
  in
  parse args;
  let journal_dir =
    match !journal_dir with
    | Some d -> Some d
    | None -> fail "--journal DIR is required (the directory to check)"
  in
  let config =
    {
      Bx_server.Service.default_config with
      journal_dir;
      shards = !shards;
      compact_every = 0;
      entry_law = Some scrub_law;
    }
  in
  let seed =
    if !gen_entries > 0 then
      Bx_load.Corpus.seed_registry ~shards:!shards ~entries:!gen_entries
        ~seed:!gen_seed
    else fun () -> Bx_catalogue.Catalogue.seed ~shards:!shards ()
  in
  match
    Bx_server.Service.create ~config ~lenses:standard_lenses ~seed ()
  with
  | Error e ->
      Printf.eprintf "bxwiki scrub: %s\n" e;
      exit 1
  | Ok service ->
      let items, findings = Bx_server.Service.scrub_once service in
      if not !quiet then begin
        List.iter
          (fun (name, why) -> Printf.printf "bxwiki scrub: %s: %s\n" name why)
          findings;
        Printf.printf "bxwiki scrub: %d item(s) checked, %d finding(s)\n%!"
          items (List.length findings)
      end;
      Bx_server.Service.close service;
      if findings <> [] then exit 1

(* ------------------------------------------------------------------ *)
(* The corpus generator, standalone: the same entries --gen-entries
   seeds a server with, printable for inspection or scripting. *)

let gen_main args =
  let entries = ref 0 in
  let seed = ref 1 in
  let format = ref `Paths in
  let fail msg =
    Printf.eprintf "bxwiki gen: %s\n" msg;
    exit 2
  in
  let rec parse = function
    | [] -> ()
    | "--entries" :: v :: rest ->
        entries := (match int_of_string_opt v with
          | Some n when n > 0 -> n
          | _ -> fail "--entries wants a positive integer");
        parse rest
    | "--seed" :: v :: rest ->
        seed := (match int_of_string_opt v with
          | Some n -> n
          | None -> fail "--seed wants an integer");
        parse rest
    | "--format" :: v :: rest ->
        format := (match v with
          | "titles" -> `Titles
          | "paths" -> `Paths
          | "wiki" -> `Wiki
          | _ -> fail "--format wants titles, paths or wiki");
        parse rest
    | v :: _ -> fail ("unexpected argument " ^ v)
  in
  parse args;
  if !entries = 0 then fail "--entries N is required";
  let templates = Bx_load.Corpus.generate ~entries:!entries ~seed:!seed in
  match !format with
  | `Titles ->
      List.iter (fun t -> print_endline t.Bx_repo.Template.title) templates
  | `Paths ->
      Array.iter print_endline
        (Bx_load.Corpus.wiki_paths ~entries:!entries ~seed:!seed)
  | `Wiki ->
      List.iter
        (fun t -> print_string (Bx_repo.Sync.wiki_text t))
        templates

(* ------------------------------------------------------------------ *)
(* The open-loop load generator (see Bx_load.Loadgen). *)

let loadgen_main args =
  let port = ref None in
  let port_file = ref None in
  let rate = ref 150. in
  let warmup = ref 1.0 in
  let duration = ref 5.0 in
  let domains = ref 2 in
  let profile = ref "all" in
  let pacing = ref Bx_load.Arrival.Poisson in
  let entries = ref 0 in
  let seed = ref 1 in
  let scaling = ref [] in
  let scaling_rate = ref 2000. in
  let out = ref None in
  let fail msg =
    Printf.eprintf "bxwiki loadgen: %s\n" msg;
    exit 2
  in
  let float_arg name v =
    match float_of_string_opt v with
    | Some f when f >= 0. -> f
    | _ -> fail (name ^ " wants a non-negative number, got " ^ v)
  in
  let int_arg name v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> n
    | _ -> fail (name ^ " wants a non-negative integer, got " ^ v)
  in
  let rec parse = function
    | [] -> ()
    | "--port" :: v :: rest -> port := int_of_string_opt v; parse rest
    | "--port-file" :: v :: rest -> port_file := Some v; parse rest
    | "--rate" :: v :: rest -> rate := float_arg "--rate" v; parse rest
    | "--warmup" :: v :: rest -> warmup := float_arg "--warmup" v; parse rest
    | "--duration" :: v :: rest ->
        duration := float_arg "--duration" v;
        parse rest
    | "--domains" :: v :: rest ->
        domains := max 1 (int_arg "--domains" v);
        parse rest
    | "--profile" :: v :: rest -> profile := v; parse rest
    | "--pacing" :: v :: rest ->
        pacing := (match Bx_load.Arrival.pacing_of_string v with
          | Some p -> p
          | None -> fail "--pacing wants constant or poisson");
        parse rest
    | "--entries" :: v :: rest -> entries := int_arg "--entries" v; parse rest
    | "--seed" :: v :: rest -> seed := int_arg "--seed" v; parse rest
    | "--scaling" :: v :: rest ->
        scaling :=
          List.map
            (fun s ->
              match int_of_string_opt (String.trim s) with
              | Some n when n >= 1 -> n
              | _ -> fail "--scaling wants a comma-separated list of counts")
            (String.split_on_char ',' v);
        parse rest
    | "--scaling-rate" :: v :: rest ->
        scaling_rate := float_arg "--scaling-rate" v;
        parse rest
    | "--out" :: v :: rest -> out := Some v; parse rest
    | v :: _ -> fail ("unexpected argument " ^ v)
  in
  parse args;
  let port = resolve_port ~port:!port ~port_file:!port_file ~fail in
  (* The same paths the server serves: the catalogue, plus the generated
     corpus when the server was booted with --gen-entries. *)
  let catalogue_paths =
    List.filter_map
      (fun t ->
        match Bx_repo.Identifier.of_title t.Bx_repo.Template.title with
        | Ok id -> Some ("/" ^ Bx_repo.Identifier.wiki_path id)
        | Error _ -> None)
      (Bx_catalogue.Catalogue.all ())
  in
  let corpus_paths =
    if !entries > 0 then
      Array.to_list (Bx_load.Corpus.wiki_paths ~entries:!entries ~seed:!seed)
    else []
  in
  let targets = Array.of_list (catalogue_paths @ corpus_paths) in
  let profiles =
    match !profile with
    | "all" -> Bx_load.Workload.profiles
    | name -> (
        match Bx_load.Workload.of_name name with
        | Some p -> [ p ]
        | None -> fail ("unknown profile " ^ name))
  in
  let spec profile domains rate =
    {
      Bx_load.Loadgen.port;
      profile;
      pacing = !pacing;
      rate;
      domains;
      warmup = !warmup;
      duration = !duration;
      seed = !seed;
      targets;
    }
  in
  let failures = ref false in
  let report label (r : Bx_load.Loadgen.result) =
    let q p = Bx_load.Hist.quantile r.latency p in
    Printf.printf
      "loadgen: %s: %.1f req/s ok=%d shed=%d err=%d transport=%d p50=%dus \
       p99=%dus p999=%dus max=%dus\n%!"
      label r.throughput r.ok r.shed r.failed r.transport (q 0.5) (q 0.99)
      (q 0.999)
      (Bx_load.Hist.max_value r.latency);
    List.iter
      (fun l ->
        Printf.printf "loadgen:   lock %s/%s: %d acquisitions, %d contended\n%!"
          l.Bx_load.Loadgen.lock l.Bx_load.Loadgen.mode l.acquisitions
          l.contended)
      r.locks;
    List.iter
      (fun e ->
        failures := true;
        Printf.eprintf "loadgen: client domain crashed: %s\n%!" e)
      r.domain_failures;
    if r.failed > 0 || r.transport > 0 then failures := true
  in
  let run_spec label s =
    match Bx_load.Loadgen.run s with
    | Ok r ->
        report label r;
        Some r
    | Error e ->
        failures := true;
        Printf.eprintf "loadgen: %s: %s\n%!" label e;
        None
  in
  let results =
    List.filter_map
      (fun p ->
        run_spec p.Bx_load.Workload.profile_name (spec p !domains !rate))
      profiles
  in
  (* The scaling curve saturates the server (--scaling-rate is meant to
     exceed capacity) at each domain count, read-heavy, and keeps the
     lock-counter deltas: on a multicore host throughput should climb;
     where it does not, the contended counts name the blocking lock. *)
  let scaling_results =
    List.filter_map
      (fun d ->
        run_spec
          (Printf.sprintf "scaling/%d-domain" d)
          (spec Bx_load.Workload.read_heavy d !scaling_rate))
      !scaling
  in
  (match !out with
  | None -> ()
  | Some path ->
      let json =
        Bx_load.Loadgen.to_json ~results ~scaling:scaling_results
          ~warmup:!warmup ~duration:!duration ~entries:!entries ~seed:!seed
      in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc json);
      Printf.printf "loadgen: wrote %s\n%!" path);
  if !failures then exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "client" :: rest -> client_main rest
  | _ :: "replica" :: rest -> server_main ~replica:true rest
  | _ :: "scrub" :: rest -> scrub_main rest
  | _ :: "gen" :: rest -> gen_main rest
  | _ :: "loadgen" :: rest -> loadgen_main rest
  | _ :: rest -> server_main ~replica:false rest
  | [] -> usage ()
