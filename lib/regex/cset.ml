(* Sorted, disjoint, non-adjacent inclusive ranges of byte codes. *)
type t = (int * int) list

let empty = []
let full = [ (0, 255) ]

(* Normalise: merge overlapping or adjacent ranges; assumes sorted by lo. *)
let normalise ranges =
  let rec merge = function
    | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
        merge ((l1, max h1 h2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge (List.sort compare ranges)

let singleton c = [ (Char.code c, Char.code c) ]

let range lo hi =
  let lo = Char.code lo and hi = Char.code hi in
  if lo > hi then [] else [ (lo, hi) ]

let of_string s =
  normalise (List.init (String.length s) (fun i -> Char.code s.[i])
             |> List.map (fun c -> (c, c)))

let union a b = normalise (a @ b)

let complement a =
  let rec gaps lo = function
    | [] -> if lo <= 255 then [ (lo, 255) ] else []
    | (l, h) :: rest ->
        let tail = gaps (h + 1) rest in
        if lo < l then (lo, l - 1) :: tail else tail
  in
  gaps 0 a

let inter a b =
  let rec go a b =
    match (a, b) with
    | [], _ | _, [] -> []
    | (l1, h1) :: ta, (l2, h2) :: tb ->
        let lo = max l1 l2 and hi = min h1 h2 in
        let rest = if h1 < h2 then go ta b else go a tb in
        if lo <= hi then (lo, hi) :: rest else rest
  in
  go a b

let diff a b = inter a (complement b)
let mem c a = List.exists (fun (l, h) -> l <= Char.code c && Char.code c <= h) a
let is_empty a = a = []
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let subset a b = is_empty (diff a b)
let cardinal a = List.fold_left (fun n (l, h) -> n + h - l + 1) 0 a
let choose = function [] -> None | (l, _) :: _ -> Some (Char.chr l)
let to_ranges a = List.map (fun (l, h) -> (Char.chr l, Char.chr h)) a

let of_ranges rs =
  normalise (List.map (fun (l, h) -> (Char.code l, Char.code h)) rs)

let iter_codes f a = List.iter (fun (l, h) -> for c = l to h do f c done) a

(* Partition the byte space so that every input set is a union of blocks.
   Start from {full} and split each block against each set. *)
let refine sets =
  let split blocks s =
    List.concat_map
      (fun b ->
        let inside = inter b s and outside = diff b s in
        List.filter (fun x -> not (is_empty x)) [ inside; outside ])
      blocks
  in
  List.fold_left split [ full ] sets

let pp_char ppf c =
  if c >= 33 && c <= 126 then Fmt.pf ppf "%c" (Char.chr c)
  else Fmt.pf ppf "\\x%02x" c

let pp ppf a =
  match a with
  | [ (l, h) ] when l = h -> pp_char ppf l
  | _ ->
      Fmt.pf ppf "[";
      List.iter
        (fun (l, h) ->
          if l = h then pp_char ppf l else Fmt.pf ppf "%a-%a" pp_char l pp_char h)
        a;
      Fmt.pf ppf "]"
