let error fmt = Printf.ksprintf (fun m -> Error m) fmt

type state = { input : string; mutable pos : int }

exception Fail of string

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Fail (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st =
  if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st "expected %c" c

let escaped_char st =
  advance st (* the backslash *);
  match peek st with
  | None -> fail st "dangling escape"
  | Some 'n' -> advance st; '\n'
  | Some 't' -> advance st; '\t'
  | Some 'r' -> advance st; '\r'
  | Some c -> advance st; c

(* One item of a character class: a single char or a range. *)
let class_item st =
  let start =
    match peek st with
    | Some '\\' -> escaped_char st
    | Some c -> advance st; c
    | None -> fail st "unterminated character class"
  in
  match peek st with
  | Some '-' -> (
      advance st;
      match peek st with
      | Some ']' ->
          (* A trailing '-' is a literal. *)
          Cset.union (Cset.singleton start) (Cset.singleton '-')
      | Some '\\' ->
          let stop = escaped_char st in
          Cset.range start stop
      | Some stop -> advance st; Cset.range start stop
      | None -> fail st "unterminated character class")
  | _ -> Cset.singleton start

let char_class st =
  expect st '[';
  let negated =
    match peek st with
    | Some '^' -> advance st; true
    | _ -> false
  in
  let rec items acc =
    match peek st with
    | Some ']' -> advance st; acc
    | Some _ -> items (Cset.union acc (class_item st))
    | None -> fail st "unterminated character class"
  in
  let set = items Cset.empty in
  Regex.cset (if negated then Cset.complement set else set)

let metacharacters = [ '|'; '('; ')'; '['; ']'; '*'; '+'; '?'; '.'; '\\' ]

let rec alternation st =
  let first = sequence st in
  match peek st with
  | Some '|' ->
      advance st;
      Regex.alt first (alternation st)
  | _ -> first

and sequence st =
  let rec atoms acc =
    match peek st with
    | None | Some '|' | Some ')' -> acc
    | Some _ -> atoms (Regex.seq acc (repetition st))
  in
  atoms Regex.epsilon

and repetition st =
  let base = atom st in
  let rec postfix r =
    match peek st with
    | Some '*' -> advance st; postfix (Regex.star r)
    | Some '+' -> advance st; postfix (Regex.plus r)
    | Some '?' -> advance st; postfix (Regex.opt r)
    | _ -> r
  in
  postfix base

and atom st =
  match peek st with
  | Some '(' ->
      advance st;
      let r = alternation st in
      expect st ')';
      r
  | Some '[' -> char_class st
  | Some '.' -> advance st; Regex.any
  | Some '\\' -> Regex.chr (escaped_char st)
  | Some (('*' | '+' | '?' | ')' | ']') as c) -> fail st "unexpected %c" c
  | Some c -> advance st; Regex.chr c
  | None -> fail st "unexpected end of input"

let of_string input =
  let st = { input; pos = 0 } in
  try
    let r = alternation st in
    if st.pos < String.length input then
      error "at %d: unexpected %c" st.pos input.[st.pos]
    else Ok r
  with Fail m -> Error m

(* --- printing in parseable form ------------------------------------- *)

let escape_literal c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | c when List.mem c metacharacters -> Printf.sprintf "\\%c" c
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\%c" c

let escape_in_class c =
  match c with
  | '\n' -> "\\n"
  | '\t' -> "\\t"
  | '\r' -> "\\r"
  | ']' | '^' | '-' | '\\' -> Printf.sprintf "\\%c" c
  | c when Char.code c >= 32 && Char.code c < 127 -> String.make 1 c
  | c -> Printf.sprintf "\\%c" c

let class_to_string set =
  let ranges = Cset.to_ranges set in
  match ranges with
  | [ (lo, hi) ] when lo = hi -> escape_literal lo
  | _ ->
      let body =
        String.concat ""
          (List.map
             (fun (lo, hi) ->
               if lo = hi then escape_in_class lo
               else if Char.code hi = Char.code lo + 1 then
                 escape_in_class lo ^ escape_in_class hi
               else escape_in_class lo ^ "-" ^ escape_in_class hi)
             ranges)
      in
      "[" ^ body ^ "]"

(* Precedence: 0 alternation, 1 sequence, 2 postfix atoms. *)
let rec render prec r =
  let parenthesise needed body = if prec > needed then "(" ^ body ^ ")" else body in
  match Regex.node r with
  | Regex.Empty ->
      invalid_arg "Parse.to_parseable: the empty language has no concrete syntax"
  | Regex.Epsilon -> "()"
  | Regex.Cset set ->
      if Cset.equal set Cset.full then "." else class_to_string set
  | Regex.Seq (a, b) ->
      parenthesise 1 (render 1 a ^ render 1 b)
  | Regex.Alt (a, b) ->
      parenthesise 0 (render 0 a ^ "|" ^ render 0 b)
  | Regex.Star a -> render 2 a ^ "*"

let to_parseable = render 0
