(* Hash-consed regular expressions with Brzozowski derivatives.

   Every value of type [t] is interned: structurally equal expressions are
   physically equal and carry the same unique [id].  This makes [equal] a
   pointer comparison, [compare] an integer comparison, and lets [deriv],
   [derivative_classes] and [reverse] memoise by id — so the derivative
   closure explored by {!Dfa.build} and the decision procedures costs each
   distinct derivative once instead of re-normalising it per character.

   Nullability is computed once at interning time and stored on the node.

   The intern table and the memo tables are guarded by a mutex so the
   engine stays safe under the server's worker domains; critical sections
   are single table operations (never recursive). *)

type t = { id : int; node : node; null : bool }

and node =
  | Empty
  | Epsilon
  | Cset of Cset.t
  | Seq of t * t
  | Alt of t * t
  | Star of t

let node r = r.node
let id r = r.id
let hash r = r.id
let equal (a : t) (b : t) = a == b
let compare (a : t) (b : t) = Int.compare a.id b.id
let nullable r = r.null

(* ------------------------------------------------------------------ *)
(* Interning *)

(* The intern key replaces children by their ids, so hashing and equality
   on keys are shallow. *)
type key =
  | KEmpty
  | KEpsilon
  | KCset of Cset.t
  | KSeq of int * int
  | KAlt of int * int
  | KStar of int

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let intern_tbl : (key, t) Hashtbl.t = Hashtbl.create 1024
let next_id = ref 0

let intern node =
  let key =
    match node with
    | Empty -> KEmpty
    | Epsilon -> KEpsilon
    | Cset s -> KCset s
    | Seq (a, b) -> KSeq (a.id, b.id)
    | Alt (a, b) -> KAlt (a.id, b.id)
    | Star a -> KStar a.id
  in
  with_lock (fun () ->
      match Hashtbl.find_opt intern_tbl key with
      | Some r -> r
      | None ->
          let null =
            match node with
            | Empty | Cset _ -> false
            | Epsilon | Star _ -> true
            | Seq (a, b) -> a.null && b.null
            | Alt (a, b) -> a.null || b.null
          in
          let r = { id = !next_id; node; null } in
          incr next_id;
          Hashtbl.add intern_tbl key r;
          r)

let empty = intern Empty
let epsilon = intern Epsilon
let cset s = if Cset.is_empty s then empty else intern (Cset s)
let chr c = cset (Cset.singleton c)
let any = cset Cset.full

(* Smart constructors maintain a canonical form so that the derivative
   closure of any expression is finite:
   - Seq is right-associated, with Empty absorbing and Epsilon a unit;
   - Alt is right-associated over a sorted, duplicate-free list of
     alternatives, with Empty a unit; adjacent character sets are merged;
   - Star collapses nested stars and trivial bodies.
   Alternatives are sorted by intern id: any total order fixed for the
   lifetime of the program yields a canonical form. *)

let rec seq a b =
  match (a.node, b.node) with
  | Empty, _ | _, Empty -> empty
  | Epsilon, _ -> b
  | _, Epsilon -> a
  | Seq (x, y), _ -> seq x (seq y b)
  | _, _ -> intern (Seq (a, b))

let alt a b =
  let rec flatten r acc =
    match r.node with
    | Alt (x, y) -> flatten x (flatten y acc)
    | Empty -> acc
    | _ -> r :: acc
  in
  let parts = List.sort_uniq compare (flatten a (flatten b [])) in
  (* Merge all character-set alternatives into one. *)
  let csets, others =
    List.partition (fun r -> match r.node with Cset _ -> true | _ -> false)
      parts
  in
  let merged =
    match csets with
    | [] -> []
    | _ ->
        let s =
          List.fold_left
            (fun acc r ->
              match r.node with Cset s -> Cset.union acc s | _ -> acc)
            Cset.empty csets
        in
        if Cset.is_empty s then [] else [ cset s ]
  in
  match merged @ others with
  | [] -> empty
  | [ r ] -> r
  | r :: rest -> List.fold_left (fun acc x -> intern (Alt (acc, x))) r rest

let star r =
  match r.node with
  | Empty | Epsilon -> epsilon
  | Star _ -> r
  | _ -> intern (Star r)

let plus r = seq r (star r)
let opt r = alt epsilon r

let str s =
  let rec go i =
    if i >= String.length s then epsilon else seq (chr s.[i]) (go (i + 1))
  in
  go 0

let concat_list rs = List.fold_right seq rs epsilon
let alt_list = function [] -> empty | r :: rest -> List.fold_left alt r rest
let rec repeat n r = if n <= 0 then epsilon else seq r (repeat (n - 1) r)

(* ------------------------------------------------------------------ *)
(* Derivatives, memoised by intern id *)

(* Key: (id << 8) | byte.  Ids are dense small ints, so this never
   overflows 63-bit integers in practice. *)
let deriv_tbl : (int, t) Hashtbl.t = Hashtbl.create 4096

let rec deriv c r =
  let key = (r.id lsl 8) lor Char.code c in
  match with_lock (fun () -> Hashtbl.find_opt deriv_tbl key) with
  | Some d -> d
  | None ->
      let d =
        match r.node with
        | Empty | Epsilon -> empty
        | Cset s -> if Cset.mem c s then epsilon else empty
        | Seq (a, b) ->
            let d = seq (deriv c a) b in
            if a.null then alt d (deriv c b) else d
        | Alt (a, b) -> alt (deriv c a) (deriv c b)
        | Star a -> seq (deriv c a) r
      in
      with_lock (fun () -> Hashtbl.replace deriv_tbl key d);
      d

let classes_tbl : (int, Cset.t list) Hashtbl.t = Hashtbl.create 1024

let rec derivative_classes r =
  match with_lock (fun () -> Hashtbl.find_opt classes_tbl r.id) with
  | Some cs -> cs
  | None ->
      let cs =
        match r.node with
        | Empty | Epsilon -> [ Cset.full ]
        | Cset s -> Cset.refine [ s ]
        | Seq (a, b) ->
            if a.null then
              Cset.refine (derivative_classes a @ derivative_classes b)
            else derivative_classes a
        | Alt (a, b) ->
            Cset.refine (derivative_classes a @ derivative_classes b)
        | Star a -> derivative_classes a
      in
      with_lock (fun () -> Hashtbl.replace classes_tbl r.id cs);
      cs

let reverse_tbl : (int, t) Hashtbl.t = Hashtbl.create 256

let rec reverse r =
  match with_lock (fun () -> Hashtbl.find_opt reverse_tbl r.id) with
  | Some rr -> rr
  | None ->
      let rr =
        match r.node with
        | Empty | Epsilon | Cset _ -> r
        | Seq (a, b) -> seq (reverse b) (reverse a)
        | Alt (a, b) -> alt (reverse a) (reverse b)
        | Star a -> star (reverse a)
      in
      with_lock (fun () -> Hashtbl.replace reverse_tbl r.id rr);
      rr

(* ------------------------------------------------------------------ *)
(* Matching *)

let matches_deriv r s =
  let n = String.length s in
  let rec go r i =
    if r == empty then false
    else if i >= n then r.null
    else go (deriv s.[i] r) (i + 1)
  in
  go r 0

(* {!Dfa} installs the compiled matcher (cached dense-table DFAs) when its
   module initialises; until then — or if the Dfa module is never linked —
   matching falls back to memoised derivatives. *)
let matcher : (t -> string -> bool) option ref = ref None
let set_matcher f = matcher := Some f

let matches r s =
  match !matcher with Some f -> f r s | None -> matches_deriv r s

(* ------------------------------------------------------------------ *)
(* Utilities *)

let rec size r =
  match r.node with
  | Empty | Epsilon | Cset _ -> 1
  | Seq (a, b) | Alt (a, b) -> 1 + size a + size b
  | Star a -> 1 + size a

(* Precedence: Alt (lowest) < Seq < Star (highest). *)
let rec pp_prec prec ppf r =
  match r.node with
  | Empty -> Fmt.string ppf "{empty}"
  | Epsilon -> Fmt.string ppf "{eps}"
  | Cset s -> Cset.pp ppf s
  | Seq (a, b) ->
      let doc ppf () = Fmt.pf ppf "%a%a" (pp_prec 1) a (pp_prec 1) b in
      if prec > 1 then Fmt.parens doc ppf () else doc ppf ()
  | Alt (a, b) ->
      let doc ppf () = Fmt.pf ppf "%a|%a" (pp_prec 0) a (pp_prec 0) b in
      if prec > 0 then Fmt.parens doc ppf () else doc ppf ()
  | Star a -> Fmt.pf ppf "%a*" (pp_prec 2) a

let pp = pp_prec 0
let to_string r = Fmt.str "%a" pp r
