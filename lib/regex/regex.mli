(** Hash-consed regular expressions with Brzozowski derivatives.

    Expressions are kept in a canonical form by smart constructors
    (associativity, neutral and absorbing elements, idempotent and sorted
    alternation, collapsed stars), which guarantees that the set of
    derivatives of any expression is finite — the property {!Dfa}
    construction relies on.

    Every expression is additionally {e interned} (hash-consed):
    structurally equal expressions are physically equal and carry a unique
    {!id}.  [equal] is therefore a pointer comparison, and [nullable],
    [deriv] and [derivative_classes] are memoised per expression, so
    repeated derivative closures (DFA construction, ambiguity checking,
    language decision procedures) pay for each distinct derivative once. *)

type t
(** An interned regular expression. *)

(** The syntactic shape of an expression, one level deep.  Children are
    themselves interned expressions; recurse with {!node}. *)
type node =
  | Empty  (** The empty language. *)
  | Epsilon  (** The language containing only the empty string. *)
  | Cset of Cset.t  (** Any single character from the set. *)
  | Seq of t * t  (** Concatenation (kept right-associated). *)
  | Alt of t * t  (** Union (kept right-associated, sorted, deduplicated). *)
  | Star of t  (** Kleene iteration. *)

val node : t -> node
(** The root constructor of the expression. *)

val id : t -> int
(** The unique intern id: [id a = id b] iff [a] and [b] are structurally
    (hence physically) equal.  Stable for the lifetime of the process —
    the key used by the {!Dfa} compilation cache and the memo tables. *)

(** {1 Constructors} *)

val empty : t
val epsilon : t
val cset : Cset.t -> t
val chr : char -> t
val str : string -> t
(** The literal string. *)

val any : t
(** Any single byte. *)

val seq : t -> t -> t
val alt : t -> t -> t
val star : t -> t
val plus : t -> t
(** One or more repetitions. *)

val opt : t -> t
(** Zero or one occurrence. *)

val concat_list : t list -> t
val alt_list : t list -> t
val repeat : int -> t -> t
(** Exactly [n] copies in sequence. *)

(** {1 Semantics} *)

val nullable : t -> bool
(** Does the language contain the empty string?  O(1): computed at
    interning time. *)

val deriv : char -> t -> t
(** Brzozowski derivative: the language of suffixes after consuming one
    character.  Memoised per (expression, byte). *)

val matches : t -> string -> bool
(** Membership test.  Runs on the compiled DFA engine (one cached dense
    automaton per expression, see {!Dfa.compile}); falls back to
    {!matches_deriv} if the compiled engine is not linked in. *)

val matches_deriv : t -> string -> bool
(** Membership test by iterated (memoised) derivatives — the reference
    interpreter the compiled engine is checked against. *)

val set_matcher : (t -> string -> bool) -> unit
(** Install the compiled matcher behind {!matches}.  Called once by
    {!Dfa} at module initialisation; not for general use. *)

val reverse : t -> t
(** The regex denoting the reversal of the language. *)

val derivative_classes : t -> Cset.t list
(** A partition of the byte space such that [deriv] is constant on each
    block.  May be finer than necessary, never coarser.  Memoised. *)

(** {1 Utilities} *)

val equal : t -> t -> bool
(** Structural equality — O(1) by hash-consing. *)

val compare : t -> t -> int
(** A total order (by intern id — consistent within a process run, not
    structural). *)

val hash : t -> int
(** The intern id; suitable for hash tables. *)

val size : t -> int
(** Number of syntax nodes. *)

val pp : Format.formatter -> t -> unit
(** Render in a conventional concrete syntax. *)

val to_string : t -> string
