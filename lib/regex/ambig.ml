(* A concatenation L1·L2 is ambiguous iff some word splits two ways:
   w = p·s = (p·q)·s' with q nonempty, p, p·q ∈ L1 and q·s', s' ∈ L2.
   Equivalently, the "overlap" q lies in both
     S1 = { q ≠ ε | ∃p. p ∈ L1 ∧ p·q ∈ L1 }   (paths between accepting
                                                states of a DFA for L1)
   and
     T2 = { q | L(δ2(q0, q)) ∩ L2 ≠ ∅ }        (prefixes of L2 whose
                                                residual still meets L2).
   We search the product of the subset-construction of S1 (an NFA whose
   initial states are the accepting states of DFA(L1)) with DFA(L2),
   breadth-first, and return the shortest overlap as a witness.  The
   acceptance test runs when an edge is generated, so the path is always
   nonempty — including paths that lead back to the start state.

   Derivatives and classes are memoised per interned regex (see
   {!Regex}), and visited sets are keyed by intern ids, so re-checking
   the same regexes (as nested lens combinators do) costs one table
   lookup per explored edge. *)

module StateSet = struct
  (* A set of derivative states: sorted, duplicate-free list. *)
  let of_list rs = List.sort_uniq Regex.compare rs
  let step c set = of_list (List.map (Regex.deriv c) set)
  let any_nullable = List.exists Regex.nullable
  let classes set = Cset.refine (List.concat_map Regex.derivative_classes set)

  (* Intern-id key: cheap to hash, equal iff the sets are equal. *)
  let key set = List.map Regex.id set
end

exception Witness of string

let string_of_rev_path path =
  let len = List.length path in
  let b = Bytes.create len in
  List.iteri (fun k c -> Bytes.set b (len - 1 - k) c) path;
  Bytes.unsafe_to_string b

let unambig_concat r1 r2 =
  let d1 = Dfa.compile r1 in
  let accepting_labels =
    Array.to_list (Dfa.states d1) |> List.filter Regex.nullable
  in
  if accepting_labels = [] then Ok () (* L1 empty: nothing to split *)
  else begin
    (* Memoised: does the residual language t still meet L2? *)
    let qualifies_cache = Hashtbl.create 16 in
    let qualifies t =
      match Hashtbl.find_opt qualifies_cache (Regex.id t) with
      | Some b -> b
      | None ->
          let b = Lang.inter_witness t r2 <> None in
          Hashtbl.add qualifies_cache (Regex.id t) b;
          b
    in
    let start = (StateSet.of_list accepting_labels, r2) in
    let visit_key (set, t) = (StateSet.key set, Regex.id t) in
    let visited = Hashtbl.create 64 in
    Hashtbl.add visited (visit_key start) ();
    let queue = Queue.create () in
    (* Paths are kept newest-character-first, see string_of_rev_path. *)
    Queue.add (start, []) queue;
    try
      while not (Queue.is_empty queue) do
        let (set, t), path = Queue.take queue in
        let classes =
          Cset.refine (StateSet.classes set @ Regex.derivative_classes t)
        in
        List.iter
          (fun cls ->
            match Cset.choose cls with
            | None -> ()
            | Some c ->
                let set' = StateSet.step c set in
                let t' = Regex.deriv c t in
                let path' = c :: path in
                if StateSet.any_nullable set' && qualifies t' then
                  raise (Witness (string_of_rev_path path'));
                let next = (set', t') in
                if not (Hashtbl.mem visited (visit_key next)) then begin
                  Hashtbl.add visited (visit_key next) ();
                  Queue.add (next, path') queue
                end)
          classes
      done;
      Ok ()
    with Witness w -> Error w
  end

let unambig_star r =
  if Regex.nullable r then Error ""
  else unambig_concat r (Regex.star r)

let disjoint_union = Lang.disjoint
