(** Character sets, represented as sorted lists of disjoint inclusive
    ranges of character codes.  The building block of regular expressions
    and of the character-class partitions used to build DFAs. *)

type t

val empty : t
val full : t
(** All 256 byte values. *)

val singleton : char -> t
val range : char -> char -> t
(** [range lo hi] is the inclusive range; empty if [lo > hi]. *)

val of_string : string -> t
(** The set of characters occurring in the string. *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val complement : t -> t

val mem : char -> t -> bool
val is_empty : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val subset : t -> t -> bool

val cardinal : t -> int
(** Number of characters in the set. *)

val choose : t -> char option
(** The smallest character in the set, if any. *)

val to_ranges : t -> (char * char) list
(** The underlying sorted disjoint ranges. *)

val of_ranges : (char * char) list -> t
(** Build a set from inclusive ranges (overlaps and adjacency are
    normalised away); the inverse of {!to_ranges}. *)

val iter_codes : (int -> unit) -> t -> unit
(** Apply a function to every byte code of the set, in increasing order.
    Used to fill dense DFA transition tables. *)

val refine : t list -> t list
(** [refine sets] returns a partition of the full byte space such that each
    input set is a union of partition blocks.  Used to compute the
    character-class partition a DFA state dispatches on. *)

val pp : Format.formatter -> t -> unit
(** Compact rendering, e.g. [[a-z0-9]]. *)
