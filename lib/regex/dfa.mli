(** Deterministic finite automata built from regular expressions by
    Brzozowski-derivative closure, compiled to dense byte->state tables.
    State 0 is initial; every state is reachable; the transition function
    is total.  [step], [run_from], [accepts] and [prefix_marks] are O(1)
    per byte (one flat-array read); the character-class view of the
    transitions is kept alongside for the structural algorithms
    ({!transitions}, {!minimise}, {!to_regex}). *)

type t

val build : Regex.t -> t
(** Construct the DFA recognising the regex's language (uncached). *)

val compile : Regex.t -> t
(** {!build} through the global compilation cache: at most one DFA is
    ever constructed per interned regex (keyed by {!Regex.id}), shared by
    every lens and decision procedure.  Thread-safe. *)

val cache_stats : unit -> int * int
(** [(hits, misses)] of {!compile} since start-up (or {!cache_clear}).
    Misses count actual DFA constructions — the test suites assert that
    building a lens twice adds no misses. *)

val cache_clear : unit -> unit
(** Empty the compilation cache and reset the counters.  Existing [t]
    values remain valid; used by benchmarks to measure cold builds. *)

val size : t -> int
(** Number of states. *)

val initial : int
(** The initial state index (always [0]). *)

val regex_of_state : t -> int -> Regex.t
(** The canonical derivative labelling a state (its residual language). *)

val states : t -> Regex.t array
(** All state labels, indexed by state. *)

val transitions : t -> int -> (Cset.t * int) list
(** Outgoing transitions of a state as disjoint character classes. *)

val sink : t -> int
(** The index of the sink state (the state whose residual language is
    empty), or [-1] when every state accepts some continuation.  Scans
    can stop as soon as they reach it. *)

val step : t -> int -> char -> int
(** One transition: a single dense-table read. *)

val accepting : t -> int -> bool

val accepts : t -> string -> bool
(** Full-string membership; bails out early at the sink state. *)

val accepts_sub : t -> string -> pos:int -> len:int -> bool
(** Membership of the slice [s[pos .. pos+len)] — no substring is built. *)

val run_from : t -> int -> string -> int
(** Run the automaton over a string from a given state. *)

val run_from_sub : t -> int -> string -> pos:int -> len:int -> int
(** Run the automaton over the slice [s[pos .. pos+len)] from a state. *)

val prefix_marks : t -> string -> bool array
(** [prefix_marks d s] has length [String.length s + 1]; element [i] tells
    whether the prefix [s[0..i)] is accepted. *)

val prefix_marks_sub : t -> string -> pos:int -> len:int -> into:Bytes.t -> int
(** Slice variant of {!prefix_marks} writing into caller scratch: after
    the call, [into.(i) = '\001'] iff [s[pos .. pos+i)] is accepted, for
    [0 <= i <= len].  [into] must have at least [len + 1] bytes; lens
    executions reuse one buffer across every split of a run.  The pass
    bails out at the sink state (blanking the rest of the scratch) and
    returns the highest index that can still carry a mark. *)

val suffix_marks_sub : t -> string -> pos:int -> len:int -> into:Bytes.t -> int
(** [d] must recognise the {e reversal} of the language of interest
    (compile [Regex.reverse r]); the pass then runs right to left over
    the original bytes — the reversed string is never materialised.
    After the call, [into.(i) = '\001'] iff [s[pos+i .. pos+len)] belongs
    to the unreversed language.  [into] needs [len + 1] bytes.  Bails
    out at the sink (blanking the scratch below) and returns the lowest
    index that can still carry a mark. *)

val suffix_marks_multi : t array -> string -> pos:int -> len:int -> into:int array -> unit
(** One right-to-left pass advancing every (reversed) automaton at once:
    bit [j] of [into.(i)] reports whether [s[pos+i .. pos+len)] belongs
    to automaton [j]'s (unreversed) language.  [into] needs [len + 1]
    slots; at most [Sys.int_size - 2] automata.  The shared pass behind
    the k-ary concatenation splitter. *)

val raw_table : t -> int array
(** The dense transition table itself: the successor of state [i] on byte
    [c] is at index [(i lsl 8) lor c].  Exposed for the splitter inner
    loops, which step the automaton once per byte and cannot afford a
    cross-module call each time.  Do not mutate. *)

val raw_accept : t -> bool array
(** The acceptance vector, indexed by state.  Do not mutate. *)

val is_empty_lang : t -> bool
(** Whether the language is empty (no accepting state exists; all states
    are reachable by construction). *)

val shortest_accepted : t -> string option
(** A shortest member of the language, by breadth-first search. *)

val minimise : t -> t
(** The minimal DFA for the same language, by Moore partition refinement
    over the dense tables.  State labels are taken from block
    representatives (the residual languages are equivalent within a
    block); state 0 remains initial. *)

val complement : t -> t
(** Same transitions, accepting states flipped.  State labels are left
    untouched and no longer describe the residual languages; use the
    result only where labels are not consulted ({!accepts},
    {!minimise}, {!to_regex}). *)

val to_regex : t -> Regex.t
(** A regular expression for the automaton's language, by GNFA state
    elimination (Kleene).  The result can be large; it is language-equal
    to every state-0 label but syntactically unrelated.  Minimising
    first usually helps. *)
