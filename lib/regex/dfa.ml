(* DFAs over interned regexes, compiled to dense byte->state tables.

   [table] is a flat array of 256 * n ints: the successor of state [i] on
   byte [c] lives at [(i lsl 8) lor c], so [step], [run_from],
   [prefix_marks] and [accepts] are single array reads per byte.  The
   class-based view ([class_trans]) is kept alongside for the algorithms
   that want character classes rather than bytes (BFS, minimisation
   regrouping, GNFA state elimination).

   [sink] caches the index of the state with the empty residual language
   (-1 when every state accepts some continuation): matching and the
   splitter scans bail out as soon as they reach it. *)

type t = {
  state_labels : Regex.t array;
  class_trans : (Cset.t * int) list array;
  table : int array;
  accept : bool array;
  sink : int;
}

let initial = 0

(* Fill the dense table row of state [i] from its class transitions. *)
let fill_row table i outgoing =
  List.iter
    (fun (cls, j) ->
      Cset.iter_codes (fun c -> table.((i lsl 8) lor c) <- j) cls)
    outgoing

let find_sink state_labels =
  let n = Array.length state_labels in
  let rec find i =
    if i >= n then -1
    else if Regex.equal state_labels.(i) Regex.empty then i
    else find (i + 1)
  in
  find 0

let build root =
  let ids = Hashtbl.create 64 in
  let labels = ref [] and count = ref 0 in
  let id_of r =
    match Hashtbl.find_opt ids (Regex.id r) with
    | Some i -> (i, false)
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add ids (Regex.id r) i;
        labels := r :: !labels;
        (i, true)
  in
  let trans_tbl = Hashtbl.create 64 in
  let rec explore r =
    let i, fresh = id_of r in
    if fresh then begin
      let classes = Regex.derivative_classes r in
      let outgoing =
        List.filter_map
          (fun cls ->
            match Cset.choose cls with
            | None -> None
            | Some c ->
                let r' = Regex.deriv c r in
                let j = explore r' in
                Some (cls, j))
          classes
      in
      Hashtbl.replace trans_tbl i outgoing
    end;
    i
  in
  let _root_id = explore root in
  let n = !count in
  let state_labels = Array.make n Regex.empty in
  List.iteri (fun k r -> state_labels.(n - 1 - k) <- r) !labels;
  let class_trans = Array.make n [] in
  let accept = Array.make n false in
  let table = Array.make (n * 256) 0 in
  for i = 0 to n - 1 do
    class_trans.(i) <- Hashtbl.find trans_tbl i;
    accept.(i) <- Regex.nullable state_labels.(i);
    fill_row table i class_trans.(i)
  done;
  { state_labels; class_trans; table; accept; sink = find_sink state_labels }

(* ------------------------------------------------------------------ *)
(* The compilation cache: one DFA per interned regex, keyed by id.  Lens
   combinators re-derive the same sub-regexes at every nesting level
   (concat_list, separated, the union/compose type checks), so compiling
   through the cache makes construction cost proportional to the number
   of distinct regexes instead of the number of uses. *)

let cache : (int, t) Hashtbl.t = Hashtbl.create 256
let cache_lock = Mutex.create ()
let cache_hits = ref 0
let cache_misses = ref 0

let with_cache_lock f =
  Mutex.lock cache_lock;
  match f () with
  | v ->
      Mutex.unlock cache_lock;
      v
  | exception e ->
      Mutex.unlock cache_lock;
      raise e

let compile r =
  let key = Regex.id r in
  match
    with_cache_lock (fun () ->
        match Hashtbl.find_opt cache key with
        | Some d ->
            incr cache_hits;
            Some d
        | None ->
            incr cache_misses;
            None)
  with
  | Some d -> d
  | None ->
      let d = build r in
      with_cache_lock (fun () ->
          match Hashtbl.find_opt cache key with
          | Some d' -> d' (* a concurrent build won the race *)
          | None ->
              Hashtbl.add cache key d;
              d)

let cache_stats () = (!cache_hits, !cache_misses)

let cache_clear () =
  with_cache_lock (fun () ->
      Hashtbl.reset cache;
      cache_hits := 0;
      cache_misses := 0)

(* ------------------------------------------------------------------ *)
(* Running *)

let size d = Array.length d.state_labels
let regex_of_state d i = d.state_labels.(i)
let states d = d.state_labels
let transitions d i = d.class_trans.(i)
let sink d = d.sink
let step d i c = d.table.((i lsl 8) lor Char.code c)
let accepting d i = d.accept.(i)

(* The inner loops use unsafe accesses: [st] ranges over [0, n) by
   construction (the table is total) and the index fits the table by the
   row layout. *)

let run_from_sub d i s ~pos ~len =
  let table = d.table in
  let st = ref i in
  for k = pos to pos + len - 1 do
    st :=
      Array.unsafe_get table
        ((!st lsl 8) lor Char.code (String.unsafe_get s k))
  done;
  !st

let run_from d i s = run_from_sub d i s ~pos:0 ~len:(String.length s)

let accepts_sub d s ~pos ~len =
  let table = d.table in
  let sink = d.sink in
  let st = ref initial in
  let i = ref pos in
  let stop = pos + len in
  while !i < stop && !st <> sink do
    st :=
      Array.unsafe_get table
        ((!st lsl 8) lor Char.code (String.unsafe_get s !i));
    incr i
  done;
  !st <> sink && d.accept.(!st)

let accepts d s = accepts_sub d s ~pos:0 ~len:(String.length s)

(* Slice mark passes write into caller-provided scratch ([Bytes], one
   byte per position, 1 = marked) so a lens execution can reuse the same
   two buffers for every split it performs. *)

let prefix_marks_sub d s ~pos ~len ~into =
  let table = d.table in
  let accept = d.accept in
  let sink = d.sink in
  let st = ref initial in
  Bytes.unsafe_set into 0 (if Array.unsafe_get accept initial then '\001' else '\000');
  let i = ref 0 in
  while !i < len && !st <> sink do
    st :=
      Array.unsafe_get table
        ((!st lsl 8) lor Char.code (String.unsafe_get s (pos + !i)));
    Bytes.unsafe_set into (!i + 1)
      (if Array.unsafe_get accept !st then '\001' else '\000');
    incr i
  done;
  (* Once the sink is reached no later prefix can be accepted; blank the
     tail so reused scratch never shows stale marks. *)
  if !i < len then Bytes.fill into (!i + 1) (len - !i) '\000';
  !i

(* [suffix_marks_sub d s ~pos ~len ~into] expects [d] to recognise the
   REVERSAL of the language of interest and runs it right to left over
   the original bytes — no reversed copy of the string is ever built.
   After the call, [into.(i) = 1] iff [s[pos+i .. pos+len)] belongs to
   the (unreversed) language. *)
let suffix_marks_sub d s ~pos ~len ~into =
  let table = d.table in
  let accept = d.accept in
  let sink = d.sink in
  let st = ref initial in
  Bytes.unsafe_set into len
    (if Array.unsafe_get accept initial then '\001' else '\000');
  let i = ref (len - 1) in
  while !i >= 0 && !st <> sink do
    st :=
      Array.unsafe_get table
        ((!st lsl 8) lor Char.code (String.unsafe_get s (pos + !i)));
    Bytes.unsafe_set into !i
      (if Array.unsafe_get accept !st then '\001' else '\000');
    decr i
  done;
  if !i >= 0 then Bytes.fill into 0 (!i + 1) '\000';
  !i + 1

(* The k-way variant: one right-to-left pass over the slice advancing
   every (reversed) automaton at once; bit [j] of [into.(i)] reports
   automaton [j]'s acceptance of [s[pos+i .. pos+len)].  This is what
   lets a k-ary concatenation splitter share a single suffix pass
   instead of running one full pass per part. *)
let suffix_marks_multi ds s ~pos ~len ~into =
  let k = Array.length ds in
  if k > Sys.int_size - 2 then
    invalid_arg "Dfa.suffix_marks_multi: too many automata for one word";
  let states = Array.make k initial in
  let mask = ref 0 in
  for j = 0 to k - 1 do
    if ds.(j).accept.(initial) then mask := !mask lor (1 lsl j)
  done;
  into.(len) <- !mask;
  for i = len - 1 downto 0 do
    let c = Char.code (String.unsafe_get s (pos + i)) in
    let m = ref 0 in
    for j = 0 to k - 1 do
      let d = Array.unsafe_get ds j in
      let st =
        Array.unsafe_get d.table
          ((Array.unsafe_get states j lsl 8) lor c)
      in
      Array.unsafe_set states j st;
      if Array.unsafe_get d.accept st then m := !m lor (1 lsl j)
    done;
    Array.unsafe_set into i !m
  done

let prefix_marks d s =
  let n = String.length s in
  let scratch = Bytes.create (n + 1) in
  let (_ : int) = prefix_marks_sub d s ~pos:0 ~len:n ~into:scratch in
  Array.init (n + 1) (fun i -> Bytes.get scratch i = '\001')

(* Raw views of the dense tables, for the splitter inner loops: a chunk
   scan steps the automaton once per byte and a cross-module call per
   byte would dominate it. *)
let raw_table d = d.table
let raw_accept d = d.accept

let is_empty_lang d = not (Array.exists Fun.id d.accept)

(* Rebuild a string from a reversed path of characters in one pass. *)
let string_of_rev_path path =
  let len = List.length path in
  let b = Bytes.create len in
  List.iteri (fun k c -> Bytes.set b (len - 1 - k) c) path;
  Bytes.unsafe_to_string b

let shortest_accepted d =
  let n = size d in
  let visited = Array.make n false in
  let queue = Queue.create () in
  (* Paths are kept newest-character-first; a single reversed write per
     witness replaces the former quadratic List.nth reconstruction. *)
  Queue.add (initial, []) queue;
  visited.(initial) <- true;
  let rec bfs () =
    if Queue.is_empty queue then None
    else
      let i, path = Queue.take queue in
      if accepting d i then Some (string_of_rev_path path)
      else begin
        List.iter
          (fun (cls, j) ->
            if not visited.(j) then begin
              visited.(j) <- true;
              match Cset.choose cls with
              | Some c -> Queue.add (j, c :: path) queue
              | None -> ()
            end)
          d.class_trans.(i);
        bfs ()
      end
  in
  bfs ()

(* ------------------------------------------------------------------ *)
(* Minimisation: Moore partition refinement over the dense tables.
   Blocks are refined by acceptance and by the block each byte leads to,
   until stable.  Signatures are read straight off the byte table — no
   per-byte list scans. *)

let minimise d =
  let n = size d in
  if n = 0 then d
  else begin
    let table = d.table in
    let block = Array.init n (fun i -> if d.accept.(i) then 1 else 0) in
    (* If all states agree on acceptance there is a single block. *)
    let normalise () =
      (* Renumber blocks densely in order of first occurrence. *)
      let mapping = Hashtbl.create 8 in
      let next = ref 0 in
      Array.iteri
        (fun i b ->
          match Hashtbl.find_opt mapping b with
          | Some b' -> block.(i) <- b'
          | None ->
              Hashtbl.add mapping b !next;
              block.(i) <- !next;
              incr next)
        block;
      !next
    in
    let count = ref (normalise ()) in
    let changed = ref true in
    while !changed do
      changed := false;
      (* Signature of a state: its block plus the blocks of all 256 byte
         successors, read directly from the dense table. *)
      let signatures = Hashtbl.create n in
      let next_sig = ref 0 in
      let new_block = Array.make n 0 in
      for i = 0 to n - 1 do
        let key = Array.make 257 block.(i) in
        for c = 0 to 255 do
          key.(c + 1) <- block.(table.((i lsl 8) lor c))
        done;
        match Hashtbl.find_opt signatures key with
        | Some b -> new_block.(i) <- b
        | None ->
            Hashtbl.add signatures key !next_sig;
            new_block.(i) <- !next_sig;
            incr next_sig
      done;
      if !next_sig <> !count then begin
        changed := true;
        count := !next_sig;
        Array.blit new_block 0 block 0 n
      end
    done;
    let block_count = normalise () in
    (* Reindex so the block of the old initial state is 0. *)
    let initial_block = block.(initial) in
    let rename b =
      if b = initial_block then 0 else if b < initial_block then b + 1 else b
    in
    Array.iteri (fun i b -> block.(i) <- rename b) block;
    (* Representative state of each block. *)
    let repr = Array.make block_count (-1) in
    Array.iteri (fun i b -> if repr.(b) < 0 then repr.(b) <- i) block;
    let state_labels = Array.map (fun r -> d.state_labels.(r)) repr in
    let accept = Array.map (fun r -> d.accept.(r)) repr in
    let table' = Array.make (block_count * 256) 0 in
    let class_trans =
      Array.mapi
        (fun b r ->
          (* Targets per byte, then group bytes by target block into
             maximal character sets. *)
          let by_target = Hashtbl.create 4 in
          for c = 0 to 255 do
            let t = block.(table.((r lsl 8) lor c)) in
            table'.((b lsl 8) lor c) <- t;
            let ranges =
              Option.value ~default:[] (Hashtbl.find_opt by_target t)
            in
            Hashtbl.replace by_target t ((Char.chr c, Char.chr c) :: ranges)
          done;
          Hashtbl.fold
            (fun t ranges acc -> (Cset.of_ranges ranges, t) :: acc)
            by_target []
          |> List.sort compare)
        repr
    in
    (* The block of the old sink is exactly the set of empty-residual
       states (they are Myhill-Nerode equivalent), so it remains the
       sink. *)
    let sink = if d.sink < 0 then -1 else block.(d.sink) in
    { state_labels; class_trans; table = table'; accept; sink }
  end

(* GNFA state elimination.  Two virtual states are added: a start S with
   an epsilon edge to state 0, and an accept F with epsilon edges from
   every accepting state.  Eliminating a state k replaces every path
   i -> k -> j by the regex R(i,k) R(k,k)* R(k,j), merged into R(i,j). *)
let to_regex d =
  let n = size d in
  if n = 0 then Regex.empty
  else begin
    let start = n and final = n + 1 in
    let edges : (int * int, Regex.t) Hashtbl.t = Hashtbl.create 64 in
    let get i j = Hashtbl.find_opt edges (i, j) in
    let add i j r =
      match get i j with
      | None -> Hashtbl.replace edges (i, j) r
      | Some r0 -> Hashtbl.replace edges (i, j) (Regex.alt r0 r)
    in
    for i = 0 to n - 1 do
      List.iter (fun (cls, j) -> add i j (Regex.cset cls)) d.class_trans.(i);
      if d.accept.(i) then add i final Regex.epsilon
    done;
    add start 0 Regex.epsilon;
    let states = List.init n Fun.id in
    List.iter
      (fun k ->
        let loop =
          match get k k with None -> Regex.epsilon | Some r -> Regex.star r
        in
        let sources =
          Hashtbl.fold
            (fun (i, j) r acc -> if j = k && i <> k then (i, r) :: acc else acc)
            edges []
        in
        let targets =
          Hashtbl.fold
            (fun (i, j) r acc -> if i = k && j <> k then (j, r) :: acc else acc)
            edges []
        in
        List.iter
          (fun (i, rin) ->
            List.iter
              (fun (j, rout) -> add i j (Regex.seq rin (Regex.seq loop rout)))
              targets)
          sources;
        (* Remove every edge touching k. *)
        Hashtbl.iter
          (fun (i, j) _ -> if i = k || j = k then Hashtbl.remove edges (i, j))
          (Hashtbl.copy edges))
      states;
    match get start final with None -> Regex.empty | Some r -> r
  end

(* The complemented automaton: same transitions, accepting states
   flipped.  State labels are kept verbatim and no longer denote the
   states' residual languages; the former sink now accepts everything,
   so the sink shortcut is disabled.  Use the result only where labels
   are not consulted (matching, minimisation, to_regex). *)
let complement d = { d with accept = Array.map not d.accept; sink = -1 }

(* Route Regex.matches through the compiled engine: one cached DFA per
   interned regex, then a dense-table scan. *)
let () = Regex.set_matcher (fun r s -> accepts (compile r) s)
