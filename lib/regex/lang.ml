(* Language decision procedures, run on compiled DFAs.

   The generic search explores the product of the two (cached) automata
   breadth-first; [accept a1 a2] decides, from the two acceptance bits,
   whether a product state is a witness, and the search returns the
   shortest string reaching one.  Product states are integer pairs, so
   visited-tracking is a byte per pair and stepping is two dense-table
   reads. *)

let string_of_rev_path path =
  let len = List.length path in
  let b = Bytes.create len in
  List.iteri (fun k c -> Bytes.set b (len - 1 - k) c) path;
  Bytes.unsafe_to_string b

let pair_bfs ~accept r1 r2 =
  let d1 = Dfa.compile r1 and d2 = Dfa.compile r2 in
  let n2 = Dfa.size d2 in
  let visited = Bytes.make (Dfa.size d1 * n2) '\000' in
  let queue = Queue.create () in
  (* Paths are kept newest-character-first, see string_of_rev_path. *)
  Queue.add ((Dfa.initial, Dfa.initial), []) queue;
  Bytes.set visited ((Dfa.initial * n2) + Dfa.initial) '\001';
  let rec bfs () =
    if Queue.is_empty queue then None
    else
      let (i, j), path = Queue.take queue in
      if accept (Dfa.accepting d1 i) (Dfa.accepting d2 j) then
        Some (string_of_rev_path path)
      else begin
        (* Classes refined across both states, so each (successor pair)
           is reached by one representative byte. *)
        let classes =
          Cset.refine
            (List.map fst (Dfa.transitions d1 i)
            @ List.map fst (Dfa.transitions d2 j))
        in
        List.iter
          (fun cls ->
            match Cset.choose cls with
            | None -> ()
            | Some c ->
                let i' = Dfa.step d1 i c and j' = Dfa.step d2 j c in
                let key = (i' * n2) + j' in
                if Bytes.get visited key = '\000' then begin
                  Bytes.set visited key '\001';
                  Queue.add ((i', j'), c :: path) queue
                end)
          classes;
        bfs ()
      end
  in
  bfs ()

let inter_witness r1 r2 = pair_bfs ~accept:(fun a1 a2 -> a1 && a2) r1 r2

let disjoint r1 r2 =
  match inter_witness r1 r2 with None -> Ok () | Some w -> Error w

let subset_counterexample r1 r2 =
  pair_bfs ~accept:(fun a1 a2 -> a1 && not a2) r1 r2

let subset r1 r2 = subset_counterexample r1 r2 = None

let equiv_counterexample r1 r2 =
  pair_bfs ~accept:(fun a1 a2 -> a1 <> a2) r1 r2

let equivalent r1 r2 = equiv_counterexample r1 r2 = None

let is_empty r = Dfa.is_empty_lang (Dfa.compile r)

let shortest r = Dfa.shortest_accepted (Dfa.compile r)

(* Closure operations that escape the regex syntax via automata:
   complement and intersection as regexes (Kleene's theorem made
   executable).  Results are language-correct but syntactically large;
   both minimise before eliminating states. *)
let complement r =
  Dfa.to_regex (Dfa.minimise (Dfa.complement (Dfa.compile r)))

let inter r1 r2 =
  (* De Morgan over the available complement. *)
  complement (Regex.alt (complement r1) (complement r2))

let enumerate ~max_length r =
  let out = ref [] in
  (* Breadth-first over (derivative, word) pairs; expand per derivative
     class so only one representative byte per class is explored — and
     every byte in an accepted class contributes, so expand the class's
     members individually. *)
  let queue = Queue.create () in
  Queue.add (r, "") queue;
  while not (Queue.is_empty queue) do
    let d, w = Queue.take queue in
    if Regex.nullable d then out := w :: !out;
    if String.length w < max_length then
      List.iter
        (fun cls ->
          List.iter
            (fun (lo, hi) ->
              let rec chars c =
                if c > Char.code hi then ()
                else begin
                  let ch = Char.chr c in
                  let d' = Regex.deriv ch d in
                  if not (Regex.equal d' Regex.empty) then
                    Queue.add (d', w ^ String.make 1 ch) queue;
                  chars (c + 1)
                end
              in
              chars (Char.code lo))
            (Cset.to_ranges cls))
        (Regex.derivative_classes d)
  done;
  List.rev !out
