open QCheck2

let names = [ "Bach"; "Britten"; "Cage"; "Dvorak"; "Elgar"; "Faure" ]
let nationalities = [ "German"; "English"; "American"; "Czech"; "French" ]
let dates_pool = [ "1685-1750"; "1913-1976"; "1912-1992"; "1841-1904" ]

let composer_gen =
  Gen.map
    (fun ((name, dates), nationality) ->
      Bx_catalogue.Composers.composer ~name ~dates ~nationality)
    Gen.(pair (pair (oneofl names) (oneofl dates_pool)) (oneofl nationalities))

let composers_m =
  Gen.map Bx_catalogue.Composers.canon_m Gen.(list_size (0 -- 6) composer_gen)

let composers_n =
  Gen.(list_size (0 -- 6) (pair (oneofl names) (oneofl nationalities)))

(* --- UML / relational ---------------------------------------------- *)

let class_names = [ "Person"; "Order"; "Item"; "Account" ]
let attr_names = [ "id"; "name"; "total"; "open" ]

let attr_gen =
  Gen.map
    (fun ((name, ty), key) -> Bx_models.Uml.attribute ~is_key:key name ty)
    Gen.(
      pair
        (pair (oneofl attr_names)
           (oneofl Bx_models.Uml.[ String_t; Integer_t; Boolean_t ]))
        bool)

(* Distinct attribute names within a class; distinct class names within a
   model — the validators' invariants. *)
let dedup_by key l =
  List.fold_left
    (fun acc x -> if List.exists (fun y -> key y = key x) acc then acc else acc @ [ x ])
    [] l

let class_gen =
  Gen.map
    (fun ((name, persistent), attrs) ->
      let attrs = dedup_by (fun a -> a.Bx_models.Uml.attr_name) attrs in
      let attrs =
        if attrs = [] then [ Bx_models.Uml.attribute "id" Bx_models.Uml.Integer_t ]
        else attrs
      in
      Bx_models.Uml.clazz ~persistent name attrs)
    Gen.(pair (pair (oneofl class_names) bool) (list_size (1 -- 4) attr_gen))

let uml_model =
  Gen.map
    (dedup_by (fun c -> c.Bx_models.Uml.class_name))
    Gen.(list_size (0 -- 4) class_gen)

let rdb_schema =
  Gen.map
    (fun model -> List.map Bx_catalogue.Uml2rdbms.table_of_class model)
    (Gen.map
       (List.filter (fun c -> c.Bx_models.Uml.persistent))
       uml_model)

(* --- Families / persons -------------------------------------------- *)

let first_names = [ "Jim"; "Cindy"; "Brandon"; "Brenda"; "David"; "Jackie" ]
let last_names = [ "March"; "Sailor"; "Smith" ]

let family_gen =
  Gen.map
    (fun (((last, father), mother), (sons, daughters)) ->
      let taken = Option.to_list father @ Option.to_list mother in
      let fresh used pool = List.filter (fun x -> not (List.mem x used)) pool in
      let sons = dedup_by Fun.id sons in
      let sons = List.filteri (fun i _ -> i < 2) (fresh taken sons) in
      let daughters = dedup_by Fun.id daughters in
      let daughters =
        List.filteri (fun i _ -> i < 2) (fresh (taken @ sons) daughters)
      in
      {
        Bx_models.Genealogy.last_name = last;
        father;
        mother;
        sons;
        daughters;
      })
    Gen.(
      pair
        (pair (pair (oneofl last_names) (option (oneofl first_names)))
           (option (oneofl first_names)))
        (pair
           (list_size (0 -- 2) (oneofl first_names))
           (list_size (0 -- 2) (oneofl first_names))))

let families =
  Gen.map
    (dedup_by (fun f -> f.Bx_models.Genealogy.last_name))
    Gen.(list_size (0 -- 3) family_gen)

let persons =
  Gen.(
    list_size (0 -- 6)
      (map
         (fun ((first, last), (gender, birthday)) ->
           {
             Bx_models.Genealogy.full_name = first ^ " " ^ last;
             gender;
             birthday;
           })
         (pair
            (pair (oneofl first_names) (oneofl last_names))
            (pair
               (oneofl Bx_models.Genealogy.[ Male; Female ])
               (oneofl [ "unknown"; "1970-01-01"; "2001-12-31" ])))))

(* --- Bookstore ------------------------------------------------------ *)

let titles = [ "tapl"; "sicp"; "hott"; "ctfp" ]
let authors = [ "pierce"; "abelson"; "univalent"; "milewski" ]

let bookstore =
  Gen.map
    (fun books ->
      Bx_catalogue.Bookstore.store_of_books
        (List.map
           (fun ((title, author), price) ->
             { Bx_catalogue.Bookstore.title; author; price })
           books))
    Gen.(list_size (0 -- 5) (pair (pair (oneofl titles) (oneofl authors)) (0 -- 99)))

let price_list =
  Gen.(list_size (0 -- 5) (pair (oneofl titles) (0 -- 99)))

(* --- Lines ---------------------------------------------------------- *)

let line_gen = Gen.(string_size ~gen:(char_range 'a' 'z') (0 -- 8))

let line_list = Gen.(list_size (0 -- 6) line_gen)

let document =
  Gen.map
    (fun ls -> String.concat "" (List.map (fun l -> l ^ "\n") ls))
    line_list

(* --- People --------------------------------------------------------- *)

let people_entries =
  Gen.map (dedup_by (fun e -> e.Bx_catalogue.People.person))
    Gen.(
      list_size (0 -- 5)
        (map
           (fun ((person, age), email) ->
             { Bx_catalogue.People.person; age; email })
           (pair
              (pair (oneofl first_names) (0 -- 99))
              (oneofl [ "a@x.org"; "b@y.org"; "c@z.org" ]))))

let directory =
  Gen.map (dedup_by fst)
    Gen.(list_size (0 -- 5) (pair (oneofl first_names) (0 -- 99)))

(* --- Rationals ------------------------------------------------------ *)

let rational =
  Gen.map
    (fun (n, d) -> Bx_models.Rational.make n d)
    Gen.(pair (int_range (-100) 100) (int_range 1 30))

(* --- COMPOSERS-BOOMERANG strings ------------------------------------ *)

let composers_source =
  Gen.map
    (fun cs ->
      String.concat ""
        (List.map
           (fun ((name, dates), nat) ->
             Printf.sprintf "%s, %s, %s\n" name dates nat)
           cs))
    Gen.(
      list_size (0 -- 5)
        (pair (pair (oneofl names) (oneofl dates_pool)) (oneofl nationalities)))

let composers_view =
  Gen.map
    (fun cs ->
      let lines =
        dedup_by Fun.id
          (List.map
             (fun (name, nat) -> Printf.sprintf "%s, %s\n" name nat)
             cs)
      in
      String.concat "" lines)
    Gen.(list_size (0 -- 5) (pair (oneofl names) (oneofl nationalities)))

(* --- Random regexes -------------------------------------------------- *)

let regex_alphabet = [ 'a'; 'b'; 'c' ]

let regex =
  let open Gen in
  let open Bx_regex in
  let leaf =
    oneof
      [
        map Regex.chr (oneofl regex_alphabet);
        map Regex.str (oneofl [ "ab"; "ba"; "c"; "abc" ]);
        return Regex.epsilon;
        map
          (fun (a, b) -> Regex.cset (Cset.range (min a b) (max a b)))
          (pair (oneofl regex_alphabet) (oneofl regex_alphabet));
      ]
  in
  let rec build n =
    if n <= 0 then leaf
    else
      let sub = build (n - 1) in
      frequency
        [
          (2, leaf);
          (3, map2 Regex.seq sub sub);
          (3, map2 Regex.alt sub sub);
          (1, map Regex.star sub);
          (1, map Regex.opt sub);
          (1, map Regex.plus sub);
        ]
  in
  build 4

let regex_input =
  Gen.(string_size ~gen:(oneofl regex_alphabet) (0 -- 12))

(* --- Combinators ---------------------------------------------------- *)

let consistent_pair bx gm gn =
  Gen.map
    (fun (m, n) -> (m, bx.Bx.Symmetric.fwd m n))
    (Gen.pair gm gn)

let mixed_pair bx gm gn =
  Gen.oneof [ Gen.pair gm gn; consistent_pair bx gm gn ]

(* --- COMPOSERS-EDIT ------------------------------------------------- *)

let composers_m_edit =
  Gen.oneof
    [
      Gen.map (fun c -> Bx_catalogue.Composers_edit.Add_composer c) composer_gen;
      Gen.map (fun c -> Bx_catalogue.Composers_edit.Remove_composer c) composer_gen;
    ]

let composers_m_edits = Gen.list_size Gen.(0 -- 3) composers_m_edit

let composers_n_edit =
  Gen.oneof
    [
      Gen.map
        (fun (i, p) -> Bx_catalogue.Composers_edit.Insert_entry (i, p))
        Gen.(pair (0 -- 6) (pair (oneofl names) (oneofl nationalities)));
      Gen.map (fun i -> Bx_catalogue.Composers_edit.Delete_entry i) Gen.(0 -- 6);
    ]

let composers_n_edits = Gen.list_size Gen.(0 -- 3) composers_n_edit

let composers_complement =
  Gen.map
    (fun (m, n0) -> (m, Bx_catalogue.Composers.bx.Bx.Symmetric.fwd m n0))
    (Gen.pair composers_m composers_n)

(* --- FORMATTER ------------------------------------------------------- *)

let kv_word = Gen.string_size ~gen:(Gen.char_range 'a' 'z') Gen.(1 -- 5)

let canonical_config =
  Gen.map
    (fun lines ->
      String.concat ""
        (List.map (fun (k, v) -> k ^ "=" ^ v ^ "\n") lines))
    Gen.(list_size (0 -- 5) (pair kv_word kv_word))

let sloppy_config =
  Gen.map
    (fun lines ->
      String.concat ""
        (List.map
           (fun (((k, v), left), right) ->
             k ^ String.make left ' ' ^ "=" ^ String.make right ' ' ^ v ^ "\n")
           lines))
    Gen.(list_size (0 -- 5) (pair (pair (pair kv_word kv_word) (0 -- 3)) (0 -- 3)))

(* --- SELECT-PROJECT-VIEW --------------------------------------------- *)

let employee_rows =
  Gen.map
    (fun rows ->
      dedup_by (fun r -> List.nth r 0) rows)
    Gen.(
      list_size (0 -- 6)
        (map
           (fun ((id, name), (dept, salary)) ->
             Bx_models.Relational.
               [ Int_v id; Text_v name; Text_v dept; Int_v salary ])
           (pair
              (pair (0 -- 9) (oneofl [ "ada"; "ben"; "cay"; "dan" ]))
              (pair (oneofl [ "eng"; "sales"; "hr" ]) (0 -- 99)))))

let directory_rows =
  Gen.map
    (fun rows -> dedup_by (fun r -> List.nth r 0) rows)
    Gen.(
      list_size (0 -- 5)
        (map
           (fun (id, name) ->
             Bx_models.Relational.[ Int_v id; Text_v name ])
           (pair (0 -- 9) (oneofl [ "ada"; "ben"; "cay"; "dan" ]))))

(* --- Random templates (for Sync and JSON round-trip properties) ------- *)

let words = [ "alpha"; "beta"; "gamma"; "delta"; "omega" ]

let sentence =
  Gen.map
    (fun ws -> String.concat " " ws ^ ".")
    (Gen.list_size Gen.(1 -- 6) (Gen.oneofl words))

let paragraphs =
  Gen.map (String.concat "\n\n") (Gen.list_size Gen.(1 -- 3) sentence)

let template =
  let open Gen in
  let title =
    map (fun (a, b) -> String.uppercase_ascii (a ^ "-" ^ b))
      (pair (oneofl words) (oneofl words))
  in
  let classes =
    oneofl
      Bx_repo.Template.
        [ [ Precise ]; [ Sketch ]; [ Industrial ];
          [ Precise; Benchmark ]; [ Industrial; Benchmark ] ]
  in
  let model =
    map2
      (fun name description ->
        Bx_repo.Template.model_desc ~name:(String.capitalize_ascii name)
          description)
      (oneofl words) sentence
  in
  let claim =
    map
      (fun (p, polarity) ->
        if polarity then Bx.Properties.Satisfies p else Bx.Properties.Violates p)
      (pair (oneofl Bx.Properties.all) bool)
  in
  let variant =
    map2 (fun name d -> Bx_repo.Template.variant ~name d) (oneofl words) sentence
  in
  let contributor =
    map
      (fun (name, aff) ->
        Bx_repo.Contributor.make
          ?affiliation:(if aff then Some "Somewhere" else None)
          (String.capitalize_ascii name))
      (pair (oneofl words) bool)
  in
  let reference =
    map
      (fun ((authors, title), year) ->
        Bx_repo.Reference.make
          ~authors:(List.map String.capitalize_ascii authors)
          ~title ~venue:"VENUE" ~year ())
      (pair (pair (list_size (1 -- 2) (oneofl words)) sentence) (1990 -- 2020))
  in
  map
    (fun ((((title, classes), overview), (models, consistency)),
          (((properties, variants), (discussion, references)),
           ((authors, fwd), bwd))) ->
      Bx_repo.Template.make ~title ~classes ~overview ~models ~consistency
        ~restoration:
          Bx_repo.Template.{ rest_forward = fwd; rest_backward = bwd }
        ~properties:
          (List.sort_uniq compare properties)
        ~variants ~discussion ~references ~authors ())
    (pair
       (pair (pair (pair title classes) paragraphs)
          (pair (list_size (1 -- 3) model) sentence))
       (pair
          (pair
             (pair (list_size (0 -- 3) claim) (list_size (0 -- 2) variant))
             (pair paragraphs (list_size (0 -- 2) reference)))
          (pair (pair (list_size (1 -- 2) contributor) sentence) sentence)))


(* --- BOOKSTORE-EDIT -------------------------------------------------- *)

let bookstore_view_edit =
  Gen.oneof
    [
      Gen.map
        (fun (i, (t, p)) -> Bx.Elens.Insert_at (i, (t, p)))
        Gen.(pair (0 -- 5) (pair (oneofl titles) (0 -- 99)));
      Gen.map (fun i -> Bx.Elens.Delete_at i) Gen.(0 -- 5);
      Gen.map
        (fun (i, (t, p)) -> Bx.Elens.Update_at (i, (t, p)))
        Gen.(pair (0 -- 5) (pair (oneofl titles) (0 -- 99)));
    ]

let bookstore_view_edits = Gen.list_size Gen.(0 -- 3) bookstore_view_edit

let bookstore_store_edit =
  (* In-domain tree edits: whole-book root operations and leaf relabels
     with the right field prefixes. *)
  let book_subtree =
    Gen.map
      (fun ((t, a), p) ->
        Bx_models.Tree.node "book"
          [
            Bx_models.Tree.leaf ("title=" ^ t);
            Bx_models.Tree.leaf ("author=" ^ a);
            Bx_models.Tree.leaf ("price=" ^ string_of_int p);
          ])
      Gen.(pair (pair (oneofl titles) (oneofl authors)) (0 -- 99))
  in
  Gen.oneof
    [
      Gen.map2
        (fun i sub -> Bx_models.Tree_edit.Insert_child ([], i, sub))
        Gen.(0 -- 5) book_subtree;
      Gen.map (fun i -> Bx_models.Tree_edit.Delete_child ([], i)) Gen.(0 -- 5);
      Gen.map
        (fun (i, t) -> Bx_models.Tree_edit.Relabel ([ i; 0 ], "title=" ^ t))
        Gen.(pair (0 -- 5) (oneofl titles));
      Gen.map
        (fun (i, a) -> Bx_models.Tree_edit.Relabel ([ i; 1 ], "author=" ^ a))
        Gen.(pair (0 -- 5) (oneofl authors));
      Gen.map
        (fun (i, p) ->
          Bx_models.Tree_edit.Relabel ([ i; 2 ], "price=" ^ string_of_int p))
        Gen.(pair (0 -- 5) (0 -- 99));
    ]

let bookstore_store_edits = Gen.list_size Gen.(0 -- 3) bookstore_store_edit
