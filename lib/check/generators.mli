(** Random-model generators for the catalogue examples.  Pools of names
    are deliberately small so that generated pairs of models collide,
    match partially, and exercise every branch of restoration. *)

open QCheck2

val composers_m : Bx_catalogue.Composers.m Gen.t
val composers_n : Bx_catalogue.Composers.n Gen.t

val uml_model : Bx_models.Uml.model Gen.t
val rdb_schema : Bx_models.Relational.schema Gen.t

val families : Bx_models.Genealogy.families Gen.t
val persons : Bx_models.Genealogy.persons Gen.t
(** Full names always split as "First Last" (the bx's documented domain). *)

val bookstore : string Bx_models.Tree.t Gen.t
val price_list : (string * int) list Gen.t

val document : string Gen.t
(** Valid LINES documents (newline-terminated). *)

val line_list : string list Gen.t

val people_entries : Bx_catalogue.People.entry list Gen.t
val directory : (string * int) list Gen.t

val rational : Bx_models.Rational.t Gen.t

val composers_source : string Gen.t
(** Well-typed sources of the COMPOSERS-BOOMERANG string lens. *)

val composers_view : string Gen.t
(** Well-typed views of the COMPOSERS-BOOMERANG string lens, with
    pairwise-distinct lines (the dictionary lens's documented domain). *)

val regex : Bx_regex.Regex.t QCheck2.Gen.t
(** Random structurally diverse regexes over the alphabet [{a,b,c}]
    (depth at most 4), for cross-checking the compiled DFA engine
    against the derivative interpreter. *)

val regex_input : string QCheck2.Gen.t
(** Random strings over the same alphabet (length at most 12). *)

val consistent_pair :
  ('m, 'n) Bx.Symmetric.t -> 'm Gen.t -> 'n Gen.t -> ('m * 'n) Gen.t
(** Pairs made consistent by forward restoration — the inputs on which
    hippocraticness and undoability are non-vacuous. *)

val mixed_pair :
  ('m, 'n) Bx.Symmetric.t -> 'm Gen.t -> 'n Gen.t -> ('m * 'n) Gen.t
(** Half arbitrary, half consistent. *)

val composers_m_edit : Bx_catalogue.Composers_edit.m_edit QCheck2.Gen.t
val composers_m_edits : Bx_catalogue.Composers_edit.m_edit list QCheck2.Gen.t
val composers_n_edit : Bx_catalogue.Composers_edit.n_edit QCheck2.Gen.t
val composers_n_edits : Bx_catalogue.Composers_edit.n_edit list QCheck2.Gen.t

val composers_complement : Bx_catalogue.Composers_edit.complement QCheck2.Gen.t
(** Consistent (m, n) pairs — the edit lens's complement invariant. *)

val canonical_config : string QCheck2.Gen.t
(** Canonical key=value documents for the FORMATTER entry. *)

val sloppy_config : string QCheck2.Gen.t
(** Freely spaced key = value documents (the quotiented source space). *)

val employee_rows : Bx_models.Relational.row list QCheck2.Gen.t
(** Well-typed employees rows with unique ids. *)

val directory_rows : Bx_models.Relational.row list QCheck2.Gen.t
(** Well-typed (id, name) view rows with unique ids. *)

val template : Bx_repo.Template.t QCheck2.Gen.t
(** Random, structurally valid-ish templates (version 0.1, no reviewers)
    for round-trip property tests of the Sync lens and the JSON codec. *)

val bookstore_view_edits :
  (string * int) Bx.Elens.list_edit QCheck2.Gen.t
(** Position-based row edits for the BOOKSTORE-EDIT lens. *)

val bookstore_store_edits :
  string Bx_models.Tree_edit.edit QCheck2.Gen.t
(** In-domain tree edits: whole-book root operations and correctly
    prefixed leaf relabels. *)
