(** A keep-alive HTTP/1.1 connection to the local server.

    One per client domain: requests on a connection are serial (as they
    are for a real keep-alive client), the socket is reused across
    requests, and a broken connection is re-dialled transparently on the
    next request (counted, so reports show connection churn).  Not
    thread-safe — each domain owns its own. *)

type t

val create : port:int -> t
(** No I/O happens until the first {!request}. *)

val request :
  t -> meth:string -> path:string -> body:string -> (int * string, string) result
(** Issue one request and read the full response: [Ok (status, body)],
    or [Error reason] when the transport failed (the connection is then
    closed and the next request re-dials).  A server that answers
    [Connection: close] also triggers a re-dial next time. *)

val reconnects : t -> int
(** Dials after the first — broken or server-closed connections. *)

val close : t -> unit
