(** A tiny deterministic PRNG (splitmix64) for the load generator.

    Everything the generator randomises — Poisson gaps, operation picks,
    corpus text — flows from one of these, so a (seed, parameters) pair
    names a reproducible run.  Unlike [Random], state is explicit: each
    client domain owns its own [t] and no locking is involved. *)

type t

val create : int64 -> t
(** Seed a fresh stream.  Distinct seeds give independent streams;
    splitmix64 has no bad seeds (even 0 is fine). *)

val of_int : int -> t

val next : t -> int64
(** The next 64 raw bits. *)

val float : t -> float
(** Uniform in [0, 1), 53 bits of precision. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val split : t -> t
(** A new stream seeded from this one — give each domain its own. *)
