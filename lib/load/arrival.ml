type pacing = Constant | Poisson

let pacing_name = function Constant -> "constant" | Poisson -> "poisson"

let pacing_of_string = function
  | "constant" -> Some Constant
  | "poisson" -> Some Poisson
  | _ -> None

let schedule pacing ~rate ~seed ~count =
  if rate <= 0. then invalid_arg "Arrival.schedule: rate must be positive";
  if count < 0 then invalid_arg "Arrival.schedule: negative count";
  let offsets = Array.make count 0. in
  (match pacing with
  | Constant ->
      let gap = 1. /. rate in
      for i = 0 to count - 1 do
        offsets.(i) <- float_of_int i *. gap
      done
  | Poisson ->
      let prng = Prng.create seed in
      let t = ref 0. in
      for i = 0 to count - 1 do
        offsets.(i) <- !t;
        (* 1 - U is in (0, 1], so the log is finite; -ln(U')/rate is an
           exponential gap with mean 1/rate. *)
        t := !t +. (-.log (1. -. Prng.float prng) /. rate)
      done);
  offsets
