(* splitmix64 (Steele, Lea, Flood 2014): the state walks a Weyl sequence
   and the output mixes it through two xor-multiply rounds.  Passes
   BigCrush, costs a handful of arithmetic ops, and — unlike [Random] —
   carries its state explicitly so domains never share. *)

type t = { mutable state : int64 }

let create seed = { state = seed }
let of_int seed = create (Int64.of_int seed)

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let float t =
  (* The top 53 bits scaled by 2^-53: uniform on [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1p-53

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* The low 62 bits as a non-negative OCaml int; modulo bias is
     negligible for the small bounds the generator uses. *)
  Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound

let split t = create (next t)
