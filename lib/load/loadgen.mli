(** The open-loop driver: schedules arrivals in advance, fans them over
    client domains, measures latency from the {e scheduled} instant, and
    reads the server's lock-contention counters around the measured
    window.

    Per domain: one keep-alive {!Conn}, one {!Prng}, one {!Hist}, and a
    private slice of the arrival schedule — domains share nothing and
    their histograms merge afterwards.  Because a keep-alive connection
    occupies one server worker for its lifetime, run the server with at
    least as many workers as client domains.

    Latency is [completion - scheduled arrival] (wrk2-style): when the
    server falls behind the offered rate, the backlog a closed-loop
    driver would silently absorb shows up here as queueing delay. *)

type spec = {
  port : int;
  profile : Workload.profile;
  pacing : Arrival.pacing;
  rate : float;  (** total offered requests/second across all domains *)
  domains : int;  (** client domains issuing requests *)
  warmup : float;  (** seconds of discarded load before measuring *)
  duration : float;  (** measured seconds *)
  seed : int;
  targets : string array;  (** entry URL paths writes and reads draw from *)
}

type lock_row = {
  lock : string;
  mode : string;
  acquisitions : int;
  contended : int;
}

type result = {
  res_profile : string;
  res_pacing : string;
  res_rate : float;
  res_domains : int;
  res_wall : float;  (** measured wall-clock seconds *)
  sent : int;
  ok : int;  (** 2xx *)
  shed : int;  (** 503 — load shedding, not failure *)
  failed : int;  (** other non-2xx statuses *)
  transport : int;  (** connection-level errors *)
  reconnects : int;
  throughput : float;  (** ok / res_wall *)
  latency : Hist.t;  (** microseconds, all domains merged *)
  locks : lock_row list;
      (** server counter deltas across the measured phase — which lock
          the run actually queued on *)
  domain_failures : string list;
      (** client domains that crashed, one message each; surviving
          domains' traffic still counts *)
}

val scrape_locks : port:int -> (lock_row list, string) Stdlib.result
(** GET /metrics and parse the [bxwiki_lock_*] series. *)

val run : spec -> (result, string) Stdlib.result
(** Execute warmup then measurement against a live server.  [Error] only
    when the run cannot start (no targets, unreachable server, every
    domain crashed); individual domain crashes are reported in
    [domain_failures]. *)

val to_json :
  results:result list ->
  scaling:result list ->
  warmup:float ->
  duration:float ->
  entries:int ->
  seed:int ->
  string
(** The BENCH_load.json document: run metadata (including
    [Domain.recommended_domain_count] and actual domain counts — bench
    honesty), per-profile results, and the worker-scaling curve. *)
