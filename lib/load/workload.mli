(** Traffic profiles: weighted mixes of the operations a real client
    population performs against the wiki, and the request each operation
    turns into.

    Write traffic is honest: an [Entry_write] fetches the page's wiki
    source and posts it back, which the server parses through the
    section 5.4 lens and publishes as a new version — so writes take the
    registry write lock, bump the generation and invalidate the response
    cache, exactly like a human edit. *)

type op =
  | Entry_html  (** GET /<page> — the rendered entry. *)
  | Entry_wiki  (** GET /<page>.wiki — the lens view. *)
  | Entry_json  (** GET /<page>.json — the export format. *)
  | Entry_write
      (** GET /<page>.wiki then POST /<page> — a full read-modify-write
          revision; latency covers both requests. *)
  | Index  (** GET / — the entry list plus catalogue search tables. *)
  | Search
      (** GET /search with indexed criteria (class, property, author,
          tag, state) — answered by posting-list intersection, so
          latency should not grow with the catalogue. *)
  | Manuscript  (** GET /manuscript — the collected-examples export. *)
  | Slens_get  (** POST /slens/composers/get. *)
  | Slens_put  (** POST /slens/composers/put (RS-framed). *)
  | Slens_batch
      (** POST /slens/composers/get_batch or put_batch — RS/US framed
          multi-document payloads fanned over the server's lens
          workers. *)
  | Patch
      (** POST /slens/composers/patch — a single-line edit to a
          long-lived lens-backed document, propagated incrementally by
          the server's delta engine.  Stateful: planned through
          {!patch_plan} against a per-domain {!session}, not {!plan}. *)
  | Digest
      (** GET /replication/digest — the per-shard integrity digests an
          anti-entropy follower polls; cheap, but touches every shard's
          read path. *)
  | Readyz
      (** GET /readyz — the readiness probe, which now also reflects
          corruption bursts found by the scrubber. *)

val op_name : op -> string

type profile = { profile_name : string; mix : (op * int) list }
(** Weights are relative integers; zero-weight ops never fire. *)

val read_heavy : profile
(** ~95% reads: entry pages in all three formats, index, lens gets,
    some batches, a trickle of writes and manuscript renders. *)

val write_heavy : profile
(** Half the traffic revises entries or puts lens views — the profile
    that exercises the write lock and cache invalidation. *)

val search_heavy : profile
(** Half the traffic queries [/search] with indexed criteria, the rest
    browses and occasionally writes — the profile that shows whether
    search latency stays flat as the catalogue grows. *)

val patch_heavy : profile
(** Half the traffic ships single-line edits to lens-backed documents
    through [/slens/composers/patch] — the profile that exercises the
    delta propagation path (edit-sized requests, journal records and
    replication traffic) against a background of reads. *)

val scrub_soak : profile
(** Read-heavy browsing plus a steady trickle of digest and readiness
    probes — the profile to run with the background scrubber enabled
    when measuring how much integrity checking costs foreground
    latency. *)

val profiles : profile list
val of_name : string -> profile option

val pick : profile -> Prng.t -> op
(** Draw one operation, weights respected, deterministic in the PRNG. *)

type request = { meth : string; path : string; body : string }

val plan : targets:string array -> Prng.t -> op -> request
(** The request an [op] issues against entry paths [targets] (as from
    {!Corpus.wiki_paths}).  [Entry_write] plans its opening GET; the
    driver posts the fetched body back to {!write_back}.  [Patch] is
    stateful and must go through {!patch_plan} instead
    ([Invalid_argument] here). *)

val write_back : request -> body:string -> request option
(** Given a planned [Entry_write] GET and the wiki text it returned, the
    follow-up POST; [None] for every other request. *)

(** {1 Patch sessions}

    One per client domain: a long-lived lens-backed document the domain
    repeatedly edits through [/slens/composers/patch], tracking the
    generation and its copy of the view client-side. *)

type session

val session : docid:string -> doc_lines:int -> session
(** A session for document [docid] of [doc_lines] composer records
    (created lazily by the first [Patch] op). *)

val patch_plan : session -> Prng.t -> request
(** The next [Patch] request: the document-creating POST when the
    session has no live document, otherwise a patch frame carrying a
    single-line edit computed against the session's view copy. *)

val patch_ack : session -> status:int -> body:string -> unit
(** Feed the response back.  Success advances the generation and the
    view copy; a 409 marks the document for recreation (our state went
    stale across a lost response); anything else leaves the session
    unchanged — the patch was not applied, so a retry against the same
    generation is correct. *)
