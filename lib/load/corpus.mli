(** A parameterised corpus of valid repository entries for load testing.

    [generate ~entries ~seed] produces [entries] templates, each passing
    {!Bx_repo.Template.validate}, with unique stable titles, spread over
    the composers / bookstore / uml2rdbms families.  The output is a
    pure function of [(entries, seed)], so a load generator given the
    same pair as the server can reconstruct every wiki path without
    asking — and [bxwiki gen] can print the corpus for inspection. *)

val generate : entries:int -> seed:int -> Bx_repo.Template.t list
(** Deterministic; every template is provisional (version 0.1, no
    reviewers) so {!Bx_repo.Registry.submit} accepts it. *)

val wiki_paths : entries:int -> seed:int -> string array
(** The server URL path ("/examples:composers-load-0007"-style) of each
    generated entry, in order. *)

val seed_registry :
  ?shards:int -> entries:int -> seed:int -> unit -> Bx_repo.Registry.t
(** The full catalogue ({!Bx_catalogue.Catalogue.seed}) plus the
    generated corpus, each entry submitted as its first author — what
    [bxwiki --gen-entries N --gen-seed S] boots from.  Raises
    [Failure] if a generated entry is rejected (a corpus bug). *)
