type op =
  | Entry_html
  | Entry_wiki
  | Entry_json
  | Entry_write
  | Index
  | Search
  | Manuscript
  | Slens_get
  | Slens_put
  | Slens_batch
  | Patch
  | Digest
  | Readyz

let op_name = function
  | Entry_html -> "entry_html"
  | Entry_wiki -> "entry_wiki"
  | Entry_json -> "entry_json"
  | Entry_write -> "entry_write"
  | Index -> "index"
  | Search -> "search"
  | Manuscript -> "manuscript"
  | Slens_get -> "slens_get"
  | Slens_put -> "slens_put"
  | Slens_batch -> "slens_batch"
  | Patch -> "patch"
  | Digest -> "digest"
  | Readyz -> "readyz"

type profile = { profile_name : string; mix : (op * int) list }

let read_heavy =
  {
    profile_name = "read-heavy";
    mix =
      [
        (Entry_html, 40); (Entry_wiki, 15); (Entry_json, 10); (Index, 10);
        (Slens_get, 12); (Slens_batch, 5); (Manuscript, 1); (Entry_write, 4);
        (Slens_put, 3);
      ];
  }

let write_heavy =
  {
    profile_name = "write-heavy";
    mix =
      [
        (Entry_write, 35); (Slens_put, 10); (Slens_batch, 5);
        (Entry_html, 25); (Entry_wiki, 10); (Entry_json, 5); (Index, 10);
      ];
  }

let search_heavy =
  {
    profile_name = "search-heavy";
    mix =
      [
        (Search, 50); (Entry_html, 20); (Entry_wiki, 5); (Entry_json, 5);
        (Index, 10); (Entry_write, 10);
      ];
  }

let patch_heavy =
  {
    profile_name = "patch-heavy";
    mix =
      [
        (Patch, 50); (Entry_html, 20); (Slens_get, 10); (Entry_wiki, 5);
        (Index, 5); (Entry_write, 5); (Slens_put, 5);
      ];
  }

let scrub_soak =
  {
    profile_name = "scrub-soak";
    mix =
      [
        (Entry_html, 35); (Entry_wiki, 15); (Entry_json, 10); (Index, 8);
        (Slens_get, 10); (Entry_write, 8); (Slens_put, 4); (Search, 4);
        (Digest, 4); (Readyz, 2);
      ];
  }

let profiles =
  [ read_heavy; write_heavy; search_heavy; patch_heavy; scrub_soak ]

let of_name name =
  List.find_opt (fun p -> p.profile_name = name) profiles

let pick profile prng =
  let weight = List.fold_left (fun acc (_, w) -> acc + w) 0 profile.mix in
  let roll = Prng.int prng weight in
  let rec go acc = function
    | [] -> assert false (* weights sum to [weight] > roll *)
    | (op, w) :: rest -> if roll < acc + w then op else go (acc + w) rest
  in
  go 0 profile.mix

type request = { meth : string; path : string; body : string }

let rs = "\x1e"
let us = "\x1f"

(* Synthetic composer documents sized 1..8 records: small enough that a
   request is dominated by dispatch, not lens arithmetic, large enough
   to exercise splitting and alignment. *)
let doc prng = Bx_catalogue.Composers_string.synthetic_source (1 + Prng.int prng 8)

let entry targets prng = targets.(Prng.int prng (Array.length targets))

(* Queries the registry's secondary indexes answer; values are already
   percent-encoded as they would arrive on the wire.  Drawn from the
   corpus generator's own pools, so most queries have hits. *)
let search_paths =
  [|
    "/search?author=Ada%20Driver";
    "/search?author=basil%20meter";
    "/search?author=Chidi%20Gauge&class=SKETCH";
    "/search?class=PRECISE";
    "/search?class=sketch&state=provisional";
    "/search?class=BENCHMARK&property=correct";
    "/search?property=correct";
    "/search?property=not%20least-change";
    "/search?property=well-behaved";
    "/search?state=provisional";
    "/search?tag=v0-keyed";
    "/search?tag=v1-journaled&state=provisional";
  |]

let plan ~targets prng op =
  if Array.length targets = 0 then invalid_arg "Workload.plan: no targets";
  match op with
  | Patch -> invalid_arg "Workload.plan: Patch is stateful, use patch_plan"
  | Entry_html -> { meth = "GET"; path = entry targets prng; body = "" }
  | Entry_wiki ->
      { meth = "GET"; path = entry targets prng ^ ".wiki"; body = "" }
  | Entry_json ->
      { meth = "GET"; path = entry targets prng ^ ".json"; body = "" }
  | Entry_write ->
      (* Phase one of the read-modify-write; see [write_back]. *)
      { meth = "GET"; path = entry targets prng ^ ".wiki"; body = "" }
  | Index -> { meth = "GET"; path = "/"; body = "" }
  | Search ->
      {
        meth = "GET";
        path = search_paths.(Prng.int prng (Array.length search_paths));
        body = "";
      }
  | Manuscript -> { meth = "GET"; path = "/manuscript"; body = "" }
  | Digest -> { meth = "GET"; path = "/replication/digest"; body = "" }
  | Readyz -> { meth = "GET"; path = "/readyz"; body = "" }
  | Slens_get ->
      { meth = "POST"; path = "/slens/composers/get"; body = doc prng }
  | Slens_put ->
      let k = 1 + Prng.int prng 8 in
      {
        meth = "POST";
        path = "/slens/composers/put";
        body =
          Bx_catalogue.Composers_string.synthetic_view k ^ rs
          ^ Bx_catalogue.Composers_string.synthetic_source k;
      }
  | Slens_batch ->
      if Prng.int prng 2 = 0 then
        {
          meth = "POST";
          path = "/slens/composers/get_batch";
          body =
            String.concat rs (List.init (2 + Prng.int prng 6) (fun _ -> doc prng));
        }
      else
        {
          meth = "POST";
          path = "/slens/composers/put_batch";
          body =
            String.concat rs
              (List.init (2 + Prng.int prng 6) (fun _ ->
                   let k = 1 + Prng.int prng 8 in
                   Bx_catalogue.Composers_string.synthetic_view k ^ us
                   ^ Bx_catalogue.Composers_string.synthetic_source k));
        }

let write_back req ~body =
  match (req.meth, Filename.chop_suffix_opt ~suffix:".wiki" req.path) with
  | "GET", Some page -> Some { meth = "POST"; path = page; body }
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Patch sessions.  A [Patch] op edits a long-lived server-side
   document through POST /slens/composers/patch, shipping a single-line
   edit instead of the document — the traffic shape the delta engine
   exists for.  That needs state a stateless [plan] cannot carry: the
   document's generation (the patch frame names it) and the client's
   copy of the view (edits are computed against it).  Each client
   domain owns one session — one document, one writer — so generations
   only go stale across a lost response, which the ack path heals by
   recreating the document. *)

type session = {
  docid : string;
  doc_lines : int;
  mutable pgen : int;  (* 0 = document not (or no longer) created *)
  mutable pview : string;  (* client copy of the view while pgen > 0 *)
  mutable pending : pending;
}

and pending = P_none | P_create | P_patch of string

let session ~docid ~doc_lines =
  {
    docid;
    doc_lines = max 1 doc_lines;
    pgen = 0;
    pview = "";
    pending = P_none;
  }

(* A fresh nationality for a random line of the view: keeps the document
   well-typed (letters only) while guaranteeing the line actually
   changes. *)
let edit_view prng view =
  let lines = String.split_on_char '\n' view in
  (* A well-formed view ends in '\n', so the last split element is "". *)
  let n = List.length lines - 1 in
  if n <= 0 then None
  else begin
    let target = Prng.int prng n in
    let word =
      String.init 6 (fun _ -> Char.chr (Char.code 'a' + Prng.int prng 26))
    in
    let changed = ref false in
    let lines' =
      List.mapi
        (fun i line ->
          if i <> target || line = "" then line
          else
            match String.index_opt line ',' with
            | None -> line
            | Some c ->
                let line' = String.sub line 0 c ^ ", " ^ word in
                if line' <> line then changed := true;
                line')
        lines
    in
    if !changed then Some (String.concat "\n" lines') else None
  end

let patch_plan session prng =
  if session.pgen = 0 then begin
    session.pending <- P_create;
    {
      meth = "POST";
      path = "/slens/composers/doc/" ^ session.docid;
      body = Bx_catalogue.Composers_string.synthetic_source session.doc_lines;
    }
  end
  else
    match edit_view prng session.pview with
    | Some view' ->
        let edit = Bx_strlens.Sdiff.diff session.pview view' in
        session.pending <- P_patch view';
        {
          meth = "POST";
          path = "/slens/composers/patch";
          body =
            session.docid ^ rs ^ string_of_int session.pgen ^ rs
            ^ Bx_strlens.Sdiff.encode edit;
        }
    | None ->
        (* Degenerate view (should not happen for doc_lines >= 1):
           recreate rather than wedge. *)
        session.pgen <- 0;
        session.pending <- P_create;
        {
          meth = "POST";
          path = "/slens/composers/doc/" ^ session.docid;
          body =
            Bx_catalogue.Composers_string.synthetic_source session.doc_lines;
        }

let patch_ack session ~status ~body =
  let pending = session.pending in
  session.pending <- P_none;
  if status >= 200 && status < 300 then begin
    (* Both responses open with the new generation. *)
    let gen_prefix =
      let stop = ref 0 in
      let n = String.length body in
      while !stop < n && body.[!stop] >= '0' && body.[!stop] <= '9' do
        incr stop
      done;
      String.sub body 0 !stop
    in
    match (int_of_string_opt gen_prefix, pending) with
    | Some gen, P_create ->
        session.pgen <- gen;
        (* The server's view of the document we just created — computed
           through the lens, NOT [synthetic_view], which is a shuffled
           variant for realignment benchmarks.  The client copy must
           match the server's or every edit would be computed against
           the wrong base. *)
        session.pview <-
          (let module S = Bx_strlens.Slens in
           Bx_catalogue.Composers_string.lens.S.get
             (Bx_catalogue.Composers_string.synthetic_source
                session.doc_lines))
    | Some gen, P_patch view' ->
        session.pgen <- gen;
        session.pview <- view'
    | _ -> session.pgen <- 0
  end
  else if status = 409 then
    (* Our generation went stale (a lost response applied after all):
       recreate the document on the next Patch op. *)
    session.pgen <- 0
(* Any other refusal (503 shed, transport error reported as status 0):
   the server did not apply the patch, so the session state still
   matches and the next patch simply retries against the same
   generation — and heals via the 409 path if we guessed wrong. *)
