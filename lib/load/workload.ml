type op =
  | Entry_html
  | Entry_wiki
  | Entry_json
  | Entry_write
  | Index
  | Search
  | Manuscript
  | Slens_get
  | Slens_put
  | Slens_batch

let op_name = function
  | Entry_html -> "entry_html"
  | Entry_wiki -> "entry_wiki"
  | Entry_json -> "entry_json"
  | Entry_write -> "entry_write"
  | Index -> "index"
  | Search -> "search"
  | Manuscript -> "manuscript"
  | Slens_get -> "slens_get"
  | Slens_put -> "slens_put"
  | Slens_batch -> "slens_batch"

type profile = { profile_name : string; mix : (op * int) list }

let read_heavy =
  {
    profile_name = "read-heavy";
    mix =
      [
        (Entry_html, 40); (Entry_wiki, 15); (Entry_json, 10); (Index, 10);
        (Slens_get, 12); (Slens_batch, 5); (Manuscript, 1); (Entry_write, 4);
        (Slens_put, 3);
      ];
  }

let write_heavy =
  {
    profile_name = "write-heavy";
    mix =
      [
        (Entry_write, 35); (Slens_put, 10); (Slens_batch, 5);
        (Entry_html, 25); (Entry_wiki, 10); (Entry_json, 5); (Index, 10);
      ];
  }

let search_heavy =
  {
    profile_name = "search-heavy";
    mix =
      [
        (Search, 50); (Entry_html, 20); (Entry_wiki, 5); (Entry_json, 5);
        (Index, 10); (Entry_write, 10);
      ];
  }

let profiles = [ read_heavy; write_heavy; search_heavy ]

let of_name name =
  List.find_opt (fun p -> p.profile_name = name) profiles

let pick profile prng =
  let weight = List.fold_left (fun acc (_, w) -> acc + w) 0 profile.mix in
  let roll = Prng.int prng weight in
  let rec go acc = function
    | [] -> assert false (* weights sum to [weight] > roll *)
    | (op, w) :: rest -> if roll < acc + w then op else go (acc + w) rest
  in
  go 0 profile.mix

type request = { meth : string; path : string; body : string }

let rs = "\x1e"
let us = "\x1f"

(* Synthetic composer documents sized 1..8 records: small enough that a
   request is dominated by dispatch, not lens arithmetic, large enough
   to exercise splitting and alignment. *)
let doc prng = Bx_catalogue.Composers_string.synthetic_source (1 + Prng.int prng 8)

let entry targets prng = targets.(Prng.int prng (Array.length targets))

(* Queries the registry's secondary indexes answer; values are already
   percent-encoded as they would arrive on the wire.  Drawn from the
   corpus generator's own pools, so most queries have hits. *)
let search_paths =
  [|
    "/search?author=Ada%20Driver";
    "/search?author=basil%20meter";
    "/search?author=Chidi%20Gauge&class=SKETCH";
    "/search?class=PRECISE";
    "/search?class=sketch&state=provisional";
    "/search?class=BENCHMARK&property=correct";
    "/search?property=correct";
    "/search?property=not%20least-change";
    "/search?property=well-behaved";
    "/search?state=provisional";
    "/search?tag=v0-keyed";
    "/search?tag=v1-journaled&state=provisional";
  |]

let plan ~targets prng op =
  if Array.length targets = 0 then invalid_arg "Workload.plan: no targets";
  match op with
  | Entry_html -> { meth = "GET"; path = entry targets prng; body = "" }
  | Entry_wiki ->
      { meth = "GET"; path = entry targets prng ^ ".wiki"; body = "" }
  | Entry_json ->
      { meth = "GET"; path = entry targets prng ^ ".json"; body = "" }
  | Entry_write ->
      (* Phase one of the read-modify-write; see [write_back]. *)
      { meth = "GET"; path = entry targets prng ^ ".wiki"; body = "" }
  | Index -> { meth = "GET"; path = "/"; body = "" }
  | Search ->
      {
        meth = "GET";
        path = search_paths.(Prng.int prng (Array.length search_paths));
        body = "";
      }
  | Manuscript -> { meth = "GET"; path = "/manuscript"; body = "" }
  | Slens_get ->
      { meth = "POST"; path = "/slens/composers/get"; body = doc prng }
  | Slens_put ->
      let k = 1 + Prng.int prng 8 in
      {
        meth = "POST";
        path = "/slens/composers/put";
        body =
          Bx_catalogue.Composers_string.synthetic_view k ^ rs
          ^ Bx_catalogue.Composers_string.synthetic_source k;
      }
  | Slens_batch ->
      if Prng.int prng 2 = 0 then
        {
          meth = "POST";
          path = "/slens/composers/get_batch";
          body =
            String.concat rs (List.init (2 + Prng.int prng 6) (fun _ -> doc prng));
        }
      else
        {
          meth = "POST";
          path = "/slens/composers/put_batch";
          body =
            String.concat rs
              (List.init (2 + Prng.int prng 6) (fun _ ->
                   let k = 1 + Prng.int prng 8 in
                   Bx_catalogue.Composers_string.synthetic_view k ^ us
                   ^ Bx_catalogue.Composers_string.synthetic_source k));
        }

let write_back req ~body =
  match (req.meth, Filename.chop_suffix_opt ~suffix:".wiki" req.path) with
  | "GET", Some page -> Some { meth = "POST"; path = page; body }
  | _ -> None
