type state = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable pos : int; (* unread window into buf *)
  mutable len : int;
}

type t = {
  port : int;
  mutable state : state option;
  mutable dials : int;
}

let create ~port = { port; state = None; dials = 0 }

let dial t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.TCP_NODELAY true;
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 10.0;
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, t.port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  t.dials <- t.dials + 1;
  let s = { fd; buf = Bytes.create 65536; pos = 0; len = 0 } in
  t.state <- Some s;
  s

let teardown t =
  (match t.state with
  | Some s -> ( try Unix.close s.fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.state <- None

let close = teardown
let reconnects t = max 0 (t.dials - 1)

let refill s =
  let n = Unix.read s.fd s.buf 0 (Bytes.length s.buf) in
  if n = 0 then raise End_of_file;
  s.pos <- 0;
  s.len <- n

let read_byte s =
  if s.pos >= s.len then refill s;
  let c = Bytes.get s.buf s.pos in
  s.pos <- s.pos + 1;
  c

(* One header line, CRLF (or bare LF) stripped. *)
let read_line s =
  let b = Buffer.create 80 in
  let rec go () =
    match read_byte s with
    | '\n' -> ()
    | '\r' -> ( match read_byte s with '\n' -> () | c -> Buffer.add_char b c; go ())
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let read_exact s n =
  let out = Bytes.create n in
  let filled = ref 0 in
  while !filled < n do
    if s.pos >= s.len then refill s;
    let take = min (n - !filled) (s.len - s.pos) in
    Bytes.blit s.buf s.pos out !filled take;
    s.pos <- s.pos + take;
    filled := !filled + take
  done;
  Bytes.unsafe_to_string out

let write_all fd str =
  let rec go off =
    if off < String.length str then
      go (off + Unix.write_substring fd str off (String.length str - off))
  in
  go 0

let attempt t ~meth ~path ~body =
  let s = match t.state with Some s -> s | None -> dial t in
  write_all s.fd
    (Printf.sprintf
       "%s %s HTTP/1.1\r\nHost: localhost\r\nContent-Length: %d\r\n\r\n%s"
       meth path (String.length body) body);
  let status =
    match String.split_on_char ' ' (read_line s) with
    | _ :: code :: _ -> (
        match int_of_string_opt code with
        | Some c -> c
        | None -> failwith "malformed status line")
    | _ -> failwith "malformed status line"
  in
  let content_length = ref None in
  let server_closes = ref false in
  let rec headers () =
    let line = read_line s in
    if line <> "" then begin
      (match String.index_opt line ':' with
      | Some i ->
          let name = String.lowercase_ascii (String.sub line 0 i) in
          let value =
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          in
          if name = "content-length" then
            content_length := int_of_string_opt value
          else if name = "connection" && String.lowercase_ascii value = "close"
          then server_closes := true
      | None -> ());
      headers ()
    end
  in
  headers ();
  let resp_body =
    match !content_length with
    | Some n -> read_exact s n
    | None -> failwith "response without Content-Length on a keep-alive link"
  in
  if !server_closes then teardown t;
  (status, resp_body)

let request t ~meth ~path ~body =
  match attempt t ~meth ~path ~body with
  | result -> Ok result
  | exception
      (( Unix.Unix_error _ | End_of_file | Failure _ | Sys_error _ ) as e) ->
      teardown t;
      Error
        (match e with
        | Unix.Unix_error (err, _, _) -> Unix.error_message err
        | Failure m -> m
        | Sys_error m -> m
        | _ -> "connection closed")
