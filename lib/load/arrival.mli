(** Open-loop arrival schedules.

    The generator decides {e in advance} when each request ought to
    start, and latency is measured from that scheduled instant — not
    from when the client got around to sending.  A closed-loop driver
    (issue, wait, issue) silently stops offering load the moment the
    server slows down, hiding exactly the queueing delay users feel;
    scheduling arrivals up front makes that coordinated omission
    impossible to commit. *)

type pacing =
  | Constant  (** Evenly spaced: arrival [i] at [i / rate]. *)
  | Poisson
      (** Exponentially distributed gaps with mean [1 / rate] — memoryless
          arrivals, the standard open-system model, so bursts happen. *)

val pacing_name : pacing -> string
val pacing_of_string : string -> pacing option

val schedule : pacing -> rate:float -> seed:int64 -> count:int -> float array
(** [count] arrival offsets in seconds from the start of the run,
    non-decreasing, deterministic in [seed] (which only Poisson
    consults).  [rate] is arrivals per second and must be positive. *)
