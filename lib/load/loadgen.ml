type spec = {
  port : int;
  profile : Workload.profile;
  pacing : Arrival.pacing;
  rate : float;
  domains : int;
  warmup : float;
  duration : float;
  seed : int;
  targets : string array;
}

type lock_row = {
  lock : string;
  mode : string;
  acquisitions : int;
  contended : int;
}

type result = {
  res_profile : string;
  res_pacing : string;
  res_rate : float;
  res_domains : int;
  res_wall : float;
  sent : int;
  ok : int;
  shed : int;
  failed : int;
  transport : int;
  reconnects : int;
  throughput : float;
  latency : Hist.t;
  locks : lock_row list;
  domain_failures : string list;
}

(* ------------------------------------------------------------------ *)
(* Scraping the server's lock counters *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub s i m = sub then Some i
    else go (i + 1)
  in
  go 0

(* One bxwiki_lock_* exposition line:
     bxwiki_lock_acquisitions_total{lock="registry",mode="read"} 42 *)
let parse_lock_line line =
  let label name =
    let marker = name ^ "=\"" in
    match find_sub line marker with
    | None -> None
    | Some i ->
        let start = i + String.length marker in
        String.index_from_opt line start '"'
        |> Option.map (fun stop -> String.sub line start (stop - start))
  in
  let value =
    match String.rindex_opt line ' ' with
    | Some i ->
        int_of_string_opt
          (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
    | None -> None
  in
  match (label "lock", label "mode", value) with
  | Some lock, Some mode, Some v -> Some (lock, mode, v)
  | _ -> None

let scrape_locks ~port =
  let conn = Conn.create ~port in
  let result =
    match Conn.request conn ~meth:"GET" ~path:"/metrics" ~body:"" with
    | Error e -> Error ("scraping /metrics: " ^ e)
    | Ok (status, _) when status <> 200 ->
        Error (Printf.sprintf "scraping /metrics: HTTP %d" status)
    | Ok (_, body) ->
        let acq = Hashtbl.create 8 and cont = Hashtbl.create 8 in
        String.split_on_char '\n' body
        |> List.iter (fun line ->
               let has prefix =
                 String.length line >= String.length prefix
                 && String.sub line 0 (String.length prefix) = prefix
               in
               match parse_lock_line line with
               | Some (lock, mode, v) ->
                   if has "bxwiki_lock_acquisitions_total" then
                     Hashtbl.replace acq (lock, mode) v
                   else if has "bxwiki_lock_contended_total" then
                     Hashtbl.replace cont (lock, mode) v
               | None -> ());
        Ok
          (Hashtbl.fold
             (fun (lock, mode) acquisitions rows ->
               let contended =
                 Option.value ~default:0 (Hashtbl.find_opt cont (lock, mode))
               in
               { lock; mode; acquisitions; contended } :: rows)
             acq []
          |> List.sort compare)
  in
  Conn.close conn;
  result

let lock_delta ~before ~after =
  List.map
    (fun a ->
      match
        List.find_opt (fun b -> b.lock = a.lock && b.mode = a.mode) before
      with
      | Some b ->
          {
            a with
            acquisitions = a.acquisitions - b.acquisitions;
            contended = a.contended - b.contended;
          }
      | None -> a)
    after

(* ------------------------------------------------------------------ *)
(* One client domain *)

type domain_tally = {
  hist : Hist.t;
  mutable d_sent : int;
  mutable d_ok : int;
  mutable d_shed : int;
  mutable d_failed : int;
  mutable d_transport : int;
  mutable d_reconnects : int;
}

(* Drive one domain's slice of the schedule.  [start] is the shared
   absolute epoch: arrival [i] is due at [start +. offsets.(i)], and a
   request's latency is measured from that instant even if this domain
   was still busy with the previous request when it came due — that
   backlog IS the number being measured. *)
let run_domain ~spec ~start ~offsets ~dseed () =
  let prng = Prng.of_int dseed in
  let conn = Conn.create ~port:spec.port in
  (* One patch session per domain: one document, one writer, so patch
     generations only go stale across a lost response. *)
  let session =
    Workload.session
      ~docid:(Printf.sprintf "load-%d" (dseed land 0xFFFFFF))
      ~doc_lines:200
  in
  let tally =
    {
      hist = Hist.create ();
      d_sent = 0;
      d_ok = 0;
      d_shed = 0;
      d_failed = 0;
      d_transport = 0;
      d_reconnects = 0;
    }
  in
  let record_status tally status =
    if status >= 200 && status < 300 then tally.d_ok <- tally.d_ok + 1
    else if status = 503 then tally.d_shed <- tally.d_shed + 1
    else tally.d_failed <- tally.d_failed + 1
  in
  Array.iter
    (fun off ->
      let scheduled = start +. off in
      let now = Unix.gettimeofday () in
      if scheduled > now then Unix.sleepf (scheduled -. now);
      let op = Workload.pick spec.profile prng in
      let req =
        match op with
        | Workload.Patch -> Workload.patch_plan session prng
        | _ -> Workload.plan ~targets:spec.targets prng op
      in
      let outcome =
        match Conn.request conn ~meth:req.Workload.meth ~path:req.Workload.path
                ~body:req.Workload.body
        with
        | Error e ->
            if op = Workload.Patch then
              Workload.patch_ack session ~status:0 ~body:"";
            Error e
        | Ok (status, body) when op = Workload.Patch ->
            Workload.patch_ack session ~status ~body;
            Ok status
        | Ok (status, body) when status >= 200 && status < 300 -> (
            (* A write's opening GET succeeded: post the text back. *)
            match Workload.write_back req ~body with
            | None -> Ok status
            | Some post -> (
                match
                  Conn.request conn ~meth:post.Workload.meth
                    ~path:post.Workload.path ~body:post.Workload.body
                with
                | Ok (status, _) -> Ok status
                | Error e -> Error e))
        | Ok (status, _) -> Ok status
      in
      if off >= spec.warmup then begin
        tally.d_sent <- tally.d_sent + 1;
        (match outcome with
        | Ok status -> record_status tally status
        | Error _ -> tally.d_transport <- tally.d_transport + 1);
        let latency_us =
          int_of_float ((Unix.gettimeofday () -. scheduled) *. 1e6)
        in
        Hist.record tally.hist latency_us
      end)
    offsets;
  tally.d_reconnects <- Conn.reconnects conn;
  Conn.close conn;
  tally

(* ------------------------------------------------------------------ *)
(* The run: schedule, fan out, merge, diff the server's lock counters *)

let run spec =
  if Array.length spec.targets = 0 then Error "no target entries"
  else if spec.domains < 1 then Error "need at least one client domain"
  else if spec.rate <= 0. then Error "rate must be positive"
  else
    match scrape_locks ~port:spec.port with
    | Error e -> Error ("server not reachable: " ^ e)
    | Ok _ ->
        let root = Prng.of_int spec.seed in
        let per_rate = spec.rate /. float_of_int spec.domains in
        let horizon = spec.warmup +. spec.duration in
        let slices =
          List.init spec.domains (fun d ->
              let dseed = Int64.to_int (Prng.next root) land max_int in
              let count =
                int_of_float (ceil (per_rate *. horizon)) |> max 1
              in
              let offsets =
                Arrival.schedule spec.pacing ~rate:per_rate
                  ~seed:(Int64.of_int (dseed + d))
                  ~count
              in
              (dseed, offsets))
        in
        let start = Unix.gettimeofday () +. 0.05 in
        (* Counters scraped at the warmup boundary and again after the
           domains drain: the delta brackets (approximately) the
           measured phase.  The scrape itself is two /metrics requests
           riding alongside the load. *)
        let before = ref (Error "warmup scrape never ran") in
        let scraper =
          Domain.spawn (fun () ->
              let boundary = start +. spec.warmup in
              let now = Unix.gettimeofday () in
              if boundary > now then Unix.sleepf (boundary -. now);
              before := scrape_locks ~port:spec.port)
        in
        (* A crashed client domain becomes an Error row, not an aborted
           run — [Slens.parallel_map_results] keeps the other domains'
           work. *)
        let outcomes =
          Bx_strlens.Slens.parallel_map_results ~workers:spec.domains
            (fun (dseed, offsets) -> run_domain ~spec ~start ~offsets ~dseed ())
            slices
        in
        Domain.join scraper;
        let after = scrape_locks ~port:spec.port in
        let wall = Unix.gettimeofday () -. (start +. spec.warmup) in
        let tallies = List.filter_map Result.to_option outcomes in
        let domain_failures =
          List.filter_map
            (function Ok _ -> None | Error e -> Some e)
            outcomes
        in
        if tallies = [] then
          Error
            ("every client domain crashed: "
            ^ String.concat "; " domain_failures)
        else begin
          let latency =
            List.fold_left
              (fun acc t -> Hist.merge acc t.hist)
              (Hist.create ()) tallies
          in
          let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
          let ok = sum (fun t -> t.d_ok) in
          let locks =
            match (!before, after) with
            | Ok b, Ok a -> lock_delta ~before:b ~after:a
            | _ -> []
          in
          Ok
            {
              res_profile = spec.profile.Workload.profile_name;
              res_pacing = Arrival.pacing_name spec.pacing;
              res_rate = spec.rate;
              res_domains = spec.domains;
              res_wall = wall;
              sent = sum (fun t -> t.d_sent);
              ok;
              shed = sum (fun t -> t.d_shed);
              failed = sum (fun t -> t.d_failed);
              transport = sum (fun t -> t.d_transport);
              reconnects = sum (fun t -> t.d_reconnects);
              throughput = (if wall > 0. then float_of_int ok /. wall else 0.);
              latency;
              locks;
              domain_failures;
            }
        end

(* ------------------------------------------------------------------ *)
(* BENCH_load.json *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let result_json buf indent r =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let pad = String.make indent ' ' in
  let q p = Hist.quantile r.latency p in
  add "%s{ \"profile\": \"%s\", \"pacing\": \"%s\", \"domains\": %d,\n" pad
    (json_escape r.res_profile) (json_escape r.res_pacing) r.res_domains;
  add "%s  \"offered_rate_rps\": %.1f, \"measured_s\": %.2f,\n" pad r.res_rate
    r.res_wall;
  add "%s  \"sent\": %d, \"ok\": %d, \"shed_503\": %d, \"errors\": %d,\n" pad
    r.sent r.ok r.shed r.failed;
  add "%s  \"transport_errors\": %d, \"reconnects\": %d,\n" pad r.transport
    r.reconnects;
  add "%s  \"throughput_rps\": %.1f,\n" pad r.throughput;
  add
    "%s  \"latency_us\": { \"p50\": %d, \"p90\": %d, \"p99\": %d, \"p999\": \
     %d, \"max\": %d, \"mean\": %.1f },\n"
    pad (q 0.5) (q 0.9) (q 0.99) (q 0.999)
    (Hist.max_value r.latency)
    (Hist.mean r.latency);
  add "%s  \"domain_failures\": [%s],\n" pad
    (String.concat ", "
       (List.map (fun f -> "\"" ^ json_escape f ^ "\"") r.domain_failures));
  add "%s  \"locks\": [" pad;
  List.iteri
    (fun i l ->
      add "%s{ \"lock\": \"%s\", \"mode\": \"%s\", \"acquisitions\": %d, \
           \"contended\": %d }"
        (if i = 0 then "" else ", ")
        (json_escape l.lock) (json_escape l.mode) l.acquisitions l.contended)
    r.locks;
  add "] }"

let to_json ~results ~scaling ~warmup ~duration ~entries ~seed =
  let buf = Buffer.create 8192 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"suite\": \"bxwiki loadgen\",\n";
  add "  \"open_loop\": true,\n";
  add "  \"latency_reference\": \"scheduled arrival (coordinated omission \
       corrected)\",\n";
  (* Bench honesty: what the host actually offers, next to what the run
     actually used. *)
  add "  \"cores_available\": %d,\n" (Domain.recommended_domain_count ());
  add "  \"warmup_s\": %.1f,\n" warmup;
  add "  \"duration_s\": %.1f,\n" duration;
  add "  \"corpus_entries\": %d,\n" entries;
  add "  \"corpus_seed\": %d,\n" seed;
  add "  \"profiles\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i r ->
      result_json buf 4 r;
      add "%s\n" (if i = last then "" else ","))
    results;
  add "  ],\n";
  add "  \"scaling\": [\n";
  let last = List.length scaling - 1 in
  List.iteri
    (fun i r ->
      result_json buf 4 r;
      add "%s\n" (if i = last then "" else ","))
    scaling;
  add "  ]\n";
  add "}\n";
  Buffer.contents buf
