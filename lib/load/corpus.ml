open Bx_repo

(* Each family fixes the model pair and consistency story; the generator
   varies class, emphasis, prose length and authorship per entry.  The
   text is assembled from fixed word pools through the seeded PRNG, so
   the corpus is a pure function of (entries, seed) — the property
   {!wiki_paths} and the loadgen's write targets rely on. *)

type family = {
  fam_title : string; (* title prefix; also the uniqueness namespace *)
  fam_models : (string * string * string option) * (string * string * string option);
  fam_consistency : string;
  fam_forward : string;
  fam_backward : string;
}

let families =
  [|
    {
      fam_title = "Composers Load";
      fam_models =
        ( ("M", "Lists of composer records (name, dates, nationality).", None),
          ("V", "Name/nationality projections of the same list.", None) );
      fam_consistency =
        "Every view line is the projection of the source record aligned \
         with it, and the lists have equal length.";
      fam_forward = "Project each source record to its view line, in order.";
      fam_backward =
        "Align view lines to source records and restore the projected \
         fields, defaulting dates for created records.";
    };
    {
      fam_title = "Bookstore Load";
      fam_models =
        ( ("DB", "A bookstore inventory database of titles and prices.", None),
          ("R", "A price-list report over a subset of the inventory.", None) );
      fam_consistency =
        "Each report row agrees with the inventory row of the same title \
         on every shared field.";
      fam_forward = "Regenerate the report rows from the inventory.";
      fam_backward =
        "Push edited report fields back into the matching inventory rows, \
         leaving unreported stock untouched.";
    };
    {
      fam_title = "Uml2Rdbms Load";
      fam_models =
        ( ("UML", "A class diagram: classes, attributes, inheritance.",
           Some "MOF class models"),
          ("RDBMS", "A relational schema: tables, columns, keys.",
           Some "SQL DDL") );
      fam_consistency =
        "Every persistent class corresponds to a table whose columns \
         cover the class attributes.";
      fam_forward = "Derive tables and columns from persistent classes.";
      fam_backward =
        "Reflect table and column edits back as class and attribute \
         edits where a correspondence exists.";
    };
  |]

let aspects =
  [| "insertion"; "deletion"; "reordering"; "renaming"; "duplication";
     "field edits"; "batch edits"; "concurrent edits" |]

let flavours =
  [| "keyed"; "positional"; "diff-based"; "span-aligned"; "journaled";
     "cached"; "sharded"; "replicated" |]

let authors =
  [|
    Contributor.make ~affiliation:"Load Corpus" "Ada Driver";
    Contributor.make ~affiliation:"Load Corpus" "Basil Meter";
    Contributor.make ~affiliation:"Load Corpus" "Chidi Gauge";
    Contributor.make ~affiliation:"Load Corpus" "Dana Probe";
  |]

(* Rotate property claims so searches by claimed property hit every
   bucket; kept to combinations the validator accepts. *)
let property_claims =
  Bx.Properties.
    [|
      [ Satisfies Correct ];
      [ Satisfies Correct; Satisfies Hippocratic ];
      [ Satisfies Well_behaved ];
      [ Satisfies Undoable; Violates Least_change ];
      [ Violates Oblivious ];
      [];
    |]

let pick prng arr = arr.(Prng.int prng (Array.length arr))

let sentences prng n mk =
  String.concat " " (List.init n (fun i -> mk i (pick prng aspects) (pick prng flavours)))

let template prng i =
  let fam = families.(i mod Array.length families) in
  let (m1n, m1d, m1m), (m2n, m2d, m2m) = fam.fam_models in
  let title = Printf.sprintf "%s %04d" fam.fam_title i in
  (* PRECISE and SKETCH are mutually exclusive; rotate through the legal
     combinations so searches by class hit every bucket. *)
  let classes =
    match Prng.int prng 4 with
    | 0 -> [ Template.Precise ]
    | 1 -> [ Template.Sketch ]
    | 2 -> [ Template.Precise; Template.Benchmark ]
    | _ -> [ Template.Sketch; Template.Benchmark ]
  in
  let overview =
    sentences prng (1 + Prng.int prng 2) (fun _ aspect flavour ->
        Printf.sprintf
          "A %s variant of the %s example stressing %s under load." flavour
          (String.lowercase_ascii fam.fam_title) aspect)
  in
  let discussion =
    sentences prng (1 + Prng.int prng 3) (fun _ aspect flavour ->
        Printf.sprintf
          "Generated corpus entry %04d: the %s strategy is exercised \
           against %s by the open-loop driver." i flavour aspect)
  in
  let variants =
    List.init (Prng.int prng 3) (fun v ->
        Template.variant
          ~name:(Printf.sprintf "v%d-%s" v (pick prng flavours))
          (Printf.sprintf "Alternative handling of %s." (pick prng aspects)))
  in
  Template.make ~title ~classes ~overview
    ~properties:(pick prng property_claims)
    ~models:
      [
        Template.model_desc ?meta_model:m1m ~name:m1n m1d;
        Template.model_desc ?meta_model:m2m ~name:m2n m2d;
      ]
    ~consistency:fam.fam_consistency
    ~restoration:
      { rest_forward = fam.fam_forward; rest_backward = fam.fam_backward }
    ~variants ~discussion
    ~authors:[ pick prng authors ]
    ()

let generate ~entries ~seed =
  let prng = Prng.of_int seed in
  List.init (max 0 entries) (fun i ->
      let t = template prng i in
      match Template.validate t with
      | Ok () -> t
      | Error es ->
          failwith
            (Printf.sprintf "Corpus.generate: invalid %S: %s"
               t.Template.title (String.concat "; " es)))

let wiki_paths ~entries ~seed =
  generate ~entries ~seed
  |> List.map (fun t ->
         match Identifier.of_title t.Template.title with
         | Ok id -> "/" ^ Identifier.wiki_path id
         | Error e -> failwith ("Corpus.wiki_paths: " ^ e))
  |> Array.of_list

let seed_registry ?shards ~entries ~seed () =
  let registry = Bx_catalogue.Catalogue.seed ?shards () in
  List.iter
    (fun t ->
      let submitter =
        match t.Template.authors with
        | a :: _ -> Curation.account a.Contributor.person_name
        | [] -> Curation.account "corpus"
      in
      match Registry.submit registry ~as_:submitter t with
      | Ok _ -> ()
      | Error e ->
          failwith
            (Printf.sprintf "Corpus.seed_registry: %S rejected: %s"
               t.Template.title
               (Registry.error_message e)))
    (generate ~entries ~seed);
  registry
