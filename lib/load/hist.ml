type t = {
  sub_bits : int;
  sub : int; (* 1 lsl sub_bits: slots per level, 1/error bound *)
  counts : int array;
  mutable total : int;
  mutable sum : int;
  mutable max_v : int;
  mutable min_v : int;
}

(* Values are OCaml ints, at most 62 bits: the highest set bit is at
   index 62, so levels run 0 .. 63 - sub_bits and the whole table is
   (64 - sub_bits) * sub ints — ~29k words at the default sub_bits=7,
   allocated once at creation. *)
let levels sub_bits = 64 - sub_bits

let create ?(sub_bits = 7) () =
  if sub_bits < 1 || sub_bits > 16 then
    invalid_arg "Hist.create: sub_bits must be in 1..16";
  let sub = 1 lsl sub_bits in
  {
    sub_bits;
    sub;
    counts = Array.make (levels sub_bits * sub) 0;
    total = 0;
    sum = 0;
    max_v = 0;
    min_v = max_int;
  }

(* Index of the highest set bit (v > 0), branchy but allocation-free. *)
let msb v =
  let r = ref 0 and v = ref v in
  if !v lsr 32 <> 0 then begin r := !r + 32; v := !v lsr 32 end;
  if !v lsr 16 <> 0 then begin r := !r + 16; v := !v lsr 16 end;
  if !v lsr 8 <> 0 then begin r := !r + 8; v := !v lsr 8 end;
  if !v lsr 4 <> 0 then begin r := !r + 4; v := !v lsr 4 end;
  if !v lsr 2 <> 0 then begin r := !r + 2; v := !v lsr 2 end;
  if !v lsr 1 <> 0 then incr r;
  !r

(* Level 0 is exact; level l >= 1 covers [sub * 2^(l-1), sub * 2^l) in
   sub slots of width 2^(l-1).  For v in that range, v lsr (l-1) lands
   in [sub, 2*sub), so subtracting sub yields the slot. *)
let index t v =
  if v < t.sub then v
  else
    let l = msb v - t.sub_bits + 1 in
    (l * t.sub) + (v lsr (l - 1)) - t.sub

let record t v =
  let v = if v < 0 then 0 else v in
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.total <- t.total + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let total t = t.total
let max_value t = t.max_v
let min_value t = if t.total = 0 then 0 else t.min_v
let mean t = if t.total = 0 then 0. else float_of_int t.sum /. float_of_int t.total
let sub_buckets t = t.sub

(* The largest value filed under bucket [i] — what quantile reports, so
   estimates err high (never low) by at most the slot width. *)
let bucket_upper t i =
  if i < t.sub then i
  else
    let l = i / t.sub and slot = i mod t.sub in
    ((t.sub + slot + 1) lsl (l - 1)) - 1

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 1 (int_of_float (ceil (q *. float_of_int t.total))) in
    let acc = ref 0 and i = ref 0 and result = ref t.max_v in
    (try
       while !i < Array.length t.counts do
         acc := !acc + t.counts.(!i);
         if !acc >= rank then begin
           result := bucket_upper t !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    min !result t.max_v
  end

let merge a b =
  if a.sub_bits <> b.sub_bits then
    invalid_arg "Hist.merge: sub_bits differ";
  let c = create ~sub_bits:a.sub_bits () in
  Array.iteri (fun i n -> c.counts.(i) <- n + b.counts.(i)) a.counts;
  c.total <- a.total + b.total;
  c.sum <- a.sum + b.sum;
  c.max_v <- max a.max_v b.max_v;
  c.min_v <- min a.min_v b.min_v;
  c
