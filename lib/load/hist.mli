(** HDR-style latency histograms: logarithmic buckets with a bounded
    relative error, mergeable across domains, no allocation on the
    record path.

    Values are non-negative integers (the load generator records
    microseconds).  The bucket layout is log-linear: level 0 stores
    values below [2^sub_bits] exactly; level [L >= 1] covers
    [[2^sub_bits * 2^(L-1), 2^sub_bits * 2^L)] in [2^sub_bits] equal
    slots.  Any reported quantile therefore overshoots the true value by
    at most a factor of [1 + 2^-sub_bits] — under 1% at the default
    [sub_bits = 7] — while the whole structure is one flat int array.

    A [t] is {e not} thread-safe: give each recording domain its own and
    {!merge} them afterwards (merge is element-wise, hence associative
    and commutative). *)

type t

val create : ?sub_bits:int -> unit -> t
(** [sub_bits] (default 7, range 1–16) trades memory for precision:
    [2^sub_bits] slots per level, relative error at most
    [2^-sub_bits]. *)

val record : t -> int -> unit
(** Record one value (negative values clamp to 0).  Allocation-free. *)

val total : t -> int
(** Number of recorded values. *)

val max_value : t -> int
(** Largest recorded value, exact (0 when empty). *)

val min_value : t -> int
(** Smallest recorded value, exact (0 when empty). *)

val mean : t -> float
(** Exact mean of recorded values (0 when empty). *)

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0, 1]: an upper bound on the value at
    rank [ceil (q * total)], within the bucket error bound, clamped to
    {!max_value}.  0 when empty. *)

val merge : t -> t -> t
(** A fresh histogram holding both sets of recordings.  The operands
    must share [sub_bits]. *)

val sub_buckets : t -> int
(** [2^sub_bits] — the denominator of the error bound. *)
