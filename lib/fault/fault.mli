(** Failpoints: fault injection as a first-class, testable input.

    A failpoint is a named site in the code — [Fault.point
    "journal.append.pre_fsync"] — that normally does nothing.  When the
    subsystem is armed (via the [BXWIKI_FAILPOINTS] environment variable
    or programmatically, e.g. through the service's
    [PUT /debug/failpoints] admin route) a site can be told to:

    - [error] / [error(msg)] — raise {!Injected}, which the surrounding
      seam maps to its usual error path (a journal [Error], a 503, a
      dropped connection);
    - [delay(ms)] — sleep, to simulate a slow disk, a contended lock or
      a slow peer;
    - [crash] — die immediately via [Unix._exit 137], with no [at_exit]
      handlers and no buffer flushing: the closest in-process stand-in
      for [kill -9] or a power cut;
    - [errno(name)] — raise a genuine [Unix.Unix_error] ([enospc],
      [eio], [eacces], [emfile], [enxio]), so the seam's existing errno
      handling — not a fault-injection special case — classifies the
      failure (a full disk at the journal fsync, say);
    - [one_in(n,ACTION)] — perform ACTION on every [n]th evaluation
      (deterministic, counter-based: hits [n], [2n], ...);
    - [times(n,ACTION)] — perform ACTION on the first [n] evaluations
      only (so [times(1,error)] fails once and then heals — the shape
      retry logic is tested against);
    - [off] — explicitly disarm one site.

    The specification grammar is [site=ACTION[;site=ACTION...]].

    {b Zero cost when disabled.}  {!point} reads one atomic boolean and
    returns; no table lookup, no allocation, no lock.  The slow path —
    table lookup under a mutex — is only taken while at least one rule
    is configured.  [bench/main.exe --fault-guard] enforces this.

    Evaluation counters ([hits] = times the site was evaluated while
    armed, [fired] = times an action other than [off] actually ran) are
    kept per site and surfaced in [/metrics] as
    [bxwiki_fault_hits_total]/[bxwiki_fault_fired_total]. *)

exception Injected of string
(** Raised by {!point} when the site's action is [error].  Never escapes
    the subsystem's callers: every seam that plants a failpoint catches
    it and routes it into that seam's normal failure handling. *)

type action =
  | Off
  | Error of string  (** raise [Injected msg] *)
  | Delay of float  (** sleep this many seconds *)
  | Crash  (** [Unix._exit 137] — simulated [kill -9] *)
  | Errno of Unix.error
      (** raise [Unix.Unix_error (err, "failpoint", site)] *)
  | One_in of int * action  (** fire on every nth hit *)
  | Times of int * action  (** fire on the first n hits only *)

val point : string -> unit
(** Evaluate the failpoint [name].  A no-op unless armed; may raise
    {!Injected}, sleep, or kill the process, per the configured rule. *)

val enabled : unit -> bool
(** True while at least one rule is configured. *)

val env_configured : bool
(** True when [BXWIKI_FAILPOINTS] was present in the environment at
    startup (even empty) — the service uses this to decide whether the
    [/debug/failpoints] admin route exists. *)

val parse_action : string -> (action, string) result

val set : string -> action -> unit
(** Install (or with [Off], remove) the rule for one site. *)

val configure : string -> (unit, string) result
(** Replace the whole rule set from a [site=ACTION;...] spec.  The empty
    (or all-whitespace) spec clears every rule and disables the fast
    path.  On [Error] the previous rules are left untouched. *)

val clear : unit -> unit
(** Remove every rule; {!point} is back to its disabled fast path. *)

val describe : unit -> string
(** The current rules, one [site=ACTION] per line, sorted — the inverse
    of {!configure} (canonicalised). *)

val stats : unit -> (string * int * int) list
(** [(site, hits, fired)] for every site that has been configured since
    the last {!clear}, sorted by site name. *)
