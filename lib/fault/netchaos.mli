(** Netchaos: a toxiproxy-style in-process TCP proxy.

    A proxy listens on an ephemeral loopback port and forwards accepted
    connections to a fixed upstream port, applying composable "toxics"
    to the byte stream in each direction.  With no toxics configured the
    proxy is transparent: bytes through it are exactly the bytes a
    direct socket would carry (the QCheck transparency suite in
    [test/test_chaos.ml] holds it to that).

    Toxics are configured with the same textual-spec discipline as
    failpoints, so one grammar serves [BXWIKI_CHAOS], [--chaos] and
    [PUT /debug/chaos]:

    {v proxy=TOXIC[+TOXIC...][;proxy=...]
TOXIC := [up:|down:] latency(ms[,jitter_ms]) | bandwidth(kib_s)
         | reset(bytes) | blackhole | slow_close(ms) | truncate(bytes) v}

    [up:] applies only client->upstream, [down:] only upstream->client;
    no prefix means both directions.  Rules are held by proxy {e name}
    in a global registry: configuring a name before its proxy exists is
    fine — the proxy adopts the rules when created.  Jitter draws come
    from a per-proxy seeded PRNG, so a chaos schedule is reproducible. *)

type direction = Up  (** client -> upstream *) | Down  (** upstream -> client *) | Both

type toxic =
  | Latency of float * float  (** added delay in ms, +/- jitter in ms *)
  | Bandwidth of int  (** throughput cap in KiB/s *)
  | Reset of int
      (** abrupt teardown (RST where loopback allows) once this many
          bytes have passed in the toxic's direction *)
  | Blackhole
      (** swallow bytes without forwarding: a one- or two-way partition
          where the connection hangs rather than errors *)
  | Slow_close of float  (** hold EOF propagation for this many ms *)
  | Truncate of int
      (** forward this many bytes, silently drop the rest (partial
          write): the peer sees a frame cut short on a live socket *)

type rule = direction * toxic

(** {1 Spec grammar} *)

val parse_rules : string -> (rule list, string) result
(** One proxy's toxic chain, e.g. ["up:latency(50,20)+reset(1024)"].
    The empty string is [Ok []] (no toxics — transparent). *)

val render_rules : rule list -> string
(** Inverse of {!parse_rules}: [parse_rules (render_rules r) = Ok r]. *)

val parse_spec : string -> ((string * rule list) list, string) result
(** A whole [proxy=TOXICS;...] spec. *)

val configure : string -> (unit, string) result
(** Replace the global rule set from a spec and push the new rules to
    every live proxy (proxies absent from the spec are healed).  On
    [Error] nothing changes. *)

val clear_rules : unit -> unit
(** Drop every rule and heal every live proxy. *)

val describe : unit -> string
(** Current rules, one [proxy=TOXICS] line, sorted — the canonicalised
    inverse of {!configure}. *)

val stats_text : unit -> string
(** One line per live proxy: listen/upstream ports, connections
    accepted, bytes pumped each way. *)

val env_configured : bool
(** True when [BXWIKI_CHAOS] was present at startup (even empty) — the
    service uses this to decide whether [/debug/chaos] exists. *)

(** {1 Proxies} *)

type t

val create : ?name:string -> ?seed:int -> upstream_port:int -> unit -> t
(** Bind a loopback listener on an ephemeral port and start forwarding
    to [upstream_port].  [name] keys the global rule registry (default:
    generated); [seed] fixes the jitter PRNG (default: hash of name). *)

val port : t -> int
(** The proxy's listening port: point clients here. *)

val name : t -> string

val set_toxics : t -> rule list -> unit
(** Replace this proxy's toxic chain, effective from the next chunk. *)

val toxics : t -> rule list

val sever : t -> unit
(** Tear down every live connection now (new connections still accepted
    and subject to the current toxics). *)

val partition : t -> unit
(** [set_toxics t [(Both, Blackhole)]] plus {!sever}: a full partition —
    existing connections die, new ones hang. *)

val heal : t -> unit
(** Clear this proxy's toxics; traffic flows normally again. *)

val stats : t -> int * int * int
(** [(connections_accepted, bytes_up, bytes_down)]. *)

val close : t -> unit
(** Stop accepting, sever live connections, release the listener and
    unregister the proxy. *)
