(* Netchaos: a toxiproxy-style in-process TCP proxy.

   A proxy listens on an ephemeral loopback port and forwards every
   accepted connection to a fixed upstream port, one thread per
   direction.  "Toxics" — latency, bandwidth caps, resets, blackholes,
   slow closes, truncation — are applied per chunk as bytes are pumped,
   so the failure modes the network really produces (half-open
   connections, partitions that heal, bytes cut mid-frame) can be
   scripted deterministically inside one test process.

   Like failpoints, toxics are configured through a textual spec so the
   same grammar works from BXWIKI_CHAOS, --chaos and PUT /debug/chaos:

     proxy=TOXIC[+TOXIC...][;proxy=...]
     TOXIC := [up:|down:] latency(ms[,jitter_ms]) | bandwidth(kib_s)
              | reset(bytes) | blackhole | slow_close(ms)
              | truncate(bytes)

   [up] is client->upstream, [down] upstream->client; no prefix applies
   the toxic in both directions.  Rules are kept by proxy *name* in a
   global table: configuring a name before its proxy exists is fine —
   the proxy picks the rules up when it is created. *)

type direction = Up | Down | Both

type toxic =
  | Latency of float * float  (* added delay ms, +/- jitter ms *)
  | Bandwidth of int  (* cap, KiB/s *)
  | Reset of int  (* abrupt teardown after this many bytes *)
  | Blackhole  (* swallow bytes; the connection hangs *)
  | Slow_close of float  (* hold EOF propagation for ms *)
  | Truncate of int  (* forward this many bytes, drop the rest *)

type rule = direction * toxic

(* ------------------------------------------------------------------ *)
(* Spec grammar *)

let render_toxic = function
  | Latency (ms, 0.) -> Printf.sprintf "latency(%g)" ms
  | Latency (ms, j) -> Printf.sprintf "latency(%g,%g)" ms j
  | Bandwidth k -> Printf.sprintf "bandwidth(%d)" k
  | Reset n -> Printf.sprintf "reset(%d)" n
  | Blackhole -> "blackhole"
  | Slow_close ms -> Printf.sprintf "slow_close(%g)" ms
  | Truncate n -> Printf.sprintf "truncate(%d)" n

let render_rule (dir, toxic) =
  let prefix = match dir with Up -> "up:" | Down -> "down:" | Both -> "" in
  prefix ^ render_toxic toxic

let render_rules rules = String.concat "+" (List.map render_rule rules)

let call_of s =
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 2))
  | _ -> None

let parse_toxic s =
  let num name v k =
    match float_of_string_opt (String.trim v) with
    | Some f when f >= 0. -> k f
    | _ -> Error (Printf.sprintf "%s wants a non-negative number: %S" name s)
  in
  let int_arg name v k =
    match int_of_string_opt (String.trim v) with
    | Some n when n >= 0 -> k n
    | _ -> Error (Printf.sprintf "%s wants a non-negative integer: %S" name s)
  in
  match s with
  | "blackhole" -> Ok Blackhole
  | _ -> (
      match call_of s with
      | Some ("latency", arg) -> (
          match String.index_opt arg ',' with
          | None -> num "latency" arg (fun ms -> Ok (Latency (ms, 0.)))
          | Some i ->
              let ms = String.sub arg 0 i in
              let j = String.sub arg (i + 1) (String.length arg - i - 1) in
              num "latency" ms (fun ms ->
                  num "latency" j (fun j -> Ok (Latency (ms, j)))))
      | Some ("bandwidth", arg) ->
          int_arg "bandwidth" arg (fun k ->
              if k >= 1 then Ok (Bandwidth k)
              else Error (Printf.sprintf "bandwidth wants kib/s >= 1: %S" s))
      | Some ("reset", arg) -> int_arg "reset" arg (fun n -> Ok (Reset n))
      | Some ("slow_close", arg) ->
          num "slow_close" arg (fun ms -> Ok (Slow_close ms))
      | Some ("truncate", arg) -> int_arg "truncate" arg (fun n -> Ok (Truncate n))
      | _ -> Error (Printf.sprintf "unknown toxic %S" s))

let parse_rule s =
  let s = String.trim s in
  let dir, rest =
    if String.length s > 3 && String.sub s 0 3 = "up:" then
      (Up, String.sub s 3 (String.length s - 3))
    else if String.length s > 5 && String.sub s 0 5 = "down:" then
      (Down, String.sub s 5 (String.length s - 5))
    else (Both, s)
  in
  match parse_toxic (String.trim rest) with
  | Ok t -> Ok (dir, t)
  | Error _ as e -> e

let parse_rules s : (rule list, string) result =
  let s = String.trim s in
  if s = "" then Ok []
  else
    String.split_on_char '+' s
    |> List.fold_left
         (fun acc tok ->
           match acc with
           | Error _ as e -> e
           | Ok rules -> (
               match parse_rule tok with
               | Ok r -> Ok (r :: rules)
               | Error _ as e -> e))
         (Ok [])
    |> Result.map List.rev

let parse_spec spec : ((string * rule list) list, string) result =
  String.split_on_char ';' spec
  |> List.filter_map (fun entry ->
         let entry = String.trim entry in
         if entry = "" then None
         else
           Some
             (match String.index_opt entry '=' with
             | None ->
                 Stdlib.Error
                   (Printf.sprintf "rule %S is not proxy=TOXICS" entry)
             | Some i -> (
                 let name = String.trim (String.sub entry 0 i) in
                 let toxics =
                   String.sub entry (i + 1) (String.length entry - i - 1)
                 in
                 if name = "" then
                   Stdlib.Error (Printf.sprintf "rule %S has no proxy name" entry)
                 else
                   match parse_rules toxics with
                   | Ok rules -> Stdlib.Ok (name, rules)
                   | Error e -> Stdlib.Error e)))
  |> List.fold_left
       (fun acc r ->
         match (acc, r) with
         | (Stdlib.Error _ as e), _ -> e
         | _, (Stdlib.Error _ as e) -> e
         | Stdlib.Ok rules, Stdlib.Ok r -> Stdlib.Ok (r :: rules))
       (Stdlib.Ok [])
  |> Result.map List.rev

(* ------------------------------------------------------------------ *)
(* Proxy *)

type conn = {
  client : Unix.file_descr;
  upstream : Unix.file_descr;
  closed : bool Atomic.t;
  pumps_left : int Atomic.t;
}

type t = {
  name : string;
  upstream_port : int;
  lsock : Unix.file_descr;
  lport : int;
  m : Mutex.t;
  mutable rules : rule list;
  mutable conns : conn list;
  rng : Random.State.t;  (* jitter draws; guarded by [m] *)
  stop : bool Atomic.t;
  connections : int Atomic.t;
  bytes_up : int Atomic.t;
  bytes_down : int Atomic.t;
  mutable accept_thread : Thread.t option;
}

let ignore_unix f = try f () with Unix.Unix_error _ | Sys_error _ -> ()

(* Tear a connection down abruptly.  SO_LINGER 0 makes the close emit an
   RST when data is in flight, which is as close to a mid-frame network
   reset as loopback allows; shutdown first wakes any thread blocked in
   read so nobody sits on a dead fd. *)
let kill_conn conn =
  if Atomic.compare_and_set conn.closed false true then begin
    List.iter
      (fun fd ->
        ignore_unix (fun () -> Unix.setsockopt_optint fd Unix.SO_LINGER (Some 0));
        ignore_unix (fun () -> Unix.shutdown fd Unix.SHUTDOWN_ALL))
      [ conn.client; conn.upstream ]
  end

let finish_pump conn =
  if Atomic.fetch_and_add conn.pumps_left (-1) = 1 then begin
    Atomic.set conn.closed true;
    ignore_unix (fun () -> Unix.close conn.client);
    ignore_unix (fun () -> Unix.close conn.upstream)
  end

let current_rules t dir =
  Mutex.lock t.m;
  let rules =
    List.filter (fun (d, _) -> d = Both || d = dir) t.rules
  in
  Mutex.unlock t.m;
  List.map snd rules

let jitter_draw t ms j =
  if j <= 0. then ms
  else begin
    Mutex.lock t.m;
    let d = Random.State.float t.rng (2. *. j) -. j in
    Mutex.unlock t.m;
    Float.max 0. (ms +. d)
  end

let write_chunk fd buf off len =
  let rec go off len =
    if len > 0 then begin
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
    end
  in
  go off len

(* Forward one direction of one connection, chunk by chunk, applying the
   matching toxics in rule order.  Exits on EOF, error, or teardown. *)
let pump t conn dir src dst count_total =
  let buf = Bytes.create 4096 in
  let sent = ref 0 in  (* bytes offered in this direction, this conn *)
  let forwarded = ref 0 in  (* bytes actually written downstream *)
  let eof_delay = ref 0. in
  let rec loop () =
    match Unix.read src buf 0 (Bytes.length buf) with
    | exception (Unix.Unix_error _ | Sys_error _) -> ()
    | 0 -> at_eof ()
    | n ->
        ignore (Atomic.fetch_and_add count_total n);
        let toxics = current_rules t dir in
        (* Decide this chunk's fate across the whole chain first: how
           many bytes to deliver, whether to hang up afterwards. *)
        let deliver = ref n and drop = ref false and rst = ref false in
        eof_delay := 0.;
        List.iter
          (fun toxic ->
            match toxic with
            | Latency (ms, j) -> Unix.sleepf (jitter_draw t ms j /. 1000.)
            | Blackhole -> drop := true
            | Reset limit ->
                let allowed = max 0 (limit - !sent) in
                if allowed < !deliver then deliver := allowed;
                if !sent + n >= limit then rst := true
            | Truncate limit ->
                let allowed = max 0 (limit - !sent) in
                if allowed < !deliver then deliver := allowed
            | Slow_close ms -> eof_delay := Float.max !eof_delay ms
            | Bandwidth _ -> ())
          toxics;
        sent := !sent + n;
        let ok =
          !drop
          ||
          try
            if !deliver > 0 then begin
              write_chunk dst buf 0 !deliver;
              forwarded := !forwarded + !deliver
            end;
            true
          with Unix.Unix_error _ | Sys_error _ -> false
        in
        List.iter
          (fun toxic ->
            match toxic with
            | Bandwidth kib_s when not !drop && !deliver > 0 ->
                Unix.sleepf (float_of_int !deliver /. (float_of_int kib_s *. 1024.))
            | _ -> ())
          toxics;
        if !rst then kill_conn conn
        else if ok && not (Atomic.get t.stop) then loop ()
  and at_eof () =
    (* Propagate the half-close, optionally holding it open first. *)
    List.iter
      (fun toxic -> match toxic with
        | Slow_close ms -> eof_delay := Float.max !eof_delay ms
        | _ -> ())
      (current_rules t dir);
    if !eof_delay > 0. then Unix.sleepf (!eof_delay /. 1000.);
    ignore_unix (fun () -> Unix.shutdown dst Unix.SHUTDOWN_SEND)
  in
  loop ();
  finish_pump conn

let dial_upstream port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Some fd
  with Unix.Unix_error _ ->
    ignore_unix (fun () -> Unix.close fd);
    None

let accept_loop t =
  while not (Atomic.get t.stop) do
    match Unix.select [ t.lsock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        match Unix.accept t.lsock with
        | exception Unix.Unix_error _ -> ()
        | client, _ -> (
            Unix.setsockopt client Unix.TCP_NODELAY true;
            match dial_upstream t.upstream_port with
            | None -> ignore_unix (fun () -> Unix.close client)
            | Some upstream ->
                Atomic.incr t.connections;
                let conn =
                  {
                    client;
                    upstream;
                    closed = Atomic.make false;
                    pumps_left = Atomic.make 2;
                  }
                in
                Mutex.lock t.m;
                t.conns <-
                  conn
                  :: List.filter
                       (fun c -> Atomic.get c.pumps_left > 0)
                       t.conns;
                Mutex.unlock t.m;
                ignore
                  (Thread.create
                     (fun () -> pump t conn Up client upstream t.bytes_up)
                     ());
                ignore
                  (Thread.create
                     (fun () -> pump t conn Down upstream client t.bytes_down)
                     ())))
  done;
  ignore_unix (fun () -> Unix.close t.lsock)

(* ------------------------------------------------------------------ *)
(* Registry: rules are configured by name and survive proxy churn. *)

let registry_mutex = Mutex.create ()
let rules_table : (string, rule list) Hashtbl.t = Hashtbl.create 4
let proxies : (string, t) Hashtbl.t = Hashtbl.create 4

let reg_locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let set_toxics t rules =
  Mutex.lock t.m;
  t.rules <- rules;
  Mutex.unlock t.m

let toxics t =
  Mutex.lock t.m;
  let r = t.rules in
  Mutex.unlock t.m;
  r

let sever t =
  Mutex.lock t.m;
  let conns = t.conns in
  t.conns <- List.filter (fun c -> Atomic.get c.pumps_left > 0) conns;
  Mutex.unlock t.m;
  List.iter kill_conn conns

let partition t =
  set_toxics t [ (Both, Blackhole) ];
  sever t

let heal t = set_toxics t []

let anon = Atomic.make 0

let create ?name ?seed ~upstream_port () =
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "proxy%d" (Atomic.fetch_and_add anon 1)
  in
  let lsock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lsock 64;
  let lport =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let seed = match seed with Some s -> s | None -> Hashtbl.hash name in
  let t =
    {
      name;
      upstream_port;
      lsock;
      lport;
      m = Mutex.create ();
      rules = [];
      conns = [];
      rng = Random.State.make [| seed |];
      stop = Atomic.make false;
      connections = Atomic.make 0;
      bytes_up = Atomic.make 0;
      bytes_down = Atomic.make 0;
      accept_thread = None;
    }
  in
  reg_locked (fun () ->
      Hashtbl.replace proxies name t;
      match Hashtbl.find_opt rules_table name with
      | Some rules -> t.rules <- rules
      | None -> ());
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let port t = t.lport
let name t = t.name

let stats t =
  (Atomic.get t.connections, Atomic.get t.bytes_up, Atomic.get t.bytes_down)

let close t =
  Atomic.set t.stop true;
  sever t;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  reg_locked (fun () ->
      match Hashtbl.find_opt proxies t.name with
      | Some p when p == t -> Hashtbl.remove proxies t.name
      | _ -> ())

let configure spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok entries ->
      reg_locked (fun () ->
          Hashtbl.reset rules_table;
          List.iter
            (fun (name, rules) ->
              if rules <> [] then Hashtbl.replace rules_table name rules)
            entries;
          Hashtbl.iter
            (fun name proxy ->
              set_toxics proxy
                (Option.value ~default:[] (Hashtbl.find_opt rules_table name)))
            proxies);
      Ok ()

let clear_rules () =
  reg_locked (fun () ->
      Hashtbl.reset rules_table;
      Hashtbl.iter (fun _ proxy -> set_toxics proxy []) proxies)

let describe () =
  reg_locked (fun () ->
      Hashtbl.fold (fun name rules acc -> (name, rules) :: acc) rules_table []
      |> List.sort compare
      |> List.map (fun (name, rules) -> name ^ "=" ^ render_rules rules)
      |> String.concat "\n")

let stats_text () =
  reg_locked (fun () ->
      Hashtbl.fold (fun name p acc -> (name, p) :: acc) proxies []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
      |> List.map (fun (name, p) ->
             Printf.sprintf "%s: port=%d upstream=%d conns=%d up=%dB down=%dB"
               name p.lport p.upstream_port
               (Atomic.get p.connections)
               (Atomic.get p.bytes_up) (Atomic.get p.bytes_down))
      |> String.concat "\n")

(* ------------------------------------------------------------------ *)
(* Environment arming, mirroring BXWIKI_FAILPOINTS. *)

let env_configured, () =
  match Sys.getenv_opt "BXWIKI_CHAOS" with
  | None -> (false, ())
  | Some spec ->
      ( true,
        match configure spec with
        | Ok () -> ()
        | Error e -> Printf.eprintf "bxwiki: BXWIKI_CHAOS ignored: %s\n%!" e )
