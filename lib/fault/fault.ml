exception Injected of string

type action =
  | Off
  | Error of string
  | Delay of float
  | Crash
  | Errno of Unix.error
  | One_in of int * action
  | Times of int * action

type site = { mutable rule : action; mutable hits : int; mutable fired : int }

(* The armed flag is the whole fast path: one atomic load when no rule
   is configured.  The table and counters live behind a mutex — fault
   injection is a debugging mode, its slow path may serialise. *)
let armed = Atomic.make false
let mutex = Mutex.create ()
let table : (string, site) Hashtbl.t = Hashtbl.create 8

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let enabled () = Atomic.get armed

(* ------------------------------------------------------------------ *)
(* Action syntax: off | error | error(msg) | delay(ms) | crash
   | errno(name) | one_in(n,ACTION) | times(n,ACTION) *)

(* The errnos worth faking at an I/O seam.  A symbolic subset keeps the
   grammar round-trippable; anything else would render as an integer and
   not survive a parse. *)
let errno_names =
  [
    ("enospc", Unix.ENOSPC);
    ("eio", Unix.EIO);
    ("eacces", Unix.EACCES);
    ("emfile", Unix.EMFILE);
    ("enxio", Unix.ENXIO);
  ]

let errno_name err =
  match List.find_opt (fun (_, e) -> e = err) errno_names with
  | Some (name, _) -> name
  | None -> "eio"

let rec render_action = function
  | Off -> "off"
  | Error "injected" -> "error"
  | Error msg -> Printf.sprintf "error(%s)" msg
  | Delay s -> Printf.sprintf "delay(%g)" (s *. 1000.)
  | Crash -> "crash"
  | Errno err -> Printf.sprintf "errno(%s)" (errno_name err)
  | One_in (n, a) -> Printf.sprintf "one_in(%d,%s)" n (render_action a)
  | Times (n, a) -> Printf.sprintf "times(%d,%s)" n (render_action a)

let call_of s =
  (* "name(arg)" -> Some (name, arg); arg may itself contain parens. *)
  match String.index_opt s '(' with
  | Some i when String.length s > 0 && s.[String.length s - 1] = ')' ->
      Some
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 2) )
  | _ -> None

let rec parse_action s =
  let s = String.trim s in
  match s with
  | "off" -> Ok Off
  | "error" -> Ok (Error "injected")
  | "crash" -> Ok Crash
  | _ -> (
      match call_of s with
      | Some ("error", msg) -> Ok (Error msg)
      | Some ("errno", name) -> (
          match
            List.assoc_opt (String.lowercase_ascii (String.trim name))
              errno_names
          with
          | Some err -> Ok (Errno err)
          | None ->
              Error
                (Printf.sprintf "errno wants one of %s: %S"
                   (String.concat "/" (List.map fst errno_names))
                   s))
      | Some ("delay", ms) -> (
          match float_of_string_opt ms with
          | Some ms when ms >= 0. -> Ok (Delay (ms /. 1000.))
          | _ -> Error (Printf.sprintf "delay wants a duration in ms: %S" s))
      | Some (("one_in" | "times") as kind, arg) -> (
          match String.index_opt arg ',' with
          | None -> Error (Printf.sprintf "%s wants (n,ACTION): %S" kind s)
          | Some i -> (
              let n = int_of_string_opt (String.trim (String.sub arg 0 i)) in
              let inner =
                String.sub arg (i + 1) (String.length arg - i - 1)
              in
              match (n, parse_action inner) with
              | Some n, Ok a when n >= 1 ->
                  Ok (if kind = "one_in" then One_in (n, a) else Times (n, a))
              | Some _, Ok _ ->
                  Error (Printf.sprintf "%s wants n >= 1: %S" kind s)
              | None, _ -> Error (Printf.sprintf "%s wants an integer: %S" kind s)
              | _, (Error _ as e) -> e))
      | _ -> Error (Printf.sprintf "unknown failpoint action %S" s))

(* ------------------------------------------------------------------ *)
(* Configuration *)

let refresh_armed_locked () =
  Atomic.set armed (Hashtbl.length table > 0)

let set name action =
  locked (fun () ->
      (match (action, Hashtbl.find_opt table name) with
      | Off, _ -> Hashtbl.remove table name
      | _, Some site -> site.rule <- action
      | _, None ->
          Hashtbl.replace table name { rule = action; hits = 0; fired = 0 });
      refresh_armed_locked ())

let parse_spec spec : ((string * action) list, string) result =
  String.split_on_char ';' spec
  |> List.filter_map (fun rule ->
         let rule = String.trim rule in
         if rule = "" then None
         else
           Some
             (match String.index_opt rule '=' with
             | None ->
                 Stdlib.Error
                   (Printf.sprintf "rule %S is not site=ACTION" rule)
             | Some i -> (
                 let name = String.trim (String.sub rule 0 i) in
                 let act =
                   String.sub rule (i + 1) (String.length rule - i - 1)
                 in
                 if name = "" then
                   Stdlib.Error
                     (Printf.sprintf "rule %S has no site name" rule)
                 else
                   match parse_action act with
                   | Ok a -> Stdlib.Ok (name, a)
                   | Error e -> Stdlib.Error e)))
  |> List.fold_left
       (fun acc r ->
         match (acc, r) with
         | (Stdlib.Error _ as e), _ -> e
         | _, (Stdlib.Error _ as e) -> e
         | Stdlib.Ok rules, Stdlib.Ok r -> Stdlib.Ok (r :: rules))
       (Stdlib.Ok [])
  |> Result.map List.rev

let configure spec =
  match parse_spec spec with
  | Error _ as e -> e
  | Ok rules ->
      locked (fun () ->
          Hashtbl.reset table;
          List.iter
            (fun (name, action) ->
              if action <> Off then
                Hashtbl.replace table name
                  { rule = action; hits = 0; fired = 0 })
            rules;
          refresh_armed_locked ());
      Ok ()

let clear () =
  locked (fun () ->
      Hashtbl.reset table;
      refresh_armed_locked ())

let describe () =
  locked (fun () ->
      Hashtbl.fold (fun name site acc -> (name, site.rule) :: acc) table []
      |> List.sort compare
      |> List.map (fun (name, rule) -> name ^ "=" ^ render_action rule)
      |> String.concat "\n")

let stats () =
  locked (fun () ->
      Hashtbl.fold
        (fun name site acc -> (name, site.hits, site.fired) :: acc)
        table []
      |> List.sort compare)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

(* Decide under the lock, act outside it: a [delay] must not hold the
   table mutex, and a [crash] must not care. *)
let rec decide hit = function
  | Off -> Off
  | One_in (n, a) -> if hit mod n = 0 then decide hit a else Off
  | Times (n, a) -> if hit <= n then decide hit a else Off
  | (Error _ | Delay _ | Crash | Errno _) as a -> a

let eval name =
  let verdict =
    locked (fun () ->
        match Hashtbl.find_opt table name with
        | None -> Off
        | Some site ->
            site.hits <- site.hits + 1;
            let v = decide site.hits site.rule in
            if v <> Off then site.fired <- site.fired + 1;
            v)
  in
  match verdict with
  | Off -> ()
  | Error msg -> raise (Injected (name ^ ": " ^ msg))
  | Errno err ->
      (* A real Unix_error, so the seam's existing errno handling — not a
         special fault-injection path — decides what the failure means. *)
      raise (Unix.Unix_error (err, "failpoint", name))
  | Delay s -> Unix.sleepf s
  | Crash ->
      (* No at_exit, no flushing: the process vanishes as under kill -9.
         137 = 128 + SIGKILL, the exit code a real kill -9 produces. *)
      Unix._exit 137
  | One_in _ | Times _ -> assert false

let point name = if Atomic.get armed then eval name

(* ------------------------------------------------------------------ *)
(* Environment arming.  BXWIKI_FAILPOINTS present (even empty) marks the
   process as running in fault-injection mode: the admin route may be
   mounted, and any rules in the value are installed.  A malformed value
   is reported and skipped rather than crashing library init. *)

let env_configured, () =
  match Sys.getenv_opt "BXWIKI_FAILPOINTS" with
  | None -> (false, ())
  | Some spec ->
      ( true,
        match configure spec with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "bxwiki: BXWIKI_FAILPOINTS ignored: %s\n%!" e )
