type entry = {
  id : Identifier.t;
  ord : int; (* insertion order; export and the index page are ord-stable *)
  mutable history : (Version.t * Template.t) list; (* newest first *)
  mutable pending : string list; (* endorsing reviewer account names *)
}

(* A posting list per index key: id string -> entry.  Keeping the entry as
   the value lets intersection walk postings without a second lookup. *)
type index = (string, (string, entry) Hashtbl.t) Hashtbl.t

type shard = {
  table : (string, entry) Hashtbl.t;
  by_author : index;
  by_tag : index;
  by_class : index;
  by_property : index;
  by_state : index;
}

type t = {
  shards : shard array;
  by_ord : (int, entry) Hashtbl.t;
      (* ord -> entry, across shards; ords are dense (entries are never
         deleted), so the index page slices a page in O(page size) *)
  mutable next_ord : int;
}

type error =
  | Not_found of string
  | Permission_denied of string
  | Invalid of string list
  | Conflict of string

let error_message = function
  | Not_found id -> Printf.sprintf "no entry %s" id
  | Permission_denied what -> Printf.sprintf "permission denied: %s" what
  | Invalid msgs -> "invalid template: " ^ String.concat "; " msgs
  | Conflict what -> Printf.sprintf "conflict: %s" what

let make_shard () =
  {
    table = Hashtbl.create 64;
    by_author = Hashtbl.create 16;
    by_tag = Hashtbl.create 16;
    by_class = Hashtbl.create 8;
    by_property = Hashtbl.create 16;
    by_state = Hashtbl.create 4;
  }

let create ?(shards = 1) () =
  if shards < 1 then invalid_arg "Registry.create: shards must be >= 1";
  {
    shards = Array.init shards (fun _ -> make_shard ());
    by_ord = Hashtbl.create 64;
    next_ord = 0;
  }

let shard_count t = Array.length t.shards

(* FNV-1a over the canonical identifier, masked to 32 bits.  The hash must
   be stable across runs and builds: shard assignment decides which journal
   segment an entry's edits land in, so it is part of the on-disk layout. *)
let fnv32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let shard_of_id t id =
  if Array.length t.shards = 1 then 0
  else fnv32 (Identifier.to_string id) mod Array.length t.shards

let shard_of t id = t.shards.(shard_of_id t id)

let all_entries t =
  Array.fold_left
    (fun acc shard -> Hashtbl.fold (fun _ e acc -> e :: acc) shard.table acc)
    [] t.shards

let ids t =
  List.sort Identifier.compare (List.map (fun e -> e.id) (all_entries t))

let size t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.table) 0 t.shards

let find_entry t id = Hashtbl.find_opt (shard_of t id).table (Identifier.to_string id)

let ids_page t ~offset ~limit =
  let stop = min t.next_ord (max 0 offset + max 0 limit) in
  let rec go ord acc =
    if ord < max 0 offset then acc
    else
      match Hashtbl.find_opt t.by_ord ord with
      | Some e -> go (ord - 1) (e.id :: acc)
      | None -> go (ord - 1) acc
  in
  go (stop - 1) []

let latest_of entry =
  match entry.history with
  | (_, template) :: _ -> template
  | [] -> assert false (* entries always hold at least one version *)

let author_names (template : Template.t) =
  List.map (fun c -> c.Contributor.person_name) template.Template.authors

(* {2 Curation state} *)

type curation_state = Provisional | Endorsed | Published

let state_name = function
  | Provisional -> "provisional"
  | Endorsed -> "endorsed"
  | Published -> "published"

let state_of_name = function
  | "provisional" -> Some Provisional
  | "endorsed" -> Some Endorsed
  | "published" -> Some Published
  | _ -> None

let state_of_entry entry =
  if not (Template.is_provisional (latest_of entry)) then Published
  else if entry.pending <> [] then Endorsed
  else Provisional

(* {2 Incremental secondary indexes}

   Each index maps a key to the posting list of entries whose *latest*
   version carries that key.  [postings_of] computes an entry's current
   (index, key) pairs; mutations run under [reindexing], which diffs the
   pairs before and after the state change so the indexes stay transactional
   with the mutation: either the mutation fails and nothing moved, or it
   succeeds and every index reflects the new latest version. *)

let norm = String.lowercase_ascii

let postings_of shard entry =
  let template = latest_of entry in
  let on idx keys = List.map (fun k -> (idx, k)) keys in
  on shard.by_author (List.map norm (author_names template))
  @ on shard.by_tag
      (List.map
         (fun (v : Template.variant) -> norm v.variant_name)
         template.Template.variants)
  @ on shard.by_class (List.map Template.class_name template.Template.classes)
  @ on shard.by_property
      (List.map Bx.Properties.claim_name template.Template.properties)
  @ [ (shard.by_state, state_name (state_of_entry entry)) ]

let idx_add idx key entry =
  let posting =
    match Hashtbl.find_opt idx key with
    | Some p -> p
    | None ->
        let p = Hashtbl.create 8 in
        Hashtbl.replace idx key p;
        p
  in
  Hashtbl.replace posting (Identifier.to_string entry.id) entry

let idx_remove idx key entry =
  match Hashtbl.find_opt idx key with
  | None -> ()
  | Some posting ->
      Hashtbl.remove posting (Identifier.to_string entry.id);
      if Hashtbl.length posting = 0 then Hashtbl.remove idx key

let index_entry shard entry =
  List.iter (fun (idx, key) -> idx_add idx key entry) (postings_of shard entry)

(* Run a mutation on [entry]; on success, move the entry's postings from
   the pre-mutation keys to the post-mutation keys.  Mutations validate
   before touching the entry, so an [Error] leaves both entry and indexes
   untouched. *)
let reindexing shard entry f =
  let before = postings_of shard entry in
  match f entry with
  | Ok _ as r ->
      List.iter (fun (idx, key) -> idx_remove idx key entry) before;
      index_entry shard entry;
      r
  | Error _ as r -> r

let insert_entry t entry =
  let shard = shard_of t entry.id in
  Hashtbl.replace shard.table (Identifier.to_string entry.id) entry;
  Hashtbl.replace t.by_ord entry.ord entry;
  index_entry shard entry

let submit t ~as_:_ template =
  match Template.validate template with
  | Error msgs -> Error (Invalid msgs)
  | Ok () ->
      if not (Template.is_provisional template) then
        Error
          (Invalid [ "a new submission must carry a provisional 0.x version" ])
      else (
        match Identifier.of_title template.Template.title with
        | Error e -> Error (Invalid [ e ])
        | Ok id ->
            if find_entry t id <> None then
              Error
                (Conflict
                   (Printf.sprintf "an entry %s already exists"
                      (Identifier.to_string id)))
            else begin
              let entry =
                {
                  id;
                  ord = t.next_ord;
                  history = [ (template.Template.version, template) ];
                  pending = [];
                }
              in
              t.next_ord <- t.next_ord + 1;
              insert_entry t entry;
              Ok id
            end)

let with_entry t id f =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> reindexing (shard_of t id) entry f

let comment t ~as_ id ~text =
  with_entry t id (fun entry ->
      if not (Curation.can_comment as_) then
        Error (Permission_denied "commenting requires an account")
      else begin
        match entry.history with
        | (v, template) :: older ->
            let template =
              {
                template with
                Template.comments =
                  template.Template.comments
                  @ [ Template.comment ~author:as_.Curation.account_name text ];
              }
            in
            entry.history <- (v, template) :: older;
            Ok ()
        | [] -> assert false
      end)

let endorse t ~as_ id =
  with_entry t id (fun entry ->
      if not (Curation.can_review as_) then
        Error (Permission_denied "endorsing requires reviewer status")
      else
        let template = latest_of entry in
        if List.mem as_.Curation.account_name (author_names template) then
          Error (Permission_denied "authors cannot endorse their own entry")
        else if List.mem as_.Curation.account_name entry.pending then
          Error (Conflict "already endorsed by this reviewer")
        else begin
          entry.pending <- entry.pending @ [ as_.Curation.account_name ];
          Ok ()
        end)

let endorsements t id =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> Ok entry.pending

let approve t ~as_ id =
  with_entry t id (fun entry ->
      if not (Curation.can_approve as_) then
        Error (Permission_denied "approval requires curator status")
      else if entry.pending = [] then
        Error (Conflict "no endorsements: an entry needs at least one reviewer")
      else begin
        match entry.history with
        | (v, template) :: _ ->
            let version = Version.promote v in
            let template =
              {
                template with
                Template.version;
                Template.reviewers =
                  List.map Contributor.make entry.pending;
              }
            in
            (match Template.validate template with
            | Error msgs -> Error (Invalid msgs)
            | Ok () ->
                entry.history <- (version, template) :: entry.history;
                entry.pending <- [];
                Ok version)
        | [] -> assert false
      end)

let revise t ~as_ id template =
  with_entry t id (fun entry ->
      let current = latest_of entry in
      if not (Curation.can_edit ~author_names:(author_names current) as_) then
        Error (Permission_denied "editing requires curator status or authorship")
      else (
        match Identifier.of_title template.Template.title with
        | Error e -> Error (Invalid [ e ])
        | Ok new_id when not (Identifier.equal new_id id) ->
            Error
              (Conflict
                 "revisions may not change the title: identifiers are stable")
        | Ok _ ->
            let version =
              Version.bump_minor current.Template.version
            in
            let template = { template with Template.version } in
            (match Template.validate template with
            | Error msgs -> Error (Invalid msgs)
            | Ok () ->
                entry.history <- (version, template) :: entry.history;
                entry.pending <- [];
                Ok version)))

let latest t id =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> Ok (latest_of entry)

let find_version t id version =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> (
      match
        List.find_opt (fun (v, _) -> Version.equal v version) entry.history
      with
      | Some (_, template) -> Ok template
      | None ->
          Error
            (Not_found
               (Printf.sprintf "%s version %s" (Identifier.to_string id)
                  (Version.to_string version))))

let versions t id =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> Ok (List.rev_map fst entry.history)

type query = {
  q_class : Template.example_class option;
  q_property : Bx.Properties.claim option;
  q_text : string option;
  q_author : string option;
  q_tag : string option;
  q_state : curation_state option;
}

let query ?cls ?property ?text ?author ?tag ?state () =
  {
    q_class = cls;
    q_property = property;
    q_text = text;
    q_author = author;
    q_tag = tag;
    q_state = state;
  }

let contains_ci haystack needle =
  let h = String.lowercase_ascii haystack in
  let n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  if nl = 0 then true
  else
    let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
    scan 0

let full_text (template : Template.t) =
  String.concat "\n"
    ([
       template.Template.title;
       template.Template.overview;
       template.Template.consistency;
       template.Template.restoration.Template.rest_forward;
       template.Template.restoration.Template.rest_backward;
       template.Template.discussion;
     ]
    @ List.map
        (fun (m : Template.model_desc) ->
          m.model_name ^ " " ^ m.model_description)
        template.Template.models
    @ List.map
        (fun (v : Template.variant) ->
          v.variant_name ^ " " ^ v.variant_description)
        template.Template.variants
    @ List.map Contributor.to_string template.Template.authors)

let matches q entry =
  let template = latest_of entry in
  (match q.q_class with
  | None -> true
  | Some c -> List.mem c template.Template.classes)
  && (match q.q_property with
     | None -> true
     | Some p -> List.mem p template.Template.properties)
  && (match q.q_author with
     | None -> true
     | Some a -> List.mem (norm a) (List.map norm (author_names template)))
  && (match q.q_tag with
     | None -> true
     | Some tag ->
         List.exists
           (fun (v : Template.variant) -> norm v.variant_name = norm tag)
           template.Template.variants)
  && (match q.q_state with
     | None -> true
     | Some s -> state_of_entry entry = s)
  &&
  match q.q_text with
  | None -> true
  | Some text -> contains_ci (full_text template) text

(* Indexed search: each indexed criterion names a posting list per shard;
   intersect starting from the smallest list, then post-filter free text.
   With no indexed criterion the shard is scanned (free text cannot be
   indexed by key).  The criterion keys (normalised author, class name,
   ...) are computed once per query, not once per shard: the shard loop
   runs [shard_count] times, and at catalogue scale its per-shard
   constant — one hashtable probe per criterion on a miss, no
   allocation — is what keeps search flat. *)
type criterion_keys = {
  k_class : string option;
  k_property : string option;
  k_author : string option;
  k_tag : string option;
  k_state : string option;
}

let criterion_keys q =
  {
    k_class = Option.map Template.class_name q.q_class;
    k_property = Option.map Bx.Properties.claim_name q.q_property;
    k_author = Option.map norm q.q_author;
    k_tag = Option.map norm q.q_tag;
    k_state = Option.map state_name q.q_state;
  }

exception Empty_posting

(* The posting lists for every given criterion, smallest first; raises
   [Empty_posting] when a criterion has no posting in this shard (the
   shard then contributes nothing). *)
let shard_postings k shard =
  let add idx key acc =
    match key with
    | None -> acc
    | Some key -> (
        match Hashtbl.find_opt idx key with
        | None -> raise_notrace Empty_posting
        | Some p -> p :: acc)
  in
  add shard.by_class k.k_class []
  |> add shard.by_property k.k_property
  |> add shard.by_author k.k_author
  |> add shard.by_tag k.k_tag
  |> add shard.by_state k.k_state
  |> List.sort (fun a b -> compare (Hashtbl.length a) (Hashtbl.length b))

let search_shard q k ~indexed shard acc =
  if not indexed then
    (* Unindexed query (free text or none): scan the shard. *)
    Hashtbl.fold
      (fun _ e acc -> if matches q e then e.id :: acc else acc)
      shard.table acc
  else
    match shard_postings k shard with
    | exception Empty_posting -> acc
    | [] -> assert false (* indexed implies at least one criterion *)
    | smallest :: rest ->
        let text_ok e =
          match q.q_text with
          | None -> true
          | Some text -> contains_ci (full_text (latest_of e)) text
        in
        Hashtbl.fold
          (fun key e acc ->
            if List.for_all (fun p -> Hashtbl.mem p key) rest && text_ok e
            then e.id :: acc
            else acc)
          smallest acc

let search t q =
  let k = criterion_keys q in
  let indexed =
    k.k_class <> None || k.k_property <> None || k.k_author <> None
    || k.k_tag <> None || k.k_state <> None
  in
  Array.fold_left
    (fun acc shard -> search_shard q k ~indexed shard acc)
    [] t.shards
  |> List.sort Identifier.compare

let resolve t id version =
  match version with
  | None -> latest t id
  | Some v -> find_version t id v

let cite t ?version id =
  match resolve t id version with
  | Error e -> Error e
  | Ok template -> Ok (Citation.entry ~id template)

let cite_bibtex t ?version id =
  match resolve t id version with
  | Error e -> Error e
  | Ok template -> Ok (Citation.entry_bibtex ~id template)

let export_entry entry =
  let path = Identifier.wiki_path entry.id in
  let versioned =
    List.rev_map
      (fun (v, template) ->
        (path ^ "/" ^ Version.to_string v, Sync.wiki_text template))
      entry.history
  in
  versioned @ [ (path, Sync.wiki_text (latest_of entry)) ]

let by_ord entries = List.sort (fun a b -> compare a.ord b.ord) entries

let export t = List.concat_map export_entry (by_ord (all_entries t))

let export_shard t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Registry.export_shard: shard out of range";
  let entries =
    Hashtbl.fold (fun _ e acc -> e :: acc) t.shards.(i).table []
  in
  List.concat_map export_entry (by_ord entries)

let shard_ids t i =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Registry.shard_ids: shard out of range";
  Hashtbl.fold (fun _ e acc -> e.id :: acc) t.shards.(i).table []
  |> List.sort Identifier.compare

(* Parse a page dump into (id, version history) groups, preserving the
   order in which identifiers first appear. *)
let group_pages pages =
  let versioned =
    List.filter (fun (path, _) -> String.contains path '/') pages
  in
  let parse_page (path, text) =
    match String.index_opt path '/' with
    | None -> Error (Printf.sprintf "unversioned page %s" path)
    | Some i -> (
        let version_s =
          String.sub path (i + 1) (String.length path - i - 1)
        in
        match Version.of_string version_s with
        | Error e -> Error e
        | Ok version -> (
            match Sync.of_wiki_text text with
            | Error e -> Error (Printf.sprintf "%s: %s" path e)
            | Ok template -> Ok (version, template)))
  in
  let by_id : (string, Identifier.t * (Version.t * Template.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  let rec build = function
    | [] -> Ok ()
    | page :: rest -> (
        match parse_page page with
        | Error e -> Error e
        | Ok (version, template) -> (
            match Identifier.of_title template.Template.title with
            | Error e -> Error e
            | Ok id ->
                let key = Identifier.to_string id in
                (match Hashtbl.find_opt by_id key with
                | None ->
                    order := key :: !order;
                    Hashtbl.replace by_id key (id, [ (version, template) ])
                | Some (id, history) ->
                    Hashtbl.replace by_id key
                      (id, (version, template) :: history));
                build rest))
  in
  match build versioned with
  | Error e -> Error e
  | Ok () ->
      Ok
        (List.rev_map
           (fun key ->
             let id, history = Hashtbl.find by_id key in
             ( id,
               List.sort (fun (v1, _) (v2, _) -> Version.compare v2 v1) history
             ))
           !order)

let import ?(shards = 1) pages =
  match group_pages pages with
  | Error e -> Error e
  | Ok grouped ->
      let t = create ~shards () in
      List.iter
        (fun (id, history) ->
          let entry = { id; ord = t.next_ord; history; pending = [] } in
          t.next_ord <- t.next_ord + 1;
          insert_entry t entry)
        grouped;
      Ok t

let replace_shard t i pages =
  if i < 0 || i >= Array.length t.shards then
    invalid_arg "Registry.replace_shard: shard out of range";
  match group_pages pages with
  | Error e -> Error e
  | Ok grouped ->
      let misplaced =
        List.filter (fun (id, _) -> shard_of_id t id <> i) grouped
      in
      if misplaced <> [] then
        Error
          (Printf.sprintf "replace_shard: %s does not hash to shard %d"
             (Identifier.to_string (fst (List.hd misplaced)))
             i)
      else begin
        let shard = t.shards.(i) in
        let incoming = Hashtbl.create 64 in
        List.iter
          (fun (id, history) ->
            Hashtbl.replace incoming (Identifier.to_string id) history)
          grouped;
        (* Entries the upstream no longer has: drop them, postings, ord
           and all.  ids_page tolerates the resulting ord holes. *)
        let stale =
          Hashtbl.fold
            (fun key e acc ->
              if Hashtbl.mem incoming key then acc else (key, e) :: acc)
            shard.table []
        in
        List.iter
          (fun (key, e) ->
            List.iter
              (fun (idx, k) -> idx_remove idx k e)
              (postings_of shard e);
            Hashtbl.remove shard.table key;
            Hashtbl.remove t.by_ord e.ord)
          stale;
        (* Survivors keep their ord (the index page stays stable);
           genuinely new entries append. *)
        List.iter
          (fun (id, history) ->
            match Hashtbl.find_opt shard.table (Identifier.to_string id) with
            | Some entry ->
                ignore
                  (reindexing shard entry (fun entry ->
                       entry.history <- history;
                       entry.pending <- [];
                       Ok ()))
            | None ->
                let entry = { id; ord = t.next_ord; history; pending = [] } in
                t.next_ord <- t.next_ord + 1;
                insert_entry t entry)
          grouped;
        Ok ()
      end

let overlay t pages =
  match group_pages pages with
  | Error e -> Error e
  | Ok grouped ->
      List.iter
        (fun (id, history) ->
          match find_entry t id with
          | Some entry ->
              ignore
                (reindexing (shard_of t id) entry (fun entry ->
                     entry.history <- history;
                     entry.pending <- [];
                     Ok ()))
          | None ->
              let entry = { id; ord = t.next_ord; history; pending = [] } in
              t.next_ord <- t.next_ord + 1;
              insert_entry t entry)
        grouped;
      Ok ()
