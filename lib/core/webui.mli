(** The wiki, as a pure request handler: the routing and rendering behind
    the [bxwiki] server, kept free of sockets so the test suite can drive
    it directly.

    Routes (paths are wiki paths, e.g. ["/examples:composers"]):
    - [GET /] — the index page: the entry list in submission order,
      paginated ([?page=N&per_page=M], default 100 per page), with the
      cross-reference index appended while the catalogue is small;
    - [GET /search] — query the catalogue by [class], [property],
      [author], [tag], [state] and/or free [text] (alias [q]), answered
      from the registry's secondary indexes;
    - [GET /<page>] — an entry's latest version as HTML;
    - [GET /<page>.wiki] — the raw wiki text (the {!Sync} get direction);
    - [GET /<page>.json] — the structured form ({!Json_codec});
    - [GET /manuscript] — the section 5.2 archival collection;
    - [GET /glossary] — the property glossary;
    - [POST /<page>] with wiki text as the body — parse the edited page
      through the {!Sync} lens and {!Registry.revise} the entry (the
      section 5.4 bx, live);
    - anything else — 404.

    POSTs are performed as the configured editor account; permission and
    validation failures surface as 403/400 with the message in the
    body. *)

type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;
      (** extra response headers ([(name, value)]), e.g. the integrity
          layer's [Warning] on quarantined entries or a computed
          [Retry-After] on 503s; usually empty *)
}

val handle :
  ?editor:Curation.account -> ?pages:(string * (unit -> string * string)) list
  -> ?query:string
  -> Registry.t -> meth:string -> path:string -> body:string -> response
(** [editor] defaults to a curator account named ["wiki"] (curators may
    edit anything, which is what a self-hosted wiki wants).  [pages] adds
    extra GET routes: each maps a path to a thunk producing (title, HTML
    fragment) — how the server mounts content from libraries this one
    cannot depend on (the live verification report, say).  [query] is the
    raw (still percent-encoded) query string; the index and [/search]
    read it, every other route ignores it. *)

val page_identifier : string -> Identifier.t option
(** The identifier a request path addresses, when it is an entry route:
    ["/examples:composers.wiki"] yields the composers identifier; [/],
    [/search], [/glossary], [/manuscript] and malformed names yield
    [None].  Purely syntactic — the entry need not exist — so a sharded
    server can route a request to its registry shard before taking any
    lock. *)

val html_page : title:string -> string -> string
(** Wrap an HTML fragment in the wiki's page chrome (exposed for the
    server's error pages). *)
