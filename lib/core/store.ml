let page_filename path =
  String.map (function ':' | '/' -> '_' | c -> c) path ^ ".wiki"

(* The path is reconstructed from page contents on load, so the flattened
   file name only needs to separate versioned from unversioned pages: a
   versioned page's name ends in "_<major>.<minor>.wiki". *)
let version_of_filename name =
  match Filename.chop_suffix_opt ~suffix:".wiki" name with
  | None -> None
  | Some base -> (
      match String.rindex_opt base '_' with
      | None -> None
      | Some i ->
          let suffix = String.sub base (i + 1) (String.length base - i - 1) in
          Result.to_option (Version.of_string suffix))

(* Durable and atomic: the contents go to a temp file, are flushed and
   fsync'd, and only then renamed over the target — a crash mid-save
   leaves the old file intact, never a truncated one.  Any failure names
   the path it happened on. *)
let write_file path contents =
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc contents;
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp path
  with
  | Sys_error e -> failwith (path ^ ": " ^ e)
  | Unix.Unix_error (e, _, _) -> failwith (path ^ ": " ^ Unix.error_message e)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let index_page registry =
  let lines =
    List.concat_map
      (fun id ->
        match Registry.versions registry id with
        | Error _ -> []
        | Ok versions ->
            [
              Printf.sprintf "* %s: versions %s"
                (Identifier.to_string id)
                (String.concat ", " (List.map Version.to_string versions));
            ])
      (Registry.ids registry)
  in
  String.concat "\n"
    (("+ Index" :: "" :: lines) @ [ "" ])

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

(* Write one entry-set's pages and JSON sidecars under [dir]; the caller
   decides which slice of the registry to persist ({!save} = all entries,
   {!save_shard} = one shard).  Cost is proportional to the pages written,
   not to catalogue size. *)
let save_pages ~dir registry pages latest_ids =
  List.iter
    (fun (path, text) ->
      write_file (Filename.concat dir (page_filename path)) text)
    pages;
  (* JSON sidecars for the latest version of each entry: the
     structured interchange form of section 5.1, alongside the wiki
     markup. *)
  let sidecars =
    List.filter_map
      (fun id ->
        match Registry.latest registry id with
        | Error _ -> None
        | Ok template ->
            let file =
              String.map
                (function ':' | '/' -> '_' | c -> c)
                (Identifier.wiki_path id)
              ^ ".json"
            in
            Some (file, Json_codec.to_string ~indent:2 template ^ "\n"))
      latest_ids
  in
  List.iter
    (fun (file, contents) -> write_file (Filename.concat dir file) contents)
    sidecars;
  List.length pages + List.length sidecars

let save ~dir registry =
  try
    ensure_dir dir;
    let written =
      save_pages ~dir registry (Registry.export registry)
        (Registry.ids registry)
    in
    write_file (Filename.concat dir "INDEX.wiki") (index_page registry);
    Ok (written + 1)
  with
  | Sys_error e | Failure e -> Error e

let save_shard ~dir registry shard =
  try
    ensure_dir dir;
    Ok
      (save_pages ~dir registry
         (Registry.export_shard registry shard)
         (Registry.shard_ids registry shard))
  with
  | Sys_error e | Failure e -> Error e

let load_pages ?(skip = fun _ -> false) ~dir () =
  try
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      failwith (dir ^ " is not a directory");
    let files = Sys.readdir dir in
    Array.sort String.compare files;
    let pages =
      Array.to_list files
      |> List.filter_map (fun name ->
             if skip name then None
             else
               match version_of_filename name with
               | None -> None
               | Some version ->
                   Some (version, read_file (Filename.concat dir name)))
    in
    (* Rebuild (path, text) pairs for Registry.import: import only needs
       the version after the slash — entry identity comes from the page
       contents, so the synthetic path prefix just has to be unique. *)
    Ok
      (List.mapi
         (fun i (version, text) ->
           (Printf.sprintf "page%d/%s" i (Version.to_string version), text))
         pages)
  with
  | Sys_error e | Failure e -> Error e

let load ?shards ~dir () =
  match load_pages ~dir () with
  | Error e -> Error e
  | Ok as_pages -> Registry.import ?shards as_pages
