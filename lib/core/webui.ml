type response = {
  status : int;
  content_type : string;
  body : string;
  headers : (string * string) list;
}

let html_page ~title body =
  Printf.sprintf
    "<!doctype html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title>\n\
     <style>body{font-family:sans-serif;max-width:50em;margin:2em \
     auto;padding:0 1em;line-height:1.5}code,pre{background:#f4f4f4}\n\
     h1{border-bottom:2px solid #ccc}h2{color:#444}</style></head>\n\
     <body>%s</body></html>\n"
    (Markup.html_escape title) body

let respond ?(content_type = "text/html; charset=utf-8") ?(headers = []) status
    body =
  { status; content_type; body; headers }

let not_found path =
  respond 404 (html_page ~title:"Not found" ("<h1>No such page</h1><p>" ^ Markup.html_escape path ^ "</p>"))

(* {2 Query strings}

   [Httpd] lives above this library, so the handler does its own query
   parsing — including percent-decoding, which search values (spaces in
   author names) need. *)

let urldecode s =
  let buf = Buffer.create (String.length s) in
  let hex c =
    match c with
    | '0' .. '9' -> Some (Char.code c - Char.code '0')
    | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
    | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
    | _ -> None
  in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex s.[i + 1], hex s.[i + 2]) with
          | Some h, Some l ->
              Buffer.add_char buf (Char.chr ((h * 16) + l));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let query_params query =
  if query = "" then []
  else
    List.filter_map
      (fun pair ->
        if pair = "" then None
        else
          match String.index_opt pair '=' with
          | None -> Some (urldecode pair, "")
          | Some i ->
              Some
                ( urldecode (String.sub pair 0 i),
                  urldecode
                    (String.sub pair (i + 1) (String.length pair - i - 1)) ))
      (String.split_on_char '&' query)

(* {2 The paginated index}

   The entry list is sliced by submission order ([Registry.ids_page]), so
   rendering one page costs O(page size) whatever the catalogue holds.
   The cross-reference index is itself a whole-catalogue scan, so it only
   appears while the catalogue is small enough for that to be free. *)

let index_per_page_default = 100
let index_with_crossref_max = 200

let index_page registry query =
  let params = query_params query in
  let int_param name default =
    match List.assoc_opt name params with
    | None -> default
    | Some v -> ( match int_of_string_opt v with Some n -> n | None -> default)
  in
  let per_page =
    max 1 (min 1000 (int_param "per_page" index_per_page_default))
  in
  let total = Registry.size registry in
  let pages = max 1 ((total + per_page - 1) / per_page) in
  let page = max 1 (min pages (int_param "page" 1)) in
  let offset = (page - 1) * per_page in
  let entry_list =
    Markup.Bullets
      (List.map
         (fun id ->
           let path = Identifier.wiki_path id in
           Printf.sprintf "%s — /%s" (Identifier.to_string id) path)
         (Registry.ids_page registry ~offset ~limit:per_page))
  in
  let nav =
    if pages <= 1 then []
    else
      let link p label =
        Markup.Link
          {
            target = Printf.sprintf "/?page=%d&per_page=%d" p per_page;
            label;
          }
      in
      [
        Markup.Para
          ((if page > 1 then [ link (page - 1) "newer"; Markup.Text " · " ]
            else [])
          @ [
              Markup.Text
                (Printf.sprintf "page %d of %d (%d entries)" page pages total);
            ]
          @
          if page < pages then [ Markup.Text " · "; link (page + 1) "older" ]
          else []);
      ]
  in
  let doc =
    [
      Markup.Heading (1, Citation.repository_name);
      Markup.Para
        [
          Markup.Text
            "A curated repository of bidirectional transformation \
             examples. Every page is a lens view of a structured entry; \
             editing a page and posting it back runs the section 5.4 bx.";
        ];
      Markup.Heading (2, "Entries");
      entry_list;
    ]
    @ nav
    @ (if total <= index_with_crossref_max then Catalogue_index.render registry
       else [])
  in
  respond 200 (html_page ~title:Citation.repository_name (Markup.to_html doc))

(* "/examples:composers.wiki" -> (id-ish page name, `Wiki) etc. *)
let split_extension path =
  let strip suffix =
    Filename.chop_suffix_opt ~suffix path
  in
  match strip ".wiki" with
  | Some base -> (base, `Wiki)
  | None -> (
      match strip ".json" with
      | Some base -> (base, `Json)
      | None -> (path, `Html))

let find_entry registry page =
  (* Pages look like "examples:composers"; identifiers canonicalise the
     part after the colon. *)
  let name =
    match String.index_opt page ':' with
    | Some i -> String.sub page (i + 1) (String.length page - i - 1)
    | None -> page
  in
  match Identifier.of_string name with
  | Error _ -> None
  | Ok id -> (
      match Registry.latest registry id with
      | Ok template -> Some (id, template)
      | Error _ -> None)

(* {2 Search}

   A thin HTML front on {!Registry.search}: every parameter narrows the
   result, unknown names are a 400 (a typo'd class silently matching
   nothing would be worse), and the criteria the indexes answer make the
   whole thing flat-latency at catalogue scale. *)

let search_page registry query =
  let params = query_params query in
  let param name =
    match List.assoc_opt name params with
    | Some "" | None -> None
    | Some v -> Some v
  in
  let bad what v =
    Error (Printf.sprintf "unknown %s %S" what v)
  in
  let parse_opt what of_name = function
    | None -> Ok None
    | Some v -> (
        match of_name v with Some x -> Ok (Some x) | None -> bad what v)
  in
  let ( let* ) = Result.bind in
  let built =
    let* cls = parse_opt "class" Template.class_of_name (param "class") in
    let* property =
      parse_opt "property" Bx.Properties.claim_of_name (param "property")
    in
    let* state = parse_opt "state" Registry.state_of_name (param "state") in
    let text =
      match param "text" with Some _ as t -> t | None -> param "q"
    in
    Ok
      {
        Registry.q_class = cls;
        q_property = property;
        q_text = text;
        q_author = param "author";
        q_tag = param "tag";
        q_state = state;
      }
  in
  match built with
  | Error e ->
      respond 400
        (html_page ~title:"Bad search" ("<p>" ^ Markup.html_escape e ^ "</p>"))
  | Ok q ->
      let ids = Registry.search registry q in
      let describe =
        List.filter_map
          (fun (name, value) ->
            Option.map (fun v -> name ^ "=" ^ v) value)
          [
            ("class", param "class");
            ("property", param "property");
            ("author", param "author");
            ("tag", param "tag");
            ("state", param "state");
            ("text", (match param "text" with None -> param "q" | t -> t));
          ]
      in
      let doc =
        [
          Markup.Heading (1, "Search");
          Markup.Para
            [
              Markup.Text
                (Printf.sprintf "%d match%s%s" (List.length ids)
                   (if List.length ids = 1 then "" else "es")
                   (if describe = [] then ""
                    else " for " ^ String.concat ", " describe));
            ];
          Markup.Bullets
            (List.map
               (fun id ->
                 Printf.sprintf "%s — /%s" (Identifier.to_string id)
                   (Identifier.wiki_path id))
               ids);
        ]
      in
      respond 200 (html_page ~title:"Search" (Markup.to_html doc))

let glossary_page () =
  let doc =
    Markup.Heading (1, "Glossary")
    :: List.concat_map
         (fun (term, definition) ->
           [ Markup.Heading (2, term); Markup.Para [ Markup.Text definition ] ])
         (Glossary.terms ())
  in
  respond 200 (html_page ~title:"Glossary" (Markup.to_html doc))

(* The identifier a request path concerns, if it is an entry route at
   all: "/examples:composers.wiki" -> the composers identifier.  This is
   static routing — the entry need not exist — which is what lets a
   sharded service pick the right shard lock (and journal segment)
   before touching the registry. *)
let page_identifier path =
  if
    path = "/" || path = "" || path = "/glossary" || path = "/manuscript"
    || path = "/search"
  then None
  else if String.length path < 1 || path.[0] <> '/' then None
  else
    let page, _ =
      split_extension (String.sub path 1 (String.length path - 1))
    in
    let name =
      match String.index_opt page ':' with
      | Some i -> String.sub page (i + 1) (String.length page - i - 1)
      | None -> page
    in
    match Identifier.of_string name with
    | Error _ -> None
    | Ok id -> Some id

let get registry ~query path =
  if path = "/" || path = "" then index_page registry query
  else if path = "/search" then search_page registry query
  else if path = "/glossary" then glossary_page ()
  else if path = "/manuscript" then
    match Markup.parse (Manuscript.generate registry) with
    | Ok doc ->
        respond 200 (html_page ~title:"Collected Examples" (Markup.to_html doc))
    | Error e -> respond 500 (html_page ~title:"Error" (Markup.html_escape e))
  else
    let page, format =
      split_extension (String.sub path 1 (String.length path - 1))
    in
    match find_entry registry page with
    | None -> not_found path
    | Some (id, template) -> (
        match format with
        | `Wiki ->
            respond ~content_type:"text/plain; charset=utf-8" 200
              (Sync.wiki_text template)
        | `Json ->
            respond ~content_type:"application/json" 200
              (Json_codec.to_string ~indent:2 template ^ "\n")
        | `Html ->
            let doc = Sync.render_entry template in
            let footer =
              Printf.sprintf
                "<hr><p><a href=\"/\">index</a> · <a \
                 href=\"/%s.wiki\">wiki source</a> · <a \
                 href=\"/%s.json\">json</a> · cite: %s</p>"
                page page
                (Markup.html_escape (Citation.entry ~id template))
            in
            respond 200
              (html_page ~title:template.Template.title
                 (Markup.to_html doc ^ footer)))

let post ~editor registry path body =
  let page, _ = split_extension (String.sub path 1 (String.length path - 1)) in
  match find_entry registry page with
  | None -> not_found path
  | Some (id, current) -> (
      match Sync.of_wiki_text ~fallback:current body with
      | Error e ->
          respond 400
            (html_page ~title:"Bad page" ("<p>" ^ Markup.html_escape e ^ "</p>"))
      | Ok edited -> (
          match Registry.revise registry ~as_:editor id edited with
          | Ok version ->
              respond 200
                (html_page ~title:"Saved"
                   (Printf.sprintf "<p>Saved as version %s.</p>"
                      (Version.to_string version)))
          | Error (Registry.Permission_denied msg) ->
              respond 403 (html_page ~title:"Forbidden" (Markup.html_escape msg))
          | Error e ->
              respond 400
                (html_page ~title:"Rejected"
                   (Markup.html_escape (Registry.error_message e)))))

let default_editor = Curation.account ~role:Curation.Curator "wiki"

let handle ?(editor = default_editor) ?(pages = []) ?(query = "") registry
    ~meth ~path ~body =
  match String.uppercase_ascii meth with
  | "GET" -> (
      match List.assoc_opt path pages with
      | Some render ->
          let title, fragment = render () in
          respond 200 (html_page ~title fragment)
      | None -> get registry ~query path)
  | "POST" -> post ~editor registry path body
  | _ ->
      respond 405
        (html_page ~title:"Method not allowed" "<p>Use GET or POST.</p>")
