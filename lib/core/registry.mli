(** The repository itself: a curated, versioned store of example entries.

    Behaviour follows sections 5.1–5.2 of the paper:
    - entries are submitted at version [0.1] and remain {e provisional}
      ([0.x]) until reviewed and approved;
    - anyone with an account comments; reviewers endorse; curators approve
      (three-level curatorial structure) — and an author may not endorse
      their own entry;
    - approval promotes the entry to [1.0], recording the endorsing
      reviewers in the template;
    - {e old versions are kept available} so published references remain
      valid;
    - identifiers are stable; citation strings are generated per version;
    - the whole store exports to (and re-imports from) wiki pages through
      the {!Sync} lens.

    The store is partitioned into identifier-hashed {e shards} (default 1)
    so lookup, mutation and persistence cost are independent of catalogue
    size: every entry lives in exactly one shard, chosen by a stable hash
    of its canonical identifier.  Each shard additionally maintains
    incremental secondary indexes (by author, tag, example class, property
    claim and curation state), kept transactionally in step with every
    mutation, so {!search} is posting-list intersection rather than a full
    scan. *)

type t

type error =
  | Not_found of string
  | Permission_denied of string
  | Invalid of string list
  | Conflict of string

val error_message : error -> string

val create : ?shards:int -> unit -> t
(** [create ?shards ()] makes an empty registry partitioned into [shards]
    identifier-hashed shards (default [1]).  Raises [Invalid_argument] if
    [shards < 1]. *)

val ids : t -> Identifier.t list
(** Sorted. *)

val ids_page : t -> offset:int -> limit:int -> Identifier.t list
(** A slice of the catalogue in submission order: identifiers at
    positions [offset .. offset + limit - 1].  Costs O(limit), not
    O(catalogue) — submission positions are looked up directly, which is
    what keeps a paginated index page flat-latency at any catalogue
    size. *)

val size : t -> int

(** {1 Shards} *)

val shard_count : t -> int

val shard_of_id : t -> Identifier.t -> int
(** The shard an identifier hashes to.  Stable across runs: the hash is
    part of the on-disk layout (journal segment assignment). *)

val shard_ids : t -> int -> Identifier.t list
(** Sorted identifiers living in one shard.  Raises [Invalid_argument] if
    the shard index is out of range. *)

(** {1 Contribution workflow} *)

val submit :
  t -> as_:Curation.account -> Template.t -> (Identifier.t, error) result
(** Add a new entry.  The template must validate, must be provisional
    (version [0.x], no reviewers), and its identifier (from the title) must
    be fresh.  Any account may submit. *)

val comment :
  t -> as_:Curation.account -> Identifier.t -> text:string -> (unit, error) result
(** Append a comment (attributed to the account) to the latest version. *)

val endorse :
  t -> as_:Curation.account -> Identifier.t -> (unit, error) result
(** A reviewer endorses the latest version as being of usable quality.
    Requires review permission; authors cannot endorse their own entries;
    endorsing twice is a conflict. *)

val endorsements : t -> Identifier.t -> (string list, error) result
(** Names of reviewers who endorsed the latest version so far. *)

val approve :
  t -> as_:Curation.account -> Identifier.t -> (Version.t, error) result
(** A curator approves an entry that has at least one endorsement: a new
    version is created by {!Version.promote}, with the endorsing reviewers
    recorded in the template's Reviewers field. *)

val revise :
  t -> as_:Curation.account -> Identifier.t -> Template.t
  -> (Version.t, error) result
(** Publish a new version of an existing entry (same identifier; the title
    must not change, preserving stable references).  Requires edit
    permission (curator, or a listed author of the latest version).  The
    version is forced to the next in the linear sequence; pending
    endorsements are cleared. *)

(** {1 Lookup} *)

val latest : t -> Identifier.t -> (Template.t, error) result
val find_version : t -> Identifier.t -> Version.t -> (Template.t, error) result
val versions : t -> Identifier.t -> (Version.t list, error) result
(** Oldest first. *)

(** Where an entry sits in the curation lifecycle: freshly submitted
    ([Provisional]), endorsed by at least one reviewer but not yet approved
    ([Endorsed]), or approved to a non-provisional version
    ([Published]). *)
type curation_state = Provisional | Endorsed | Published

val state_name : curation_state -> string
val state_of_name : string -> curation_state option

type query = {
  q_class : Template.example_class option;
  q_property : Bx.Properties.claim option;
  q_text : string option;  (** Case-insensitive substring over all fields. *)
  q_author : string option;  (** Case-insensitive exact author name. *)
  q_tag : string option;  (** Case-insensitive exact variant name. *)
  q_state : curation_state option;
}

val query :
  ?cls:Template.example_class -> ?property:Bx.Properties.claim
  -> ?text:string -> ?author:string -> ?tag:string -> ?state:curation_state
  -> unit -> query

val search : t -> query -> Identifier.t list
(** Identifiers of entries whose latest version matches all given
    criteria, sorted.  Class, property, author, tag and curation-state
    criteria are answered from the incremental shard indexes (posting-list
    intersection); free text is a post-filter over the candidates (or a
    scan when it is the only criterion). *)

(** {1 Citations and export} *)

val cite :
  t -> ?version:Version.t -> Identifier.t -> (string, error) result

val cite_bibtex :
  t -> ?version:Version.t -> Identifier.t -> (string, error) result

val export : t -> (string * string) list
(** All versions of all entries as (path, wiki text) pairs — the local,
    wiki-markup-independent copy of section 5.4.  Paths look like
    ["examples:composers/0.1"]; the latest version is additionally
    exported at ["examples:composers"].  Submission-order stable. *)

val export_shard : t -> int -> (string * string) list
(** Like {!export} restricted to one shard, letting callers stream a big
    catalogue shard-by-shard instead of materialising all pages at once.
    The concatenation over all shards is a permutation of {!export}.
    Raises [Invalid_argument] if the shard index is out of range. *)

val import : ?shards:int -> (string * string) list -> (t, string) result
(** Rebuild a registry from an {!export} dump (versioned pages only; the
    latest-version aliases are ignored), partitioned into [shards]
    (default 1).  Round-trips with {!export} up to page ordering; entries
    re-hash to shards, so the shard count may differ from the registry
    that produced the dump. *)

val overlay : t -> (string * string) list -> (unit, string) result
(** Lay an {!export}-format page dump over an existing registry: an
    entry already present is replaced wholesale (history and indexes;
    its submission order is kept, pending comments are dropped — a
    snapshot does not carry them), a new one is appended.  Lets a
    sharded boot start from the seed and fold in per-shard snapshot
    pages without rebuilding from scratch. *)

val replace_shard : t -> int -> (string * string) list -> (unit, string) result
(** Make shard [i]'s contents exactly the entries in the given
    {!export}-format page dump: entries present on both sides are
    replaced wholesale keeping their submission order (like {!overlay}),
    entries absent from the dump are removed (table, indexes and
    submission order), new ones are appended.  Every page must hash to
    shard [i]; a misplaced identifier is an [Error] and leaves the
    registry untouched.  This is the anti-entropy repair primitive: a
    follower whose shard digest diverges installs the upstream's shard
    pages over its own.  Raises [Invalid_argument] if the shard index is
    out of range. *)
