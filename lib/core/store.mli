(** Filesystem persistence: the durable form of the section 5.4 "local
    copy" — every version of every entry saved as a wiki page under a
    directory, and loaded back through the {!Sync} parser.

    Layout: one file per versioned page, named by flattening the wiki
    path (["examples:composers/0.1"] becomes
    ["examples_composers_0.1.wiki"]), plus the latest version at the
    unversioned name and a JSON sidecar
    (["examples_composers.json"], the section 5.1 structured form).  An
    [INDEX.wiki] file lists every entry with its versions, making the
    dump browsable without the library. *)

val save : dir:string -> Registry.t -> (int, string) result
(** Write the registry's pages under [dir] (created if missing, must be a
    directory otherwise).  Returns the number of files written.  Existing
    files in [dir] are overwritten, never deleted.  Each file is written
    atomically (temp file, fsync, rename), so a crash mid-save never
    leaves a truncated page; on failure the error names the first path
    that could not be written. *)

val save_shard : dir:string -> Registry.t -> int -> (int, string) result
(** Like {!save} restricted to one registry shard (no [INDEX.wiki]):
    the per-shard snapshot used by segmented-journal compaction.  Cost is
    proportional to the shard, not the catalogue. *)

val load : ?shards:int -> dir:string -> unit -> (Registry.t, string) result
(** Rebuild a registry from a directory written by {!save}, partitioned
    into [shards] (default 1).  Only versioned pages participate
    (latest-aliases and the index are ignored). *)

val load_pages :
  ?skip:(string -> bool) -> dir:string -> unit
  -> ((string * string) list, string) result
(** The import-ready (path, text) pairs stored under [dir] — what {!load}
    feeds to {!Registry.import}.  Exposed so a boot sequence can merge
    pages from several per-shard snapshot directories and import once.
    [skip] excludes files by name before they are read — the integrity
    layer's hook for quarantining files that failed checksum
    verification (default: keep everything). *)

val page_filename : string -> string
(** The file name used for a wiki path (exposed for tests). *)
