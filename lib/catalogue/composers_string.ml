open Bx_regex
open Bx_strlens

let word =
  (* Names and nationalities: letters, possibly several words; also '?'
     so that created records (unknown data) stay inside the type. *)
  let letter =
    Cset.union (Cset.range 'A' 'Z') (Cset.union (Cset.range 'a' 'z')
                                       (Cset.singleton '?'))
  in
  Regex.(seq (plus (cset letter))
           (star (seq (chr ' ') (plus (cset letter)))))

let dates =
  let digit_or_q = Cset.union (Cset.range '0' '9') (Cset.singleton '?') in
  Regex.(
    concat_list
      [ repeat 4 (cset digit_or_q); chr '-'; repeat 4 (cset digit_or_q) ])

let comma = Regex.str ", "

(* Rebuilt from scratch on every call (all typing checks rerun) so tests
   and benchmarks can measure construction; the regexes are interned and
   the DFAs cached, so repeated construction compiles nothing twice. *)
let make_line () =
  Slens.concat_list
    [
      Slens.copy word;
      Slens.copy comma;
      Slens.del (Regex.seq dates comma) ~default:"????-????, ";
      Slens.copy word;
      Slens.copy (Regex.chr '\n');
    ]

let build_lens () = Slens.star_key ~key:Fun.id (make_line ())
let line = make_line ()
let lens = build_lens ()

let name_of_view_line line =
  match String.index_opt line ',' with
  | Some i -> String.sub line 0 i
  | None -> line

let name_keyed_lens = Slens.star_key ~key:name_of_view_line line
let diff_lens = Slens.star_diff ~key:Fun.id line
let positional_lens = Slens.star line

(* The same lens on the copying reference engine — the baseline the
   benchmarks compare against and the oracle of the equivalence tests. *)
let ref_lens =
  Slens_ref.star_key ~key:Fun.id
    (Slens_ref.concat_list
       [
         Slens_ref.copy word;
         Slens_ref.copy comma;
         Slens_ref.del (Regex.seq dates comma) ~default:"????-????, ";
         Slens_ref.copy word;
         Slens_ref.copy (Regex.chr '\n');
       ])

(* ------------------------------------------------------------------ *)
(* Deterministic synthetic documents, shared by benchmarks and tests.
   [token i] is a letters-only word (the lens's types demand letters). *)

let token i =
  let letters = "abcdefghij" in
  let rec go i acc =
    let acc = String.make 1 letters.[i mod 10] ^ acc in
    if i < 10 then acc else go (i / 10) acc
  in
  "c" ^ go i ""

let synthetic_source k =
  String.concat ""
    (List.init k (fun i ->
         Printf.sprintf "%s, 1900-1999, %s\n" (token i) (token (i mod 7))))

let synthetic_view k =
  (* Reversed order so dictionary alignment really searches. *)
  String.concat ""
    (List.init k (fun i ->
         let i = k - 1 - i in
         Printf.sprintf "%s, %s\n" (token i) (token (i mod 7))))

let source_of_composers m =
  Composers.canon_m m
  |> List.map (fun (c : Composers.composer) ->
         Printf.sprintf "%s, %s, %s\n" c.name c.dates c.nationality)
  |> String.concat ""

let template =
  let open Bx_repo in
  Template.make ~title:"COMPOSERS-BOOMERANG"
    ~classes:[ Template.Precise ]
    ~overview:
      "The original, asymmetric form of the Composers example: a \
       resourceful string lens from a CSV of name, dates, nationality \
       records to a view listing only name and nationality."
    ~models:
      [
        Template.model_desc ~name:"S"
          "Newline-terminated records 'name, dddd-dddd, nationality'."
          ~meta_model:"(word ', ' dates ', ' word '\\n')*";
        Template.model_desc ~name:"V"
          "Newline-terminated records 'name, nationality'."
          ~meta_model:"(word ', ' word '\\n')*";
      ]
    ~consistency:
      "The view is exactly the source with each record's dates field \
       deleted; records correspond one to one, in order."
    ~restoration:
      {
        Template.rest_forward =
          "get: delete the dates field of every record.";
        Template.rest_backward =
          "put: align view records to source records by their (name, \
           nationality) content, as dictionary lenses do; matched records \
           keep their dates, unmatched records are created with dates \
           ????-????.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Well_behaved;
        ]
    ~variants:
      [
        Template.variant ~name:"positional-alignment"
          "Replace the dictionary star by the plain star: dates then stay \
           at their list positions instead of following their composers \
           under reordering.";
      ]
    ~discussion:
      "The dictionary (resourceful) iteration is what lets hidden data \
       survive view edits that reorder records: the POPL 2008 paper \
       introduced chunks and keys for exactly this example. Deleting a \
       record and putting it back within a single put preserves its \
       dates; across two puts the complement is gone, matching the \
       state-based variant's undoability failure."
    ~references:
      [
        Reference.make
          ~authors:
            [
              "Aaron Bohannon"; "J. Nathan Foster"; "Benjamin C. Pierce";
              "Alexandre Pilkiewicz"; "Alan Schmitt";
            ]
          ~title:"Boomerang: Resourceful Lenses for String Data"
          ~venue:"POPL" ~year:2008 ~doi:"10.1145/1328438.1328487" ();
      ]
    ~authors:
      [
        Contributor.make ~affiliation:"University of Edinburgh" "James Cheney";
      ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/composers_string.ml";
      ]
    ()
