(** COMPOSERS-BOOMERANG — the {e original, asymmetric} variant of the
    Composers example, as in Bohannon et al., "Boomerang: Resourceful
    Lenses for String Data" (POPL 2008): a dictionary string lens whose
    source is a newline-terminated CSV of ["name, dates, nationality"]
    records and whose view projects each record to ["name, nationality"].

    Because the iteration is {e resourceful} (chunks are aligned by their
    whole view line), the dates of a composer follow it when the view is
    reordered — the behaviour state-based restoration cannot provide, and
    the reason the paper's Discussion says undoability fails there. *)

val lens : Bx_strlens.Slens.t
(** The dictionary lens.  Source type:
    [(name, dddd-dddd, nationality\n)*]; view type: [(name, nationality\n)*]
    where names and nationalities are words over [A-Za-z ?]. *)

val build_lens : unit -> Bx_strlens.Slens.t
(** Construct {!lens} from scratch, rerunning every static check
    (ambiguity analyses, splitter compilation).  Used by the tests to
    assert that the {!Bx_regex.Dfa.compile} cache makes reconstruction
    free of DFA builds, and by the benchmarks to time construction. *)

val diff_lens : Bx_strlens.Slens.t
(** The same lens with LCS (diff) chunk alignment — the third point of
    the alignment-strategy ablation. *)

val name_keyed_lens : Bx_strlens.Slens.t
(** The dictionary lens keyed by the composer's NAME only (the POPL'08
    [key] combinator's point): a nationality edit then reuses the old
    chunk — and its dates — instead of looking like delete-plus-create. *)

val positional_lens : Bx_strlens.Slens.t
(** The same lens with {e positional} chunk alignment — the ablation
    showing what resourcefulness buys: under view reordering, dates stay
    at their positions instead of following their composers. *)

val source_of_composers : Composers.m -> string
(** Render a set of composers as a source document (sorted). *)

val template : Bx_repo.Template.t
(** The repository entry for this variant. *)
