(** COMPOSERS-BOOMERANG — the {e original, asymmetric} variant of the
    Composers example, as in Bohannon et al., "Boomerang: Resourceful
    Lenses for String Data" (POPL 2008): a dictionary string lens whose
    source is a newline-terminated CSV of ["name, dates, nationality"]
    records and whose view projects each record to ["name, nationality"].

    Because the iteration is {e resourceful} (chunks are aligned by their
    whole view line), the dates of a composer follow it when the view is
    reordered — the behaviour state-based restoration cannot provide, and
    the reason the paper's Discussion says undoability fails there. *)

val lens : Bx_strlens.Slens.t
(** The dictionary lens.  Source type:
    [(name, dddd-dddd, nationality\n)*]; view type: [(name, nationality\n)*]
    where names and nationalities are words over [A-Za-z ?]. *)

val build_lens : unit -> Bx_strlens.Slens.t
(** Construct {!lens} from scratch, rerunning every static check
    (ambiguity analyses, splitter compilation).  Used by the tests to
    assert that the {!Bx_regex.Dfa.compile} cache makes reconstruction
    free of DFA builds, and by the benchmarks to time construction. *)

val diff_lens : Bx_strlens.Slens.t
(** The same lens with LCS (diff) chunk alignment — the third point of
    the alignment-strategy ablation. *)

val name_keyed_lens : Bx_strlens.Slens.t
(** The dictionary lens keyed by the composer's NAME only (the POPL'08
    [key] combinator's point): a nationality edit then reuses the old
    chunk — and its dates — instead of looking like delete-plus-create. *)

val positional_lens : Bx_strlens.Slens.t
(** The same lens with {e positional} chunk alignment — the ablation
    showing what resourcefulness buys: under view reordering, dates stay
    at their positions instead of following their composers. *)

val ref_lens : Bx_strlens.Slens_ref.t
(** {!lens} rebuilt on the copying reference engine
    ({!Bx_strlens.Slens_ref}): the baseline for the P7 benchmark series
    and the oracle of the engine-equivalence tests. *)

val token : int -> string
(** A deterministic letters-only word for index [i] — the vocabulary of
    the synthetic documents. *)

val synthetic_source : int -> string
(** A [k]-record source document ["<token>, 1900-1999, <token>\n"...],
    deterministic in [k].  Shared by benchmarks and tests. *)

val synthetic_view : int -> string
(** The matching [k]-record view document, in {e reversed} record order
    so that dictionary alignment has real work to do. *)

val source_of_composers : Composers.m -> string
(** Render a set of composers as a source document (sorted). *)

val template : Bx_repo.Template.t
(** The repository entry for this variant. *)
