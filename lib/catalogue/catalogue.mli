(** The seed catalogue: every entry shipped with the repository, and the
    seeding routine that populates a registry with them.

    Mirroring the paper, all seeded entries are provisional (version 0.1,
    "Reviewers: none yet"); the curation workflow that promotes them is
    exercised separately by the test suite and the examples. *)

val all : unit -> Bx_repo.Template.t list
(** Every catalogue template, in presentation order (COMPOSERS first). *)

val find : string -> Bx_repo.Template.t option
(** Look up a catalogue template by title (case-insensitive). *)

val seed : ?shards:int -> unit -> Bx_repo.Registry.t
(** A registry populated with the full catalogue, submitted by each
    entry's first author.  Raises [Failure] if any entry fails template
    validation — the test suite relies on this never happening. *)
