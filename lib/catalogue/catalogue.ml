let all () =
  [
    Composers.template;
    Composers_string.template;
    Composers_edit.template;
    Composers_symlens.template;
    Uml2rdbms.template;
    Families2persons.template;
    Bookstore.template;
    Bookstore_edit.template;
    View_update.template;
    Replicas.template;
    People.template;
    Lines.template;
    Celsius.template;
    Formatter.template;
    Wiki_sync_example.template;
    Migration_industrial.template;
    Spreadsheet_sketch.template;
  ]

let find title =
  let t = String.uppercase_ascii (String.trim title) in
  List.find_opt
    (fun tmpl -> String.uppercase_ascii tmpl.Bx_repo.Template.title = t)
    (all ())

let seed ?shards () =
  let registry = Bx_repo.Registry.create ?shards () in
  List.iter
    (fun template ->
      let submitter =
        match template.Bx_repo.Template.authors with
        | author :: _ ->
            Bx_repo.Curation.account author.Bx_repo.Contributor.person_name
        | [] -> Bx_repo.Curation.account "anonymous"
      in
      match Bx_repo.Registry.submit registry ~as_:submitter template with
      | Ok _ -> ()
      | Error e ->
          failwith
            (Printf.sprintf "seeding %s: %s" template.Bx_repo.Template.title
               (Bx_repo.Registry.error_message e)))
    (all ());
  registry
