(** The repository as a service: {!Bx_repo.Registry} behind a
    reader/writer lock, handled by a pool of worker domains, made
    durable by the {!Journal} and observable through {!Metrics}.

    The seed [bxwiki] was a sequential connection-per-request loop with
    in-process-only state; this module supplies what the paper's
    section 5 "living repository" needs from its infrastructure:

    - {b Concurrency}: an accept loop feeds a queue drained by worker
      domains; GETs run under a shared read lock (and mostly out of the
      {!Respcache}), POSTs serialise under the write lock.  One slow
      client no longer stalls every other.
    - {b Durability}: with a journal directory configured, every
      accepted edit is fsync'd to the {!Journal} before the 200 is
      sent; startup replays the log on top of the last snapshot, and
      the log is compacted into a fresh snapshot every
      [compact_every] edits.  [kill -9] loses nothing acknowledged.
    - {b Hardened HTTP}: {!Httpd} parsing limits, per-socket read
      timeouts, keep-alive, and graceful shutdown — {!shutdown} (wired
      to SIGTERM by [bin/bxwiki]) stops the accept loop, drains
      in-flight work, writes a final snapshot and returns.
    - {b Observability}: [GET /metrics] serves the {!Metrics} in
      Prometheus text format. *)

type config = {
  journal_dir : string option;
      (** durable state lives here; [None] = in-memory only (the seed
          behaviour) *)
  cache_capacity : int;  (** rendered-page cache entries *)
  compact_every : int;
      (** snapshot + truncate once the log holds this many edits;
          [0] disables automatic compaction *)
  max_body : int;  (** request body cap in bytes *)
  read_timeout : float;  (** per-socket receive timeout, seconds *)
  lens_workers : int;
      (** domains fanned over by the batch lens endpoints
          ([/slens/<name>/get_batch] and [put_batch]) *)
  queue_capacity : int;
      (** pending-connection bound: beyond it the accept loop sheds with
          a fast 503 + [Retry-After] instead of queueing *)
  queue_deadline : float;
      (** seconds a connection may wait queued before a worker sheds it
          unprocessed (the per-request deadline budget) *)
  write_timeout : float;
      (** per-socket send timeout, seconds — a slow reader cannot pin a
          worker *)
  failpoints_admin : bool;
      (** mount [GET/PUT /debug/failpoints]; defaults to whether
          [BXWIKI_FAILPOINTS] was present in the environment *)
}

val default_config : config
(** No journal, 256 cached pages, compact every 64 edits, 1 MiB bodies,
    10 s read timeout, 4 lens workers, 256 queued connections, 5 s queue
    deadline, 10 s write timeout, failpoint admin iff
    [BXWIKI_FAILPOINTS] is set. *)

type t

val create :
  ?config:config
  -> ?pages:(string * (unit -> string * string)) list
  -> ?lenses:(string * Bx_strlens.Slens.t) list
  -> seed:(unit -> Bx_repo.Registry.t)
  -> unit
  -> (t, string) result
(** [seed] produces the registry used when there is no snapshot to load
    (first boot, or no journal configured).  [pages] adds extra GET
    routes exactly as in {!Bx_repo.Webui.handle}.  [lenses] registers
    named string lenses served at [POST /slens/<name>/<op>] — see
    {!handle}.  With a journal directory the snapshot is loaded (or
    [seed] run), the log replayed, and the log opened for appending. *)

val handle :
  t -> meth:string -> path:string -> body:string -> Bx_repo.Webui.response
(** One request through locks, cache, journal and metrics — the
    transport-free core, used by every worker and directly by tests and
    benchmarks.  [GET /metrics] is answered here, as are the health
    probes ([GET /healthz] — process liveness, always 200 — and
    [GET /readyz] — 200 only while the journal is writable, the service
    is not draining, and the pending queue is below its high-water mark;
    503 with the reasons otherwise) and, when [failpoints_admin] is set,
    the fault-injection admin route ([GET /debug/failpoints] shows the
    current rules, [PUT] replaces them with the body's
    [site=ACTION;...] spec — an empty body clears them).

    An injected fault ({!Bx_fault.Fault.Injected}) escaping any handler
    is answered as a 503, the same shape as overload, so the retrying
    client's backoff covers both.

    Registered lenses are served at [POST /slens/<name>/<op>], bypassing
    the registry lock (lens runs touch no shared state):
    - [get] / [create]: the body is the document, the response its image;
    - [put]: body is [view RS source] (RS = byte 0x1e);
    - [get_batch]: body is RS-separated sources, answered in order;
    - [put_batch]: RS-separated records of [view US source] (US = 0x1f).
    Batch operations fan across [config.lens_workers] domains via
    {!Bx_strlens.Slens.get_all}/[put_all].  Ill-typed documents get a
    422 with the engine's message; unknown lenses a 404. *)

val serve :
  t
  -> ?port:int
  -> ?workers:int
  -> ?port_file:string
  -> ?quiet:bool
  -> unit
  -> (unit, string) result
(** Bind the loopback interface ([port] 0 picks an ephemeral port,
    written to [port_file] when given), spawn [workers] domains, and
    block until {!shutdown}.  On the way out: drain, final
    {!checkpoint}, close the journal. *)

val shutdown : t -> unit
(** Ask a running {!serve} to stop; safe from a signal handler or
    another thread.  Idempotent. *)

val checkpoint : t -> (int, string) result
(** Write a snapshot now and truncate the journal (no-op count 0 when
    no journal is configured).  Takes the write lock. *)

val close : t -> unit
(** Release the journal file descriptor without checkpointing — for
    tests that want the next {!create} to exercise log replay. *)

(** {1 Introspection} *)

val metrics : t -> Metrics.t
val metrics_text : t -> string
val generation : t -> int
(** Bumped on every accepted write; the {!Respcache} key. *)

val replay_stats : t -> int * int
(** (records applied, records that failed to apply) during {!create}. *)

val port : t -> int option
(** The bound port while {!serve} runs. *)

val ready : t -> bool
(** The [/readyz] predicate, directly. *)

val readiness : t -> string list
(** Why the service is not ready ([[]] when it is): any of
    [journal_unwritable], [draining], [queue_high_water]. *)

val queue_depth : t -> int
(** Pending connections currently queued for a worker. *)

val with_registry : t -> (Bx_repo.Registry.t -> 'a) -> 'a
(** Run [f] under the read lock — for invariant checks in tests. *)
