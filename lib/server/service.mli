(** The repository as a service: {!Bx_repo.Registry} behind a
    reader/writer lock, handled by a pool of worker domains, made
    durable by the {!Journal} and observable through {!Metrics}.

    The seed [bxwiki] was a sequential connection-per-request loop with
    in-process-only state; this module supplies what the paper's
    section 5 "living repository" needs from its infrastructure:

    - {b Concurrency}: an accept loop feeds a queue drained by worker
      domains; GETs run under a shared read lock (and mostly out of the
      {!Respcache}), POSTs serialise under the write lock.  One slow
      client no longer stalls every other.
    - {b Durability}: with a journal directory configured, every
      accepted edit is fsync'd to the {!Journal} before the 200 is
      sent; startup replays the log on top of the last snapshot, and
      the log is compacted into a fresh snapshot every
      [compact_every] edits.  [kill -9] loses nothing acknowledged.
    - {b Hardened HTTP}: {!Httpd} parsing limits, per-socket read
      timeouts, keep-alive, and graceful shutdown — {!shutdown} (wired
      to SIGTERM by [bin/bxwiki]) stops the accept loop, drains
      in-flight work, writes a final snapshot and returns.
    - {b Observability}: [GET /metrics] serves the {!Metrics} in
      Prometheus text format. *)

type config = {
  journal_dir : string option;
      (** durable state lives here; [None] = in-memory only (the seed
          behaviour) *)
  shards : int;
      (** registry shards (default 1): each gets its own reader/writer
          lock, write generation and journal segment, so edits to (and
          compactions of) different shards never serialise against each
          other.  The shard count is part of the on-disk layout: opening
          an existing journal directory with a different count is an
          error, except that a legacy single-segment directory opened
          with [shards > 1] is migrated in place *)
  cache_capacity : int;  (** rendered-page cache entries, across shards *)
  cache_shards : int;
      (** rendered-page cache shards; set to the worker-domain count so
          domains never contend on a cache mutex (default 4) *)
  compact_every : int;
      (** snapshot + truncate once the log holds this many edits;
          [0] disables automatic compaction *)
  max_body : int;  (** request body cap in bytes *)
  read_timeout : float;  (** per-socket receive timeout, seconds *)
  lens_workers : int;
      (** domains fanned over by the batch lens endpoints
          ([/slens/<name>/get_batch] and [put_batch]) *)
  queue_capacity : int;
      (** pending-connection bound: beyond it the accept loop sheds with
          a fast 503 + [Retry-After] instead of queueing *)
  queue_deadline : float;
      (** seconds a connection may wait queued before a worker sheds it
          unprocessed (the per-request deadline budget) *)
  write_timeout : float;
      (** per-socket send timeout, seconds — a slow reader cannot pin a
          worker *)
  failpoints_admin : bool;
      (** mount [GET/PUT /debug/failpoints]; defaults to whether
          [BXWIKI_FAILPOINTS] was present in the environment *)
  replica : bool;
      (** start in read-only replica mode: plain POSTs answer 503, state
          arrives through the replication apply path, and
          [POST /admin/promote] flips the node writable *)
  replica_lag_threshold : float;
      (** seconds of replication lag beyond which a replica reports not
          ready *)
  stream_wait : float;
      (** longest the stream endpoint holds an empty long poll open *)
  stream_max_records : int;
      (** record cap per stream response; a further-behind follower just
          polls again *)
  scrub_rate : int;
      (** items/second the background scrubber re-verifies (journal
          records, snapshot checksums, entry laws, document round
          trips); [0] (the default) disables the scrubber domain *)
  entry_law : (Bx_repo.Template.t -> (unit, string) result) option;
      (** an extra deterministic per-version check the scrubber runs on
          every entry (the CLI injects the QCheck law harness here, so
          the server library itself never depends on the test stack) *)
  brownout : bool;
      (** degrade reads instead of shedding them: admission overflow
          routes GETs to a dedicated lane that answers from the response
          cache at whatever generation it holds, marked with an
          [X-Bxwiki-Stale: <generation lag>] header (default true) *)
  min_concurrency : int;
      (** the floor the AIMD admission limit may decrease to (default
          8); the ceiling is [queue_capacity] *)
  chaos_admin : bool;
      (** mount [GET/PUT /debug/chaos] (see {!Bx_fault.Netchaos});
          defaults to whether [BXWIKI_CHAOS] or [BXWIKI_FAILPOINTS] was
          present in the environment *)
}

val default_config : config
(** No journal, 256 cached pages, compact every 64 edits, 1 MiB bodies,
    10 s read timeout, 4 lens workers, 256 queued connections, 5 s queue
    deadline, 10 s write timeout, failpoint admin iff
    [BXWIKI_FAILPOINTS] is set; primary role, 5 s lag threshold, 5 s
    stream hold, 512 records per stream response; scrubber off, no
    injected entry law; brownout on with an AIMD floor of 8, chaos admin
    iff [BXWIKI_CHAOS] or [BXWIKI_FAILPOINTS] is set. *)

type t

val create :
  ?config:config
  -> ?pages:(string * (unit -> string * string)) list
  -> ?lenses:(string * Bx_strlens.Slens.t) list
  -> seed:(unit -> Bx_repo.Registry.t)
  -> unit
  -> (t, string) result
(** [seed] produces the registry used when there is no snapshot to load
    (first boot, or no journal configured).  [pages] adds extra GET
    routes exactly as in {!Bx_repo.Webui.handle}.  [lenses] registers
    named string lenses served at [POST /slens/<name>/<op>] — see
    {!handle}.  With a journal directory the snapshot is loaded (or
    [seed] run), the log replayed, and the log opened for appending. *)

val handle :
  t -> meth:string -> path:string -> body:string -> Bx_repo.Webui.response
(** One request through locks, cache, journal and metrics — the
    transport-free core, used by every worker and directly by tests and
    benchmarks.  [GET /metrics] is answered here, as are the health
    probes ([GET /healthz] — process liveness, always 200 — and
    [GET /readyz] — 200 only while the journal is writable, the service
    is not draining, and the pending queue is below its high-water mark;
    503 with the reasons otherwise) and, when [failpoints_admin] is set,
    the fault-injection admin route ([GET /debug/failpoints] shows the
    current rules, [PUT] replaces them with the body's
    [site=ACTION;...] spec — an empty body clears them).

    Replication routes (see {!Replication} for the protocol):
    [GET /replication/stream?from=N&epoch=E&wait=S] long-polls the
    journal, [GET /replication/snapshot] ships the snapshot for
    bootstrap ([?shard=K] seals and ships exactly one segment — the
    targeted anti-entropy payload), [GET /replication/digest] serves
    the per-shard content digests a caught-up follower compares, and
    [POST /admin/promote] promotes a replica.

    Quarantine semantics: a 200 for an entry the scrubber has flagged
    carries a [Warning: 299] header naming the finding; a flagged
    document answers 410 until repaired or resynced.  On a
    replica, every other POST (except lens execution, which touches no
    registry state) answers 503; on a fenced primary — one that has
    observed a newer epoch — they answer 503 too.  {!handle} itself
    carries no query string; {!handle_query} is the variant the socket
    workers (and replication tests) use.

    An injected fault ({!Bx_fault.Fault.Injected}) escaping any handler
    is answered as a 503, the same shape as overload, so the retrying
    client's backoff covers both.

    Registered lenses are served at [POST /slens/<name>/<op>], bypassing
    the registry lock (lens runs touch no shared state):
    - [get] / [create]: the body is the document, the response its image;
    - [put]: body is [view RS source] (RS = byte 0x1e);
    - [get_batch]: body is RS-separated sources, answered in order;
    - [put_batch]: RS-separated records of [view US source] (US = 0x1f).
    Batch operations fan across [config.lens_workers] domains via
    {!Bx_strlens.Slens.get_all}/[put_all].  Ill-typed documents get a
    422 with the engine's message; unknown lenses a 404. *)

val handle_query :
  ?deadline:float ->
  t ->
  query:string ->
  meth:string ->
  path:string ->
  body:string ->
  Bx_repo.Webui.response
(** {!handle} with the request's raw query string ([""] for none) —
    the replication stream endpoint reads its parameters from it.

    [deadline] is the request's absolute deadline ([Unix.gettimeofday]
    clock), parsed by the socket workers from the [X-Bxwiki-Deadline]
    header (a millisecond budget).  An exhausted deadline sheds with 504
    and [bxwiki_shed_total{reason="deadline_propagated"}] — checked
    before dispatch, re-checked after lock acquisition and before the
    in-memory apply + journal fsync on the write paths, and used to
    clamp the replication long-poll hold.  Expired GETs are answered
    stale from the cache when [brownout] allows.  Operational routes
    ([/metrics], health probes, [/debug/*], the replication plane,
    [/admin/promote]) never shed on a deadline. *)

val serve :
  t
  -> ?port:int
  -> ?workers:int
  -> ?port_file:string
  -> ?quiet:bool
  -> unit
  -> (unit, string) result
(** Bind the loopback interface ([port] 0 picks an ephemeral port,
    written to [port_file] when given), spawn [workers] domains, and
    block until {!shutdown}.  On the way out: drain, final
    {!checkpoint}, close the journal. *)

val shutdown : t -> unit
(** Ask a running {!serve} to stop; safe from a signal handler or
    another thread.  Idempotent. *)

val checkpoint : t -> (int, string) result
(** Write a snapshot now and truncate the journal (no-op count 0 when
    no journal is configured).  Takes the write lock. *)

val close : t -> unit
(** Release the journal file descriptor without checkpointing — for
    tests that want the next {!create} to exercise log replay. *)

(** {1 Introspection} *)

val metrics : t -> Metrics.t
val metrics_text : t -> string
val generation : t -> int
(** Bumped on every accepted write; the {!Respcache} key. *)

val replay_stats : t -> int * int
(** (records applied, records that failed to apply) during {!create}. *)

val lock_stats : t -> (string * string * int * int) list
(** Contention counters per (lock, mode): acquisitions since boot and
    how many of them had to block.  Rows: [("registry", "read", ...)],
    [("registry", "write", ...)], [("respcache", "all", ...)].  Also
    exported as [bxwiki_lock_*] at [/metrics]; the load benchmarks
    diff these across a run to name the lock that flattens a scaling
    curve. *)

val port : t -> int option
(** The bound port while {!serve} runs. *)

val ready : t -> bool
(** The [/readyz] predicate, directly. *)

val readiness : t -> string list
(** Why the service is not ready ([[]] when it is): any of
    [journal_unwritable], [draining], [queue_high_water],
    [replica_syncing] (a replica that has not yet caught up),
    [replication_lag] (a replica whose lag exceeds
    [replica_lag_threshold]), [fenced] (a deposed primary),
    [corruption_burst] (five or more fresh corruption findings inside
    the last minute — the medium is failing, drain traffic away),
    [journal_disk_full] (a sticky ENOSPC latched by a journal append:
    the node is read-only until an operator frees space and
    restarts). *)

val queue_depth : t -> int
(** Pending connections currently queued for a worker. *)

val concurrency_limit : t -> int
(** The AIMD adaptive admission limit right now: halved (at most once
    per 100ms) whenever admission overflows, bumped by one per promptly
    served connection, kept within
    [[min_concurrency, queue_capacity]]. *)

val with_registry : t -> (Bx_repo.Registry.t -> 'a) -> 'a
(** Run [f] under the read lock — for invariant checks in tests. *)

(** {1 Integrity} *)

val scrub_once :
  ?rate:float -> ?stop:(unit -> bool) -> t -> int * (string * string) list
(** One full scrub pass over every storage surface — journal record
    CRCs, snapshot checksums against their [DIGESTS], entry round-trip
    laws (plus [config.entry_law]), document view/source agreement.
    [rate] paces it through a token bucket (0 = unmetered, the offline
    [bxwiki scrub] mode); [stop] aborts between items.  Findings are
    quarantined and counted ([bxwiki_scrub_*]); healthy items clear
    stale flags.  Returns (items checked, (name, error) findings).
    Each item checks under its own shard's read lock, so a running
    server keeps serving. *)

val quarantine : t -> Integrity.Quarantine.t
(** The live quarantine set — corrupted-but-never-dropped data. *)

val shard_digests : t -> (int * int) list
(** The per-shard content digests, as served at
    [GET /replication/digest] — maintained incrementally in O(|item|)
    per write, recomputed wholesale only at boot and snapshot
    installs. *)

(** {1 Replication} *)

val promote : t -> (int, string) result
(** Flip a replica to writable primary: bump the epoch, persist it
    (journaled services), then accept writes — in that order, so a crash
    mid-promotion leaves at worst an advanced epoch.  Refused on a
    primary and on a replica that has never synced.  Returns the new
    epoch.  Failpoint: [repl.promote]. *)

val follow :
  t ->
  host:string ->
  port:int ->
  ?wait:float ->
  ?min_sleep:float ->
  ?max_sleep:float ->
  unit ->
  unit
(** Run the follower loop against an upstream, blocking until
    {!shutdown} or {!promote} stops it — callers that want a hot standby
    run it in a [Thread].  [wait] is the long-poll hold requested from
    the upstream; [min_sleep]/[max_sleep] bound the reconnect backoff
    (see {!Replication.follow}). *)

val replication_sink : t -> Replication.sink
(** The service wired up as a {!Replication.sink} — lets tests drive
    {!Replication.poll_once} synchronously. *)

val is_replica : t -> bool
val epoch : t -> int
val fenced : t -> bool
(** Whether this node observed a newer epoch and now rejects writes. *)

val replication_lag : t -> float
(** Seconds this replica may be stale: 0 while demonstrably caught up
    (always 0 on a primary). *)

val replication_behind : t -> int
(** Record lag reported by the last successful poll. *)

val replication_synced : t -> bool
(** Whether this replica has ever fully caught up. *)

val last_stream_poll : t -> int
(** The highest [from] any follower has polled this node with — every
    record below it is known applied downstream.  The failover tests use
    it to wait for a replica without back-channels. *)
