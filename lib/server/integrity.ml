(* The integrity layer's primitives: the CRC32 everything else frames
   with, the DIGESTS manifest that checksums a snapshot directory's cold
   files, the order-insensitive per-shard digest algebra anti-entropy
   repair compares, the token bucket that paces the background scrubber,
   and the quarantine set corrupted-but-never-dropped data lands in.

   This module sits *below* {!Journal} in the library: the journal frames
   records with {!crc32} and seals snapshots with {!Digests}, so the
   dependency points this way and nothing here may refer back to the
   journal, shardlog or service. *)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial), table-driven.  This is the
   one checksum the whole storage layer shares: journal record framing,
   snapshot digest manifests, sealed MANIFESTs and the per-entry content
   hashes all speak it, so a tool that can check one can check all. *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_sub s off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := Array.unsafe_get table ((!c lxor Char.code s.[i]) land 0xff)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

let crc32 s = crc32_sub s 0 (String.length s)

let read_whole_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* The DIGESTS manifest: one line per cold file in a snapshot directory,
   carrying the file's CRC32.  Written when a snapshot is sealed, checked
   at boot, before a snapshot is shipped, and after one is received.

       bxdigests 1
       <crc32-hex8> <name>
       ...

   Names are sorted, so equal directories render byte-identical
   manifests.  The MANIFEST is excluded (it seals itself with its own
   crc field; it is also written after the DIGESTS) and so is the
   DIGESTS file itself.  A directory without one is a pre-digest layout
   and is accepted as [legacy] — upgrades must boot old stores. *)

module Digests = struct
  let name = "DIGESTS"
  let magic = "bxdigests 1\n"

  let covered n =
    n <> name && n <> "MANIFEST" && (String.length n = 0 || n.[0] <> '.')

  let render files =
    let files =
      List.filter (fun (n, _) -> covered n) files
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    in
    let buf = Buffer.create (64 + (48 * List.length files)) in
    Buffer.add_string buf magic;
    List.iter
      (fun (n, contents) ->
        Buffer.add_string buf (Printf.sprintf "%08x %s\n" (crc32 contents) n))
      files;
    Buffer.contents buf

  let parse data =
    let mlen = String.length magic in
    if String.length data < mlen || String.sub data 0 mlen <> magic then
      Error "bad digest manifest header"
    else
      let lines =
        String.split_on_char '\n' (String.sub data mlen (String.length data - mlen))
        |> List.filter (fun l -> l <> "")
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match String.index_opt line ' ' with
            | Some 8 -> (
                let crc_s = String.sub line 0 8 in
                let n = String.sub line 9 (String.length line - 9) in
                match int_of_string_opt ("0x" ^ crc_s) with
                | Some crc when n <> "" -> go ((n, crc) :: acc) rest
                | _ -> Error (Printf.sprintf "bad digest line %S" line))
            | _ -> Error (Printf.sprintf "bad digest line %S" line))
      in
      go [] lines

  (* Verification of an in-memory [(name, contents)] payload against a
     manifest: every covered file must be listed with a matching crc, and
     every listed file must be present.  The corrupt list names both
     mismatches and the missing/unlisted discrepancies, so one flipped
     byte reports one (occasionally two, for a flipped *name* byte)
     named files rather than failing wholesale. *)
  let verify_files ~manifest files =
    let listed = Hashtbl.create 64 in
    List.iter (fun (n, crc) -> Hashtbl.replace listed n crc) manifest;
    let corrupt = ref [] in
    List.iter
      (fun (n, contents) ->
        if covered n then
          match Hashtbl.find_opt listed n with
          | None -> corrupt := (n, "not listed in DIGESTS") :: !corrupt
          | Some crc ->
              Hashtbl.remove listed n;
              let got = crc32 contents in
              if got <> crc then
                corrupt :=
                  (n, Printf.sprintf "crc mismatch: manifest %08x, file %08x"
                        crc got)
                  :: !corrupt)
      files;
    Hashtbl.iter
      (fun n _ -> corrupt := (n, "listed in DIGESTS but missing") :: !corrupt)
      listed;
    List.sort compare !corrupt

  type report = {
    present : bool;  (** a DIGESTS manifest exists (post-upgrade layout) *)
    checked : int;  (** cold files whose crc was recomputed *)
    corrupt : (string * string) list;  (** (file, named error), sorted *)
  }

  let flat_files dir =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun n -> not (Sys.is_directory (Filename.concat dir n)))
    |> List.sort String.compare

  (* Write (or refresh) the manifest for a directory's flat files via the
     usual tmp + fsync + rename discipline. *)
  let write_dir ~dir =
    let files =
      List.filter_map
        (fun n ->
          if covered n then Some (n, read_whole_file (Filename.concat dir n))
          else None)
        (flat_files dir)
    in
    let file = Filename.concat dir name in
    let tmp = file ^ ".tmp" in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (render files);
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Sys.rename tmp file

  let verify_dir ~dir =
    if not (Sys.file_exists dir && Sys.is_directory dir) then
      { present = false; checked = 0; corrupt = [] }
    else
      let manifest_file = Filename.concat dir name in
      if not (Sys.file_exists manifest_file) then
        { present = false; checked = 0; corrupt = [] }
      else
        match parse (read_whole_file manifest_file) with
        | Error e ->
            (* The manifest itself is damaged.  The covered files may
               well be fine, so this counts as one named corruption (the
               manifest), not as a wholesale quarantine of the
               directory. *)
            { present = true; checked = 0; corrupt = [ (name, e) ] }
        | Ok manifest ->
            let files =
              List.filter_map
                (fun n ->
                  if covered n then
                    Some (n, read_whole_file (Filename.concat dir n))
                  else None)
                (flat_files dir)
            in
            {
              present = true;
              checked = List.length files;
              corrupt = verify_files ~manifest files;
            }
end

(* ------------------------------------------------------------------ *)
(* Per-shard anti-entropy digests: an order-insensitive XOR fold over
   per-entry content hashes.  XOR makes the fold a group operation, so a
   mutation updates a shard's digest in O(|entry|) — hash the entry
   before, hash it after, XOR both in — independent of how many entries
   the shard holds, and two replicas that hold the same entries report
   the same digest no matter what order writes arrived in. *)

let entry_hash registry id =
  match Bx_repo.Registry.versions registry id with
  | Error _ -> 0 (* absent: the fold identity, so XOR-in/XOR-out balances *)
  | Ok versions ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf (Bx_repo.Identifier.to_string id);
      Buffer.add_char buf '\x00';
      List.iter
        (fun v ->
          match Bx_repo.Registry.find_version registry id v with
          | Error _ -> ()
          | Ok t ->
              Buffer.add_string buf (Bx_repo.Version.to_string v);
              Buffer.add_char buf '\x00';
              Buffer.add_string buf (Bx_repo.Sync.wiki_text t);
              Buffer.add_char buf '\x00')
        versions;
      let h = crc32 (Buffer.contents buf) in
      (* 0 is the fold's identity ("entry absent"); nudge a real entry
         that happens to hash there so presence is always visible. *)
      if h = 0 then 1 else h

let doc_hash ~lens ~docid ~gen ~source =
  let h =
    crc32
      (Printf.sprintf "%s\x00%s\x00%d\x00%s" lens docid gen source)
  in
  if h = 0 then 1 else h

let shard_digest_of registry shard =
  List.fold_left
    (fun acc id -> acc lxor entry_hash registry id)
    0
    (Bx_repo.Registry.shard_ids registry shard)

(* The digest endpoint's wire form, and its parser for followers:

       bxdigest 1 <epoch> <shards>
       <shard> <digest-hex8>
       ... *)

let render_digests ~epoch digests =
  let buf = Buffer.create (32 + (16 * List.length digests)) in
  Buffer.add_string buf
    (Printf.sprintf "bxdigest 1 %d %d\n" epoch (List.length digests));
  List.iter
    (fun (k, d) -> Buffer.add_string buf (Printf.sprintf "%d %08x\n" k d))
    digests;
  Buffer.contents buf

let parse_digests body =
  match String.split_on_char '\n' body with
  | header :: rest -> (
      match String.split_on_char ' ' header with
      | [ "bxdigest"; "1"; epoch_s; count_s ] -> (
          match (int_of_string_opt epoch_s, int_of_string_opt count_s) with
          | Some epoch, Some count ->
              let rec go acc n = function
                | [] | [ "" ] ->
                    if n = count then Ok (epoch, List.rev acc)
                    else Error "digest body truncated"
                | line :: rest -> (
                    match String.split_on_char ' ' line with
                    | [ k_s; d_s ] -> (
                        match
                          (int_of_string_opt k_s, int_of_string_opt ("0x" ^ d_s))
                        with
                        | Some k, Some d -> go ((k, d) :: acc) (n + 1) rest
                        | _ -> Error (Printf.sprintf "bad digest line %S" line))
                    | _ -> Error (Printf.sprintf "bad digest line %S" line))
              in
              go [] 0 rest
          | _ -> Error "bad digest header")
      | _ -> Error "bad digest header")
  | [] -> Error "empty digest body"

(* ------------------------------------------------------------------ *)
(* Per-entry law checks: the scrubber's unit of work on live registry
   data.  Template validity first, then the wiki round trip — the
   section 5.4 sync lens's GetPut at this very entry: rendering the
   template to wiki text and parsing it back must restore the normalised
   template, byte-for-byte in the checked fields.  A caller may inject a
   further law (the qcheck machinery run deterministically, say) via
   [law]. *)

let check_template ?law t =
  match Bx_repo.Template.validate t with
  | Error es -> Error ("invalid template: " ^ String.concat "; " es)
  | Ok () -> (
      let normal = Bx_repo.Sync.normalise t in
      match Bx_repo.Sync.of_wiki_text ~fallback:normal (Bx_repo.Sync.wiki_text t) with
      | Error e -> Error ("wiki round trip failed to parse: " ^ e)
      | Ok t' ->
          if not (Bx_repo.Template.equal normal (Bx_repo.Sync.normalise t')) then
            Error "wiki round trip changed the entry (GetPut violated)"
          else (
            match law with
            | None -> Ok ()
            | Some f -> f t))

let check_entry ?law registry id =
  match Bx_repo.Registry.versions registry id with
  | Error e -> Error (Bx_repo.Registry.error_message e)
  | Ok versions ->
      let rec go = function
        | [] -> Ok ()
        | v :: rest -> (
            match Bx_repo.Registry.find_version registry id v with
            | Error e -> Error (Bx_repo.Registry.error_message e)
            | Ok t -> (
                match check_template ?law t with
                | Error e ->
                    Error
                      (Printf.sprintf "version %s: %s"
                         (Bx_repo.Version.to_string v) e)
                | Ok () -> go rest))
      in
      go versions

(* ------------------------------------------------------------------ *)
(* Token bucket: the scrubber's pacing.  [rate] items per second, burst
   capacity of one second's worth, topped up lazily from a monotonic
   clock.  [take] blocks (sleeping) until the bucket covers [n] items —
   the scrubber thread owns its own schedule, so sleeping in place is
   the simplest correct throttle. *)

module Bucket = struct
  type t = {
    rate : float;
    burst : float;
    mutable tokens : float;
    mutable last : float;
  }

  let create ~rate =
    let rate = if rate <= 0. then 0. else rate in
    let burst = Float.max 1. rate in
    { rate; burst; tokens = burst; last = Unix.gettimeofday () }

  let refill t =
    let now = Unix.gettimeofday () in
    let dt = Float.max 0. (now -. t.last) in
    t.last <- now;
    t.tokens <- Float.min t.burst (t.tokens +. (dt *. t.rate))

  (* With rate 0 the bucket is unmetered (scrub-at-full-speed, the
     offline [bxwiki scrub] mode). *)
  let take t n =
    if t.rate > 0. then begin
      refill t;
      let n = Float.min n t.burst in
      while t.tokens < n do
        Unix.sleepf (Float.min 0.05 ((n -. t.tokens) /. t.rate));
        refill t
      done;
      t.tokens <- t.tokens -. n
    end
end

(* ------------------------------------------------------------------ *)
(* The quarantine: corrupted data is flagged and kept, never dropped.
   Entries keep serving under a Warning header; documents answer 410;
   files are excluded from loads.  Keys are stable strings so the set
   survives being consulted from any layer. *)

module Quarantine = struct
  type key =
    | Entry of string  (** registry entry, by identifier string *)
    | Doc of string * string  (** docstore document, by (lens, docid) *)
    | File of string  (** cold file, by (shard-qualified) name *)

  let key_name = function
    | Entry id -> "entry " ^ id
    | Doc (lens, docid) -> Printf.sprintf "doc %s/%s" lens docid
    | File f -> "file " ^ f

  type t = {
    mu : Mutex.t;
    items : (key, string) Hashtbl.t;  (** key -> named reason *)
  }

  let create () = { mu = Mutex.create (); items = Hashtbl.create 16 }

  let with_mu t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* [true] when the key is newly flagged — the caller bumps the
     corruption counters exactly once per distinct finding, so a scrub
     pass re-walking a known-bad entry does not inflate them. *)
  let flag t key ~reason =
    with_mu t (fun () ->
        if Hashtbl.mem t.items key then false
        else begin
          Hashtbl.replace t.items key reason;
          true
        end)

  let clear t key = with_mu t (fun () -> Hashtbl.remove t.items key)
  let find t key = with_mu t (fun () -> Hashtbl.find_opt t.items key)
  let size t = with_mu t (fun () -> Hashtbl.length t.items)

  let items t =
    with_mu t (fun () ->
        Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.items []
        |> List.sort compare)

  let counts t =
    with_mu t (fun () ->
        Hashtbl.fold
          (fun k _ (e, d, f) ->
            match k with
            | Entry _ -> (e + 1, d, f)
            | Doc _ -> (e, d + 1, f)
            | File _ -> (e, d, f + 1))
          t.items (0, 0, 0))
end
