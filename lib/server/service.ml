type config = {
  journal_dir : string option;
  cache_capacity : int;
  compact_every : int;
  max_body : int;
  read_timeout : float;
  lens_workers : int;
  queue_capacity : int;
  queue_deadline : float;
  write_timeout : float;
  failpoints_admin : bool;
}

let default_config =
  {
    journal_dir = None;
    cache_capacity = 256;
    compact_every = 64;
    max_body = Httpd.default_max_body;
    read_timeout = 10.0;
    lens_workers = 4;
    queue_capacity = 256;
    queue_deadline = 5.0;
    write_timeout = 10.0;
    failpoints_admin = Bx_fault.Fault.env_configured;
  }

(* ------------------------------------------------------------------ *)
(* A writer-preferring reader/writer lock.  Writers are rare (edits) and
   must not starve behind a stream of page views. *)

module Rwlock = struct
  type t = {
    m : Mutex.t;
    ok_read : Condition.t;
    ok_write : Condition.t;
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_writers : int;
  }

  let create () =
    {
      m = Mutex.create ();
      ok_read = Condition.create ();
      ok_write = Condition.create ();
      readers = 0;
      writing = false;
      waiting_writers = 0;
    }

  let read t f =
    Mutex.lock t.m;
    while t.writing || t.waiting_writers > 0 do
      Condition.wait t.ok_read t.m
    done;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.signal t.ok_write;
        Mutex.unlock t.m)

  let write t f =
    Mutex.lock t.m;
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writing || t.readers > 0 do
      Condition.wait t.ok_write t.m
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writing <- true;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.writing <- false;
        Condition.broadcast t.ok_read;
        Condition.signal t.ok_write;
        Mutex.unlock t.m)
end

type t = {
  config : config;
  registry : Bx_repo.Registry.t;
  lock : Rwlock.t;
  pages : (string * (unit -> string * string)) list;
  lenses : (string * Bx_strlens.Slens.t) list;
  pages_mutex : Mutex.t;
      (* extra-page thunks may force lazies; serialise them so worker
         domains cannot race inside [Lazy.force] *)
  journal : Journal.t option;
  metrics : Metrics.t;
  cache : Respcache.t;
  mutable gen : int; (* guarded by [lock]'s write side *)
  replay_applied : int;
  replay_failed : int;
  stop : bool Atomic.t;
  journal_ok : bool Atomic.t;
      (* false after a failed append, true again after a successful one;
         feeds /readyz *)
  mutable bound_port : int option;
  (* connection queue between the accept loop and the workers; each
     entry remembers when it was enqueued so workers can shed
     connections that waited past their deadline budget *)
  qm : Mutex.t;
  qc : Condition.t;
  queue : (Unix.file_descr * float) Queue.t;
  mutable accepting : bool;
}

let metrics t = t.metrics
let generation t = t.gen
let replay_stats t = (t.replay_applied, t.replay_failed)
let port t = t.bound_port
let with_registry t f = Rwlock.read t.lock (fun () -> f t.registry)
let metrics_text t = Metrics.render t.metrics

(* ------------------------------------------------------------------ *)
(* Boot: snapshot, then log replay *)

let replay_edits registry records =
  List.fold_left
    (fun (ok, failed) (r : Journal.record) ->
      let response =
        Bx_repo.Webui.handle registry ~meth:"POST" ~path:r.path ~body:r.body
      in
      if response.Bx_repo.Webui.status = 200 then (ok + 1, failed)
      else begin
        Printf.eprintf
          "bxwiki: journal record %d (%s) no longer applies (status %d)\n%!"
          r.seq r.path response.Bx_repo.Webui.status;
        (ok, failed + 1)
      end)
    (0, 0) records

let create ?(config = default_config) ?(pages = []) ?(lenses = []) ~seed () =
  let metrics = Metrics.create () in
  let fresh ~registry ~journal ~applied ~failed =
    {
      config;
      registry;
      lock = Rwlock.create ();
      pages;
      lenses;
      pages_mutex = Mutex.create ();
      journal;
      metrics;
      cache = Respcache.create ~capacity:config.cache_capacity metrics;
      gen = 0;
      replay_applied = applied;
      replay_failed = failed;
      stop = Atomic.make false;
      journal_ok = Atomic.make true;
      bound_port = None;
      qm = Mutex.create ();
      qc = Condition.create ();
      queue = Queue.create ();
      accepting = false;
    }
  in
  match config.journal_dir with
  | None ->
      Ok (fresh ~registry:(seed ()) ~journal:None ~applied:0 ~failed:0)
  | Some dir -> (
      Journal.recover_snapshot ~dir;
      let snap = Journal.snapshot_dir dir in
      let loaded =
        if Sys.file_exists (Filename.concat snap "MANIFEST") then
          Bx_repo.Store.load ~dir:snap
        else Ok (seed ())
      in
      match loaded with
      | Error e -> Error ("snapshot load: " ^ e)
      | Ok registry -> (
          let snap_seq = Journal.snapshot_seq ~dir in
          match Journal.read ~dir with
          | Error e -> Error ("journal read: " ^ e)
          | Ok { entries; torn; crc_errors; _ } ->
              (* What recovery found is an operational signal: torn tails
                 are the benign residue of a crash, checksum failures are
                 corruption worth an operator's attention. *)
              Metrics.journal_recovery metrics ~torn ~crc_errors;
              let to_apply =
                List.filter (fun (r : Journal.record) -> r.seq > snap_seq) entries
              in
              let applied, failed = replay_edits registry to_apply in
              let max_seq =
                List.fold_left
                  (fun acc (r : Journal.record) -> max acc r.seq)
                  snap_seq entries
              in
              (match Journal.open_ ~dir ~next_seq:(max_seq + 1) with
              | Error e -> Error ("journal open: " ^ e)
              | Ok j ->
                  Ok (fresh ~registry ~journal:(Some j) ~applied ~failed))))

(* ------------------------------------------------------------------ *)
(* Request handling *)

let is_slens_path path =
  String.length path > 7 && String.sub path 0 7 = "/slens/"

let route_of t path =
  let ends_with suffix = Filename.check_suffix path suffix in
  if path = "/" || path = "" then "index"
  else if path = "/metrics" then "metrics"
  else if path = "/healthz" || path = "/readyz" then "health"
  else if path = "/debug/failpoints" then "debug"
  else if is_slens_path path then "slens"
  else if path = "/glossary" then "glossary"
  else if path = "/manuscript" then "manuscript"
  else if List.mem_assoc path t.pages then path
  else if ends_with ".wiki" then "entry.wiki"
  else if ends_with ".json" then "entry.json"
  else "entry"

let respond_html status title body =
  {
    Bx_repo.Webui.status;
    content_type = "text/html; charset=utf-8";
    body = Bx_repo.Webui.html_page ~title body;
  }

let handle_get t path =
  let render () =
    Bx_fault.Fault.point "service.lock.read";
    if List.mem_assoc path t.pages then begin
      (* Serialise extra-page thunks (they may force lazies, which is
         not safe to race from parallel domains); the result is cached,
         so this mutex is cold after the first render. *)
      Mutex.lock t.pages_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.pages_mutex)
        (fun () ->
          Rwlock.read t.lock (fun () ->
              ( t.gen,
                Bx_repo.Webui.handle ~pages:t.pages t.registry ~meth:"GET" ~path
                  ~body:"" )))
    end
    else
      Rwlock.read t.lock (fun () ->
          ( t.gen,
            Bx_repo.Webui.handle t.registry ~meth:"GET" ~path ~body:"" ))
  in
  (* The generation is sampled under the same read lock that renders, so
     a cached page can never be older than the generation it is filed
     under. *)
  match Respcache.find t.cache ~path ~generation:t.gen with
  | Some response -> response
  | None ->
      let generation, response = render () in
      if response.Bx_repo.Webui.status = 200 then
        Respcache.store t.cache ~path ~generation response;
      response

let checkpoint_locked t =
  (* Caller holds the write lock (or is single-threaded at shutdown). *)
  match t.journal with
  | None -> Ok 0
  | Some j ->
      let result =
        Journal.checkpoint j ~save:(fun ~dir ->
            Bx_repo.Store.save ~dir t.registry)
      in
      Metrics.compaction t.metrics ~ok:(Result.is_ok result);
      result

(* ------------------------------------------------------------------ *)
(* Lens execution routes.  POST /slens/<name>/<op>; single-document ops
   take the raw document as the body, [put] separates view from source
   with an ASCII record separator (0x1e).  Batch ops take RS-separated
   records (for [put_batch], view and source within a record are
   separated by the unit separator 0x1f) and fan across
   [config.lens_workers] domains.  Lens runs never touch the registry,
   so they bypass the reader/writer lock entirely. *)

let rs = '\x1e'
let us = '\x1f'
let rs_str = String.make 1 rs

let respond_text status body =
  { Bx_repo.Webui.status; content_type = "text/plain; charset=utf-8"; body }

let split_once sep str =
  match String.index_opt str sep with
  | None -> None
  | Some i ->
      Some (String.sub str 0 i, String.sub str (i + 1) (String.length str - i - 1))

let handle_slens t path body =
  match String.split_on_char '/' path with
  | [ ""; "slens"; name; op ] -> (
      match List.assoc_opt name t.lenses with
      | None -> respond_text 404 (Printf.sprintf "unknown lens %S\n" name)
      | Some lens -> (
          let workers = t.config.lens_workers in
          let observe op docs =
            Metrics.observe_lens t.metrics ~lens:name ~op ~docs
              ~bytes:(String.length body)
          in
          try
            match op with
            | "get" ->
                observe "get" 1;
                respond_text 200 (lens.Bx_strlens.Slens.get body)
            | "create" ->
                observe "create" 1;
                respond_text 200 (lens.Bx_strlens.Slens.create body)
            | "put" -> (
                match split_once rs body with
                | None ->
                    respond_text 400
                      "put body must be <view> RS (0x1e) <source>\n"
                | Some (v, s) ->
                    observe "put" 1;
                    respond_text 200 (lens.Bx_strlens.Slens.put v s))
            | "get_batch" ->
                let docs =
                  if body = "" then [] else String.split_on_char rs body
                in
                observe "get_batch" (List.length docs);
                respond_text 200
                  (String.concat rs_str
                     (Bx_strlens.Slens.get_all ~workers lens docs))
            | "put_batch" -> (
                let records =
                  if body = "" then [] else String.split_on_char rs body
                in
                match
                  List.fold_right
                    (fun r acc ->
                      match (acc, split_once us r) with
                      | None, _ | _, None -> None
                      | Some acc, Some pair -> Some (pair :: acc))
                    records (Some [])
                with
                | None ->
                    respond_text 400
                      "put_batch records must be <view> US (0x1f) <source>\n"
                | Some pairs ->
                    observe "put_batch" (List.length pairs);
                    respond_text 200
                      (String.concat rs_str
                         (Bx_strlens.Slens.put_all ~workers lens pairs)))
            | _ -> respond_text 404 (Printf.sprintf "unknown lens op %S\n" op)
          with
          | Bx_strlens.Slens.Type_error m | Bx_strlens.Split.Split_error m ->
            respond_text 422 (m ^ "\n")))
  | _ -> respond_text 404 "lens paths are /slens/<name>/<op>\n"

let handle_post t path body =
  Bx_fault.Fault.point "service.lock.write";
  Rwlock.write t.lock (fun () ->
      let response =
        Bx_repo.Webui.handle t.registry ~meth:"POST" ~path ~body
      in
      if response.Bx_repo.Webui.status <> 200 then response
      else begin
        t.gen <- t.gen + 1;
        match t.journal with
        | None -> response
        | Some j -> (
            match Journal.append j ~path ~body with
            | Error e ->
                (* The in-memory edit stands, but durability was
                   promised and could not be delivered: tell the client
                   the truth, flip /readyz, and let the operator look at
                   the disk. *)
                Atomic.set t.journal_ok false;
                Metrics.protocol_error t.metrics ~route:"journal"
                  ~reason:"append_failed";
                respond_html 500 "Journal write failed"
                  ("<p>Edit applied in memory but not journaled: "
                  ^ Bx_repo.Markup.html_escape e ^ "</p>")
            | Ok _ ->
                Atomic.set t.journal_ok true;
                if
                  t.config.compact_every > 0
                  && Journal.record_count j >= t.config.compact_every
                then begin
                  (* A failed compaction must not take the service down:
                     the journal keeps growing, the failure is counted
                     and surfaced in /metrics, and serving continues. *)
                  match checkpoint_locked t with
                  | Ok _ -> ()
                  | Error e ->
                      Printf.eprintf "bxwiki: compaction failed: %s\n%!" e
                end;
                response)
      end)

(* ------------------------------------------------------------------ *)
(* Health, readiness and the failpoint admin route *)

let queue_depth t =
  Mutex.lock t.qm;
  let n = Queue.length t.queue in
  Mutex.unlock t.qm;
  n

let queue_high_water t = max 1 (t.config.queue_capacity * 3 / 4)

(* Readiness = this process can usefully take traffic right now: the
   journal accepted its last write (replay completed inside [create], so
   a constructed service has replayed), we are not draining, and the
   pending queue is below its high-water mark. *)
let readiness t =
  List.filter_map
    (fun (ok, reason) -> if ok then None else Some reason)
    [
      (Atomic.get t.journal_ok, "journal_unwritable");
      (not (Atomic.get t.stop), "draining");
      (queue_depth t < queue_high_water t, "queue_high_water");
    ]

let ready t = readiness t = []

let handle_readyz t =
  match readiness t with
  | [] -> respond_text 200 "ready\n"
  | reasons -> respond_text 503 ("not ready: " ^ String.concat ", " reasons ^ "\n")

let handle_failpoints_admin t ~meth ~body =
  if not t.config.failpoints_admin then
    respond_text 404 "failpoint admin is not enabled (set BXWIKI_FAILPOINTS)\n"
  else
    match meth with
    | "GET" -> respond_text 200 (Bx_fault.Fault.describe () ^ "\n")
    | "PUT" -> (
        match Bx_fault.Fault.configure body with
        | Ok () -> respond_text 200 (Bx_fault.Fault.describe () ^ "\n")
        | Error e -> respond_text 400 (e ^ "\n"))
    | _ -> respond_text 405 "use GET or PUT\n"

let handle t ~meth ~path ~body =
  let started = Unix.gettimeofday () in
  let meth = String.uppercase_ascii meth in
  let response =
    (* An injected fault at a lock or lens seam is answered like any
       other transient overload: a 503 the retrying client backs off
       from, never a hung connection or a dead worker. *)
    try
      match meth with
      | "GET" when path = "/metrics" ->
          Metrics.note_queue_depth t.metrics (queue_depth t);
          {
            Bx_repo.Webui.status = 200;
            content_type = "text/plain; version=0.0.4; charset=utf-8";
            body = Metrics.render t.metrics;
          }
      | "GET" when path = "/healthz" -> respond_text 200 "ok\n"
      | "GET" when path = "/readyz" -> handle_readyz t
      | ("GET" | "PUT") when path = "/debug/failpoints" ->
          handle_failpoints_admin t ~meth ~body
      | "GET" -> handle_get t path
      | "POST" when is_slens_path path -> handle_slens t path body
      | "POST" -> handle_post t path body
      | _ ->
          respond_html 405 "Method not allowed" "<p>Use GET or POST.</p>"
    with Bx_fault.Fault.Injected m ->
      respond_text 503 ("injected fault: " ^ m ^ "\n")
  in
  Metrics.observe_request t.metrics ~route:(route_of t path) ~meth
    ~status:response.Bx_repo.Webui.status
    ~seconds:(Unix.gettimeofday () -. started);
  response

let checkpoint t = Rwlock.write t.lock (fun () -> checkpoint_locked t)

let close t = Option.iter Journal.close t.journal

(* ------------------------------------------------------------------ *)
(* The socket server: accept loop + worker pool *)

let shutdown t =
  Atomic.set t.stop true;
  (* Wake idle workers so they can notice. *)
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm

(* Shed one connection: a tiny 503 + Retry-After written straight from
   whichever loop is rejecting it (the write goes to a socket buffer
   that is empty, and SO_SNDTIMEO bounds the pathological case), then
   close. *)
let shed_connection t fd ~reason =
  Metrics.shed t.metrics ~reason;
  (try Httpd.write_response fd ~keep_alive:false (Httpd.shed_response ~reason)
   with Unix.Unix_error _ | Bx_fault.Fault.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* Bounded admission: beyond [queue_capacity] pending connections the
   accept loop sheds instead of queueing — the server degrades to fast
   503s rather than stalling every client behind an unbounded backlog. *)
let enqueue t fd =
  Mutex.lock t.qm;
  if Queue.length t.queue >= t.config.queue_capacity then begin
    Mutex.unlock t.qm;
    shed_connection t fd ~reason:"queue_full"
  end
  else begin
    Queue.push (fd, Unix.gettimeofday ()) t.queue;
    Condition.signal t.qc;
    Mutex.unlock t.qm
  end

(* None once the accept loop has stopped and the queue is drained. *)
let dequeue t =
  Mutex.lock t.qm;
  let rec wait () =
    match Queue.take_opt t.queue with
    | Some entry -> Some entry
    | None ->
        if not t.accepting then None
        else begin
          Condition.wait t.qc t.qm;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.qm;
  r

let handle_connection t fd =
  let reader = Httpd.reader_of_fd fd in
  let bad route reason status =
    Metrics.protocol_error t.metrics ~route ~reason;
    try Httpd.write_response fd ~keep_alive:false (Httpd.error_response status)
    with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match Httpd.read_request ~max_body:t.config.max_body reader with
    | Error `Eof -> ()
    | Error (`Bad e) -> bad "wire" e.Httpd.reason e
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        bad "wire" "read_timeout" { Httpd.status = 408; reason = "read timeout" }
    | exception Unix.Unix_error (_, _, _) -> ()
    | exception Bx_fault.Fault.Injected _ ->
        (* An injected wire-read fault behaves like a peer reset. *)
        Metrics.protocol_error t.metrics ~route:"wire" ~reason:"fault_injected"
    | Ok req -> (
        let response = handle t ~meth:req.meth ~path:req.path ~body:req.body in
        (* Drop keep-alive while draining so shutdown terminates. *)
        let keep_alive = req.keep_alive && not (Atomic.get t.stop) in
        match Httpd.write_response fd ~keep_alive response with
        | () -> if keep_alive then loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
        | exception Bx_fault.Fault.Injected _ ->
            Metrics.protocol_error t.metrics ~route:"wire"
              ~reason:"fault_injected")
  in
  loop ();
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let worker_loop t =
  let rec go () =
    match dequeue t with
    | None -> ()
    | Some (fd, enqueued_at) ->
        (* The deadline budget: a connection that sat queued longer than
           [queue_deadline] is answered with a fast 503 — by now the
           client has likely timed out or retried, and burning a worker
           on stale work only deepens the overload. *)
        if Unix.gettimeofday () -. enqueued_at > t.config.queue_deadline then
          shed_connection t fd ~reason:"deadline"
        else
          (try handle_connection t fd
           with exn ->
             (* A worker must survive anything one connection throws. *)
             Metrics.protocol_error t.metrics ~route:"wire" ~reason:"worker_exn";
             Printf.eprintf "bxwiki: worker: %s\n%!" (Printexc.to_string exn);
             (try Unix.close fd with Unix.Unix_error (_, _, _) -> ()));
        go ()
  in
  go ()

let write_port_file file port =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Printf.fprintf oc "%d\n" port)

let serve t ?(port = 8008) ?(workers = 4) ?port_file ?(quiet = false) () =
  try
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 128;
    let bound =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    t.bound_port <- Some bound;
    Option.iter (fun f -> write_port_file f bound) port_file;
    if not quiet then
      Printf.printf
        "bxwiki: serving %d entries on http://127.0.0.1:%d/ (%d workers%s)\n%!"
        (with_registry t Bx_repo.Registry.size)
        bound workers
        (match t.config.journal_dir with
        | Some dir -> ", journal " ^ dir
        | None -> ", no journal");
    t.accepting <- true;
    let pool = List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
    let rec accept_loop () =
      if Atomic.get t.stop then ()
      else
        match Unix.select [ sock ] [] [] 0.2 with
        | [], _, _ -> accept_loop ()
        | _ -> (
            match Unix.accept sock with
            | client, _ ->
                (match Bx_fault.Fault.point "httpd.accept" with
                | () ->
                    Unix.setsockopt_float client Unix.SO_RCVTIMEO
                      t.config.read_timeout;
                    (* A slow reader cannot pin a worker: response writes
                       time out too, and the connection is dropped. *)
                    Unix.setsockopt_float client Unix.SO_SNDTIMEO
                      t.config.write_timeout;
                    enqueue t client
                | exception Bx_fault.Fault.Injected _ -> (
                    Metrics.protocol_error t.metrics ~route:"wire"
                      ~reason:"fault_injected";
                    try Unix.close client with Unix.Unix_error _ -> ()));
                accept_loop ()
            | exception
                Unix.Unix_error
                  ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                    | Unix.ECONNABORTED),
                    _,
                    _ ) ->
                accept_loop ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    in
    accept_loop ();
    (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
    (* Drain: no more connections will arrive; workers finish the queue
       and their in-flight requests, then exit. *)
    Mutex.lock t.qm;
    t.accepting <- false;
    Condition.broadcast t.qc;
    Mutex.unlock t.qm;
    List.iter Domain.join pool;
    t.bound_port <- None;
    let result =
      match checkpoint t with
      | Ok _ -> Ok ()
      | Error e -> Error ("final snapshot: " ^ e)
    in
    close t;
    if not quiet then
      Printf.printf "bxwiki: drained, snapshot written, bye\n%!";
    result
  with Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
