type config = {
  journal_dir : string option;
  shards : int;
  cache_capacity : int;
  cache_shards : int;
  compact_every : int;
  max_body : int;
  read_timeout : float;
  lens_workers : int;
  queue_capacity : int;
  queue_deadline : float;
  write_timeout : float;
  failpoints_admin : bool;
  replica : bool;
  replica_lag_threshold : float;
  stream_wait : float;
  stream_max_records : int;
  scrub_rate : int;
  entry_law : (Bx_repo.Template.t -> (unit, string) result) option;
  brownout : bool;
  min_concurrency : int;
  chaos_admin : bool;
}

let default_config =
  {
    journal_dir = None;
    shards = 1;
    cache_capacity = 256;
    cache_shards = 4;
    compact_every = 64;
    max_body = Httpd.default_max_body;
    read_timeout = 10.0;
    lens_workers = 4;
    queue_capacity = 256;
    queue_deadline = 5.0;
    write_timeout = 10.0;
    failpoints_admin = Bx_fault.Fault.env_configured;
    replica = false;
    replica_lag_threshold = 5.0;
    stream_wait = 5.0;
    stream_max_records = 512;
    scrub_rate = 0;
    entry_law = None;
    brownout = true;
    min_concurrency = 8;
    chaos_admin = Bx_fault.Netchaos.env_configured || Bx_fault.Fault.env_configured;
  }

(* ------------------------------------------------------------------ *)
(* A writer-preferring reader/writer lock.  Writers are rare (edits) and
   must not starve behind a stream of page views. *)

module Rwlock = struct
  type t = {
    m : Mutex.t;
    ok_read : Condition.t;
    ok_write : Condition.t;
    mutable readers : int;
    mutable writing : bool;
    mutable waiting_writers : int;
    (* Contention accounting: every acquisition, plus the ones that had
       to block — on the guard mutex itself or behind a conflicting
       holder.  The load benchmarks read these to tell whether a flat
       scaling curve is this lock's fault. *)
    reads : int Atomic.t;
    writes : int Atomic.t;
    reads_contended : int Atomic.t;
    writes_contended : int Atomic.t;
  }

  let create () =
    {
      m = Mutex.create ();
      ok_read = Condition.create ();
      ok_write = Condition.create ();
      readers = 0;
      writing = false;
      waiting_writers = 0;
      reads = Atomic.make 0;
      writes = Atomic.make 0;
      reads_contended = Atomic.make 0;
      writes_contended = Atomic.make 0;
    }

  (* Take the guard mutex, reporting whether we had to block for it. *)
  let lock_guard t =
    if Mutex.try_lock t.m then false
    else begin
      Mutex.lock t.m;
      true
    end

  let read t f =
    Atomic.incr t.reads;
    let blocked = lock_guard t in
    let blocked = blocked || t.writing || t.waiting_writers > 0 in
    while t.writing || t.waiting_writers > 0 do
      Condition.wait t.ok_read t.m
    done;
    if blocked then Atomic.incr t.reads_contended;
    t.readers <- t.readers + 1;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.readers <- t.readers - 1;
        if t.readers = 0 then Condition.signal t.ok_write;
        Mutex.unlock t.m)

  let write t f =
    Atomic.incr t.writes;
    let blocked = lock_guard t in
    let blocked = blocked || t.writing || t.readers > 0 in
    t.waiting_writers <- t.waiting_writers + 1;
    while t.writing || t.readers > 0 do
      Condition.wait t.ok_write t.m
    done;
    t.waiting_writers <- t.waiting_writers - 1;
    t.writing <- true;
    if blocked then Atomic.incr t.writes_contended;
    Mutex.unlock t.m;
    Fun.protect f ~finally:(fun () ->
        Mutex.lock t.m;
        t.writing <- false;
        Condition.broadcast t.ok_read;
        Condition.signal t.ok_write;
        Mutex.unlock t.m)

  let stats t =
    ( Atomic.get t.reads,
      Atomic.get t.reads_contended,
      Atomic.get t.writes,
      Atomic.get t.writes_contended )
end

type t = {
  config : config;
  mutable registry : Bx_repo.Registry.t;
      (* replaced wholesale by a snapshot bootstrap, under every lock's
         write side; everything else reads it under a read side *)
  locks : Rwlock.t array;
      (* one reader/writer lock per registry shard: edits to entries in
         different shards do not serialise against each other, and an
         entry read only ever waits on its own shard's writer *)
  pages : (string * (unit -> string * string)) list;
  lenses : (string * Bx_strlens.Slens.t) list;
  docstore : Docstore.t;
      (* lens-backed documents; mutations ride shard 0's write lock and
         journal segment (lock order: shard lock, then the store's own
         mutex) *)
  pages_mutex : Mutex.t;
      (* extra-page thunks may force lazies; serialise them so worker
         domains cannot race inside [Lazy.force] *)
  log : Shardlog.t option;
  metrics : Metrics.t;
  cache : Respcache.t;
  gens : int array;
      (* per-shard write generations, each guarded by its shard lock's
         write side; the service-wide generation is their sum, so it
         still advances by one on every accepted write *)
  digests : int array;
      (* per-shard content digests (XOR over entry hashes; shard 0 also
         folds the docstore), maintained incrementally under the same
         write locks as [gens] — the O(shards) anti-entropy currency *)
  quarantine : Integrity.Quarantine.t;
  cm : Mutex.t; (* guards [corruption_times] *)
  mutable corruption_times : float list;
      (* when each fresh corruption was found, pruned to the last 60 s:
         a burst flips /readyz *)
  replay_applied : int;
  replay_failed : int;
  stop : bool Atomic.t;
  journal_ok : bool Atomic.t;
      (* false after a failed append, true again after a successful one;
         feeds /readyz *)
  disk_full : bool Atomic.t;
      (* sticky: ENOSPC at the journal means no retry can succeed until
         an operator frees space, so writes stay refused (503) and
         /readyz stays down while reads keep serving *)
  mutable bound_port : int option;
  (* connection queue between the accept loop and the workers; each
     entry remembers when it was enqueued so workers can shed
     connections that waited past their deadline budget *)
  qm : Mutex.t;
  qc : Condition.t;
  queue : (Unix.file_descr * float) Queue.t;
  mutable accepting : bool;
  (* AIMD adaptive admission: [limit] replaces the static queue capacity
     as the admission bound — halved (at most once per window) when
     admission overflows, grown by one per timely completion, kept in
     [min_concurrency, queue_capacity].  [last_md] is guarded by qm. *)
  limit : int Atomic.t;
  mutable last_md : float;
  (* the brownout lane: connections the admission controller refused are
     parked here and answered from the respcache (stale, labelled) by a
     dedicated degraded worker instead of being shed outright *)
  dqm : Mutex.t;
  dqc : Condition.t;
  dqueue : (Unix.file_descr * float) Queue.t;
  mutable daccepting : bool;
  (* Replication.  [replica] flips to false on promotion; [epoch] is the
     highest epoch this node has observed (persisted when journaled);
     [fenced_by] is the epoch that deposed this primary (0 = none);
     [applied_next] is the next sequence number this node will journal —
     the follower's poll cursor and the primary's stream head alike. *)
  replica : bool Atomic.t;
  epoch : int Atomic.t;
  fenced_by : int Atomic.t;
  applied_next : int Atomic.t;
  last_stream_from : int Atomic.t;
      (* the highest [from] any follower has polled with — everything
         below it is known applied downstream *)
  created_at : float;
  rm : Mutex.t; (* guards the follower-progress fields below *)
  mutable repl_synced : bool; (* caught up at least once *)
  mutable repl_behind : int; (* record lag at the last successful poll *)
  mutable repl_last_sync : float; (* when [repl_behind] last hit 0 *)
  mutable repl_allowance : float;
      (* the long-poll hold: an idle follower's [repl_last_sync] is
         legitimately this stale *)
}

let metrics t = t.metrics

(* Nested acquisition over every shard lock, always in index order, so
   an all-shard reader/writer (index page, replication, promotion) can
   never deadlock against another. *)
let read_shard t k f = Rwlock.read t.locks.(k) (fun () -> f ())

let write_shard t k f = Rwlock.write t.locks.(k) (fun () -> f ())

let read_all t f =
  let rec go k = if k = Array.length t.locks then f () else Rwlock.read t.locks.(k) (fun () -> go (k + 1)) in
  go 0

let write_all t f =
  let rec go k = if k = Array.length t.locks then f () else Rwlock.write t.locks.(k) (fun () -> go (k + 1)) in
  go 0

let total_gen t = Array.fold_left ( + ) 0 t.gens
let generation t = total_gen t
let replay_stats t = (t.replay_applied, t.replay_failed)
let port t = t.bound_port
let with_registry t f = read_all t (fun () -> f t.registry)
let metrics_text t = Metrics.render t.metrics

let lock_stats t =
  (* Shard locks are one logical registry lock to observers: the rows
     (and the /metrics series behind them) keep their pre-sharding
     labels, summed across shards. *)
  let reads, reads_c, writes, writes_c =
    Array.fold_left
      (fun (r, rc, w, wc) lock ->
        let r', rc', w', wc' = Rwlock.stats lock in
        (r + r', rc + rc', w + w', wc + wc'))
      (0, 0, 0, 0) t.locks
  in
  let cache_acq, cache_cont = Respcache.lock_stats t.cache in
  [
    ("registry", "read", reads, reads_c);
    ("registry", "write", writes, writes_c);
    ("respcache", "all", cache_acq, cache_cont);
  ]

(* ------------------------------------------------------------------ *)
(* Integrity bookkeeping: per-shard content digests and the quarantine *)

(* The docstore's contribution to shard 0's digest (documents ride
   shard 0's snapshot and write lock). *)
let doc_digest t =
  List.fold_left
    (fun acc (lens, docid, gen, source) ->
      acc lxor Integrity.doc_hash ~lens ~docid ~gen ~source)
    0
    (Docstore.doc_digest_parts t.docstore)

(* Full recomputation — boot, snapshot install, shard resync.  Steady
   state maintains the same value incrementally: every accepted write
   XORs the mutated item's hash out (pre-image) and back in
   (post-image), O(|item|) per write.  Caller holds the shard's write
   lock. *)
let recompute_shard_digest t k =
  let d = Integrity.shard_digest_of t.registry k in
  t.digests.(k) <- (if k = 0 then d lxor doc_digest t else d)

let recompute_digests t =
  Array.iteri (fun k _ -> recompute_shard_digest t k) t.digests

let shard_digests t =
  read_all t (fun () ->
      Array.to_list (Array.mapi (fun k d -> (k, d)) t.digests))

let quarantine t = t.quarantine

let note_quarantine_gauges t =
  let entries, docs, files = Integrity.Quarantine.counts t.quarantine in
  Metrics.note_quarantine t.metrics ~entries ~docs ~files

let note_corruption t =
  Mutex.lock t.cm;
  let now = Unix.gettimeofday () in
  t.corruption_times <-
    now :: List.filter (fun ts -> now -. ts < 60.) t.corruption_times;
  Mutex.unlock t.cm

(* Five fresh corruptions inside a minute is no longer bit rot, it is a
   failing disk (or an attack): stop advertising readiness so the load
   balancer drains this node while it still serves what it can. *)
let corruption_burst t =
  Mutex.lock t.cm;
  let now = Unix.gettimeofday () in
  t.corruption_times <-
    List.filter (fun ts -> now -. ts < 60.) t.corruption_times;
  let n = List.length t.corruption_times in
  Mutex.unlock t.cm;
  n >= 5

(* Flag a finding: quarantined data keeps serving (entries under a
   Warning header, documents as 410, files excluded from loads) but is
   never silently dropped.  Counted once per distinct finding. *)
let flag_corruption t key ~surface ~why =
  if Integrity.Quarantine.flag t.quarantine key ~reason:why then begin
    Metrics.scrub_corruption t.metrics ~surface;
    note_corruption t;
    Printf.eprintf "bxwiki: integrity: %s: %s\n%!"
      (Integrity.Quarantine.key_name key)
      why;
    note_quarantine_gauges t
  end

(* ------------------------------------------------------------------ *)
(* Boot: snapshot, then log replay *)

let is_slens_path path =
  String.length path > 7 && String.sub path 0 7 = "/slens/"

let replay_edits registry docstore records =
  List.fold_left
    (fun (ok, failed) (r : Journal.record) ->
      if is_slens_path r.path then
        (* Lens-document records replay against the docstore; the
           registry never sees them. *)
        match Docstore.apply docstore ~path:r.path ~body:r.body with
        | Ok () -> (ok + 1, failed)
        | Error e ->
            Printf.eprintf
              "bxwiki: journal record %d (%s) no longer applies (%s)\n%!"
              r.seq r.path e;
            (ok, failed + 1)
      else
        let response =
          Bx_repo.Webui.handle registry ~meth:"POST" ~path:r.path ~body:r.body
        in
        if response.Bx_repo.Webui.status = 200 then (ok + 1, failed)
        else begin
          Printf.eprintf
            "bxwiki: journal record %d (%s) no longer applies (status %d)\n%!"
            r.seq r.path response.Bx_repo.Webui.status;
          (ok, failed + 1)
        end)
    (0, 0) records

(* Per-shard snapshot writer: a single-shard service keeps writing the
   full legacy dump (INDEX.wiki and all — bit-compatible with every
   pre-sharding snapshot); a sharded one dumps only shard [k], so
   compacting one segment costs O(shard), not O(catalogue). *)
let save_shard_cb t k ~dir =
  let pages =
    if Array.length t.locks = 1 then Bx_repo.Store.save ~dir t.registry
    else Bx_repo.Store.save_shard ~dir t.registry k
  in
  match pages with
  | Error _ as e -> e
  | Ok n ->
      (* Lens-backed documents ride shard 0's snapshot as one extra flat
         file; every other loader ignores it (page files are recognised
         by name). *)
      if k <> 0 || Docstore.doc_count t.docstore = 0 then Ok n
      else
        match Docstore.save_dir t.docstore ~dir with
        | Ok () -> Ok (n + 1)
        | Error e -> Error e

let checkpoint_shard_locked t k =
  (* Caller holds shard [k]'s write lock. *)
  match t.log with
  | None -> Ok 0
  | Some log ->
      let result =
        Shardlog.checkpoint_shard log ~shard:k ~save:(fun ~dir ->
            save_shard_cb t k ~dir)
      in
      Metrics.compaction t.metrics ~ok:(Result.is_ok result);
      result

let checkpoint_all_locked t =
  (* Caller holds every write lock (or is single-threaded at boot or
     shutdown): all segments seal at the same global cut. *)
  match t.log with
  | None -> Ok 0
  | Some log ->
      let result =
        Shardlog.checkpoint_all log ~save:(fun k ~dir -> save_shard_cb t k ~dir)
      in
      Metrics.compaction t.metrics ~ok:(Result.is_ok result);
      result

let create ?(config = default_config) ?(pages = []) ?(lenses = []) ~seed () =
  let metrics = Metrics.create () in
  let shards = max 1 config.shards in
  (* Shard assignment must agree with the journal segment layout, so a
     seed partitioned differently is re-sharded (export/import re-hashes
     every entry). *)
  let resharded registry =
    if Bx_repo.Registry.shard_count registry = shards then Ok registry
    else Bx_repo.Registry.import ~shards (Bx_repo.Registry.export registry)
  in
  (* Built before replay: journalled lens-document records apply to the
     docstore, not the registry. *)
  let docstore = Docstore.create ~lenses in
  let fresh ~registry ~log ~applied ~failed =
    (* Epoch at boot: a primary starts at (at least) 1 and persists it,
       so any future promotion elsewhere necessarily fences it; a
       replica starts from whatever it last persisted (0 when it has
       never observed a primary). *)
    let persisted =
      match config.journal_dir with
      | Some dir -> Journal.read_epoch ~dir
      | None -> 0
    in
    let epoch0 =
      if config.replica then persisted else max 1 persisted
    in
    (if (not config.replica) && persisted < epoch0 then
       match config.journal_dir with
       | Some dir -> (
           match Journal.write_epoch ~dir epoch0 with
           | Ok () -> ()
           | Error e -> Printf.eprintf "bxwiki: epoch persist: %s\n%!" e)
       | None -> ());
    let t = {
      config;
      registry;
      locks = Array.init shards (fun _ -> Rwlock.create ());
      pages;
      lenses;
      docstore;
      pages_mutex = Mutex.create ();
      log;
      metrics;
      cache =
        Respcache.create ~capacity:config.cache_capacity
          ~shards:config.cache_shards metrics;
      gens = Array.make shards 0;
      digests = Array.make shards 0;
      quarantine = Integrity.Quarantine.create ();
      cm = Mutex.create ();
      corruption_times = [];
      replay_applied = applied;
      replay_failed = failed;
      stop = Atomic.make false;
      journal_ok = Atomic.make true;
      disk_full = Atomic.make false;
      bound_port = None;
      qm = Mutex.create ();
      qc = Condition.create ();
      queue = Queue.create ();
      accepting = false;
      limit = Atomic.make config.queue_capacity;
      last_md = 0.;
      dqm = Mutex.create ();
      dqc = Condition.create ();
      dqueue = Queue.create ();
      daccepting = false;
      replica = Atomic.make config.replica;
      epoch = Atomic.make epoch0;
      fenced_by = Atomic.make 0;
      applied_next =
        Atomic.make
          (match log with Some l -> Shardlog.next_seq l | None -> 1);
      last_stream_from = Atomic.make 0;
      created_at = Unix.gettimeofday ();
      rm = Mutex.create ();
      repl_synced = false;
      repl_behind = 0;
      repl_last_sync = 0.;
      repl_allowance = config.stream_wait +. 1.0;
    }
    in
    (* Single-threaded here; steady state keeps these incremental. *)
    recompute_digests t;
    t
  in
  match config.journal_dir with
  | None -> (
      match resharded (seed ()) with
      | Error e -> Error ("seed re-shard: " ^ e)
      | Ok registry -> Ok (fresh ~registry ~log:None ~applied:0 ~failed:0))
  | Some dir -> (
      match Shardlog.open_ ~dir ~shards with
      | Error e -> Error e
      | Ok (log, recovery) -> (
          (* What recovery found is an operational signal: torn tails
             are the benign residue of a crash, checksum failures are
             corruption worth an operator's attention. *)
          Metrics.journal_recovery metrics ~torn:recovery.torn
            ~crc_errors:recovery.crc_errors;
          let registry0 =
            if recovery.complete then
              (* Every segment carries a sealed snapshot: the pages are
                 the whole catalogue, no seed needed. *)
              Result.map_error
                (fun e -> "snapshot load: " ^ e)
                (Bx_repo.Registry.import ~shards recovery.pages)
            else
              (* Partial (or no) snapshots: start from the seed and lay
                 the sealed shards' pages over it — cheaper than forcing
                 a full initial checkpoint just to make boot uniform. *)
              match resharded (seed ()) with
              | Error e -> Error ("seed re-shard: " ^ e)
              | Ok registry -> (
                  match Bx_repo.Registry.overlay registry recovery.pages with
                  | Error e -> Error ("snapshot overlay: " ^ e)
                  | Ok () -> Ok registry)
          in
          match registry0 with
          | Error e ->
              Shardlog.close log;
              Error e
          | Ok registry -> (
              (* Documents persist in shard 0's snapshot; load them
                 before replay so journalled patches find their
                 documents at the right generation.  A dump that failed
                 its checksum is quarantined below, not parsed. *)
              let docs_corrupt =
                List.exists
                  (fun (k, file, _) -> k = 0 && file = Docstore.docs_file)
                  recovery.corrupt
              in
              (if not docs_corrupt then
                 match
                   Docstore.load_dir docstore
                     ~dir:
                       (Journal.snapshot_dir
                          (Shardlog.segment_dir ~dir ~shards 0))
                 with
                 | Ok () -> ()
                 | Error e -> Printf.eprintf "bxwiki: %s\n%!" e);
              let applied, failed =
                replay_edits registry docstore recovery.replay
              in
              let t = fresh ~registry ~log:(Some log) ~applied ~failed in
              (* Checksum casualties found at boot enter the quarantine
                 like scrub findings would: flagged, counted, kept on
                 disk for the operator (or an anti-entropy resync). *)
              List.iter
                (fun (k, file, why) ->
                  let name =
                    if shards = 1 then file
                    else Printf.sprintf "shard-%03d/%s" k file
                  in
                  flag_corruption t
                    (Integrity.Quarantine.File name)
                    ~surface:"snapshot" ~why)
                recovery.corrupt;
              if not recovery.migrated then Ok t
              else
                (* A legacy layout was absorbed: capture the rebuilt
                   state into the segments, and only then delete the
                   legacy files and stamp the directory — a crash before
                   the stamp redoes the migration from the still-intact
                   legacy state. *)
                match checkpoint_all_locked t with
                | Error e -> Error ("migration checkpoint: " ^ e)
                | Ok _ -> (
                    match Shardlog.seal_migration log with
                    | Error e -> Error ("migration seal: " ^ e)
                    | Ok () -> Ok t))))

(* ------------------------------------------------------------------ *)
(* Request handling *)

let route_of t path =
  let ends_with suffix = Filename.check_suffix path suffix in
  if path = "/" || path = "" then "index"
  else if path = "/metrics" then "metrics"
  else if path = "/healthz" || path = "/readyz" then "health"
  else if path = "/debug/failpoints" || path = "/debug/chaos" then "debug"
  else if
    path = "/replication/stream"
    || path = "/replication/snapshot"
    || path = "/replication/digest"
  then "replication"
  else if path = "/admin/promote" then "admin"
  else if is_slens_path path then "slens"
  else if path = "/search" then "search"
  else if path = "/glossary" then "glossary"
  else if path = "/manuscript" then "manuscript"
  else if List.mem_assoc path t.pages then path
  else if ends_with ".wiki" then "entry.wiki"
  else if ends_with ".json" then "entry.json"
  else "entry"

let respond_html status title body =
  {
    Bx_repo.Webui.status;
    content_type = "text/html; charset=utf-8";
    body = Bx_repo.Webui.html_page ~title body;
    headers = [];
  }

(* Which registry shard a path's cache validity rides on: an entry route
   is exactly as fresh as its shard's generation, everything else (the
   index, search, the manuscript...) reads the whole catalogue and is
   invalidated by any write.  Purely syntactic, so it can classify both
   live requests and already-cached keys. *)
let shard_route t path =
  match route_of t path with
  | "entry" | "entry.wiki" | "entry.json" -> (
      match Bx_repo.Webui.page_identifier path with
      | Some id -> Some (Bx_repo.Registry.shard_of_id t.registry id)
      | None -> None)
  | _ -> None

let cache_key ~path ~query = if query = "" then path else path ^ "?" ^ query

(* The generation a cached key would have to carry to be fresh now.
   Sampled racily (like the pre-sharding code sampled [t.gen]): a stale
   sample only causes a miss or an eviction, never a stale hit, because
   the store-side generation is sampled under the rendering lock. *)
let gen_for_key t key =
  let path =
    match String.index_opt key '?' with
    | None -> key
    | Some i -> String.sub key 0 i
  in
  match shard_route t path with
  | Some k -> t.gens.(k)
  | None -> total_gen t

let respond_text status body =
  {
    Bx_repo.Webui.status;
    content_type = "text/plain; charset=utf-8";
    body;
    headers = [];
  }

(* ------------------------------------------------------------------ *)
(* Deadline propagation.  A request carries the client's remaining
   budget (X-Bxwiki-Deadline, parsed by Httpd into an absolute time);
   once it is exhausted nobody is waiting for the answer, so work is
   shed *before* the expensive steps — lock acquisition, rendering, the
   journal fsync — with a 504 and its own shed reason. *)

let deadline_expired = function
  | None -> false
  | Some d -> Unix.gettimeofday () > d

let shed_deadline t =
  Metrics.shed t.metrics ~reason:"deadline_propagated";
  respond_text 504 "deadline exceeded: request budget exhausted\n"

(* Serve [path] from whatever render the cache still holds, at any
   generation, labelled with how far behind the live registry it is.
   The brownout bargain: freshness is traded for availability, visibly —
   the client can always tell a stale answer from a fresh one. *)
let try_stale t ~query path =
  let key = cache_key ~path ~query in
  match Respcache.find_stale t.cache ~path:key with
  | Some (gen, response) when response.Bx_repo.Webui.status = 200 ->
      let lag = max 0 (gen_for_key t key - gen) in
      Metrics.stale_response t.metrics ~gen_lag:lag;
      Some
        {
          response with
          Bx_repo.Webui.headers =
            ("X-Bxwiki-Stale", string_of_int lag)
            :: response.Bx_repo.Webui.headers;
        }
  | _ -> None

let handle_get ?deadline t ~query path =
  let key = cache_key ~path ~query in
  let render () =
    Bx_fault.Fault.point "service.lock.read";
    if List.mem_assoc path t.pages then begin
      (* Serialise extra-page thunks (they may force lazies, which is
         not safe to race from parallel domains); the result is cached,
         so this mutex is cold after the first render. *)
      Mutex.lock t.pages_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.pages_mutex)
        (fun () ->
          read_all t (fun () ->
              ( total_gen t,
                Bx_repo.Webui.handle ~pages:t.pages ~query t.registry
                  ~meth:"GET" ~path ~body:"" )))
    end
    else
      match shard_route t path with
      | Some k ->
          (* An entry page renders under just its shard's read lock: a
             write to any other shard neither blocks this read nor
             invalidates its cache entry. *)
          read_shard t k (fun () ->
              ( t.gens.(k),
                Bx_repo.Webui.handle ~query t.registry ~meth:"GET" ~path
                  ~body:"" ))
      | None ->
          read_all t (fun () ->
              ( total_gen t,
                Bx_repo.Webui.handle ~query t.registry ~meth:"GET" ~path
                  ~body:"" ))
  in
  (* The generation is sampled under the same read lock that renders, so
     a cached page can never be older than the generation it is filed
     under. *)
  match Respcache.find t.cache ~path:key ~generation:(gen_for_key t key) with
  | Some response -> response
  | None when deadline_expired deadline -> (
      (* The budget ran out before the expensive part (lock + render).  A
         stale copy is still worth shipping — it costs nothing — but a
         fresh render would finish after the client has given up. *)
      match try_stale t ~query path with
      | Some response -> response
      | None -> shed_deadline t)
  | None ->
      let generation, response = render () in
      if response.Bx_repo.Webui.status = 200 then
        Respcache.store t.cache ~path:key ~generation response
          ~current:(gen_for_key t);
      response

(* ------------------------------------------------------------------ *)
(* Lens execution routes.  POST /slens/<name>/<op>; single-document ops
   take the raw document as the body, [put] separates view from source
   with an ASCII record separator (0x1e).  Batch ops take RS-separated
   records (for [put_batch], view and source within a record are
   separated by the unit separator 0x1f) and fan across
   [config.lens_workers] domains.  Lens runs never touch the registry,
   so they bypass the reader/writer lock entirely. *)

let rs = '\x1e'
let us = '\x1f'
let rs_str = String.make 1 rs

let split_once sep str =
  match String.index_opt str sep with
  | None -> None
  | Some i ->
      Some (String.sub str 0 i, String.sub str (i + 1) (String.length str - i - 1))

let handle_slens t path body =
  match String.split_on_char '/' path with
  | [ ""; "slens"; name; op ] -> (
      match List.assoc_opt name t.lenses with
      | None -> respond_text 404 (Printf.sprintf "unknown lens %S\n" name)
      | Some lens -> (
          let workers = t.config.lens_workers in
          let observe op docs =
            Metrics.observe_lens t.metrics ~lens:name ~op ~docs
              ~bytes:(String.length body)
          in
          try
            match op with
            | "get" ->
                observe "get" 1;
                respond_text 200 (lens.Bx_strlens.Slens.get body)
            | "create" ->
                observe "create" 1;
                respond_text 200 (lens.Bx_strlens.Slens.create body)
            | "put" -> (
                match split_once rs body with
                | None ->
                    respond_text 400
                      "put body must be <view> RS (0x1e) <source>\n"
                | Some (v, s) ->
                    observe "put" 1;
                    respond_text 200 (lens.Bx_strlens.Slens.put v s))
            | "get_batch" ->
                let docs =
                  if body = "" then [] else String.split_on_char rs body
                in
                observe "get_batch" (List.length docs);
                respond_text 200
                  (String.concat rs_str
                     (Bx_strlens.Slens.get_all ~workers lens docs))
            | "put_batch" -> (
                let records =
                  if body = "" then [] else String.split_on_char rs body
                in
                match
                  List.fold_right
                    (fun r acc ->
                      match (acc, split_once us r) with
                      | None, _ | _, None -> None
                      | Some acc, Some pair -> Some (pair :: acc))
                    records (Some [])
                with
                | None ->
                    respond_text 400
                      "put_batch records must be <view> US (0x1f) <source>\n"
                | Some pairs ->
                    observe "put_batch" (List.length pairs);
                    respond_text 200
                      (String.concat rs_str
                         (Bx_strlens.Slens.put_all ~workers lens pairs)))
            | _ -> respond_text 404 (Printf.sprintf "unknown lens op %S\n" op)
          with
          | Bx_strlens.Slens.Type_error m | Bx_strlens.Split.Split_error m ->
            respond_text 422 (m ^ "\n")))
  | _ -> respond_text 404 "lens paths are /slens/<name>/<op>\n"

(* Why this node cannot accept a write right now, if it cannot. *)
let write_barrier t =
  if Atomic.get t.replica then
    Some (respond_text 503 "read-only replica: writes go to the primary\n")
  else if Atomic.get t.fenced_by > 0 then
    Some
      (respond_text 503
         (Printf.sprintf "fenced: deposed by epoch %d, writes rejected\n"
            (Atomic.get t.fenced_by)))
  else if Atomic.get t.disk_full then
    Some
      (respond_text 503
         "read-only: journal disk full, writes refused until space is \
          freed\n")
  else None

(* The durability half of an accepted write: bump shard [k]'s
   generation, append the record, compact the segment when it is due.
   The caller holds shard [k]'s write lock and has already applied the
   edit in memory. *)
let journal_accepted t ~k ~path ~body response =
  t.gens.(k) <- t.gens.(k) + 1;
  match t.log with
  | None ->
      Atomic.incr t.applied_next;
      response
  | Some log -> (
      match Shardlog.append log ~shard:k ~path ~body with
      | Error e ->
          (* The in-memory edit stands, but durability was promised and
             could not be delivered: tell the client the truth, flip
             /readyz, and let the operator look at the disk.  ENOSPC is
             special — no retry can succeed until an operator frees
             space, so it latches [disk_full] and the write barrier turns
             the node read-only instead of flapping per request. *)
          Atomic.set t.journal_ok false;
          if Journal.is_disk_full_error e then begin
            Atomic.set t.disk_full true;
            Metrics.note_disk_full t.metrics true
          end;
          Metrics.protocol_error t.metrics ~route:"journal"
            ~reason:"append_failed";
          respond_html 500 "Journal write failed"
            ("<p>Edit applied in memory but not journaled: "
            ^ Bx_repo.Markup.html_escape e ^ "</p>")
      | Ok _ ->
          Atomic.set t.journal_ok true;
          Atomic.set t.applied_next (Shardlog.next_seq log);
          if
            t.config.compact_every > 0
            && Shardlog.record_count log k >= t.config.compact_every
          then begin
            (* A failed compaction must not take the service down: the
               journal keeps growing, the failure is counted and
               surfaced in /metrics, and serving continues.  Only this
               shard's segment snapshots and truncates — compaction
               cost is O(shard), whatever the catalogue size. *)
            match checkpoint_shard_locked t k with
            | Ok _ -> ()
            | Error e -> Printf.eprintf "bxwiki: compaction failed: %s\n%!" e
          end;
          response)

let handle_post ?deadline t path body =
  match write_barrier t with
  | Some refusal -> refusal
  | None when deadline_expired deadline -> shed_deadline t
  | None ->
  Bx_fault.Fault.point "service.lock.write";
  (* An entry edit takes only its shard's write lock (and lands in that
     shard's journal segment); edits to entries in other shards proceed
     in parallel.  Anything unroutable serialises against everything. *)
  let id_opt = Bx_repo.Webui.page_identifier path in
  let shard_opt =
    Option.map (fun id -> Bx_repo.Registry.shard_of_id t.registry id) id_opt
  in
  let locked =
    match shard_opt with
    | Some k -> write_shard t k
    | None -> write_all t
  in
  locked (fun () ->
      (* Re-checked after the (possibly contended) lock wait, and before
         the edit is applied: this is the last point an exhausted budget
         can abort cleanly — once the in-memory apply happens, skipping
         the journal fsync would diverge memory from disk. *)
      if deadline_expired deadline then shed_deadline t
      else
      (* The entry's pre-image hash, sampled under the same write lock
         that applies the edit: XORing it out and the post-image in
         keeps the shard digest exact without rescanning the shard. *)
      let before =
        match id_opt with
        | Some id -> Integrity.entry_hash t.registry id
        | None -> 0
      in
      let response =
        Bx_repo.Webui.handle t.registry ~meth:"POST" ~path ~body
      in
      if response.Bx_repo.Webui.status <> 200 then response
      else begin
        (match (id_opt, shard_opt) with
        | Some id, Some k ->
            t.digests.(k) <-
              t.digests.(k) lxor before lxor Integrity.entry_hash t.registry id
        | _ ->
            (* Unroutable writes hold every lock already. *)
            recompute_digests t);
        journal_accepted t
          ~k:(Option.value shard_opt ~default:0)
          ~path ~body response
      end)

(* ------------------------------------------------------------------ *)
(* Lens-backed documents.  POST /slens/<name>/doc/<docid> stores a
   source document (the view is maintained through the lens);
   GET /slens/<name>/doc/<docid>[?as=view] reads either side back with
   its generation; POST /slens/<name>/patch ships an {e edit} instead
   of a document — a [<docid> RS <gen> RS <edit>] frame propagated
   incrementally by {!Bx_strlens.Slens_delta}, answered with the new
   generation and the complementary source edit.  [/patch_source] is
   the mirror direction (a source edit, answered with the view edit).

   Mutations ride shard 0's write lock and journal segment, and the
   journal record {e is} the request frame: what the log and the
   replication stream carry for a patch is the edit, not the
   document. *)

(* The (lens, docid) a docstore mutation touches — the unit of shard 0's
   digest.  Patch frames carry the docid as their first RS field. *)
let doc_key_of path body =
  match String.split_on_char '/' path with
  | [ ""; "slens"; name; "doc"; docid ] -> Some (name, docid)
  | [ ""; "slens"; name; ("patch" | "patch_source") ] ->
      Option.map (fun (docid, _) -> (name, docid)) (split_once rs body)
  | _ -> None

(* One document's contribution to shard 0's digest; 0 when absent, so
   before/after XOR covers creation too.  Caller holds shard 0's lock. *)
let doc_contrib t (lens, docid) =
  match Docstore.get_doc t.docstore ~lens ~docid ~view:false with
  | Ok (gen, source) -> Integrity.doc_hash ~lens ~docid ~gen ~source
  | Error _ -> 0

let docstore_error e =
  let status =
    match e with
    | Docstore.Not_found _ -> 404
    | Docstore.Stale _ -> 409
    | Docstore.Bad_request _ -> 400
    | Docstore.Unprocessable _ -> 422
  in
  respond_text status (Docstore.describe e ^ "\n")

let handle_docstore_get t ~query path =
  match String.split_on_char '/' path with
  | [ ""; "slens"; name; "doc"; docid ] -> (
      match
        Integrity.Quarantine.find t.quarantine
          (Integrity.Quarantine.Doc (name, docid))
      with
      | Some reason ->
          (* Never serve bytes the scrubber could not vouch for: a
             quarantined document is Gone until repaired (or resynced),
             not silently replaced by something plausible. *)
          respond_text 410 ("quarantined: " ^ reason ^ "\n")
      | None ->
      let as_view =
        List.assoc_opt "as" (Httpd.query_params query) = Some "view"
      in
      Metrics.observe_lens t.metrics ~lens:name ~op:"doc_get" ~docs:1
        ~bytes:0;
      read_shard t 0 (fun () ->
          match
            Docstore.get_doc t.docstore ~lens:name ~docid ~view:as_view
          with
          | Ok (gen, doc) ->
              respond_text 200 (string_of_int gen ^ rs_str ^ doc)
          | Error e -> docstore_error e))
  | _ -> respond_text 404 "document paths are /slens/<name>/doc/<docid>\n"

let handle_docstore_post ?deadline t path body =
  match write_barrier t with
  | Some refusal -> refusal
  | None when deadline_expired deadline -> shed_deadline t
  | None ->
      Bx_fault.Fault.point "service.lock.write";
      write_shard t 0 (fun () ->
          (* Same pre-apply re-check as {!handle_post}: abort while
             aborting is still free. *)
          if deadline_expired deadline then shed_deadline t
          else
          let key = doc_key_of path body in
          let before =
            match key with Some dk -> doc_contrib t dk | None -> 0
          in
          let result =
            match String.split_on_char '/' path with
            | [ ""; "slens"; name; "doc"; docid ] ->
                Metrics.observe_lens t.metrics ~lens:name ~op:"doc_put"
                  ~docs:1 ~bytes:(String.length body);
                Result.map
                  (fun gen -> respond_text 200 (string_of_int gen ^ "\n"))
                  (Docstore.put_doc t.docstore ~lens:name ~docid
                     ~source:body)
            | [ ""; "slens"; name; (("patch" | "patch_source") as op) ] ->
                Metrics.observe_lens t.metrics ~lens:name ~op ~docs:1
                  ~bytes:(String.length body);
                Result.map
                  (fun (gen, edit) ->
                    respond_text 200
                      (string_of_int gen ^ rs_str
                     ^ Bx_strlens.Sdiff.encode edit))
                  (Docstore.patch t.docstore ~lens:name
                     ~reverse:(op = "patch_source") body)
            | _ ->
                Ok
                  (respond_text 404
                     "document paths are /slens/<name>/doc/<docid> and \
                      /slens/<name>/patch\n")
          in
          match result with
          | Error e -> docstore_error e
          | Ok response when response.Bx_repo.Webui.status <> 200 -> response
          | Ok response ->
              (match key with
              | Some dk ->
                  t.digests.(0) <-
                    t.digests.(0) lxor before lxor doc_contrib t dk
              | None -> ());
              journal_accepted t ~k:0 ~path ~body response)

(* ------------------------------------------------------------------ *)
(* Replication: the primary side (stream + snapshot endpoints), the
   replica side (apply + snapshot install, reached through the
   {!Replication.sink}), and promotion. *)

let is_replica t = Atomic.get t.replica
let epoch t = Atomic.get t.epoch
let fenced t = Atomic.get t.fenced_by > 0
let last_stream_poll t = Atomic.get t.last_stream_from

let replication_behind t =
  Mutex.lock t.rm;
  let b = t.repl_behind in
  Mutex.unlock t.rm;
  b

let replication_synced t =
  Mutex.lock t.rm;
  let s = t.repl_synced in
  Mutex.unlock t.rm;
  s

(* How stale this replica's data may be: 0 while it is demonstrably
   caught up (the idle long-poll hold is legitimate staleness and is
   allowed for), growing from the moment it last knew it was current —
   whether because records are queueing up or because the primary has
   gone quiet.  A replica that has never synced is lagging since
   birth. *)
let replication_lag t =
  if not (Atomic.get t.replica) then 0.
  else begin
    let now = Unix.gettimeofday () in
    Mutex.lock t.rm;
    let lag =
      if not t.repl_synced then now -. t.created_at
      else if t.repl_behind > 0 then now -. t.repl_last_sync
      else Float.max 0. (now -. t.repl_last_sync -. t.repl_allowance)
    in
    Mutex.unlock t.rm;
    lag
  end

let octet_response body =
  {
    Bx_repo.Webui.status = 200;
    content_type = "application/octet-stream";
    body;
    headers = [];
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let handle_stream ?deadline:client_deadline t query =
  match t.log with
  | None -> respond_text 404 "replication requires a journal\n"
  | Some log ->
      let params = Httpd.query_params query in
      let int_param name default =
        match List.assoc_opt name params with
        | None -> Some default
        | Some v -> int_of_string_opt v
      in
      let wait =
        match List.assoc_opt "wait" params with
        | None -> 0.
        | Some v -> Option.value ~default:0. (float_of_string_opt v)
      in
      (match (int_param "from" 1, int_param "epoch" 0) with
      | None, _ | _, None -> respond_text 400 "bad from/epoch\n"
      | Some from, Some peer_epoch when from < 0 || peer_epoch < 0 ->
          respond_text 400 "bad from/epoch\n"
      | Some from, Some peer_epoch ->
          let my_epoch = Atomic.get t.epoch in
          if peer_epoch > my_epoch then begin
            (* The poller has seen a newer primary than us: we are the
               deposed one.  Fence: refuse all further writes, so no
               stale ack from this node can contradict the new epoch. *)
            Atomic.set t.fenced_by peer_epoch;
            respond_text 409
              (Printf.sprintf "deposed: epoch %d supersedes ours (%d)\n"
                 peer_epoch my_epoch)
          end
          else begin
            (* A poll at [from] acknowledges everything below it. *)
            if from > Atomic.get t.last_stream_from then
              Atomic.set t.last_stream_from from;
            let wait = Float.min wait t.config.stream_wait in
            (* A long poll held past the client's budget answers nobody:
               clamp the hold so the poll returns (possibly empty) while
               the follower is still listening. *)
            let wait =
              match client_deadline with
              | None -> wait
              | Some d ->
                  Float.max 0. (Float.min wait (d -. Unix.gettimeofday ()))
            in
            let deadline = Unix.gettimeofday () +. wait in
            (* The long poll: re-read under the read lock (compaction
               swaps the snapshot and truncates the log under the write
               lock), sleep in slices outside it. *)
            let rec attempt () =
              let r =
                read_all t (fun () ->
                    (* The floor is the max over segment manifests: a
                       cursor at or below it may point into a truncated
                       segment and must re-bootstrap. *)
                    let floor = Shardlog.floor log in
                    if from <= floor then `Reset floor
                    else
                      match Shardlog.tail log ~from with
                      | Error e -> `Err e
                      | Ok records ->
                          `Records (records, Atomic.get t.applied_next))
              in
              match r with
              | `Records ([], _)
                when Unix.gettimeofday () < deadline && not (Atomic.get t.stop)
                ->
                  Thread.delay 0.01;
                  attempt ()
              | r -> r
            in
            match attempt () with
            | `Err e -> respond_text 500 ("journal read: " ^ e ^ "\n")
            | `Reset floor ->
                Bx_fault.Fault.point "repl.stream.write";
                octet_response
                  (Replication.reset_body ~epoch:my_epoch ~floor)
            | `Records (records, next_seq) ->
                let records = take t.config.stream_max_records records in
                Bx_fault.Fault.point "repl.stream.write";
                let body =
                  Replication.stream_body ~epoch:my_epoch ~next_seq ~records
                in
                Metrics.replication_streamed t.metrics
                  ~records:(List.length records) ~bytes:(String.length body);
                octet_response body
          end)

let snapshot_response t files =
  match files with
  | Error e -> respond_text 404 (e ^ "\n")
  | Ok (seq, files) ->
      Bx_fault.Fault.point "repl.stream.write";
      let body =
        Replication.snapshot_body ~epoch:(Atomic.get t.epoch) ~seq ~files
      in
      Metrics.replication_streamed t.metrics ~records:0
        ~bytes:(String.length body);
      octet_response body

let handle_snapshot t query =
  match t.log with
  | None -> respond_text 404 "replication requires a journal\n"
  | Some log -> (
      match List.assoc_opt "shard" (Httpd.query_params query) with
      | Some v -> (
          (* Targeted anti-entropy: seal and ship exactly one segment —
             the other shards neither checkpoint nor block. *)
          match int_of_string_opt v with
          | Some k when k >= 0 && k < Shardlog.shards log ->
              snapshot_response t
                (write_shard t k (fun () ->
                     match checkpoint_shard_locked t k with
                     | Error e -> Error e
                     | Ok _ -> Shardlog.snapshot_files_shard log ~shard:k))
          | _ -> respond_text 400 (Printf.sprintf "bad shard %S\n" v))
      | None ->
          let files =
            if Shardlog.shards log = 1 then
              (* Single shard: ship whatever snapshot exists (404 until
                 the first checkpoint), exactly the pre-sharding
                 contract. *)
              read_all t (fun () -> Shardlog.snapshot_files log)
            else
              (* Sharded: a consistent ship needs every segment sealed
                 at one global cut, so cut one now under all write
                 locks. *)
              write_all t (fun () ->
                  match checkpoint_all_locked t with
                  | Error e -> Error e
                  | Ok _ -> Shardlog.snapshot_files log)
          in
          snapshot_response t files)

(* The anti-entropy currency: O(shards) numbers a caught-up follower
   compares against its own to find silent divergence — and, on a
   mismatch, knows exactly which shard to re-fetch. *)
let handle_digest t =
  respond_text 200
    (Integrity.render_digests ~epoch:(Atomic.get t.epoch) (shard_digests t))

(* Apply one streamed batch: journal first (a crash between journal and
   registry replays to the same state at next boot), then the registry,
   then bump the cache generation — a replica's Respcache is invalidated
   by the replication apply path exactly as a primary's is by local
   writes.  Retried prefixes (the upstream resent records we already
   hold) are skipped; a gap means the stream and our cursor disagree and
   is fatal for the batch. *)
let replication_apply t records =
  try
    Bx_fault.Fault.point "repl.apply";
    write_all t (fun () ->
        (* Replayed records fan into the same shard (lock, generation and
           journal segment) a local edit would have used — a replica's
           on-disk layout converges on the primary's. *)
        let shard_of_path path =
          if is_slens_path path then 0
          else
            match Bx_repo.Webui.page_identifier path with
            | Some id -> Bx_repo.Registry.shard_of_id t.registry id
            | None -> 0
        in
        let apply_one (r : Journal.record) =
          let k = shard_of_path r.path in
          let id_opt =
            if is_slens_path r.path then None
            else Bx_repo.Webui.page_identifier r.path
          in
          let doc_key =
            if is_slens_path r.path then doc_key_of r.path r.body else None
          in
          let before =
            match (id_opt, doc_key) with
            | Some id, _ -> Integrity.entry_hash t.registry id
            | None, Some dk -> doc_contrib t dk
            | None, None -> 0
          in
          (if is_slens_path r.path then begin
             (* A streamed patch record carries the edit, not the
                document: the follower propagates it through its own
                docstore (put_delta and its internal full-put
                fallback), converging on the primary's state. *)
             match Docstore.apply t.docstore ~path:r.path ~body:r.body with
             | Ok () -> ()
             | Error e ->
                 Printf.eprintf
                   "bxwiki: streamed record %d (%s) did not apply (%s)\n%!"
                   r.seq r.path e;
                 Metrics.protocol_error t.metrics ~route:"replication"
                   ~reason:"apply_failed"
           end
           else
             let response =
               Bx_repo.Webui.handle t.registry ~meth:"POST" ~path:r.path
                 ~body:r.body
             in
             if response.Bx_repo.Webui.status <> 200 then begin
               Printf.eprintf
                 "bxwiki: streamed record %d (%s) did not apply (status %d)\n%!"
                 r.seq r.path response.Bx_repo.Webui.status;
               Metrics.protocol_error t.metrics ~route:"replication"
                 ~reason:"apply_failed"
             end);
          (* The replica's digests track the same incremental XOR a
             primary maintains, so a digest comparison measures real
             content divergence, not bookkeeping drift. *)
          (match (id_opt, doc_key) with
          | Some id, _ ->
              t.digests.(k) <-
                t.digests.(k) lxor before
                lxor Integrity.entry_hash t.registry id
          | None, Some dk ->
              t.digests.(0) <- t.digests.(0) lxor before lxor doc_contrib t dk
          | None, None ->
              if not (is_slens_path r.path) then recompute_digests t);
          Atomic.set t.applied_next (r.seq + 1);
          t.gens.(k) <- t.gens.(k) + 1;
          Metrics.replication_applied t.metrics ~records:1;
          match t.log with
          | Some log
            when t.config.compact_every > 0
                 && Shardlog.record_count log k >= t.config.compact_every -> (
              match checkpoint_shard_locked t k with
              | Ok _ -> ()
              | Error e -> Printf.eprintf "bxwiki: compaction failed: %s\n%!" e)
          | _ -> ()
        in
        let rec go = function
          | [] -> Ok ()
          | (r : Journal.record) :: rest ->
              let next = Atomic.get t.applied_next in
              if r.seq < next then go rest
              else if r.seq > next then Error (`Gap (next, r.seq))
              else begin
                match t.log with
                | None ->
                    apply_one r;
                    go rest
                | Some log ->
                    let k = shard_of_path r.path in
                    if r.seq <= Shardlog.shard_floor log k then begin
                      (* A targeted resync sealed this segment past
                         [r.seq]: the record is already embodied in the
                         installed shard snapshot.  Skip it (the cursor
                         still advances — other shards' records in this
                         range apply normally). *)
                      Atomic.set t.applied_next (r.seq + 1);
                      go rest
                    end
                    else (
                      match
                        Shardlog.append_at log ~shard:k ~seq:r.seq
                          ~path:r.path ~body:r.body
                      with
                      | Error e ->
                          Atomic.set t.journal_ok false;
                          if Journal.is_disk_full_error e then begin
                            Atomic.set t.disk_full true;
                            Metrics.note_disk_full t.metrics true
                          end;
                          Error (`Fail e)
                      | Ok _ ->
                          Atomic.set t.journal_ok true;
                          apply_one r;
                          go rest)
              end
        in
        go records)
  with Bx_fault.Fault.Injected m -> Error (`Fail m)

let replication_install_snapshot t ~seq ~files =
  try
    Bx_fault.Fault.point "repl.apply";
    write_all t (fun () ->
        match t.log with
        | Some log -> (
            match Shardlog.install_snapshot log ~seq ~files with
            | Error e -> Error e
            | Ok () -> (
                match Shardlog.snapshot_pages log with
                | Error e -> Error ("snapshot load: " ^ e)
                | Ok pages -> (
                    match
                      Bx_repo.Registry.import
                        ~shards:(Shardlog.shards log) pages
                    with
                    | Error e -> Error ("snapshot load: " ^ e)
                    | Ok registry ->
                        t.registry <- registry;
                        (* Everything cached is superseded. *)
                        Array.iteri
                          (fun i _ -> t.gens.(i) <- t.gens.(i) + 1)
                          t.gens;
                        Atomic.set t.applied_next (seq + 1);
                        (* The shipped snapshot carries the primary's
                           documents (or none); either way it replaces
                           ours. *)
                        let docs =
                          match t.config.journal_dir with
                          | None -> Ok ()
                          | Some dir ->
                              Docstore.load_dir t.docstore
                                ~dir:
                                  (Journal.snapshot_dir
                                     (Shardlog.segment_dir ~dir
                                        ~shards:(Shardlog.shards log) 0))
                        in
                        recompute_digests t;
                        docs)))
        | None -> Error "snapshot bootstrap requires a journal")
  with Bx_fault.Fault.Injected m -> Error m

(* Targeted anti-entropy repair: replace exactly one shard — its segment
   on disk, its slice of the registry, and (for shard 0) the docstore —
   leaving every other shard untouched.  [applied_next] deliberately
   does not move: records below the new segment floor are skipped by the
   apply loop, records for {e other} shards in the same range still need
   applying. *)
let replication_install_shard t ~shard ~seq ~files =
  try
    Bx_fault.Fault.point "repl.apply";
    write_all t (fun () ->
        match t.log with
        | None -> Error "shard resync requires a journal"
        | Some log ->
            if shard < 0 || shard >= Shardlog.shards log then
              Error (Printf.sprintf "shard %d out of range" shard)
            else (
              match Shardlog.install_shard log ~shard ~seq ~files with
              | Error e -> Error e
              | Ok () -> (
                  match Shardlog.snapshot_pages_shard log ~shard with
                  | Error e -> Error ("snapshot load: " ^ e)
                  | Ok pages -> (
                      match
                        Bx_repo.Registry.replace_shard t.registry shard pages
                      with
                      | Error e -> Error ("shard import: " ^ e)
                      | Ok () ->
                          t.gens.(shard) <- t.gens.(shard) + 1;
                          let docs =
                            if shard <> 0 then Ok ()
                            else
                              match t.config.journal_dir with
                              | None -> Ok ()
                              | Some dir ->
                                  Docstore.load_dir t.docstore
                                    ~dir:
                                      (Journal.snapshot_dir
                                         (Shardlog.segment_dir ~dir
                                            ~shards:(Shardlog.shards log) 0))
                          in
                          recompute_shard_digest t shard;
                          Metrics.replication_shard_resync t.metrics;
                          docs))))
  with Bx_fault.Fault.Injected m -> Error m

let observe_epoch t e =
  if e > Atomic.get t.epoch then begin
    Atomic.set t.epoch e;
    match t.config.journal_dir with
    | Some dir -> (
        match Journal.write_epoch ~dir e with
        | Ok () -> ()
        | Error err -> Printf.eprintf "bxwiki: epoch persist: %s\n%!" err)
    | None -> ()
  end

let replication_sink t =
  {
    Replication.next_seq = (fun () -> Atomic.get t.applied_next);
    epoch = (fun () -> Atomic.get t.epoch);
    observe_epoch = observe_epoch t;
    apply = replication_apply t;
    install_snapshot = replication_install_snapshot t;
    digests = (fun () -> shard_digests t);
    install_shard =
      (fun ~shard ~seq ~files -> replication_install_shard t ~shard ~seq ~files);
    note_gap =
      (fun ~expected ~got ->
        Metrics.replication_gap t.metrics;
        Printf.eprintf
          "bxwiki: replication gap: expected seq %d, got %d; re-bootstrapping\n%!"
          expected got);
    note_digest =
      (fun ~matched -> Metrics.replication_digest_check t.metrics ~matched);
    note_progress =
      (fun ~behind ->
        Mutex.lock t.rm;
        t.repl_behind <- behind;
        if behind = 0 then begin
          t.repl_synced <- true;
          t.repl_last_sync <- Unix.gettimeofday ()
        end;
        Mutex.unlock t.rm);
    note_reconnect = (fun () -> Metrics.replication_reconnect t.metrics);
    note_epoch_reject = (fun () -> Metrics.replication_epoch_reject t.metrics);
    note_snapshot_bootstrap =
      (fun () -> Metrics.replication_snapshot_bootstrap t.metrics);
    should_stop =
      (fun () -> Atomic.get t.stop || not (Atomic.get t.replica));
  }

let follow t ~host ~port ?(wait = default_config.stream_wait) ?min_sleep
    ?max_sleep () =
  Mutex.lock t.rm;
  t.repl_allowance <- wait +. 1.0;
  Mutex.unlock t.rm;
  Replication.follow ~host ~port ~wait ?min_sleep ?max_sleep
    (replication_sink t)

(* Promotion: bump and persist the epoch, then flip writable — in that
   order, so a crash in between leaves a replica with a monotonically
   advanced epoch and nothing worse.  A replica that has never synced
   and never persisted an epoch has nothing worth promoting and is
   refused. *)
let promote t =
  if not (Atomic.get t.replica) then Error "already primary"
  else
    write_all t (fun () ->
        if not (Atomic.get t.replica) then Error "already primary"
        else if not (replication_synced t || Atomic.get t.epoch > 0) then
          Error "replica has never synced with a primary"
        else begin
          try
            Bx_fault.Fault.point "repl.promote";
            let e = Atomic.get t.epoch + 1 in
            let persisted =
              match t.config.journal_dir with
              | Some dir -> Journal.write_epoch ~dir e
              | None -> Ok ()
            in
            match persisted with
            | Error err -> Error ("epoch persist: " ^ err)
            | Ok () ->
                Atomic.set t.epoch e;
                Atomic.set t.fenced_by 0;
                Atomic.set t.replica false;
                Ok e
          with Bx_fault.Fault.Injected m -> Error m
        end)

let handle_promote t =
  match promote t with
  | Ok e -> respond_text 200 (Printf.sprintf "promoted: epoch %d\n" e)
  | Error ("already primary" as e) -> respond_text 409 (e ^ "\n")
  | Error e -> respond_text 503 ("promote failed: " ^ e ^ "\n")

(* ------------------------------------------------------------------ *)
(* Health, readiness and the failpoint admin route *)

let queue_depth t =
  Mutex.lock t.qm;
  let n = Queue.length t.queue in
  Mutex.unlock t.qm;
  n

let queue_high_water t = max 1 (t.config.queue_capacity * 3 / 4)
let concurrency_limit t = Atomic.get t.limit

(* Readiness = this process can usefully take traffic right now: the
   journal accepted its last write (replay completed inside [create], so
   a constructed service has replayed), we are not draining, and the
   pending queue is below its high-water mark. *)
let readiness t =
  let replica = Atomic.get t.replica in
  let synced = (not replica) || replication_synced t in
  List.filter_map
    (fun (ok, reason) -> if ok then None else Some reason)
    [
      (Atomic.get t.journal_ok, "journal_unwritable");
      (* Sticky: once the disk filled, only an operator restart after
         freeing space clears it (a transient later success proves
         nothing about the next write). *)
      (not (Atomic.get t.disk_full), "journal_disk_full");
      (not (Atomic.get t.stop), "draining");
      (queue_depth t < queue_high_water t, "queue_high_water");
      (* A replica is ready only once it has caught up and is staying
         caught up; a fenced (deposed) primary is never ready. *)
      (synced, "replica_syncing");
      ( (not replica) || (not synced)
        || replication_lag t <= t.config.replica_lag_threshold,
        "replication_lag" );
      (not (fenced t), "fenced");
      (* A burst of fresh corruption findings means the medium under us
         is failing: drain traffic away while still serving reads. *)
      (not (corruption_burst t), "corruption_burst");
    ]

let ready t = readiness t = []

let handle_readyz t =
  match readiness t with
  | [] -> respond_text 200 "ready\n"
  | reasons -> respond_text 503 ("not ready: " ^ String.concat ", " reasons ^ "\n")

let handle_failpoints_admin t ~meth ~body =
  if not t.config.failpoints_admin then
    respond_text 404 "failpoint admin is not enabled (set BXWIKI_FAILPOINTS)\n"
  else
    match meth with
    | "GET" -> respond_text 200 (Bx_fault.Fault.describe () ^ "\n")
    | "PUT" -> (
        match Bx_fault.Fault.configure body with
        | Ok () -> respond_text 200 (Bx_fault.Fault.describe () ^ "\n")
        | Error e -> respond_text 400 (e ^ "\n"))
    | _ -> respond_text 405 "use GET or PUT\n"

(* The network-chaos twin of the failpoint admin route: GET shows the
   armed toxic rules plus live proxy counters, PUT replaces the rule set
   (pushed to every live proxy).  Gated exactly like failpoints — the
   route exists only when chaos was armed at startup. *)
let handle_chaos_admin t ~meth ~body =
  if not t.config.chaos_admin then
    respond_text 404 "chaos admin is not enabled (set BXWIKI_CHAOS)\n"
  else
    match meth with
    | "GET" ->
        respond_text 200
          (Bx_fault.Netchaos.describe () ^ "\n" ^ Bx_fault.Netchaos.stats_text ())
    | "PUT" -> (
        match Bx_fault.Netchaos.configure body with
        | Ok () -> respond_text 200 (Bx_fault.Netchaos.describe () ^ "\n")
        | Error e -> respond_text 400 (e ^ "\n"))
    | _ -> respond_text 405 "use GET or PUT\n"

(* Quarantined entries keep serving — but honestly: every 200 for a
   flagged entry carries a Warning header.  Applied after the cache
   lookup, so the header is never cached and clears the moment the
   flag does. *)
let with_quarantine_warning t path response =
  if
    response.Bx_repo.Webui.status <> 200
    || Integrity.Quarantine.size t.quarantine = 0
  then response
  else
    match Bx_repo.Webui.page_identifier path with
    | None -> response
    | Some id -> (
        match
          Integrity.Quarantine.find t.quarantine
            (Integrity.Quarantine.Entry (Bx_repo.Identifier.to_string id))
        with
        | None -> response
        | Some reason ->
            let reason =
              String.map (fun c -> if c = '"' then '\'' else c) reason
            in
            {
              response with
              Bx_repo.Webui.headers =
                ("Warning", Printf.sprintf "299 bxwiki \"quarantined: %s\"" reason)
                :: response.Bx_repo.Webui.headers;
            })

let handle_query ?deadline t ~query ~meth ~path ~body =
  let started = Unix.gettimeofday () in
  let meth = String.uppercase_ascii meth in
  (* Operational routes never shed on a client deadline: health checks,
     metrics scrapes, debug admin and the replication plane must answer
     even (especially) when the node is struggling.  The stream route
     honours the deadline its own way — by clamping its long-poll hold. *)
  let ops_route =
    path = "/metrics" || path = "/healthz" || path = "/readyz"
    || path = "/debug/failpoints" || path = "/debug/chaos"
    || path = "/replication/stream" || path = "/replication/snapshot"
    || path = "/replication/digest" || path = "/admin/promote"
  in
  let response =
    (* An injected fault at a lock or lens seam is answered like any
       other transient overload: a 503 the retrying client backs off
       from, never a hung connection or a dead worker. *)
    try
      if (not ops_route) && deadline_expired deadline then
        (* The budget was gone before dispatch.  A stale cached render is
           free and still useful to a client that races the answer
           against its timeout; anything else is wasted work. *)
        if meth = "GET" && t.config.brownout then
          match try_stale t ~query path with
          | Some r -> r
          | None -> shed_deadline t
        else shed_deadline t
      else
      match meth with
      | "GET" when path = "/metrics" ->
          Metrics.note_queue_depth t.metrics (queue_depth t);
          Metrics.note_concurrency_limit t.metrics (Atomic.get t.limit);
          Metrics.note_disk_full t.metrics (Atomic.get t.disk_full);
          List.iter
            (fun (lock, mode, acquisitions, contended) ->
              Metrics.note_lock t.metrics ~lock ~mode ~acquisitions ~contended)
            (lock_stats t);
          Metrics.note_respcache t.metrics
            ~shards:(Respcache.shard_count t.cache)
            ~entries:(Respcache.size t.cache);
          Metrics.note_registry t.metrics
            ~shards:(Bx_repo.Registry.shard_count t.registry)
            ~entries:(Bx_repo.Registry.size t.registry);
          Metrics.note_replication t.metrics ~epoch:(Atomic.get t.epoch)
            ~fenced:(fenced t)
            ~replica:(Atomic.get t.replica)
            ~lag:(replication_lag t) ~behind:(replication_behind t);
          {
            Bx_repo.Webui.status = 200;
            content_type = "text/plain; version=0.0.4; charset=utf-8";
            body = Metrics.render t.metrics;
            headers = [];
          }
      | "GET" when path = "/healthz" -> respond_text 200 "ok\n"
      | "GET" when path = "/readyz" -> handle_readyz t
      | ("GET" | "PUT") when path = "/debug/failpoints" ->
          handle_failpoints_admin t ~meth ~body
      | ("GET" | "PUT") when path = "/debug/chaos" ->
          handle_chaos_admin t ~meth ~body
      | "GET" when path = "/replication/stream" ->
          handle_stream ?deadline t query
      | "GET" when path = "/replication/snapshot" -> handle_snapshot t query
      | "GET" when path = "/replication/digest" -> handle_digest t
      | "POST" when path = "/admin/promote" -> handle_promote t
      | "GET" when is_slens_path path -> handle_docstore_get t ~query path
      | "GET" ->
          with_quarantine_warning t path (handle_get ?deadline t ~query path)
      | "POST" when is_slens_path path ->
          if Docstore.is_doc_path path then
            handle_docstore_post ?deadline t path body
          else handle_slens t path body
      | "POST" -> handle_post ?deadline t path body
      | _ ->
          respond_html 405 "Method not allowed" "<p>Use GET or POST.</p>"
    with Bx_fault.Fault.Injected m ->
      respond_text 503 ("injected fault: " ^ m ^ "\n")
  in
  Metrics.observe_request t.metrics ~route:(route_of t path) ~meth
    ~status:response.Bx_repo.Webui.status
    ~seconds:(Unix.gettimeofday () -. started);
  response

let handle t ~meth ~path ~body = handle_query t ~query:"" ~meth ~path ~body

let checkpoint t = write_all t (fun () -> checkpoint_all_locked t)

let close t = Option.iter Shardlog.close t.log

(* ------------------------------------------------------------------ *)
(* The background scrubber: one pass re-verifies every storage surface —
   journal record CRCs, snapshot file checksums against their DIGESTS,
   entry round-trip laws, document view/source agreement — under a token
   bucket so foreground latency is untouched.  Findings are quarantined
   (never dropped); a healthy item clears any stale flag, so repair (a
   re-checkpoint, a corrective edit, an anti-entropy resync) is
   self-acquitting.  Each item is checked under its own shard's read
   lock — the pass never blocks writers for longer than one item. *)

exception Stop_scrub

let scrub_once ?(rate = 0.) ?(stop = fun () -> false) t =
  let module Q = Integrity.Quarantine in
  let bucket = Integrity.Bucket.create ~rate in
  let items = ref 0 in
  let findings = ref [] in
  let pace ~surface =
    if stop () then raise Stop_scrub;
    Integrity.Bucket.take bucket 1.;
    incr items;
    Metrics.scrub_item t.metrics ~surface ~n:1
  in
  let found key ~surface why =
    findings := (Q.key_name key, why) :: !findings;
    flag_corruption t key ~surface ~why
  in
  let shards = Array.length t.locks in
  let seg_name k file =
    if shards = 1 then file else Printf.sprintf "shard-%03d/%s" k file
  in
  (try
     (* Journal segments: re-read every record, re-checking framing and
        CRCs.  A dirty tail at rest is corruption (boot would truncate
        it); mid-append torn reads are benign and not flagged. *)
     (match (t.log, t.config.journal_dir) with
     | Some log, Some dir ->
         for k = 0 to shards - 1 do
           pace ~surface:"journal";
           let seg =
             Shardlog.segment_dir ~dir ~shards:(Shardlog.shards log) k
           in
           let key = Q.File (seg_name k "journal.log") in
           read_shard t k (fun () ->
               match Journal.read ~dir:seg with
               | Error why -> found key ~surface:"journal" why
               | Ok r ->
                   if r.Journal.crc_errors > 0 then
                     found key ~surface:"journal"
                       (Printf.sprintf "%d record(s) failed CRC"
                          r.Journal.crc_errors)
                   else Q.clear t.quarantine key)
         done
     | _ -> ());
     (* Snapshot directories: recompute every cold file's CRC against
        the DIGESTS manifest. *)
     (match (t.log, t.config.journal_dir) with
     | Some log, Some dir ->
         for k = 0 to shards - 1 do
           pace ~surface:"snapshot";
           let seg = Shardlog.segment_dir ~dir ~shards:(Shardlog.shards log) k in
           let snap = Journal.snapshot_dir seg in
           read_shard t k (fun () ->
               (* The MANIFEST carries its own CRC and is not covered by
                  DIGESTS, so check it separately: a flipped cut point
                  must stay quarantined until a re-checkpoint rewrites
                  it. *)
               let mkey = Q.File (seg_name k "MANIFEST") in
               (match Journal.read_manifest ~dir:seg with
               | `Corrupt ->
                   found mkey ~surface:"snapshot"
                     "manifest checksum mismatch: cut point untrusted"
               | `None | `Seq _ -> Q.clear t.quarantine mkey);
               let report = Integrity.Digests.verify_dir ~dir:snap in
               if report.Integrity.Digests.corrupt = [] then
                 (* Clean segment: acquit its previously-flagged
                    snapshot files (a re-checkpoint rewrote them). *)
                 List.iter
                   (fun (key, _) ->
                     match key with
                     | Q.File name
                       when name <> seg_name k "journal.log"
                            && name <> seg_name k "MANIFEST"
                            && (shards = 1 || Filename.dirname name
                                              = Printf.sprintf "shard-%03d" k)
                            && (shards > 1 || not (String.contains name '/'))
                       -> Q.clear t.quarantine key
                     | _ -> ())
                   (Q.items t.quarantine)
               else
                 List.iter
                   (fun (file, why) ->
                     found (Q.File (seg_name k file)) ~surface:"snapshot" why)
                   report.Integrity.Digests.corrupt)
         done
     | _ -> ());
     (* Entries: template validity plus the wiki round-trip laws (and
        any injected law), every stored version.  An entry that vanishes
        between the id walk and the check simply passes. *)
     for k = 0 to shards - 1 do
       let ids =
         read_shard t k (fun () -> Bx_repo.Registry.shard_ids t.registry k)
       in
       List.iter
         (fun id ->
           pace ~surface:"entry";
           let key = Q.Entry (Bx_repo.Identifier.to_string id) in
           read_shard t k (fun () ->
               match
                 Integrity.check_entry ?law:t.config.entry_law t.registry id
               with
               | Ok () -> Q.clear t.quarantine key
               | Error why ->
                   if String.length why >= 8 && String.sub why 0 8 = "no entry"
                   then ()
                   else found key ~surface:"entry" why))
         ids
     done;
     (* Documents: the stored view must equal what the lens derives from
        the stored source — GetPut at rest. *)
     List.iter
       (fun (lens, docid) ->
         pace ~surface:"doc";
         let key = Q.Doc (lens, docid) in
         read_shard t 0 (fun () ->
             match Docstore.check_doc t.docstore ~lens ~docid with
             | Ok () -> Q.clear t.quarantine key
             | Error why ->
                 if String.length why >= 7 && String.sub why 0 7 = "unknown"
                 then ()
                 else found key ~surface:"doc" why))
       (Docstore.doc_keys t.docstore)
   with Stop_scrub -> ());
  Metrics.scrub_pass t.metrics;
  note_quarantine_gauges t;
  (!items, List.rev !findings)

(* ------------------------------------------------------------------ *)
(* The socket server: accept loop + worker pool *)

let shutdown t =
  Atomic.set t.stop true;
  (* Wake idle workers so they can notice. *)
  Mutex.lock t.qm;
  Condition.broadcast t.qc;
  Mutex.unlock t.qm;
  Mutex.lock t.dqm;
  Condition.broadcast t.dqc;
  Mutex.unlock t.dqm

(* How long a shed client should stay away: 1s while the queue is under
   its high-water mark, then 2..8s scaling with how far past it the
   depth has climbed.  A storm of simultaneous sheds then spreads its
   retries over several seconds instead of reconverging after exactly
   one — the server-side half of the decorrelation the client's jittered
   backoff provides. *)
let retry_after_for_depth t ~depth =
  let hw = queue_high_water t in
  if depth < hw then 1
  else
    let span = max 1 (t.config.queue_capacity - hw) in
    min 8 (2 + (6 * (depth - hw) / span))

(* Shed one connection: a tiny 503 + Retry-After written straight from
   whichever loop is rejecting it (the write goes to a socket buffer
   that is empty, and SO_SNDTIMEO bounds the pathological case), then
   close. *)
let shed_connection t fd ~reason =
  Metrics.shed t.metrics ~reason;
  let retry_after = retry_after_for_depth t ~depth:(queue_depth t) in
  (try
     Httpd.write_response fd ~keep_alive:false
       (Httpd.shed_response ~retry_after ~reason ())
   with Unix.Unix_error _ | Bx_fault.Fault.Injected _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Brownout: the degraded read lane.  When admission overflows, GETs are
   not shed outright — they land in a small second queue served by one
   dedicated domain that answers from the response cache at whatever
   generation it still holds, marked [X-Bxwiki-Stale].  Anything the
   cache cannot answer (a miss, a write) is shed exactly as the full
   queue used to shed everything, so the worst case is unchanged and the
   common case (a hot read during an overload spike) degrades instead of
   erroring. *)

let degraded_enqueue t fd =
  Mutex.lock t.dqm;
  (* The lane's queue is several times the front queue: a stale cache
     hit costs microseconds, and this queue exists precisely to absorb
     the burst spike the admission limit just refused. *)
  if (not t.daccepting) || Queue.length t.dqueue >= 4 * t.config.queue_capacity
  then begin
    Mutex.unlock t.dqm;
    shed_connection t fd ~reason:"queue_full"
  end
  else begin
    Queue.push (fd, Unix.gettimeofday ()) t.dqueue;
    Condition.signal t.dqc;
    Mutex.unlock t.dqm
  end

let ddequeue t =
  Mutex.lock t.dqm;
  let rec wait () =
    match Queue.take_opt t.dqueue with
    | Some entry -> Some entry
    | None ->
        if not t.daccepting then None
        else begin
          Condition.wait t.dqc t.dqm;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.dqm;
  r

(* Serve one overflow connection from cache only — no locks, no
   rendering, no keep-alive.  The read budget is short: this lane exists
   because the node is overloaded, and a slow client does not get to pin
   its one domain. *)
let serve_degraded t fd =
  let reader = Httpd.reader_of_fd fd in
  match
    Httpd.read_request ~max_body:t.config.max_body
      ~read_budget:(Float.min 1.0 t.config.read_timeout)
      reader
  with
  | Error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | exception (Unix.Unix_error _ | Bx_fault.Fault.Injected _) -> (
      try Unix.close fd with Unix.Unix_error _ -> ())
  | Ok req -> (
      let started = Unix.gettimeofday () in
      let answer =
        if String.uppercase_ascii req.Httpd.meth = "GET" then
          try_stale t ~query:req.Httpd.query req.Httpd.path
        else None
      in
      match answer with
      | Some response ->
          Metrics.observe_request t.metrics
            ~route:(route_of t req.Httpd.path)
            ~meth:"GET" ~status:response.Bx_repo.Webui.status
            ~seconds:(Unix.gettimeofday () -. started);
          (try Httpd.write_response fd ~keep_alive:false response
           with Unix.Unix_error _ | Bx_fault.Fault.Injected _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      | None -> shed_connection t fd ~reason:"queue_full")

let degraded_loop t =
  let rec go () =
    match ddequeue t with
    | None -> ()
    | Some (fd, enqueued_at) ->
        if Unix.gettimeofday () -. enqueued_at > t.config.queue_deadline then
          shed_connection t fd ~reason:"deadline"
        else (
          try serve_degraded t fd
          with exn ->
            Metrics.protocol_error t.metrics ~route:"wire"
              ~reason:"worker_exn";
            Printf.eprintf "bxwiki: degraded lane: %s\n%!"
              (Printexc.to_string exn);
            (try Unix.close fd with Unix.Unix_error _ -> ()));
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Bounded, adaptive admission.  The static [queue_capacity] is now a
   ceiling; the operative limit is AIMD: each overflow halves it (at
   most once per 100ms window — a burst that overflows fifty times is
   one congestion signal, not fifty), each promptly-served connection
   adds one back.  Under sustained overload the backlog a client waits
   behind shrinks toward [min_concurrency], keeping queueing delay — and
   with it the deadline-miss rate — bounded. *)

let aimd_increase t =
  let cur = Atomic.get t.limit in
  if cur < t.config.queue_capacity then
    ignore (Atomic.compare_and_set t.limit cur (cur + 1))

let enqueue t fd =
  Mutex.lock t.qm;
  let cap = min t.config.queue_capacity (Atomic.get t.limit) in
  if Queue.length t.queue >= cap then begin
    let now = Unix.gettimeofday () in
    if now -. t.last_md >= 0.1 then begin
      t.last_md <- now;
      Atomic.set t.limit
        (max t.config.min_concurrency (Atomic.get t.limit / 2))
    end;
    Mutex.unlock t.qm;
    if t.config.brownout then degraded_enqueue t fd
    else shed_connection t fd ~reason:"queue_full"
  end
  else begin
    Queue.push (fd, Unix.gettimeofday ()) t.queue;
    Condition.signal t.qc;
    Mutex.unlock t.qm
  end

(* None once the accept loop has stopped and the queue is drained. *)
let dequeue t =
  Mutex.lock t.qm;
  let rec wait () =
    match Queue.take_opt t.queue with
    | Some entry -> Some entry
    | None ->
        if not t.accepting then None
        else begin
          Condition.wait t.qc t.qm;
          wait ()
        end
  in
  let r = wait () in
  Mutex.unlock t.qm;
  r

let handle_connection t fd =
  let reader = Httpd.reader_of_fd fd in
  let bad route reason status =
    Metrics.protocol_error t.metrics ~route ~reason;
    try Httpd.write_response fd ~keep_alive:false (Httpd.error_response status)
    with Unix.Unix_error _ -> ()
  in
  let rec loop () =
    match
      Httpd.read_request ~max_body:t.config.max_body
        ~read_budget:t.config.read_timeout reader
    with
    | Error `Eof -> ()
    | Error (`Bad e) -> bad "wire" e.Httpd.reason e
    | Error `Deadline ->
        (* Slowloris: every byte arrived inside SO_RCVTIMEO, but the
           request as a whole overstayed its wall-clock budget.  Reap
           the socket and count the shed — a trickling client must not
           hold a worker for longer than a queued one may wait. *)
        Metrics.shed t.metrics ~reason:"deadline";
        (try
           Httpd.write_response fd ~keep_alive:false
             (Httpd.shed_response ~retry_after:1 ~reason:"deadline" ())
         with Unix.Unix_error _ | Bx_fault.Fault.Injected _ -> ())
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        bad "wire" "read_timeout" { Httpd.status = 408; reason = "read timeout" }
    | exception Unix.Unix_error (_, _, _) -> ()
    | exception Bx_fault.Fault.Injected _ ->
        (* An injected wire-read fault behaves like a peer reset. *)
        Metrics.protocol_error t.metrics ~route:"wire" ~reason:"fault_injected"
    | Ok req -> (
        let response =
          handle_query ?deadline:req.Httpd.deadline t ~query:req.query
            ~meth:req.meth ~path:req.path ~body:req.body
        in
        (* Drop keep-alive while draining so shutdown terminates. *)
        let keep_alive = req.keep_alive && not (Atomic.get t.stop) in
        match Httpd.write_response fd ~keep_alive response with
        | () -> if keep_alive then loop ()
        | exception Unix.Unix_error (_, _, _) -> ()
        | exception Bx_fault.Fault.Injected _ ->
            Metrics.protocol_error t.metrics ~route:"wire"
              ~reason:"fault_injected")
  in
  loop ();
  try Unix.close fd with Unix.Unix_error (_, _, _) -> ()

let worker_loop t =
  let rec go () =
    match dequeue t with
    | None -> ()
    | Some (fd, enqueued_at) ->
        (* The deadline budget: a connection that sat queued longer than
           [queue_deadline] is answered with a fast 503 — by now the
           client has likely timed out or retried, and burning a worker
           on stale work only deepens the overload. *)
        if Unix.gettimeofday () -. enqueued_at > t.config.queue_deadline then
          shed_connection t fd ~reason:"deadline"
        else begin
          let began = Unix.gettimeofday () in
          (try handle_connection t fd
           with exn ->
             (* A worker must survive anything one connection throws. *)
             Metrics.protocol_error t.metrics ~route:"wire" ~reason:"worker_exn";
             Printf.eprintf "bxwiki: worker: %s\n%!" (Printexc.to_string exn);
             (try Unix.close fd with Unix.Unix_error (_, _, _) -> ()));
          (* Additive increase: a connection served promptly earns one
             admission slot back. *)
          if Unix.gettimeofday () -. began <= t.config.queue_deadline then
            aimd_increase t
        end;
        go ()
  in
  go ()

let write_port_file file port =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Printf.fprintf oc "%d\n" port)

let serve t ?(port = 8008) ?(workers = 4) ?port_file ?(quiet = false) () =
  try
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen sock 128;
    let bound =
      match Unix.getsockname sock with
      | Unix.ADDR_INET (_, p) -> p
      | _ -> port
    in
    t.bound_port <- Some bound;
    Option.iter (fun f -> write_port_file f bound) port_file;
    if not quiet then
      Printf.printf
        "bxwiki: serving %d entries on http://127.0.0.1:%d/ (%d workers%s)\n%!"
        (with_registry t Bx_repo.Registry.size)
        bound workers
        (match t.config.journal_dir with
        | Some dir -> ", journal " ^ dir
        | None -> ", no journal");
    t.accepting <- true;
    if t.config.brownout then begin
      Mutex.lock t.dqm;
      t.daccepting <- true;
      Mutex.unlock t.dqm
    end;
    let pool = List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t)) in
    (* The degraded lane rides one extra domain so brownout answers keep
       flowing even when every pool worker is wedged on slow requests. *)
    let degraded =
      if not t.config.brownout then None
      else Some (Domain.spawn (fun () -> degraded_loop t))
    in
    (* The scrubber rides its own domain, paced by the token bucket so
       the worker pool's latency is unaffected; it re-walks everything
       continuously until shutdown. *)
    let scrubber =
      if t.config.scrub_rate <= 0 then None
      else
        Some
          (Domain.spawn (fun () ->
               let rate = float_of_int t.config.scrub_rate in
               let stop () = Atomic.get t.stop in
               (* Sleep in slices so shutdown is prompt. *)
               let rec pause n =
                 if n > 0 && not (stop ()) then begin
                   Thread.delay 0.1;
                   pause (n - 1)
                 end
               in
               while not (stop ()) do
                 (try ignore (scrub_once ~rate ~stop t)
                  with exn ->
                    Printf.eprintf "bxwiki: scrubber: %s\n%!"
                      (Printexc.to_string exn));
                 pause 10
               done))
    in
    let rec accept_loop () =
      if Atomic.get t.stop then ()
      else
        match Unix.select [ sock ] [] [] 0.2 with
        | [], _, _ -> accept_loop ()
        | _ -> (
            match Unix.accept sock with
            | client, _ ->
                (match Bx_fault.Fault.point "httpd.accept" with
                | () ->
                    Unix.setsockopt_float client Unix.SO_RCVTIMEO
                      t.config.read_timeout;
                    (* A slow reader cannot pin a worker: response writes
                       time out too, and the connection is dropped. *)
                    Unix.setsockopt_float client Unix.SO_SNDTIMEO
                      t.config.write_timeout;
                    enqueue t client
                | exception Bx_fault.Fault.Injected _ -> (
                    Metrics.protocol_error t.metrics ~route:"wire"
                      ~reason:"fault_injected";
                    try Unix.close client with Unix.Unix_error _ -> ()));
                accept_loop ()
            | exception
                Unix.Unix_error
                  ( (Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR
                    | Unix.ECONNABORTED),
                    _,
                    _ ) ->
                accept_loop ())
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
    in
    accept_loop ();
    (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
    (* Drain: no more connections will arrive; workers finish the queue
       and their in-flight requests, then exit. *)
    Mutex.lock t.qm;
    t.accepting <- false;
    Condition.broadcast t.qc;
    Mutex.unlock t.qm;
    List.iter Domain.join pool;
    (* Only after the pool has drained: workers may still be routing
       overflow into the degraded queue. *)
    Mutex.lock t.dqm;
    t.daccepting <- false;
    Condition.broadcast t.dqc;
    Mutex.unlock t.dqm;
    Option.iter Domain.join degraded;
    Option.iter Domain.join scrubber;
    t.bound_port <- None;
    let result =
      match checkpoint t with
      | Ok _ -> Ok ()
      | Error e -> Error ("final snapshot: " ^ e)
    in
    close t;
    if not quiet then
      Printf.printf "bxwiki: drained, snapshot written, bye\n%!";
    result
  with Unix.Unix_error (e, fn, _) ->
    Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
