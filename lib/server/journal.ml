type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable next_seq : int;
  mutable records : int;
}

type record = { seq : int; path : string; body : string }

type replayed = { entries : record list; valid_bytes : int; torn : bool }

let log_file dir = Filename.concat dir "journal.log"
let snapshot_dir dir = Filename.concat dir "snapshot"
let manifest_file dir = Filename.concat (snapshot_dir dir) "MANIFEST"

let digest path body = Digest.to_hex (Digest.string (path ^ "\x00" ^ body))

let encode ~seq ~path ~body =
  Printf.sprintf "bxj1 %d %d %d %s\n%s\n%s\n" seq (String.length path)
    (String.length body) (digest path body) path body

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_whole_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse one record starting at [off]; None on any malformation, which
   by the append discipline can only be a torn tail. *)
let parse_record data off =
  let len = String.length data in
  match String.index_from_opt data off '\n' with
  | None -> None
  | Some nl -> (
      let header = String.sub data off (nl - off) in
      match String.split_on_char ' ' header with
      | [ "bxj1"; seq_s; plen_s; blen_s; md5 ] -> (
          match
            (int_of_string_opt seq_s, int_of_string_opt plen_s,
             int_of_string_opt blen_s)
          with
          | Some seq, Some plen, Some blen
            when seq >= 0 && plen >= 0 && blen >= 0 ->
              let path_at = nl + 1 in
              let body_at = path_at + plen + 1 in
              let end_at = body_at + blen + 1 in
              if
                end_at <= len
                && data.[path_at + plen] = '\n'
                && data.[body_at + blen] = '\n'
              then
                let path = String.sub data path_at plen in
                let body = String.sub data body_at blen in
                if String.equal (digest path body) md5 then
                  Some ({ seq; path; body }, end_at)
                else None
              else None
          | _ -> None)
      | _ -> None)

let read ~dir =
  let file = log_file dir in
  if not (Sys.file_exists file) then
    Ok { entries = []; valid_bytes = 0; torn = false }
  else
    try
      let data = read_whole_file file in
      let len = String.length data in
      let rec go acc off =
        if off >= len then { entries = List.rev acc; valid_bytes = off; torn = false }
        else
          match parse_record data off with
          | Some (r, next) -> go (r :: acc) next
          | None -> { entries = List.rev acc; valid_bytes = off; torn = true }
      in
      Ok (go [] 0)
    with Sys_error e -> Error e

let snapshot_seq ~dir =
  let file = manifest_file dir in
  if not (Sys.file_exists file) then 0
  else
    try
      match String.split_on_char ' ' (String.trim (read_whole_file file)) with
      | [ "seq"; n ] -> Option.value ~default:0 (int_of_string_opt n)
      | _ -> 0
    with Sys_error _ -> 0

(* ------------------------------------------------------------------ *)
(* Snapshot directory management *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let recover_snapshot ~dir =
  let snap = snapshot_dir dir in
  let old_ = snap ^ ".old" in
  let tmp = snap ^ ".tmp" in
  (* A snapshot is usable only once its MANIFEST exists (written last),
     so a crash mid-save leaves an unusable tmp we simply delete.  A
     crash mid-swap may have demoted the good snapshot to .old. *)
  if (not (Sys.file_exists (Filename.concat snap "MANIFEST")))
     && Sys.file_exists (Filename.concat old_ "MANIFEST")
  then begin
    remove_tree snap;
    Sys.rename old_ snap
  end;
  remove_tree tmp;
  remove_tree old_

(* ------------------------------------------------------------------ *)
(* Appending *)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

let open_ ~dir ~next_seq =
  try
    mkdir_if_missing dir;
    recover_snapshot ~dir;
    match read ~dir with
    | Error e -> Error e
    | Ok { entries; valid_bytes; torn } ->
        let fd =
          Unix.openfile (log_file dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
        in
        if torn then Unix.ftruncate fd valid_bytes;
        ignore (Unix.lseek fd valid_bytes Unix.SEEK_SET);
        Ok { dir; fd; next_seq; records = List.length entries }
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let append t ~path ~body =
  try
    let seq = t.next_seq in
    write_all t.fd (encode ~seq ~path ~body);
    Unix.fsync t.fd;
    t.next_seq <- seq + 1;
    t.records <- t.records + 1;
    Ok seq
  with Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "journal append: %s: %s" arg (Unix.error_message e))

let record_count t = t.records

(* ------------------------------------------------------------------ *)
(* Compaction *)

let write_manifest dir seq =
  (* Same temp-and-rename discipline as Store.save: the manifest's
     presence marks the snapshot complete. *)
  let file = Filename.concat dir "MANIFEST" in
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "seq %d\n" seq;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp file

let checkpoint t ~save =
  let snap = snapshot_dir t.dir in
  let tmp = snap ^ ".tmp" in
  let old_ = snap ^ ".old" in
  try
    remove_tree tmp;
    match save ~dir:tmp with
    | Error e -> Error e
    | Ok files ->
        write_manifest tmp (t.next_seq - 1);
        remove_tree old_;
        if Sys.file_exists snap then Sys.rename snap old_;
        Sys.rename tmp snap;
        remove_tree old_;
        (* The snapshot now covers every journaled edit: empty the log.
           A crash before the truncate is harmless — replay skips
           records at or below the manifest's sequence number. *)
        Unix.ftruncate t.fd 0;
        ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
        Unix.fsync t.fd;
        t.records <- 0;
        Ok files
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
