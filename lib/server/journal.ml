type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable next_seq : int;
  mutable records : int;
}

type record = { seq : int; path : string; body : string }

type replayed = {
  entries : record list;
  valid_bytes : int;
  torn : bool;
  crc_errors : int;
  version : int;
}

let log_file dir = Filename.concat dir "journal.log"
let snapshot_dir dir = Filename.concat dir "snapshot"
let manifest_file dir = Filename.concat (snapshot_dir dir) "MANIFEST"

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, the zlib polynomial) — shared with the whole
   integrity layer; see {!Integrity}. *)

let crc32_sub = Integrity.crc32_sub
let crc32 = Integrity.crc32

(* ------------------------------------------------------------------ *)
(* Format v2: a segment header, then length-prefixed CRC-framed records.

     magic   "bxjournal 2\n"                         (12 bytes)
     record  u32be payload-length | u32be crc32(payload) | payload
     payload "<seq> <path-len>\n" ^ path ^ body

   Format v1 (the seed format, still readable) is the line-oriented
     "bxj1 <seq> <plen> <blen> <md5>\n<path>\n<body>\n"
   whose only integrity check is the MD5 over the content — no framing
   checksum, so a mid-file bit flip in a length field could once send
   the parser into garbage.  v2's CRC covers the whole payload and the
   length prefix makes every record boundary explicit. *)

let magic = "bxjournal 2\n"
let magic_len = String.length magic

let be32 buf off n =
  Bytes.set buf off (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf (off + 1) (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf (off + 2) (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf (off + 3) (Char.chr (n land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode ~seq ~path ~body =
  let header = Printf.sprintf "%d %d\n" seq (String.length path) in
  let payload_len = String.length header + String.length path + String.length body in
  let out = Bytes.create (8 + payload_len) in
  Bytes.blit_string header 0 out 8 (String.length header);
  Bytes.blit_string path 0 out (8 + String.length header) (String.length path);
  Bytes.blit_string body 0 out
    (8 + String.length header + String.length path)
    (String.length body);
  let payload = Bytes.sub_string out 8 payload_len in
  be32 out 0 payload_len;
  be32 out 4 (crc32 payload);
  Bytes.unsafe_to_string out

(* ------------------------------------------------------------------ *)
(* Reading *)

let read_whole_file file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* v1 records; None on any malformation. *)
let digest_v1 path body = Digest.to_hex (Digest.string (path ^ "\x00" ^ body))

(* Some (record, next_off) for an intact record; None when the bytes at
   [off] cannot be a complete record.  [`Torn] when the malformation is
   consistent with a truncated tail, [`Corrupt] when a complete-looking
   record fails its checksum (a bit flip, not a crash). *)
let parse_record_v1 data off =
  let len = String.length data in
  match String.index_from_opt data off '\n' with
  | None -> Stdlib.Error `Torn
  | Some nl -> (
      let header = String.sub data off (nl - off) in
      match String.split_on_char ' ' header with
      | [ "bxj1"; seq_s; plen_s; blen_s; md5 ] -> (
          match
            (int_of_string_opt seq_s, int_of_string_opt plen_s,
             int_of_string_opt blen_s)
          with
          | Some seq, Some plen, Some blen
            when seq >= 0 && plen >= 0 && blen >= 0 ->
              let path_at = nl + 1 in
              let body_at = path_at + plen + 1 in
              let end_at = body_at + blen + 1 in
              if
                end_at <= len
                && data.[path_at + plen] = '\n'
                && data.[body_at + blen] = '\n'
              then
                let path = String.sub data path_at plen in
                let body = String.sub data body_at blen in
                if String.equal (digest_v1 path body) md5 then
                  Stdlib.Ok ({ seq; path; body }, end_at)
                else Stdlib.Error `Corrupt
              else Stdlib.Error `Torn
          | _ -> Stdlib.Error `Torn)
      | _ -> Stdlib.Error `Torn)

let parse_record_v2 data off =
  let len = String.length data in
  if off + 8 > len then Stdlib.Error `Torn
  else
    let payload_len = read_be32 data off in
    let crc = read_be32 data (off + 4) in
    let payload_at = off + 8 in
    let end_at = payload_at + payload_len in
    if payload_len < 4 (* "0 0\n" at minimum *) || end_at > len || end_at < off
    then Stdlib.Error `Torn
    else if crc32_sub data payload_at payload_len <> crc then
      Stdlib.Error `Corrupt
    else
      match String.index_from_opt data payload_at '\n' with
      | Some nl when nl < end_at -> (
          let header = String.sub data payload_at (nl - payload_at) in
          match String.split_on_char ' ' header with
          | [ seq_s; plen_s ] -> (
              match (int_of_string_opt seq_s, int_of_string_opt plen_s) with
              | Some seq, Some plen
                when seq >= 0 && plen >= 0 && nl + 1 + plen <= end_at ->
                  let path = String.sub data (nl + 1) plen in
                  let body =
                    String.sub data (nl + 1 + plen) (end_at - nl - 1 - plen)
                  in
                  Stdlib.Ok ({ seq; path; body }, end_at)
              | _ -> Stdlib.Error `Corrupt
            )
          | _ -> Stdlib.Error `Corrupt)
      | _ -> Stdlib.Error `Corrupt

let is_v2 data =
  String.length data >= magic_len && String.sub data 0 magic_len = magic

(* A stop means everything from the malformation on is untrusted: the
   replay keeps the intact prefix, [open_] truncates the rest away.  A
   checksum failure is counted separately from a torn tail so operators
   can tell a crash (expected, benign) from corruption (a disk problem
   worth investigating). *)
let scan parse data start =
  let len = String.length data in
  let rec go acc off crc_errors =
    if off >= len then
      { entries = List.rev acc; valid_bytes = off; torn = false; crc_errors;
        version = 0 }
    else
      match parse data off with
      | Stdlib.Ok (r, next) -> go (r :: acc) next crc_errors
      | Stdlib.Error fault ->
          {
            entries = List.rev acc;
            valid_bytes = off;
            torn = true;
            crc_errors = (crc_errors + match fault with `Corrupt -> 1 | `Torn -> 0);
            version = 0;
          }
  in
  go [] start 0

let read ~dir =
  let file = log_file dir in
  if not (Sys.file_exists file) then
    Ok { entries = []; valid_bytes = 0; torn = false; crc_errors = 0; version = 2 }
  else
    try
      let data = read_whole_file file in
      if String.length data = 0 then
        Ok { entries = []; valid_bytes = 0; torn = false; crc_errors = 0; version = 2 }
      else if is_v2 data then
        Ok { (scan parse_record_v2 data magic_len) with version = 2 }
      else Ok { (scan parse_record_v1 data 0) with version = 1 }
    with Sys_error e -> Error e

(* A tailing read for replication: the intact records at or after
   [from].  Reading races benignly with the appender — a record caught
   mid-write parses as a torn tail and is simply not returned yet; the
   next poll sees it whole. *)
let tail ~dir ~from =
  match read ~dir with
  | Error e -> Error e
  | Ok { entries; _ } -> Ok (List.filter (fun r -> r.seq >= from) entries)

(* Strict frame decoding for replication payloads: transport batches are
   never torn, so any malformation is an error, not a truncation. *)
let decode_frames data ~off =
  let scanned = scan parse_record_v2 data off in
  if scanned.torn then
    Error
      (if scanned.crc_errors > 0 then "frame checksum mismatch"
       else "truncated frame")
  else Ok scanned.entries

(* The sealed MANIFEST now carries its own checksum ("seq N crc XXXXXXXX");
   the crc-less "seq N" form is the pre-digest layout, still accepted.
   Anything else — including a v2 manifest whose crc does not match — is
   [`Corrupt]: the snapshot's cut point cannot be trusted, so the whole
   snapshot is refused rather than replayed against a guessed sequence
   number. *)
let read_manifest ~dir =
  let file = manifest_file dir in
  if not (Sys.file_exists file) then `None
  else
    try
      let body = String.trim (read_whole_file file) in
      match String.split_on_char ' ' body with
      | [ "seq"; n ] -> (
          match int_of_string_opt n with
          | Some seq when seq >= 0 -> `Seq seq
          | _ -> `Corrupt)
      | [ "seq"; n; "crc"; c ] -> (
          match (int_of_string_opt n, int_of_string_opt ("0x" ^ c)) with
          | Some seq, Some crc
            when seq >= 0
                 && crc = crc32 (Printf.sprintf "seq %d" seq)
                 (* The writer emits exactly this encoding; int parsing
                    is laxer (case-insensitive hex, underscores), so a
                    flipped bit could read back as the same values.
                    Demand the canonical bytes — any deviation is
                    damage. *)
                 && body = Printf.sprintf "seq %d crc %08x" seq crc ->
              `Seq seq
          | _ -> `Corrupt)
      | _ -> `Corrupt
    with Sys_error _ -> `Corrupt

let snapshot_seq ~dir =
  match read_manifest ~dir with `Seq seq -> seq | `None | `Corrupt -> 0

(* ------------------------------------------------------------------ *)
(* Snapshot directory management *)

let rec remove_tree path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let recover_snapshot ~dir =
  let snap = snapshot_dir dir in
  let old_ = snap ^ ".old" in
  let tmp = snap ^ ".tmp" in
  (* A snapshot is usable only once its MANIFEST exists (written last),
     so a crash mid-save leaves an unusable tmp we simply delete.  A
     crash mid-swap may have demoted the good snapshot to .old. *)
  if (not (Sys.file_exists (Filename.concat snap "MANIFEST")))
     && Sys.file_exists (Filename.concat old_ "MANIFEST")
  then begin
    remove_tree snap;
    Sys.rename old_ snap
  end;
  remove_tree tmp;
  remove_tree old_

(* ------------------------------------------------------------------ *)
(* Appending *)

let mkdir_if_missing dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

(* A v1 log is upgraded in place the first time it is opened: its intact
   records are rewritten under the v2 header via the same tmp+rename
   discipline as everything else, so a crash mid-migration leaves either
   the old readable v1 file or the new readable v2 file. *)
let migrate_v1 ~file entries =
  let tmp = file ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd magic;
      List.iter
        (fun { seq; path; body } -> write_all fd (encode ~seq ~path ~body))
        entries;
      Unix.fsync fd);
  Sys.rename tmp file

let open_ ~dir ~next_seq =
  try
    mkdir_if_missing dir;
    recover_snapshot ~dir;
    match read ~dir with
    | Error e -> Error e
    | Ok { entries; valid_bytes; torn; version; _ } ->
        let file = log_file dir in
        if version = 1 then migrate_v1 ~file entries;
        let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
        let pos =
          if version = 1 then Unix.lseek fd 0 Unix.SEEK_END
          else if valid_bytes = 0 then begin
            (* Fresh (or fully empty) log: stamp the segment header. *)
            Unix.ftruncate fd 0;
            write_all fd magic;
            Unix.fsync fd;
            magic_len
          end
          else begin
            if torn then Unix.ftruncate fd valid_bytes;
            Unix.lseek fd valid_bytes Unix.SEEK_SET
          end
        in
        ignore pos;
        Ok { dir; fd; next_seq; records = List.length entries }
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

(* Append errors travel as strings (they are operator-facing), so a
   caller that must distinguish "the disk is full" from "the write
   failed" classifies by the strerror text the append embedded.  ENOSPC
   is worth distinguishing: it is persistent — retrying cannot succeed
   until an operator frees space — so the service degrades to read-only
   instead of flapping. *)
let enospc_text = Unix.error_message Unix.ENOSPC

let contains_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  nl = 0
  ||
  let rec go i =
    i + nl <= hl && (String.sub hay i nl = needle || go (i + 1))
  in
  go 0

let is_disk_full_error msg = contains_substring ~needle:enospc_text msg

let append_at t ~seq ~path ~body =
  try
    Bx_fault.Fault.point "journal.append.pre_write";
    write_all t.fd (encode ~seq ~path ~body);
    Bx_fault.Fault.point "journal.append.pre_fsync";
    Unix.fsync t.fd;
    Bx_fault.Fault.point "journal.append.post_fsync";
    t.next_seq <- seq + 1;
    t.records <- t.records + 1;
    Ok seq
  with
  | Unix.Unix_error (e, _, arg) ->
      Error (Printf.sprintf "journal append: %s: %s" arg (Unix.error_message e))
  | Bx_fault.Fault.Injected m -> Error (Printf.sprintf "journal append: %s" m)

let append t ~path ~body = append_at t ~seq:t.next_seq ~path ~body

(* Sharded layouts allocate sequence numbers from one global counter and
   fan records across per-shard segment files, so a segment's records are
   dense in the *global* space but sparse locally: appends must be able to
   skip ahead.  Going backwards would corrupt replay ordering. *)
let append_seq t ~seq ~path ~body =
  if seq < t.next_seq then
    Error
      (Printf.sprintf "journal append: seq %d below segment floor %d" seq
         t.next_seq)
  else append_at t ~seq ~path ~body

let record_count t = t.records
let next_seq t = t.next_seq

(* Truncate back to a bare segment header.  Used when a replica replaces
   its whole state via snapshot bootstrap: every journaled record is
   superseded by the installed snapshot, and the sequence counter jumps
   to wherever the primary's stream resumes. *)
let reset t ~next_seq =
  try
    Unix.ftruncate t.fd 0;
    ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
    write_all t.fd magic;
    Unix.fsync t.fd;
    t.records <- 0;
    t.next_seq <- next_seq;
    Ok ()
  with Unix.Unix_error (e, _, arg) ->
    Error (Printf.sprintf "journal reset: %s: %s" arg (Unix.error_message e))

(* ------------------------------------------------------------------ *)
(* Compaction *)

let write_manifest dir seq =
  (* Same temp-and-rename discipline as Store.save: the manifest's
     presence marks the snapshot complete.  The crc field seals the cut
     point itself — a bit flip in the MANIFEST must read as "no usable
     snapshot", never as a different sequence number. *)
  let file = Filename.concat dir "MANIFEST" in
  let tmp = file ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let body = Printf.sprintf "seq %d" seq in
      Printf.fprintf oc "%s crc %08x\n" body (crc32 body);
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp file

let checkpoint ?seq t ~save =
  let snap = snapshot_dir t.dir in
  let tmp = snap ^ ".tmp" in
  let old_ = snap ^ ".old" in
  try
    remove_tree tmp;
    Bx_fault.Fault.point "journal.checkpoint.pre_save";
    match save ~dir:tmp with
    | Error e -> Error e
    | Ok files ->
        (* Seal the cold files with their digest manifest before the
           MANIFEST makes the snapshot official: a snapshot is either
           complete-and-checksummed or not a snapshot at all. *)
        Integrity.Digests.write_dir ~dir:tmp;
        Bx_fault.Fault.point "journal.checkpoint.pre_manifest";
        write_manifest tmp (Option.value seq ~default:(t.next_seq - 1));
        Bx_fault.Fault.point "journal.checkpoint.pre_swap";
        remove_tree old_;
        if Sys.file_exists snap then Sys.rename snap old_;
        Sys.rename tmp snap;
        remove_tree old_;
        (* The snapshot now covers every journaled edit: reset the log to
           a bare segment header.  A crash before the truncate is
           harmless — replay skips records at or below the manifest's
           sequence number. *)
        Bx_fault.Fault.point "journal.checkpoint.pre_truncate";
        Unix.ftruncate t.fd 0;
        ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
        write_all t.fd magic;
        Unix.fsync t.fd;
        t.records <- 0;
        Ok files
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)
  | Bx_fault.Fault.Injected m -> Error m

(* The snapshot as shippable payload: every flat file under
   [dir/snapshot] except the MANIFEST, plus the manifest's sequence
   number.  The caller serialises against compaction (which swaps the
   directory out from under a concurrent reader). *)
let snapshot_files ~dir =
  let snap = snapshot_dir dir in
  let seq = snapshot_seq ~dir in
  if seq = 0 then Error "no snapshot"
  else
    try
      let names =
        Sys.readdir snap |> Array.to_list
        |> List.filter (fun n -> n <> "MANIFEST")
        |> List.sort String.compare
      in
      let files =
        List.map
          (fun n -> (n, read_whole_file (Filename.concat snap n)))
          names
      in
      (* Never ship bytes that fail their own manifest: a corrupted
         primary must refuse to bootstrap followers, not replicate the
         damage.  The DIGESTS file rides along in [files], so the
         receiver re-verifies the same payload. *)
      match
        List.assoc_opt Integrity.Digests.name files
        |> Option.map Integrity.Digests.parse
      with
      | Some (Error e) -> Error ("snapshot DIGESTS unreadable: " ^ e)
      | Some (Ok manifest) -> (
          match Integrity.Digests.verify_files ~manifest files with
          | [] -> Ok (seq, files)
          | (name, why) :: _ ->
              Error (Printf.sprintf "snapshot corrupt, refusing to ship %s: %s"
                       name why))
      | None -> Ok (seq, files) (* pre-digest snapshot: accepted *)
    with Sys_error e -> Error e

(* Install a snapshot shipped from a primary: materialise the files in a
   transient directory, seal with the MANIFEST, swap with the same
   discipline as {!checkpoint}, and reset the log — every local record
   is superseded.  File names are the flat basenames {!snapshot_files}
   produced; anything path-like is rejected rather than trusted. *)
let install_snapshot t ~seq ~files =
  let snap = snapshot_dir t.dir in
  let tmp = snap ^ ".tmp" in
  let old_ = snap ^ ".old" in
  try
    let bad =
      List.find_opt
        (fun (name, _) ->
          name = "" || name = "MANIFEST"
          || Filename.basename name <> name
          || String.length name > 0 && name.[0] = '.')
        files
    in
    let payload_fault =
      (* Verify the shipped payload against the DIGESTS it carries before
         a single byte lands on disk: a mangled transfer (or a corrupted
         sender that slipped through) is refused wholesale.  A payload
         without a manifest is a pre-digest primary; accept it and seal
         the installed directory with a locally computed one below. *)
      match
        List.assoc_opt Integrity.Digests.name files
        |> Option.map Integrity.Digests.parse
      with
      | Some (Error e) -> Some ("snapshot payload DIGESTS unreadable: " ^ e)
      | Some (Ok manifest) -> (
          match Integrity.Digests.verify_files ~manifest files with
          | [] -> None
          | (name, why) :: _ ->
              Some
                (Printf.sprintf "snapshot payload corrupt, refusing %s: %s"
                   name why))
      | None -> None
    in
    match (bad, payload_fault) with
    | Some (name, _), _ ->
        Error (Printf.sprintf "unsafe snapshot file name %S" name)
    | None, Some fault -> Error fault
    | None, None ->
        remove_tree tmp;
        Unix.mkdir tmp 0o755;
        List.iter
          (fun (name, contents) ->
            let fd =
              Unix.openfile (Filename.concat tmp name)
                [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
            in
            Fun.protect
              ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
              (fun () ->
                write_all fd contents;
                Unix.fsync fd))
          files;
        if not (List.mem_assoc Integrity.Digests.name files) then
          Integrity.Digests.write_dir ~dir:tmp;
        write_manifest tmp seq;
        remove_tree old_;
        if Sys.file_exists snap then Sys.rename snap old_;
        Sys.rename tmp snap;
        remove_tree old_;
        reset t ~next_seq:(seq + 1)
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

(* ------------------------------------------------------------------ *)
(* The replication epoch, persisted beside the log.  Monotonic across
   promotions: a replica promoted to primary bumps and fsyncs it before
   accepting writes, so a deposed primary can recognise (and be fenced
   by) any newer epoch it ever observes. *)

let epoch_file dir = Filename.concat dir "epoch"

let read_epoch ~dir =
  let file = epoch_file dir in
  if not (Sys.file_exists file) then 0
  else
    try
      match String.split_on_char ' ' (String.trim (read_whole_file file)) with
      | [ "epoch"; n ] -> Option.value ~default:0 (int_of_string_opt n)
      | _ -> 0
    with Sys_error _ -> 0

let write_epoch ~dir epoch =
  try
    mkdir_if_missing dir;
    let file = epoch_file dir in
    let tmp = file ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        write_all fd (Printf.sprintf "epoch %d\n" epoch);
        Unix.fsync fd);
    Sys.rename tmp file;
    Ok ()
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* Kept for tests that fabricate v1 logs: the seed's record encoder. *)
let encode_v1 ~seq ~path ~body =
  Printf.sprintf "bxj1 %d %d %d %s\n%s\n%s\n" seq (String.length path)
    (String.length body) (digest_v1 path body) path body
