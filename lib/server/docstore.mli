(** Lens-backed documents: the server-side state behind
    [POST /slens/<name>/doc/<docid>] and [POST /slens/<name>/patch].

    Each document is a (source, view) pair kept consistent by a named
    {!Bx_strlens.Slens.t} — the store maintains [view = get source] by
    construction, which is exactly the precondition
    {!Bx_strlens.Slens_delta} needs.  A patch carries an {e edit}
    ({!Bx_strlens.Sdiff.edit}), not a document: the store propagates it
    through {!Bx_strlens.Slens_delta.put_delta} (view-side edits) or
    [get_delta] (source-side edits) against the document's private delta
    cache, so a one-line change costs O(window), not O(document).

    Generations: every document carries a generation, bumped on each
    accepted mutation.  A patch names the generation it was computed
    against and is refused as {e stale} when the document has moved on —
    the optimistic-concurrency check that makes edits safe to retry.

    The store is shared mutable state guarded by one internal mutex;
    callers additionally serialise mutations under the service's shard-0
    write lock so journalling and generation bumps stay atomic with the
    mutation (lock order: shard lock, then the store's mutex). *)

type t

val create : lenses:(string * Bx_strlens.Slens.t) list -> t
(** An empty store serving documents for the given named lenses. *)

val doc_count : t -> int

(** Why a request was refused, mapped onto HTTP by the service:
    404, 409, 400 and 422 respectively. *)
type error =
  | Not_found of string
  | Stale of { current : int; got : int }
  | Bad_request of string
  | Unprocessable of string

val describe : error -> string

val put_doc :
  t -> lens:string -> docid:string -> source:string -> (int, error) result
(** Create or replace a document from its full source; the view is
    computed through the lens.  Returns the new generation (1 for a
    fresh document).  [docid] must be non-empty and free of ['/'],
    control bytes and the wire separators. *)

val get_doc :
  t -> lens:string -> docid:string -> view:bool -> (int * string, error) result
(** The document's generation and its source (or its view). *)

val patch :
  t ->
  lens:string ->
  reverse:bool ->
  string ->
  (int * Bx_strlens.Sdiff.edit, error) result
(** Apply one patch frame: [<docid> RS <gen> RS <edit>] (RS = byte
    0x1e, the edit in {!Bx_strlens.Sdiff.encode} framing).  With
    [reverse = false] the edit is a {e view} edit propagated backwards
    by [put_delta]; with [reverse = true] it is a {e source} edit
    propagated forwards by [get_delta].  Returns the document's new
    generation and the complementary edit (to the source, resp. the
    view). *)

val is_doc_path : string -> bool
(** Whether a request path mutates this store
    ([/slens/<name>/doc/<docid>], [/slens/<name>/patch] or
    [/slens/<name>/patch_source]) as opposed to running a stateless
    lens op. *)

val apply : t -> path:string -> body:string -> (unit, string) result
(** Re-apply a journalled or replicated record (the request path and
    body are stored verbatim).  Replay is deterministic, so generation
    checks pass by construction; any refusal is reported as an error
    string for the caller's replay accounting. *)

(** {1 Snapshot persistence}

    The store piggybacks on shard 0's snapshot as one extra flat file,
    [DOCS.bxdocs] — a length-prefixed dump of (lens, docid, generation,
    source).  Views are not persisted; they are recomputed through the
    lens at load, which also revalidates the dump against the current
    lens definitions. *)

val docs_file : string
(** ["DOCS.bxdocs"]. *)

val save_dir : t -> dir:string -> (unit, string) result
(** Write the dump into [dir] (a snapshot directory being built),
    atomically: tmp + fsync + rename.  Writes nothing when the store is
    empty. *)

val doc_keys : t -> (string * string) list
(** All (lens, docid) pairs currently stored, sorted — the scrubber's
    walk order. *)

val check_doc : t -> lens:string -> docid:string -> (unit, string) result
(** Re-derive the view from the stored source through the lens and
    compare byte-for-byte with the stored view — the [view = get source]
    invariant the delta machinery depends on.  Runs under the store's
    mutex; an [Error] names the drift or the raised lens error. *)

val doc_digest_parts : t -> (string * string * int * string) list
(** Every document as (lens, docid, generation, source), sorted — the
    inputs to the anti-entropy digest ({!Integrity.doc_hash}). *)

val load_dir : t -> dir:string -> (unit, string) result
(** Replace the store's contents from [dir]'s dump; an absent file
    loads as empty.  Documents naming a lens this store does not serve
    are skipped with a warning on stderr. *)
