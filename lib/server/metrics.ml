(* Fixed bucket upper bounds for the latency histogram, in seconds.  The
   wiki's handlers run from microseconds (cache hit) to a few hundred
   milliseconds (the /checks verification sweep), so the grid is
   log-spaced across that range. *)
let buckets =
  [| 0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05;
     0.1; 0.25; 0.5; 1.0; 2.5 |]

type histogram = {
  counts : int array; (* one per bucket, cumulative on render only *)
  mutable sum : float;
  mutable total : int;
}

type lens_op = { mutable ops : int; mutable docs : int; mutable op_bytes : int }

type t = {
  mutex : Mutex.t;
  requests : (string * string * int, int ref) Hashtbl.t;
  errors : (string * string, int ref) Hashtbl.t; (* (route, reason) *)
  latency : (string, histogram) Hashtbl.t; (* per route *)
  lens_ops : (string * string, lens_op) Hashtbl.t; (* (lens, op) *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    mutex = Mutex.create ();
    requests = Hashtbl.create 16;
    errors = Hashtbl.create 16;
    latency = Hashtbl.create 16;
    lens_ops = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump table key =
  match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.replace table key (ref 1)

let observe_request t ~route ~meth ~status ~seconds =
  locked t (fun () ->
      bump t.requests (route, meth, status);
      if status >= 400 then bump t.errors (route, "status_" ^ string_of_int status);
      let h =
        match Hashtbl.find_opt t.latency route with
        | Some h -> h
        | None ->
            let h =
              { counts = Array.make (Array.length buckets) 0; sum = 0.; total = 0 }
            in
            Hashtbl.replace t.latency route h;
            h
      in
      (* Count into the first bucket whose bound admits the observation;
         render accumulates, matching Prometheus's cumulative scheme. *)
      let rec place i =
        if i >= Array.length buckets then ()
        else if seconds <= buckets.(i) then h.counts.(i) <- h.counts.(i) + 1
        else place (i + 1)
      in
      place 0;
      h.sum <- h.sum +. seconds;
      h.total <- h.total + 1)

let protocol_error t ~route ~reason =
  locked t (fun () -> bump t.errors (route, reason))

let observe_lens t ~lens ~op ~docs ~bytes =
  locked t (fun () ->
      let c =
        match Hashtbl.find_opt t.lens_ops (lens, op) with
        | Some c -> c
        | None ->
            let c = { ops = 0; docs = 0; op_bytes = 0 } in
            Hashtbl.replace t.lens_ops (lens, op) c;
            c
      in
      c.ops <- c.ops + 1;
      c.docs <- c.docs + docs;
      c.op_bytes <- c.op_bytes + bytes)

let lens_ops_total t =
  locked t (fun () ->
      Hashtbl.fold (fun _ c acc -> acc + c.ops) t.lens_ops 0)

let cache_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let cache_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let requests_total t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> acc + !r) t.requests 0)

let errors_total t =
  locked t (fun () -> Hashtbl.fold (fun _ r acc -> acc + !r) t.errors 0)

let cache_counts t = locked t (fun () -> (t.hits, t.misses))

(* Prometheus floats: "0.001" not "1e-03"; integral bounds without the
   trailing dot. *)
let float_label f =
  if Float.is_integer f then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.5f" f in
    (* trim trailing zeros *)
    let n = ref (String.length s) in
    while !n > 1 && s.[!n - 1] = '0' do decr n done;
    String.sub s 0 !n

let render t =
  locked t (fun () ->
      let b = Buffer.create 4096 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "# HELP bxwiki_requests_total Requests handled, by route class, method and status.";
      line "# TYPE bxwiki_requests_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.requests []
      |> List.sort compare
      |> List.iter (fun ((route, meth, status), n) ->
             line "bxwiki_requests_total{route=%S,method=%S,status=\"%d\"} %d"
               route meth status n);
      line "# HELP bxwiki_http_errors_total Error responses and protocol failures.";
      line "# TYPE bxwiki_http_errors_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.errors []
      |> List.sort compare
      |> List.iter (fun ((route, reason), n) ->
             line "bxwiki_http_errors_total{route=%S,reason=%S} %d" route reason n);
      line "# HELP bxwiki_request_duration_seconds Request handling time.";
      line "# TYPE bxwiki_request_duration_seconds histogram";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.latency []
      |> List.sort compare
      |> List.iter (fun (route, h) ->
             let acc = ref 0 in
             Array.iteri
               (fun i bound ->
                 acc := !acc + h.counts.(i);
                 line
                   "bxwiki_request_duration_seconds_bucket{route=%S,le=\"%s\"} %d"
                   route (float_label bound) !acc)
               buckets;
             line
               "bxwiki_request_duration_seconds_bucket{route=%S,le=\"+Inf\"} %d"
               route h.total;
             line "bxwiki_request_duration_seconds_sum{route=%S} %g" route h.sum;
             line "bxwiki_request_duration_seconds_count{route=%S} %d" route
               h.total);
      line "# HELP bxwiki_lens_requests_total Lens operations served, by lens and operation.";
      line "# TYPE bxwiki_lens_requests_total counter";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.lens_ops []
      |> List.sort compare
      |> List.iter (fun ((lens, op), c) ->
             line "bxwiki_lens_requests_total{lens=%S,op=%S} %d" lens op c.ops;
             line "bxwiki_lens_documents_total{lens=%S,op=%S} %d" lens op c.docs;
             line "bxwiki_lens_request_bytes_total{lens=%S,op=%S} %d" lens op
               c.op_bytes);
      (* The engine-level counters come straight from the string-lens
         runtime: process-global atomics, not per-service state. *)
      let es = Bx_strlens.Slens.stats () in
      line "# HELP bxwiki_slens_bytes_processed_total Input bytes through the string-lens engine.";
      line "# TYPE bxwiki_slens_bytes_processed_total counter";
      line "bxwiki_slens_bytes_processed_total %d" es.Bx_strlens.Slens.bytes;
      line "# HELP bxwiki_slens_splits_total Split decisions made by the slice engine.";
      line "# TYPE bxwiki_slens_splits_total counter";
      line "bxwiki_slens_splits_total %d" es.Bx_strlens.Slens.splits;
      line "# HELP bxwiki_slens_ctx_reuse_total Lens runs that reused their domain's execution context.";
      line "# TYPE bxwiki_slens_ctx_reuse_total counter";
      line "bxwiki_slens_ctx_reuse_total %d" es.Bx_strlens.Slens.ctx_reuse;
      line "# HELP bxwiki_slens_ctx_fresh_total Lens runs that allocated a fresh execution context.";
      line "# TYPE bxwiki_slens_ctx_fresh_total counter";
      line "bxwiki_slens_ctx_fresh_total %d" es.Bx_strlens.Slens.ctx_fresh;
      line "# HELP bxwiki_cache_hits_total Rendered-page cache hits.";
      line "# TYPE bxwiki_cache_hits_total counter";
      line "bxwiki_cache_hits_total %d" t.hits;
      line "# HELP bxwiki_cache_misses_total Rendered-page cache misses.";
      line "# TYPE bxwiki_cache_misses_total counter";
      line "bxwiki_cache_misses_total %d" t.misses;
      Buffer.contents b)
