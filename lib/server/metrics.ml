(* Fixed bucket upper bounds for the latency histogram, in seconds.  The
   wiki's handlers run from microseconds (cache hit) to a few hundred
   milliseconds (the /checks verification sweep), so the grid is
   log-spaced across that range. *)
let buckets =
  [| 0.0001; 0.00025; 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05;
     0.1; 0.25; 0.5; 1.0; 2.5 |]

type histogram = {
  counts : int array; (* one per bucket, cumulative on render only *)
  mutable sum : float;
  mutable total : int;
}

type lens_op = { mutable ops : int; mutable docs : int; mutable op_bytes : int }

type t = {
  mutex : Mutex.t;
  requests : (string * string * int, int ref) Hashtbl.t;
  errors : (string * string, int ref) Hashtbl.t; (* (route, reason) *)
  latency : (string, histogram) Hashtbl.t; (* per route *)
  lens_ops : (string * string, lens_op) Hashtbl.t; (* (lens, op) *)
  shed : (string, int ref) Hashtbl.t; (* per reason: queue_full, deadline *)
  mutable hits : int;
  mutable misses : int;
  mutable torn_tails : int;
  mutable crc_errors : int;
  mutable compact_ok : int;
  mutable compact_fail : int;
  mutable last_compaction_ok : bool;
  mutable queue_depth : int; (* gauge, sampled at scrape time *)
  (* Brownout/degradation state: the AIMD admission limit and the sticky
     disk-full flag are gauges sampled at scrape; stale responses served
     by the degraded lane are a counter with the cumulative generation
     lag alongside, so staleness is bounded *and measured*. *)
  mutable concurrency_limit : int;
  mutable journal_disk_full : bool;
  mutable stale_served : int;
  mutable stale_gen_lag : int;
  (* Replication counters (either side of the stream) and gauges
     (sampled at scrape time, like queue_depth). *)
  mutable streamed_records : int;
  mutable streamed_bytes : int;
  mutable applied_records : int;
  mutable reconnects : int;
  mutable snapshot_bootstraps : int;
  mutable epoch_rejects : int;
  mutable replication_gaps : int;
  mutable digest_checks : int;
  mutable digest_mismatches : int;
  mutable shard_resyncs : int;
  (* Integrity: the background scrubber's walk and its findings, and the
     quarantine's current population (a gauge, maintained by the
     service). *)
  mutable scrub_passes : int;
  scrub_items : (string, int ref) Hashtbl.t; (* per surface *)
  scrub_corruptions : (string, int ref) Hashtbl.t; (* per surface *)
  mutable quarantined_entries : int;
  mutable quarantined_docs : int;
  mutable quarantined_files : int;
  mutable repl_epoch : int;
  mutable repl_fenced : bool;
  mutable repl_role_replica : bool;
  mutable repl_lag : float;
  mutable repl_behind : int;
  (* Lock contention gauges, sampled at scrape time: (lock, mode) ->
     (acquisitions, contended).  Contended = the acquirer had to block
     (mutex busy, or a reader/writer held the rwlock against it). *)
  locks : (string * string, int * int) Hashtbl.t;
  mutable respcache_shards : int;
  mutable respcache_entries : int;
  mutable registry_shards : int;
  mutable registry_entries : int;
}

let create () =
  {
    mutex = Mutex.create ();
    requests = Hashtbl.create 16;
    errors = Hashtbl.create 16;
    latency = Hashtbl.create 16;
    lens_ops = Hashtbl.create 16;
    shed = Hashtbl.create 4;
    hits = 0;
    misses = 0;
    torn_tails = 0;
    crc_errors = 0;
    compact_ok = 0;
    compact_fail = 0;
    last_compaction_ok = true;
    queue_depth = 0;
    concurrency_limit = 0;
    journal_disk_full = false;
    stale_served = 0;
    stale_gen_lag = 0;
    streamed_records = 0;
    streamed_bytes = 0;
    applied_records = 0;
    reconnects = 0;
    snapshot_bootstraps = 0;
    epoch_rejects = 0;
    replication_gaps = 0;
    digest_checks = 0;
    digest_mismatches = 0;
    shard_resyncs = 0;
    scrub_passes = 0;
    scrub_items = Hashtbl.create 8;
    scrub_corruptions = Hashtbl.create 8;
    quarantined_entries = 0;
    quarantined_docs = 0;
    quarantined_files = 0;
    repl_epoch = 0;
    repl_fenced = false;
    repl_role_replica = false;
    repl_lag = 0.;
    repl_behind = 0;
    locks = Hashtbl.create 8;
    respcache_shards = 1;
    respcache_entries = 0;
    registry_shards = 1;
    registry_entries = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let bump table key =
  match Hashtbl.find_opt table key with
  | Some r -> incr r
  | None -> Hashtbl.replace table key (ref 1)

let observe_request t ~route ~meth ~status ~seconds =
  locked t (fun () ->
      bump t.requests (route, meth, status);
      if status >= 400 then bump t.errors (route, "status_" ^ string_of_int status);
      let h =
        match Hashtbl.find_opt t.latency route with
        | Some h -> h
        | None ->
            let h =
              { counts = Array.make (Array.length buckets) 0; sum = 0.; total = 0 }
            in
            Hashtbl.replace t.latency route h;
            h
      in
      (* Count into the first bucket whose bound admits the observation;
         render accumulates, matching Prometheus's cumulative scheme. *)
      let rec place i =
        if i >= Array.length buckets then ()
        else if seconds <= buckets.(i) then h.counts.(i) <- h.counts.(i) + 1
        else place (i + 1)
      in
      place 0;
      h.sum <- h.sum +. seconds;
      h.total <- h.total + 1)

let protocol_error t ~route ~reason =
  locked t (fun () -> bump t.errors (route, reason))

let observe_lens t ~lens ~op ~docs ~bytes =
  locked t (fun () ->
      let c =
        match Hashtbl.find_opt t.lens_ops (lens, op) with
        | Some c -> c
        | None ->
            let c = { ops = 0; docs = 0; op_bytes = 0 } in
            Hashtbl.replace t.lens_ops (lens, op) c;
            c
      in
      c.ops <- c.ops + 1;
      c.docs <- c.docs + docs;
      c.op_bytes <- c.op_bytes + bytes)

let lens_ops_total t =
  locked t (fun () ->
      Hashtbl.fold (fun _ c acc -> acc + c.ops) t.lens_ops 0)

let cache_hit t = locked t (fun () -> t.hits <- t.hits + 1)
let cache_miss t = locked t (fun () -> t.misses <- t.misses + 1)

let journal_recovery t ~torn ~crc_errors =
  locked t (fun () ->
      if torn then t.torn_tails <- t.torn_tails + 1;
      t.crc_errors <- t.crc_errors + crc_errors)

let compaction t ~ok =
  locked t (fun () ->
      if ok then t.compact_ok <- t.compact_ok + 1
      else t.compact_fail <- t.compact_fail + 1;
      t.last_compaction_ok <- ok)

let shed t ~reason = locked t (fun () -> bump t.shed reason)

let note_queue_depth t depth = locked t (fun () -> t.queue_depth <- depth)

let note_concurrency_limit t limit =
  locked t (fun () -> t.concurrency_limit <- limit)

let note_disk_full t full = locked t (fun () -> t.journal_disk_full <- full)

let stale_response t ~gen_lag =
  locked t (fun () ->
      t.stale_served <- t.stale_served + 1;
      t.stale_gen_lag <- t.stale_gen_lag + max 0 gen_lag)

let replication_streamed t ~records ~bytes =
  locked t (fun () ->
      t.streamed_records <- t.streamed_records + records;
      t.streamed_bytes <- t.streamed_bytes + bytes)

let replication_applied t ~records =
  locked t (fun () -> t.applied_records <- t.applied_records + records)

let replication_reconnect t =
  locked t (fun () -> t.reconnects <- t.reconnects + 1)

let replication_snapshot_bootstrap t =
  locked t (fun () -> t.snapshot_bootstraps <- t.snapshot_bootstraps + 1)

let replication_epoch_reject t =
  locked t (fun () -> t.epoch_rejects <- t.epoch_rejects + 1)

let replication_gap t =
  locked t (fun () -> t.replication_gaps <- t.replication_gaps + 1)

let replication_digest_check t ~matched =
  locked t (fun () ->
      t.digest_checks <- t.digest_checks + 1;
      if not matched then t.digest_mismatches <- t.digest_mismatches + 1)

let replication_shard_resync t =
  locked t (fun () -> t.shard_resyncs <- t.shard_resyncs + 1)

(* --- Integrity: scrubber + quarantine --------------------------------- *)

let scrub_pass t = locked t (fun () -> t.scrub_passes <- t.scrub_passes + 1)

let bump_by table key n =
  match Hashtbl.find_opt table key with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace table key (ref n)

let scrub_item t ~surface ~n =
  locked t (fun () -> bump_by t.scrub_items surface n)

let scrub_corruption t ~surface =
  locked t (fun () -> bump_by t.scrub_corruptions surface 1)

let note_quarantine t ~entries ~docs ~files =
  locked t (fun () ->
      t.quarantined_entries <- entries;
      t.quarantined_docs <- docs;
      t.quarantined_files <- files)

let scrub_counts t =
  locked t (fun () ->
      ( t.scrub_passes,
        Hashtbl.fold (fun _ r acc -> acc + !r) t.scrub_items 0,
        Hashtbl.fold (fun _ r acc -> acc + !r) t.scrub_corruptions 0 ))

let scrub_corruptions_by_surface t =
  locked t (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.scrub_corruptions []
      |> List.sort compare)

let integrity_counts t =
  locked t (fun () ->
      ( t.replication_gaps,
        t.digest_checks,
        t.digest_mismatches,
        t.shard_resyncs ))

let note_replication t ~epoch ~fenced ~replica ~lag ~behind =
  locked t (fun () ->
      t.repl_epoch <- epoch;
      t.repl_fenced <- fenced;
      t.repl_role_replica <- replica;
      t.repl_lag <- lag;
      t.repl_behind <- behind)

let note_lock t ~lock ~mode ~acquisitions ~contended =
  locked t (fun () ->
      Hashtbl.replace t.locks (lock, mode) (acquisitions, contended))

let note_respcache t ~shards ~entries =
  locked t (fun () ->
      t.respcache_shards <- shards;
      t.respcache_entries <- entries)

let note_registry t ~shards ~entries =
  locked t (fun () ->
      t.registry_shards <- shards;
      t.registry_entries <- entries)

let lock_counts t =
  locked t (fun () ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.locks []
      |> List.sort compare)

let replication_counts t =
  locked t (fun () ->
      (t.streamed_records, t.applied_records, t.reconnects,
       t.snapshot_bootstraps, t.epoch_rejects))

let shed_total t =
  locked t (fun () -> Hashtbl.fold (fun _ r acc -> acc + !r) t.shed 0)

let shed_by_reason t reason =
  locked t (fun () ->
      match Hashtbl.find_opt t.shed reason with Some r -> !r | None -> 0)

let stale_counts t = locked t (fun () -> (t.stale_served, t.stale_gen_lag))

let compaction_counts t = locked t (fun () -> (t.compact_ok, t.compact_fail))

let journal_recovery_counts t =
  locked t (fun () -> (t.torn_tails, t.crc_errors))

let requests_total t =
  locked t (fun () ->
      Hashtbl.fold (fun _ r acc -> acc + !r) t.requests 0)

let errors_total t =
  locked t (fun () -> Hashtbl.fold (fun _ r acc -> acc + !r) t.errors 0)

let cache_counts t = locked t (fun () -> (t.hits, t.misses))

(* Prometheus floats: "0.001" not "1e-03"; integral bounds without the
   trailing dot. *)
let float_label f =
  if Float.is_integer f then Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.5f" f in
    (* trim trailing zeros *)
    let n = ref (String.length s) in
    while !n > 1 && s.[!n - 1] = '0' do decr n done;
    String.sub s 0 !n

let render t =
  locked t (fun () ->
      let b = Buffer.create 4096 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
      line "# HELP bxwiki_requests_total Requests handled, by route class, method and status.";
      line "# TYPE bxwiki_requests_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.requests []
      |> List.sort compare
      |> List.iter (fun ((route, meth, status), n) ->
             line "bxwiki_requests_total{route=%S,method=%S,status=\"%d\"} %d"
               route meth status n);
      line "# HELP bxwiki_http_errors_total Error responses and protocol failures.";
      line "# TYPE bxwiki_http_errors_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.errors []
      |> List.sort compare
      |> List.iter (fun ((route, reason), n) ->
             line "bxwiki_http_errors_total{route=%S,reason=%S} %d" route reason n);
      line "# HELP bxwiki_request_duration_seconds Request handling time.";
      line "# TYPE bxwiki_request_duration_seconds histogram";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.latency []
      |> List.sort compare
      |> List.iter (fun (route, h) ->
             let acc = ref 0 in
             Array.iteri
               (fun i bound ->
                 acc := !acc + h.counts.(i);
                 line
                   "bxwiki_request_duration_seconds_bucket{route=%S,le=\"%s\"} %d"
                   route (float_label bound) !acc)
               buckets;
             line
               "bxwiki_request_duration_seconds_bucket{route=%S,le=\"+Inf\"} %d"
               route h.total;
             line "bxwiki_request_duration_seconds_sum{route=%S} %g" route h.sum;
             line "bxwiki_request_duration_seconds_count{route=%S} %d" route
               h.total);
      line "# HELP bxwiki_lens_requests_total Lens operations served, by lens and operation.";
      line "# TYPE bxwiki_lens_requests_total counter";
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.lens_ops []
      |> List.sort compare
      |> List.iter (fun ((lens, op), c) ->
             line "bxwiki_lens_requests_total{lens=%S,op=%S} %d" lens op c.ops;
             line "bxwiki_lens_documents_total{lens=%S,op=%S} %d" lens op c.docs;
             line "bxwiki_lens_request_bytes_total{lens=%S,op=%S} %d" lens op
               c.op_bytes);
      (* The engine-level counters come straight from the string-lens
         runtime: process-global atomics, not per-service state. *)
      let es = Bx_strlens.Slens.stats () in
      line "# HELP bxwiki_slens_bytes_processed_total Input bytes through the string-lens engine.";
      line "# TYPE bxwiki_slens_bytes_processed_total counter";
      line "bxwiki_slens_bytes_processed_total %d" es.Bx_strlens.Slens.bytes;
      line "# HELP bxwiki_slens_splits_total Split decisions made by the slice engine.";
      line "# TYPE bxwiki_slens_splits_total counter";
      line "bxwiki_slens_splits_total %d" es.Bx_strlens.Slens.splits;
      line "# HELP bxwiki_slens_ctx_reuse_total Lens runs that reused their domain's execution context.";
      line "# TYPE bxwiki_slens_ctx_reuse_total counter";
      line "bxwiki_slens_ctx_reuse_total %d" es.Bx_strlens.Slens.ctx_reuse;
      line "# HELP bxwiki_slens_ctx_fresh_total Lens runs that allocated a fresh execution context.";
      line "# TYPE bxwiki_slens_ctx_fresh_total counter";
      line "bxwiki_slens_ctx_fresh_total %d" es.Bx_strlens.Slens.ctx_fresh;
      (* Delta propagation: which tier served each call, how much work
         it reused, and what the edits weighed against the documents
         they stand for. *)
      let ds = Bx_strlens.Slens_delta.stats () in
      line "# HELP bxwiki_delta_puts_total put_delta calls, by tier.";
      line "# TYPE bxwiki_delta_puts_total counter";
      line "bxwiki_delta_puts_total{path=\"fast\"} %d"
        ds.Bx_strlens.Slens_delta.fast_puts;
      line "bxwiki_delta_puts_total{path=\"slow\"} %d"
        ds.Bx_strlens.Slens_delta.slow_puts;
      line "bxwiki_delta_puts_total{path=\"fallback\"} %d"
        ds.Bx_strlens.Slens_delta.fallback_puts;
      line "# HELP bxwiki_delta_gets_total get_delta calls, by tier.";
      line "# TYPE bxwiki_delta_gets_total counter";
      line "bxwiki_delta_gets_total{path=\"fast\"} %d"
        ds.Bx_strlens.Slens_delta.fast_gets;
      line "bxwiki_delta_gets_total{path=\"fallback\"} %d"
        ds.Bx_strlens.Slens_delta.fallback_gets;
      line
        "# HELP bxwiki_delta_chunks_total Chunks spliced verbatim vs re-run through the body lens.";
      line "# TYPE bxwiki_delta_chunks_total counter";
      line "bxwiki_delta_chunks_total{action=\"reused\"} %d"
        ds.Bx_strlens.Slens_delta.chunks_reused;
      line "bxwiki_delta_chunks_total{action=\"recomputed\"} %d"
        ds.Bx_strlens.Slens_delta.chunks_recomputed;
      line
        "# HELP bxwiki_delta_bytes_total Edit payload bytes vs the full documents they stand for.";
      line "# TYPE bxwiki_delta_bytes_total counter";
      line "bxwiki_delta_bytes_total{kind=\"delta\"} %d"
        ds.Bx_strlens.Slens_delta.delta_bytes;
      line "bxwiki_delta_bytes_total{kind=\"full\"} %d"
        ds.Bx_strlens.Slens_delta.full_bytes;
      line "# HELP bxwiki_cache_hits_total Rendered-page cache hits.";
      line "# TYPE bxwiki_cache_hits_total counter";
      line "bxwiki_cache_hits_total %d" t.hits;
      line "# HELP bxwiki_cache_misses_total Rendered-page cache misses.";
      line "# TYPE bxwiki_cache_misses_total counter";
      line "bxwiki_cache_misses_total %d" t.misses;
      line "# HELP bxwiki_journal_torn_tail_total Journal recoveries that truncated a torn tail.";
      line "# TYPE bxwiki_journal_torn_tail_total counter";
      line "bxwiki_journal_torn_tail_total %d" t.torn_tails;
      line "# HELP bxwiki_journal_crc_errors_total Journal records rejected by checksum during recovery.";
      line "# TYPE bxwiki_journal_crc_errors_total counter";
      line "bxwiki_journal_crc_errors_total %d" t.crc_errors;
      line "# HELP bxwiki_journal_compactions_total Snapshot compactions, by outcome.";
      line "# TYPE bxwiki_journal_compactions_total counter";
      line "bxwiki_journal_compactions_total{result=\"ok\"} %d" t.compact_ok;
      line "bxwiki_journal_compactions_total{result=\"error\"} %d" t.compact_fail;
      line "# HELP bxwiki_journal_last_compaction_ok Whether the most recent compaction succeeded (1 until one fails).";
      line "# TYPE bxwiki_journal_last_compaction_ok gauge";
      line "bxwiki_journal_last_compaction_ok %d"
        (if t.last_compaction_ok then 1 else 0);
      line "# HELP bxwiki_shed_total Connections shed by overload protection, by reason.";
      line "# TYPE bxwiki_shed_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.shed []
      |> List.sort compare
      |> List.iter (fun (reason, n) ->
             line "bxwiki_shed_total{reason=%S} %d" reason n);
      line "# HELP bxwiki_queue_depth Pending connections queued for a worker (sampled at scrape).";
      line "# TYPE bxwiki_queue_depth gauge";
      line "bxwiki_queue_depth %d" t.queue_depth;
      line "# HELP bxwiki_concurrency_limit AIMD adaptive admission limit (sampled at scrape).";
      line "# TYPE bxwiki_concurrency_limit gauge";
      line "bxwiki_concurrency_limit %d" t.concurrency_limit;
      line "# HELP bxwiki_journal_disk_full 1 while the journal has hit ENOSPC and writes are refused.";
      line "# TYPE bxwiki_journal_disk_full gauge";
      line "bxwiki_journal_disk_full %d" (if t.journal_disk_full then 1 else 0);
      line "# HELP bxwiki_stale_served_total Responses served from the respcache past their generation (brownout).";
      line "# TYPE bxwiki_stale_served_total counter";
      line "bxwiki_stale_served_total %d" t.stale_served;
      line "# HELP bxwiki_stale_generation_lag_total Cumulative generation lag across stale responses.";
      line "# TYPE bxwiki_stale_generation_lag_total counter";
      line "bxwiki_stale_generation_lag_total %d" t.stale_gen_lag;
      line "# HELP bxwiki_lock_acquisitions_total Lock acquisitions by lock and mode (sampled at scrape).";
      line "# TYPE bxwiki_lock_acquisitions_total counter";
      let lock_rows =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.locks []
        |> List.sort compare
      in
      List.iter
        (fun ((lock, mode), (acq, _)) ->
          line "bxwiki_lock_acquisitions_total{lock=%S,mode=%S} %d" lock mode
            acq)
        lock_rows;
      line "# HELP bxwiki_lock_contended_total Lock acquisitions that had to block behind another holder.";
      line "# TYPE bxwiki_lock_contended_total counter";
      List.iter
        (fun ((lock, mode), (_, cont)) ->
          line "bxwiki_lock_contended_total{lock=%S,mode=%S} %d" lock mode cont)
        lock_rows;
      line "# HELP bxwiki_respcache_shards Response-cache shards (one per worker domain).";
      line "# TYPE bxwiki_respcache_shards gauge";
      line "bxwiki_respcache_shards %d" t.respcache_shards;
      line "# HELP bxwiki_respcache_entries Cached rendered responses across all shards (sampled at scrape).";
      line "# TYPE bxwiki_respcache_entries gauge";
      line "bxwiki_respcache_entries %d" t.respcache_entries;
      line "# HELP bxwiki_registry_shards Registry shards (identifier-hashed partitions).";
      line "# TYPE bxwiki_registry_shards gauge";
      line "bxwiki_registry_shards %d" t.registry_shards;
      line "# HELP bxwiki_registry_entries Catalogue entries across all registry shards (sampled at scrape).";
      line "# TYPE bxwiki_registry_entries gauge";
      line "bxwiki_registry_entries %d" t.registry_entries;
      line "# HELP bxwiki_replication_streamed_records_total Journal records served to followers.";
      line "# TYPE bxwiki_replication_streamed_records_total counter";
      line "bxwiki_replication_streamed_records_total %d" t.streamed_records;
      line "# HELP bxwiki_replication_streamed_bytes_total Frame bytes served to followers.";
      line "# TYPE bxwiki_replication_streamed_bytes_total counter";
      line "bxwiki_replication_streamed_bytes_total %d" t.streamed_bytes;
      line "# HELP bxwiki_replication_applied_records_total Streamed records applied by this replica.";
      line "# TYPE bxwiki_replication_applied_records_total counter";
      line "bxwiki_replication_applied_records_total %d" t.applied_records;
      line "# HELP bxwiki_replication_reconnects_total Follower reconnect attempts after a failed poll.";
      line "# TYPE bxwiki_replication_reconnects_total counter";
      line "bxwiki_replication_reconnects_total %d" t.reconnects;
      line "# HELP bxwiki_replication_snapshot_bootstraps_total Full snapshot installs performed to catch up across a compaction.";
      line "# TYPE bxwiki_replication_snapshot_bootstraps_total counter";
      line "bxwiki_replication_snapshot_bootstraps_total %d" t.snapshot_bootstraps;
      line "# HELP bxwiki_replication_epoch_rejects_total Stream batches rejected for carrying a stale epoch.";
      line "# TYPE bxwiki_replication_epoch_rejects_total counter";
      line "bxwiki_replication_epoch_rejects_total %d" t.epoch_rejects;
      line "# HELP bxwiki_replication_gaps_total Sequence gaps detected in the applied stream (each triggers a snapshot re-bootstrap).";
      line "# TYPE bxwiki_replication_gaps_total counter";
      line "bxwiki_replication_gaps_total %d" t.replication_gaps;
      line "# HELP bxwiki_replication_digest_checks_total Anti-entropy digest comparisons performed against the upstream.";
      line "# TYPE bxwiki_replication_digest_checks_total counter";
      line "bxwiki_replication_digest_checks_total %d" t.digest_checks;
      line "# HELP bxwiki_replication_digest_mismatches_total Digest comparisons that found at least one diverged shard.";
      line "# TYPE bxwiki_replication_digest_mismatches_total counter";
      line "bxwiki_replication_digest_mismatches_total %d" t.digest_mismatches;
      line "# HELP bxwiki_replication_shard_resyncs_total Targeted per-shard re-bootstraps performed after a digest mismatch.";
      line "# TYPE bxwiki_replication_shard_resyncs_total counter";
      line "bxwiki_replication_shard_resyncs_total %d" t.shard_resyncs;
      line "# HELP bxwiki_scrub_passes_total Complete scrubber walks over the store.";
      line "# TYPE bxwiki_scrub_passes_total counter";
      line "bxwiki_scrub_passes_total %d" t.scrub_passes;
      line "# HELP bxwiki_scrub_items_total Items examined by the scrubber, by surface.";
      line "# TYPE bxwiki_scrub_items_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.scrub_items []
      |> List.sort compare
      |> List.iter (fun (surface, n) ->
             line "bxwiki_scrub_items_total{surface=%S} %d" surface n);
      line "# HELP bxwiki_scrub_corruptions_total Corruptions the scrubber found, by surface.";
      line "# TYPE bxwiki_scrub_corruptions_total counter";
      Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.scrub_corruptions []
      |> List.sort compare
      |> List.iter (fun (surface, n) ->
             line "bxwiki_scrub_corruptions_total{surface=%S} %d" surface n);
      line "# HELP bxwiki_quarantine_size Items currently quarantined, by kind (sampled at scrape).";
      line "# TYPE bxwiki_quarantine_size gauge";
      line "bxwiki_quarantine_size{kind=\"entry\"} %d" t.quarantined_entries;
      line "bxwiki_quarantine_size{kind=\"doc\"} %d" t.quarantined_docs;
      line "bxwiki_quarantine_size{kind=\"file\"} %d" t.quarantined_files;
      line "# HELP bxwiki_replication_epoch The replication epoch this node believes is current.";
      line "# TYPE bxwiki_replication_epoch gauge";
      line "bxwiki_replication_epoch %d" t.repl_epoch;
      line "# HELP bxwiki_replication_fenced Whether this node has been deposed by a newer epoch (writes rejected).";
      line "# TYPE bxwiki_replication_fenced gauge";
      line "bxwiki_replication_fenced %d" (if t.repl_fenced then 1 else 0);
      line "# HELP bxwiki_replication_role Role of this node (1 for the held role).";
      line "# TYPE bxwiki_replication_role gauge";
      line "bxwiki_replication_role{role=\"replica\"} %d"
        (if t.repl_role_replica then 1 else 0);
      line "bxwiki_replication_role{role=\"primary\"} %d"
        (if t.repl_role_replica then 0 else 1);
      line "# HELP bxwiki_replication_lag_seconds Time since this replica was last known caught up (0 when in sync).";
      line "# TYPE bxwiki_replication_lag_seconds gauge";
      line "bxwiki_replication_lag_seconds %g" t.repl_lag;
      line "# HELP bxwiki_replication_behind_records Records the upstream had that this replica had not applied at last poll.";
      line "# TYPE bxwiki_replication_behind_records gauge";
      line "bxwiki_replication_behind_records %d" t.repl_behind;
      (* Failpoint counters come from the process-global fault runtime,
         like the slens engine counters above. *)
      let faults = Bx_fault.Fault.stats () in
      line "# HELP bxwiki_fault_hits_total Failpoint evaluations, per configured site.";
      line "# TYPE bxwiki_fault_hits_total counter";
      line "# HELP bxwiki_fault_fired_total Failpoint actions actually taken, per configured site.";
      line "# TYPE bxwiki_fault_fired_total counter";
      List.iter
        (fun (site, hits, fired) ->
          line "bxwiki_fault_hits_total{site=%S} %d" site hits;
          line "bxwiki_fault_fired_total{site=%S} %d" site fired)
        faults;
      Buffer.contents b)
