(** Operational metrics for the repository service, exposed in the
    Prometheus text format at [GET /metrics].

    Three families, all thread-safe behind one mutex:
    - [bxwiki_requests_total{route,method,status}] — a counter per
      (route class, method, status) triple;
    - [bxwiki_http_errors_total{route,reason}] — responses with status
      >= 400 plus protocol-level failures (bad request line, body cap,
      read timeout) that never reach the handler;
    - [bxwiki_request_duration_seconds{route}] — a cumulative histogram
      of wall-clock handling time per route class;
    - [bxwiki_cache_hits_total] / [bxwiki_cache_misses_total] — the
      rendered-page cache ({!Respcache}) counters.

    Routes are {e classes}, not raw paths ([entry], [entry.wiki],
    [entry.json], [index], [glossary], ...), so label cardinality stays
    bounded no matter what clients request. *)

type t

val create : unit -> t

val observe_request :
  t -> route:string -> meth:string -> status:int -> seconds:float -> unit
(** Record one completed request: bumps the request counter, the error
    counter when [status >= 400], and the route's latency histogram. *)

val protocol_error : t -> route:string -> reason:string -> unit
(** Record a request that failed before reaching the handler (malformed
    request line, oversized body, socket timeout...). *)

val observe_lens : t -> lens:string -> op:string -> docs:int -> bytes:int -> unit
(** Record one lens operation served over HTTP: [op] is [get], [put],
    [create] or their batch variants; [docs] the number of documents in
    the request, [bytes] the input payload size.  The engine-level
    counters ([bxwiki_slens_*]) are read from {!Bx_strlens.Slens.stats}
    at render time and need no recording here. *)

val cache_hit : t -> unit
val cache_miss : t -> unit

val journal_recovery : t -> torn:bool -> crc_errors:int -> unit
(** Record what journal recovery found at boot: a truncated tail bumps
    [bxwiki_journal_torn_tail_total]; each checksum-rejected record
    bumps [bxwiki_journal_crc_errors_total]. *)

val compaction : t -> ok:bool -> unit
(** Record one compaction attempt; feeds
    [bxwiki_journal_compactions_total{result}] and the
    [bxwiki_journal_last_compaction_ok] gauge. *)

val shed : t -> reason:string -> unit
(** Record one connection shed by overload protection ([queue_full] when
    the pending queue is at capacity, [deadline] when it waited past its
    budget). *)

val note_queue_depth : t -> int -> unit
(** Sample the pending-connection queue depth (a gauge; the service sets
    it when [/metrics] is scraped). *)

val note_concurrency_limit : t -> int -> unit
(** Sample the AIMD adaptive admission limit
    ([bxwiki_concurrency_limit]). *)

val note_disk_full : t -> bool -> unit
(** Sample the sticky journal-ENOSPC flag
    ([bxwiki_journal_disk_full]). *)

val stale_response : t -> gen_lag:int -> unit
(** Record one response served stale from the respcache by the brownout
    lane, [gen_lag] generations behind the live registry.  Feeds
    [bxwiki_stale_served_total] and
    [bxwiki_stale_generation_lag_total]. *)

val note_lock :
  t -> lock:string -> mode:string -> acquisitions:int -> contended:int -> unit
(** Sample one lock's contention counters (the service sets them when
    [/metrics] is scraped): [acquisitions] since boot, and how many had
    to block behind another holder.  Exposed as
    [bxwiki_lock_acquisitions_total{lock,mode}] and
    [bxwiki_lock_contended_total{lock,mode}] — the load benchmarks read
    these to name the blocking lock when a scaling curve flattens. *)

val note_respcache : t -> shards:int -> entries:int -> unit
(** Sample the response cache's shape: shard count and total entries. *)

val note_registry : t -> shards:int -> entries:int -> unit
(** Sample the registry's shape: shard count and catalogue size.
    Exposed as [bxwiki_registry_shards] and [bxwiki_registry_entries]. *)

(** {1 Replication} *)

val replication_streamed : t -> records:int -> bytes:int -> unit
(** Record one stream response served to a follower. *)

val replication_applied : t -> records:int -> unit
(** Record streamed records applied by this replica. *)

val replication_reconnect : t -> unit
(** Record one follower reconnect after a failed poll. *)

val replication_snapshot_bootstrap : t -> unit
(** Record one full snapshot install (catch-up across a compaction). *)

val replication_epoch_reject : t -> unit
(** Record a stream batch rejected for carrying a stale epoch. *)

val replication_gap : t -> unit
(** Record a sequence gap in the applied stream: the follower expected
    seq [n] and got a batch starting past it.  Feeds
    [bxwiki_replication_gaps_total]; the follower recovers by snapshot
    re-bootstrap rather than erroring out. *)

val replication_digest_check : t -> matched:bool -> unit
(** Record one anti-entropy digest comparison against the upstream;
    [matched = false] means at least one shard diverged. *)

val replication_shard_resync : t -> unit
(** Record one targeted per-shard re-bootstrap after a digest
    mismatch. *)

(** {1 Integrity: scrubber and quarantine} *)

val scrub_pass : t -> unit
(** Record one complete scrubber walk over the store. *)

val scrub_item : t -> surface:string -> n:int -> unit
(** Record [n] items examined on one surface ([journal], [snapshot],
    [entry] or [doc]). *)

val scrub_corruption : t -> surface:string -> unit
(** Record one corruption found, by surface. *)

val note_quarantine : t -> entries:int -> docs:int -> files:int -> unit
(** Sample the quarantine population ([bxwiki_quarantine_size{kind}]);
    the service sets it after boot and after every scrub pass. *)

val note_replication :
  t ->
  epoch:int ->
  fenced:bool ->
  replica:bool ->
  lag:float ->
  behind:int ->
  unit
(** Sample the replication gauges (epoch, fenced, role, lag seconds,
    records behind); the service sets them when [/metrics] is
    scraped. *)

val render : t -> string
(** The Prometheus text exposition (version 0.0.4): [# HELP]/[# TYPE]
    preambles, then one line per labelled series, sorted so output is
    deterministic. *)

(** {1 Introspection} (for tests and invariant checks) *)

val requests_total : t -> int
(** Sum over all (route, method, status) series. *)

val errors_total : t -> int

val lens_ops_total : t -> int
(** Sum over all (lens, op) series. *)

val cache_counts : t -> int * int
(** (hits, misses). *)

val shed_total : t -> int
(** Sum over all shed reasons. *)

val shed_by_reason : t -> string -> int
(** One shed reason's count ([0] if never bumped). *)

val stale_counts : t -> int * int
(** (stale responses served, cumulative generation lag). *)

val compaction_counts : t -> int * int
(** (succeeded, failed). *)

val journal_recovery_counts : t -> int * int
(** (torn tails truncated, records rejected by checksum). *)

val replication_counts : t -> int * int * int * int * int
(** (streamed records, applied records, reconnects, snapshot bootstraps,
    epoch rejects). *)

val lock_counts : t -> ((string * string) * (int * int)) list
(** The sampled lock counters: ((lock, mode), (acquisitions, contended)),
    sorted. *)

val scrub_counts : t -> int * int * int
(** (passes, items examined, corruptions found), summed over surfaces. *)

val scrub_corruptions_by_surface : t -> (string * int) list
(** Corruption counts per surface, sorted. *)

val integrity_counts : t -> int * int * int * int
(** (replication gaps, digest checks, digest mismatches, shard
    resyncs). *)
