(** A cache of rendered GET responses, keyed on (path, registry
    generation), sharded per worker domain.

    The {!Service} bumps its generation counter on every successful
    write, so a cached page is valid exactly while its generation
    matches — there is no invalidation traffic, stale entries simply
    stop being found and are swept on the next insertion past capacity.

    The table is split into [shards] independent (mutex, hashtable)
    pairs and each worker domain always uses the shard indexed by its
    own domain id: domains never contend on a cache mutex, at the cost
    of a page being rendered once per domain that serves it.  Lock
    acquisitions and the (rare) contended ones are counted in process
    atomics so the load benchmarks can see whether the cache is a
    bottleneck.  Hits and misses are counted in the service's
    {!Metrics}. *)

type t

val create : ?capacity:int -> ?shards:int -> Metrics.t -> t
(** [capacity] bounds the total number of cached responses (default 256,
    split evenly across shards with a floor of 16 per shard); [shards]
    is normally the worker-domain count (default 1). *)

val find : t -> path:string -> generation:int -> Bx_repo.Webui.response option
(** A hit requires both the path and the generation to match, in the
    calling domain's shard. *)

val find_stale : t -> path:string -> (int * Bx_repo.Webui.response) option
(** The freshest cached render of [path] at {e any} generation, searched
    across {e all} shards: the brownout lane serves this (tagged
    [X-Bxwiki-Stale: <gen-lag>]) instead of 503 when the service is
    overloaded.  Does not count a cache hit or miss — it is not the
    normal read path. *)

val store :
  ?current:(string -> int) ->
  t -> path:string -> generation:int -> Bx_repo.Webui.response -> unit
(** Insert (or refresh) the rendering of [path] at [generation] into the
    calling domain's shard.  When the shard is full, entries from older
    generations are evicted first; if every entry is current, the whole
    shard is dropped (rare: it means a shard's capacity of distinct
    pages was rendered without a write).  [current] maps a cached path to
    the generation at which it would be considered fresh (default:
    everything is compared against [generation]) — a service with
    per-registry-shard generations passes its per-path generation
    function so the sweep only evicts genuinely stale pages. *)

val size : t -> int
(** Total entries across all shards. *)

val shard_count : t -> int

val lock_stats : t -> int * int
(** (acquisitions, contended acquisitions) across all shards since
    creation — a contended acquisition is one where [Mutex.try_lock]
    failed and the caller had to block. *)
