(** A cache of rendered GET responses, keyed on (path, registry
    generation).

    The {!Service} bumps its generation counter on every successful
    write, so a cached page is valid exactly while its generation
    matches — there is no invalidation traffic, stale entries simply
    stop being found and are swept on the next insertion past capacity.
    Hits and misses are counted in the service's {!Metrics}. *)

type t

val create : ?capacity:int -> Metrics.t -> t
(** [capacity] bounds the number of cached responses (default 256). *)

val find : t -> path:string -> generation:int -> Bx_repo.Webui.response option
(** A hit requires both the path and the generation to match. *)

val store :
  t -> path:string -> generation:int -> Bx_repo.Webui.response -> unit
(** Insert (or refresh) the rendering of [path] at [generation].  When
    the cache is full, entries from older generations are evicted first;
    if every entry is current, the whole table is dropped (rare: it
    means [capacity] distinct pages were rendered without a write). *)

val size : t -> int
