(** A segmented write-ahead journal: one {!Journal} segment per registry
    shard, sharing a single global sequence space.

    Layout under the journal directory [dir]:
    - 1 shard: the segment {e is} [dir] itself — bit-compatible with the
      plain {!Journal} layout (and with every pre-sharding on-disk state);
    - N > 1 shards: [dir/SHARDS] stamps the shard count, and segment [k]
      lives under [dir/shard-00k/] with its own [journal.log] and
      [snapshot/].  The replication epoch stays at the top level.

    {b Sequence discipline.}  All appends draw from one global counter
    and are serialised (allocation, segment write and fsync) under one
    mutex, so the durable records across all segments always form a
    dense prefix of the accepted writes: a crash can lose only a suffix,
    never punch a hole — which is what lets replication keep a single
    scalar cursor over the merged stream.  A segment's own sequence
    numbers are therefore sparse (dense globally, not locally).

    {b Compaction.}  Each segment checkpoints independently
    ({!checkpoint_shard}): its shard's entries are snapshotted, the
    manifest seals at the segment's last record, and only that segment's
    log truncates — cost proportional to the shard, not the catalogue.
    {!checkpoint_all} seals {e every} segment at the same global cut
    (for shutdown, and for shipping a consistent snapshot to a
    bootstrapping follower).  The stream floor below which a follower
    must re-bootstrap is the {e maximum} over segment manifests
    ({!floor}).

    {b Migration.}  Opening a legacy single-segment directory with
    [shards > 1] absorbs it: the old snapshot pages and records are
    returned for the caller to replay, and {!seal_migration} (called
    after the caller has checkpointed the rebuilt state into the
    segments) deletes the legacy files and writes the [SHARDS] stamp.
    Until the stamp exists the legacy files remain authoritative, so a
    crash anywhere mid-migration simply redoes it.  Opening a stamped
    directory with a different shard count is an error — re-sharding an
    existing catalogue is an explicit operation, not a boot flag
    surprise. *)

type t

type recovery = {
  pages : (string * string) list;
      (** snapshot pages from every sealed segment, import-ready *)
  complete : bool;
      (** every segment had a sealed snapshot: [pages] is the whole
          catalogue and the caller needs no seed *)
  replay : Journal.record list;
      (** intact records above each segment's manifest, merged and
          sorted by global sequence number *)
  torn : bool;  (** at least one segment had a truncated tail *)
  crc_errors : int;  (** summed over segments *)
  migrated : bool;
      (** a legacy layout was absorbed: the caller must replay, then
          {!checkpoint_all}, then {!seal_migration} *)
  corrupt : (int * string * string) list;
      (** (shard, file, named error): cold files that failed checksum
          verification against the snapshot's [DIGESTS] (or a damaged
          [MANIFEST] itself) — excluded from [pages], reported for the
          caller to quarantine and count.  A snapshot whose MANIFEST is
          corrupt reads as unsealed ([complete] drops to [false]): its
          cut point cannot be trusted, so boot falls back to the seed
          overlay rather than replaying against a guessed cut. *)
}

val segment_dir : dir:string -> shards:int -> int -> string
(** Where segment [k] lives (= [dir] when [shards = 1]). *)

val open_ : dir:string -> shards:int -> (t * recovery, string) result
(** Open (creating and, if needed, migrating) the segmented journal.
    Torn tails are truncated per segment; an unfinished snapshot install
    is rolled forward. *)

val shards : t -> int
val next_seq : t -> int
(** The next global sequence number an append will use. *)

val record_count : t -> int -> int
(** Records currently in segment [k]'s log. *)

val append : t -> shard:int -> path:string -> body:string -> (int, string) result
(** Allocate the next global sequence number and append durably to
    segment [shard].  The caller must hold the shard's write lock (two
    appends to one segment may not race); appends to different shards
    serialise only on the internal allocation mutex. *)

val append_at :
  t -> shard:int -> seq:int -> path:string -> body:string
  -> (int, string) result
(** Append a record whose global sequence number was allocated elsewhere
    (a replica applying a primary's stream).  Advances the global
    counter past [seq]. *)

val floor : t -> int
(** The stream floor: the maximum over segment manifests.  A cursor at
    or below it may point into truncated history and must re-bootstrap
    from a snapshot. *)

val shard_floor : t -> int -> int
(** Segment [k]'s own manifest sequence number (0 without a snapshot).
    A streamed record for shard [k] at or below it is already embodied
    in that segment's installed snapshot — the replica's apply path
    skips it instead of double-applying after a targeted resync. *)

val tail : t -> from:int -> (Journal.record list, string) result
(** The merged intact records with sequence number [>= from], ascending.
    The caller must hold all read locks (compaction swaps segments under
    write locks). *)

val checkpoint_shard :
  t -> shard:int -> save:(dir:string -> (int, string) result)
  -> (int, string) result
(** Snapshot one shard and truncate its segment, sealing the manifest at
    the segment's last record.  The caller holds that shard's write
    lock. *)

val checkpoint_all :
  t -> save:(int -> dir:string -> (int, string) result)
  -> (int, string) result
(** Seal {e every} segment at the current global cut ([next_seq - 1]):
    [save k ~dir] dumps shard [k].  After this, {!snapshot_files} ships
    a consistent catalogue.  The caller holds all write locks.  Returns
    total files written. *)

val seal_migration : t -> (unit, string) result
(** Finish absorbing a legacy layout: delete the legacy log and
    snapshot, then write the [SHARDS] stamp.  Call only after
    {!checkpoint_all} has captured the migrated state. *)

val snapshot_files : t -> (int * (string * string) list, string) result
(** The snapshot as a shippable payload: the common manifest sequence
    number and every file, named flat for one shard and
    ["shard-00k/name"] otherwise.  [Error] when segments are missing a
    snapshot or sealed at different cuts (run {!checkpoint_all}
    first). *)

val snapshot_pages : t -> ((string * string) list, string) result
(** Import-ready pages merged from every sealed segment snapshot (for
    rebuilding a registry after {!install_snapshot}). *)

val install_snapshot :
  t -> seq:int -> files:(string * string) list -> (unit, string) result
(** Install a shipped snapshot.  One shard: flat names, delegates to
    {!Journal.install_snapshot}.  Sharded: names must be
    ["shard-00k/name"]; each shard's payload is verified against the
    [DIGESTS] it ships (a mangled transfer is refused before a byte is
    staged), all segment snapshots are staged, an [INSTALL] marker makes
    the multi-directory swap roll forward across a crash, and every
    segment log resets to [seq + 1]. *)

val snapshot_files_shard :
  t -> shard:int -> (int * (string * string) list, string) result
(** One shard's snapshot as a shippable payload — targeted anti-entropy
    repair.  Names are always prefixed ["shard-00k/"], even for a
    single-segment layout, so the wire format is one shape.  The caller
    holds that shard's write lock and has checkpointed it. *)

val snapshot_pages_shard :
  t -> shard:int -> ((string * string) list, string) result
(** Import-ready pages from one shard's sealed snapshot ([[]] when it
    has none). *)

val install_shard :
  t -> shard:int -> seq:int -> files:(string * string) list
  -> (unit, string) result
(** Install one shard's shipped snapshot (names as produced by
    {!snapshot_files_shard}) without touching other shards: the payload
    is digest-verified, the segment's snapshot swaps atomically under a
    sealed MANIFEST at [seq], and only that segment's log resets to
    [seq + 1].  The global sequence counter only moves forward.  The
    caller holds the shard's write lock and re-imports the shard's pages
    afterwards. *)

val close : t -> unit
