(** End-to-end integrity primitives: the shared CRC32, the [DIGESTS]
    manifest that checksums snapshot directories, the order-insensitive
    per-shard digest algebra behind anti-entropy repair, the per-entry
    law checks the background scrubber runs, its pacing token bucket,
    and the quarantine set for corrupted-but-never-dropped data.

    This module sits below {!Journal}: the journal's record framing and
    snapshot sealing are built on it, so nothing here refers back to the
    journal, shardlog or service layers. *)

val crc32 : string -> int
(** IEEE CRC32 (the zlib polynomial) — the one checksum every storage
    surface shares. *)

val crc32_sub : string -> int -> int -> int
(** [crc32_sub s off len] checksums the substring — the journal's
    zero-copy record scan. *)

(** The [DIGESTS] manifest: CRC32s of a snapshot directory's cold files
    (pages, JSON sidecars, [INDEX.wiki], [DOCS.bxdocs]), written when the
    snapshot is sealed and verified at boot, before shipping, and after
    receiving.  A directory without one is a pre-digest layout, reported
    as not [present] and accepted. *)
module Digests : sig
  val name : string
  (** ["DIGESTS"]. *)

  val covered : string -> bool
  (** Whether a file name is subject to checksumming ([MANIFEST], the
      manifest itself and dotfiles are not). *)

  val render : (string * string) list -> string
  (** Manifest text for [(name, contents)] files; uncovered names are
      dropped, listing order is canonical (sorted). *)

  val parse : string -> ((string * int) list, string) result
  (** [(name, crc)] rows, or a named error for a damaged manifest. *)

  val verify_files :
    manifest:(string * int) list -> (string * string) list
    -> (string * string) list
  (** Check an in-memory payload against a parsed manifest: returns
      [(file, named error)] for every crc mismatch, unlisted file and
      listed-but-missing file — empty means verified. *)

  type report = {
    present : bool;  (** a DIGESTS manifest exists (post-upgrade layout) *)
    checked : int;  (** cold files whose crc was recomputed *)
    corrupt : (string * string) list;  (** (file, named error), sorted *)
  }

  val write_dir : dir:string -> unit
  (** Write (or refresh) the manifest over [dir]'s flat covered files,
      tmp + fsync + rename.  Raises [Sys_error] on I/O failure. *)

  val verify_dir : dir:string -> report
  (** Recompute every covered flat file's crc against the manifest.  A
      damaged manifest reports itself as the single corrupt file. *)
end

val entry_hash : Bx_repo.Registry.t -> Bx_repo.Identifier.t -> int
(** Content hash of one entry: CRC32 over the identifier and every
    version's wiki text.  0 exactly when the entry is absent (the fold
    identity), so [digest lxor before lxor after] covers create, revise
    and remove alike. *)

val doc_hash : lens:string -> docid:string -> gen:int -> source:string -> int
(** Content hash of one docstore document.  Never 0. *)

val shard_digest_of : Bx_repo.Registry.t -> int -> int
(** Full recomputation of a shard's digest: XOR of {!entry_hash} over
    its entries.  O(shard); the service maintains the same value
    incrementally in O(|entry|) per write. *)

val render_digests : epoch:int -> (int * int) list -> string
(** The [GET /replication/digest] body:
    ["bxdigest 1 <epoch> <shards>\n<shard> <hex8>\n..."]. *)

val parse_digests : string -> (int * (int * int) list, string) result
(** Parse the digest body into [(epoch, (shard, digest) rows)]. *)

val check_template :
  ?law:(Bx_repo.Template.t -> (unit, string) result)
  -> Bx_repo.Template.t -> (unit, string) result
(** Template validity plus the wiki round trip (the sync lens's GetPut
    at this entry); [law] injects a further deterministic check. *)

val check_entry :
  ?law:(Bx_repo.Template.t -> (unit, string) result)
  -> Bx_repo.Registry.t -> Bx_repo.Identifier.t -> (unit, string) result
(** {!check_template} over every stored version of the entry; the error
    names the first failing version. *)

(** Token bucket pacing for the scrubber: [rate] items/second with one
    second of burst.  Rate 0 means unmetered (offline scrub). *)
module Bucket : sig
  type t

  val create : rate:float -> t
  val take : t -> float -> unit
  (** Block (sleeping) until the bucket covers the given cost. *)
end

(** Corrupted data is flagged and kept, never dropped: entries serve
    under a [Warning] header, documents answer 410, files are excluded
    from loads.  Thread-safe. *)
module Quarantine : sig
  type key =
    | Entry of string  (** registry entry, by identifier string *)
    | Doc of string * string  (** docstore document, by (lens, docid) *)
    | File of string  (** cold file, by (shard-qualified) name *)

  type t

  val key_name : key -> string
  val create : unit -> t

  val flag : t -> key -> reason:string -> bool
  (** [true] when newly flagged — callers count corruption once per
      distinct finding. *)

  val clear : t -> key -> unit
  val find : t -> key -> string option
  val size : t -> int
  val items : t -> (key * string) list

  val counts : t -> int * int * int
  (** Flagged (entries, docs, files). *)
end
