(** The write-ahead journal: the durability half of the service.

    Layout under the journal directory [dir]:
    - [dir/journal.log] — the append-only edit log.  One record per
      accepted POST, written with a single [write] and [fsync]'d before
      the HTTP response is sent;
    - [dir/snapshot/] — a {!Bx_repo.Store} dump of the registry, plus a
      [MANIFEST] recording the sequence number of the last edit the
      snapshot includes;
    - [dir/snapshot.tmp], [dir/snapshot.old] — transient directories
      used to swap a new snapshot in atomically; leftovers from a crash
      are cleaned up (or recovered from) at open.

    Each record carries a monotonically increasing sequence number, so
    replay after a crash applies exactly the records the snapshot does
    not already contain — a crash {e between} writing a snapshot and
    truncating the log cannot double-apply an edit.

    {b Format v2} (current): the log opens with a magic+version segment
    header, then length-prefixed CRC32-framed records:
    {v bxjournal 2\n
u32be payload-len | u32be crc32(payload) | "<seq> <path-len>\n" path body v}
    The CRC covers the whole payload, so a bit flip anywhere in a record
    — not just a torn tail — is detected; the length prefix makes every
    record boundary explicit without trusting record contents.

    {b Format v1} (the seed format) is still read: a log without the
    magic is parsed as the line-oriented
    [bxj1 <seq> <plen> <blen> <md5>] records and {!open_} migrates it to
    v2 in place (tmp + rename), so pre-upgrade journals replay cleanly.

    Recovery policy: parsing stops at the first malformed record.  A
    truncated tail (the partial record a [kill -9] mid-append leaves) is
    reported as [torn]; a complete-looking record whose checksum fails is
    additionally counted in [crc_errors].  Everything from the stop
    onward is untrusted — {!open_} truncates it away, and the service
    surfaces both counts as [bxwiki_journal_torn_tail_total] and
    [bxwiki_journal_crc_errors_total].

    Failpoints (see {!Bx_fault.Fault}): [journal.append.pre_write],
    [journal.append.pre_fsync], [journal.append.post_fsync],
    [journal.checkpoint.pre_save], [journal.checkpoint.pre_manifest],
    [journal.checkpoint.pre_swap], [journal.checkpoint.pre_truncate].
    Injected errors surface as this module's [Error] results; [crash]
    actions die in place, which is exactly what the crash-recovery
    torture tests exploit. *)

type t

type record = { seq : int; path : string; body : string }

type replayed = {
  entries : record list;  (** intact records, oldest first *)
  valid_bytes : int;  (** file prefix the records occupy *)
  torn : bool;  (** parsing stopped before the end of the file *)
  crc_errors : int;
      (** complete-looking records rejected by checksum — corruption,
          as opposed to a benign crash tail *)
  version : int;  (** 1 = seed format, 2 = CRC-framed (also for empty) *)
}

val log_file : string -> string
val snapshot_dir : string -> string

val crc32 : string -> int
(** The IEEE CRC32 used by the v2 framing; exposed for tests that
    fabricate or corrupt journals. *)

val magic : string
(** The v2 segment header ("bxjournal 2\n"). *)

val encode : seq:int -> path:string -> body:string -> string
(** One v2 record, framed and checksummed — exposed for tests. *)

val encode_v1 : seq:int -> path:string -> body:string -> string
(** The seed's v1 record encoding — for tests that fabricate old
    journals to exercise the compatibility path. *)

val read : dir:string -> (replayed, string) result
(** Parse the log, tolerating a torn or corrupt tail.  A missing or
    empty log file reads as empty v2. *)

val tail : dir:string -> from:int -> (record list, string) result
(** The intact records with sequence number [>= from] — the replication
    stream's reader.  Safe to call while another thread appends: a
    record caught mid-write is simply not returned until the next
    call. *)

val decode_frames : string -> off:int -> (record list, string) result
(** Strictly decode concatenated v2 frames starting at [off] — for
    replication payloads, where a malformed or truncated frame means the
    transport mangled the batch and the whole read must be retried. *)

val snapshot_seq : dir:string -> int
(** The sequence number recorded in the snapshot's [MANIFEST]; 0 when
    there is no snapshot (replay then starts from the beginning) or the
    manifest fails its checksum — a snapshot whose cut point cannot be
    trusted is not used. *)

val read_manifest : dir:string -> [ `None | `Seq of int | `Corrupt ]
(** The MANIFEST's verdict, distinguishing "no snapshot" from "snapshot
    present but its manifest is damaged".  The sealed form is
    ["seq N crc XXXXXXXX\n"] (crc32 over ["seq N"]); the crc-less
    pre-digest form ["seq N\n"] is still accepted as [`Seq]. *)

val recover_snapshot : dir:string -> unit
(** Repair the snapshot directories after a crash: promote a complete
    [snapshot.old] when [snapshot] is missing, and delete transient
    directories.  Called by {!open_}; exposed for tests. *)

val open_ : dir:string -> next_seq:int -> (t, string) result
(** Open (creating [dir] and the log as needed) for appending.  The torn
    or corrupt tail, if any, is truncated away; a v1 log is migrated to
    v2.  [next_seq] is the sequence number the next {!append} will use —
    the caller derives it from {!snapshot_seq} and the replayed
    records. *)

val append : t -> path:string -> body:string -> (int, string) result
(** Append one record and [fsync]; returns the record's sequence
    number.  On [Error] nothing may be assumed durable. *)

val is_disk_full_error : string -> bool
(** True when an append/checkpoint error string carries ENOSPC's
    strerror text.  ENOSPC is persistent — no retry succeeds until an
    operator frees space — so the service maps it to a sticky read-only
    degradation rather than flapping [journal_ok]. *)

val append_seq :
  t -> seq:int -> path:string -> body:string -> (int, string) result
(** Like {!append} with an explicit, caller-allocated sequence number.
    Sharded layouts draw sequence numbers from one global counter and fan
    records across per-shard segments, so a segment's sequence numbers
    are dense globally but sparse locally — [seq] may jump ahead of the
    segment's own counter, never behind it ([Error] otherwise). *)

val record_count : t -> int
(** Records currently in the log file (replayed + appended since open). *)

val next_seq : t -> int
(** The sequence number the next {!append} will use. *)

val reset : t -> next_seq:int -> (unit, string) result
(** Truncate the log back to a bare segment header and jump the sequence
    counter — used when a snapshot bootstrap supersedes every local
    record. *)

val snapshot_files : dir:string -> (int * (string * string) list, string) result
(** The snapshot as a shippable payload: its manifest sequence number
    and every flat [(name, contents)] file except the MANIFEST — the
    [DIGESTS] manifest rides along, and every file is verified against
    it first ([Error] rather than shipping corrupted bytes).
    [Error "no snapshot"] when none has been written.  Callers serialise
    against {!checkpoint}, which swaps the directory. *)

val install_snapshot :
  t -> seq:int -> files:(string * string) list -> (unit, string) result
(** Install a shipped snapshot: verify the payload against the [DIGESTS]
    it carries (refusing a mangled transfer wholesale), write the files
    into a transient directory, seal with a checksummed MANIFEST at
    [seq], swap atomically, and {!reset} the log to [seq + 1].  Rejects
    path-like file names; a payload without a [DIGESTS] (pre-digest
    primary) is accepted and sealed with a locally computed one. *)

val read_epoch : dir:string -> int
(** The persisted replication epoch; 0 when none has been recorded. *)

val write_epoch : dir:string -> int -> (unit, string) result
(** Persist the replication epoch (tmp + fsync + rename).  Promotion
    bumps and persists before accepting writes, so epochs are monotonic
    across crashes. *)

val checkpoint :
  ?seq:int -> t -> save:(dir:string -> (int, string) result)
  -> (int, string) result
(** Compaction: write a fresh snapshot and reset the log to a bare
    segment header.  [save] dumps the registry into the directory it is
    given (the caller holds whatever lock makes that consistent); the
    manifest seals it with the current sequence number (or [seq] when
    given — sharded layouts seal every segment's snapshot at the same
    global cut), the directories are swapped, and the log is truncated.
    Returns the number of files the snapshot wrote.  A crash at any point
    leaves a state {!open_} recovers from. *)

val close : t -> unit
