(** The write-ahead journal: the durability half of the service.

    Layout under the journal directory [dir]:
    - [dir/journal.log] — the append-only edit log.  One record per
      accepted POST, written with a single [write] and [fsync]'d before
      the HTTP response is sent;
    - [dir/snapshot/] — a {!Bx_repo.Store} dump of the registry, plus a
      [MANIFEST] recording the sequence number of the last edit the
      snapshot includes;
    - [dir/snapshot.tmp], [dir/snapshot.old] — transient directories
      used to swap a new snapshot in atomically; leftovers from a crash
      are cleaned up (or recovered from) at open.

    Each record carries a monotonically increasing sequence number, so
    replay after a crash applies exactly the records the snapshot does
    not already contain — a crash {e between} writing a snapshot and
    truncating the log cannot double-apply an edit.

    Record format (all lengths in bytes, digest over path and body):
    {v bxj1 <seq> <path-len> <body-len> <md5-hex>\n<path>\n<body>\n v}

    A torn tail — the partial record a [kill -9] mid-append leaves
    behind — fails the length or digest check; {!read} stops there and
    {!open_} truncates the file back to the last intact record. *)

type t

type record = { seq : int; path : string; body : string }

type replayed = {
  entries : record list;  (** intact records, oldest first *)
  valid_bytes : int;  (** file prefix the records occupy *)
  torn : bool;  (** a corrupt/partial tail was skipped *)
}

val log_file : string -> string
val snapshot_dir : string -> string

val read : dir:string -> (replayed, string) result
(** Parse the log, tolerating a torn tail.  A missing log file reads as
    empty. *)

val snapshot_seq : dir:string -> int
(** The sequence number recorded in the snapshot's [MANIFEST]; 0 when
    there is no snapshot (replay then starts from the beginning). *)

val recover_snapshot : dir:string -> unit
(** Repair the snapshot directories after a crash: promote a complete
    [snapshot.old] when [snapshot] is missing, and delete transient
    directories.  Called by {!open_}; exposed for tests. *)

val open_ : dir:string -> next_seq:int -> (t, string) result
(** Open (creating [dir] and the log as needed) for appending.  The torn
    tail, if any, is truncated away.  [next_seq] is the sequence number
    the next {!append} will use — the caller derives it from
    {!snapshot_seq} and the replayed records. *)

val append : t -> path:string -> body:string -> (int, string) result
(** Append one record and [fsync]; returns the record's sequence
    number.  On [Error] nothing may be assumed durable. *)

val record_count : t -> int
(** Records currently in the log file (replayed + appended since open). *)

val checkpoint :
  t -> save:(dir:string -> (int, string) result) -> (int, string) result
(** Compaction: write a fresh snapshot and empty the log.  [save] dumps
    the registry into the directory it is given (the caller holds
    whatever lock makes that consistent); the manifest seals it with the
    current sequence number, the directories are swapped, and the log is
    truncated.  Returns the number of files the snapshot wrote.  A crash
    at any point leaves a state {!open_} recovers from. *)

val close : t -> unit
