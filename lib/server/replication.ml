(* Journal-shipping replication: wire format, loopback HTTP client and
   the follower loop.  See the .mli for the protocol; the design intent
   is that a replica is always a crash-consistent prefix of its primary
   — the same property the journal gives a single node — because the
   stream reuses the journal's own CRC-framed record encoding and the
   follower fsyncs each batch into its own journal before acking by
   advancing its poll cursor. *)

type stream_reply =
  | Records of { epoch : int; next_seq : int; records : Journal.record list }
  | Bootstrap of { epoch : int; floor : int }

(* ------------------------------------------------------------------ *)
(* Wire format.  Every response body opens with a single header line
   whose first token names the shape; record payloads are v2 journal
   frames so the follower CRC-checks them independently. *)

let frames records =
  let b = Buffer.create 1024 in
  List.iter
    (fun { Journal.seq; path; body } ->
      Buffer.add_string b (Journal.encode ~seq ~path ~body))
    records;
  Buffer.contents b

let stream_body ~epoch ~next_seq ~records =
  Printf.sprintf "bxrepl 1 %d %d %d\n" epoch next_seq (List.length records)
  ^ frames records

let reset_body ~epoch ~floor = Printf.sprintf "bxreset 1 %d %d\n" epoch floor

let snapshot_body ~epoch ~seq ~files =
  Printf.sprintf "bxsnap 1 %d %d %d\n" epoch seq (List.length files)
  ^ frames
      (List.mapi
         (fun i (path, body) -> { Journal.seq = i + 1; path; body })
         files)

let header_line data =
  match String.index_opt data '\n' with
  | None -> Error "missing header line"
  | Some nl -> Ok (String.sub data 0 nl, nl + 1)

let parse_stream_body data =
  match header_line data with
  | Error e -> Error e
  | Ok (header, off) -> (
      match String.split_on_char ' ' header with
      | [ "bxrepl"; "1"; epoch_s; next_s; count_s ] -> (
          match
            ( int_of_string_opt epoch_s,
              int_of_string_opt next_s,
              int_of_string_opt count_s )
          with
          | Some epoch, Some next_seq, Some count -> (
              match Journal.decode_frames data ~off with
              | Error e -> Error e
              | Ok records when List.length records <> count ->
                  Error "frame count mismatch"
              | Ok records -> Ok (Records { epoch; next_seq; records }))
          | _ -> Error "malformed bxrepl header")
      | [ "bxreset"; "1"; epoch_s; floor_s ] -> (
          match (int_of_string_opt epoch_s, int_of_string_opt floor_s) with
          | Some epoch, Some floor -> Ok (Bootstrap { epoch; floor })
          | _ -> Error "malformed bxreset header")
      | _ -> Error "unrecognised stream header")

let parse_snapshot_body data =
  match header_line data with
  | Error e -> Error e
  | Ok (header, off) -> (
      match String.split_on_char ' ' header with
      | [ "bxsnap"; "1"; epoch_s; seq_s; count_s ] -> (
          match
            ( int_of_string_opt epoch_s,
              int_of_string_opt seq_s,
              int_of_string_opt count_s )
          with
          | Some epoch, Some seq, Some count -> (
              match Journal.decode_frames data ~off with
              | Error e -> Error e
              | Ok records when List.length records <> count ->
                  Error "frame count mismatch"
              | Ok records ->
                  Ok
                    ( epoch,
                      seq,
                      List.map (fun r -> (r.Journal.path, r.Journal.body)) records
                    ))
          | _ -> Error "malformed bxsnap header")
      | _ -> Error "unrecognised snapshot header")

(* ------------------------------------------------------------------ *)
(* A lean loopback HTTP client.  One request per connection: the poll
   cadence is seconds, so keep-alive buys nothing and [Connection:
   close] keeps the state machine trivial. *)

let request ~host ~port ?(timeout = 15.0) ~meth ~path ~body () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close sock with Unix.Unix_error _ -> ())
    (fun () ->
      try
        Unix.setsockopt_float sock Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float sock Unix.SO_SNDTIMEO timeout;
        let addr =
          if host = "" || host = "localhost" then Unix.inet_addr_loopback
          else
            try Unix.inet_addr_of_string host
            with Failure _ -> Unix.inet_addr_loopback
        in
        Unix.connect sock (Unix.ADDR_INET (addr, port));
        let req =
          Printf.sprintf
            "%s %s HTTP/1.1\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
            meth path (String.length body) body
        in
        let rec send off =
          if off < String.length req then
            send (off + Unix.write_substring sock req off (String.length req - off))
        in
        send 0;
        let ic = Unix.in_channel_of_descr sock in
        let status_line = input_line ic in
        let status =
          match String.split_on_char ' ' status_line with
          | _ :: code :: _ -> int_of_string_opt code
          | _ -> None
        in
        match status with
        | None -> Error "malformed status line"
        | Some status ->
            let content_length = ref None in
            (try
               let rec headers () =
                 let line = String.trim (input_line ic) in
                 if line <> "" then begin
                   (match String.index_opt line ':' with
                   | Some i ->
                       let name = String.lowercase_ascii (String.sub line 0 i) in
                       let value =
                         String.trim
                           (String.sub line (i + 1) (String.length line - i - 1))
                       in
                       if name = "content-length" then
                         content_length := int_of_string_opt value
                   | None -> ());
                   headers ()
                 end
               in
               headers ()
             with End_of_file -> ());
            let resp_body =
              match !content_length with
              | Some n -> really_input_string ic n
              | None ->
                  let b = Buffer.create 1024 in
                  (try
                     while true do
                       Buffer.add_channel b ic 1
                     done
                   with End_of_file -> ());
                  Buffer.contents b
            in
            Ok (status, resp_body)
      with
      | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | End_of_file -> Error "connection closed mid-response"
      | Sys_error e -> Error e)

(* ------------------------------------------------------------------ *)
(* The follower *)

type apply_error = [ `Gap of int * int | `Fail of string ]

type sink = {
  next_seq : unit -> int;
  epoch : unit -> int;
  observe_epoch : int -> unit;
  apply : Journal.record list -> (unit, apply_error) result;
  install_snapshot :
    seq:int -> files:(string * string) list -> (unit, string) result;
  digests : unit -> (int * int) list;
  install_shard :
    shard:int -> seq:int -> files:(string * string) list
    -> (unit, string) result;
  note_progress : behind:int -> unit;
  note_reconnect : unit -> unit;
  note_epoch_reject : unit -> unit;
  note_snapshot_bootstrap : unit -> unit;
  note_gap : expected:int -> got:int -> unit;
  note_digest : matched:bool -> unit;
  should_stop : unit -> bool;
}

let ( let* ) = Result.bind

let bootstrap ~host ~port sink =
  let* status, body =
    request ~host ~port ~meth:"GET" ~path:"/replication/snapshot" ~body:"" ()
  in
  if status <> 200 then Error (Printf.sprintf "snapshot fetch: HTTP %d" status)
  else
    let* epoch, seq, files = parse_snapshot_body body in
    if epoch < sink.epoch () then begin
      sink.note_epoch_reject ();
      Error "snapshot from a stale epoch"
    end
    else begin
      if epoch > sink.epoch () then sink.observe_epoch epoch;
      let* () = sink.install_snapshot ~seq ~files in
      sink.note_snapshot_bootstrap ();
      Ok ()
    end

(* Anti-entropy: once caught up, compare per-shard content digests with
   the upstream and re-bootstrap only the diverged shards.  O(shards) on
   the happy path — one tiny GET against incrementally maintained
   values — so it can run on every caught-up poll.  An upstream without
   the endpoint (pre-digest primary) or a transport hiccup skips the
   check; the next poll retries. *)
let verify_digests ~host ~port sink =
  match
    request ~host ~port ~meth:"GET" ~path:"/replication/digest" ~body:"" ()
  with
  | Error _ | Ok (404, _) -> Ok ()
  | Ok (status, _) when status <> 200 -> Ok ()
  | Ok (_, body) -> (
      match Integrity.parse_digests body with
      | Error e -> Error ("digest: " ^ e)
      | Ok (_epoch, upstream) ->
          let local = sink.digests () in
          if List.length upstream <> List.length local then begin
            (* Shard-count disagreement: targeted repair has no unit to
               target; fall back to a full bootstrap. *)
            sink.note_digest ~matched:false;
            bootstrap ~host ~port sink
          end
          else
            let diverged =
              List.filter_map
                (fun (k, d) ->
                  match List.assoc_opt k local with
                  | Some d' when d' = d -> None
                  | _ -> Some k)
                upstream
            in
            sink.note_digest ~matched:(diverged = []);
            List.fold_left
              (fun acc k ->
                let* () = acc in
                let* status, body =
                  request ~host ~port ~meth:"GET"
                    ~path:(Printf.sprintf "/replication/snapshot?shard=%d" k)
                    ~body:"" ()
                in
                if status <> 200 then
                  Error (Printf.sprintf "shard %d snapshot: HTTP %d" k status)
                else
                  let* epoch, seq, files = parse_snapshot_body body in
                  if epoch < sink.epoch () then begin
                    sink.note_epoch_reject ();
                    Error "shard snapshot from a stale epoch"
                  end
                  else begin
                    if epoch > sink.epoch () then sink.observe_epoch epoch;
                    sink.install_shard ~shard:k ~seq ~files
                  end)
              (Ok ()) diverged)

let poll_once ~host ~port ?(wait = 5.0) sink =
  let from = sink.next_seq () in
  let my_epoch = sink.epoch () in
  let path =
    Printf.sprintf "/replication/stream?from=%d&epoch=%d&wait=%g" from my_epoch
      wait
  in
  let* status, body =
    request ~host ~port ~timeout:(wait +. 10.0) ~meth:"GET" ~path ~body:"" ()
  in
  match status with
  | 200 -> (
      let* () =
        (* The seam between receiving a response and trusting its
           frames: the torture tests crash a follower here with a batch
           in flight. *)
        try
          Bx_fault.Fault.point "repl.frame.read";
          Ok ()
        with Bx_fault.Fault.Injected m -> Error m
      in
      let* reply = parse_stream_body body in
      match reply with
      | Records { epoch; next_seq; records } ->
          if epoch < my_epoch then begin
            sink.note_epoch_reject ();
            Error
              (Printf.sprintf "stream epoch %d below ours %d" epoch my_epoch)
          end
          else begin
            if epoch > my_epoch then sink.observe_epoch epoch;
            let* () =
              match records with
              | [] -> Ok ()
              | rs -> (
                  match sink.apply rs with
                  | Ok () -> Ok ()
                  | Error (`Fail m) -> Error m
                  | Error (`Gap (expected, got)) ->
                      (* The stream and our cursor disagree — count it,
                         then recover by snapshot bootstrap instead of
                         erroring forever against the same gap. *)
                      sink.note_gap ~expected ~got;
                      bootstrap ~host ~port sink)
            in
            let behind = max 0 (next_seq - sink.next_seq ()) in
            let* () =
              if behind = 0 then verify_digests ~host ~port sink else Ok ()
            in
            sink.note_progress ~behind;
            Ok behind
          end
      | Bootstrap { epoch; floor = _ } ->
          if epoch < my_epoch then begin
            sink.note_epoch_reject ();
            Error
              (Printf.sprintf "stream epoch %d below ours %d" epoch my_epoch)
          end
          else begin
            if epoch > my_epoch then sink.observe_epoch epoch;
            let* () = bootstrap ~host ~port sink in
            (* Lag unknown until the next poll; report the bootstrap as
               progress so readiness can see life. *)
            sink.note_progress ~behind:0;
            Ok 0
          end)
  | 409 ->
      (* We polled with a higher epoch than the serving node holds: the
         upstream is a deposed primary.  Nothing to apply from it. *)
      sink.note_epoch_reject ();
      Error "upstream deposed (stale epoch)"
  | st -> Error (Printf.sprintf "stream: HTTP %d" st)

(* Sleep in slices so promotion or shutdown interrupts a backoff
   promptly. *)
let interruptible_sleep sink seconds =
  let slice = 0.05 in
  let rec go left =
    if left > 0. && not (sink.should_stop ()) then begin
      Thread.delay (Float.min slice left);
      go (left -. slice)
    end
  in
  go seconds

let follow ~host ~port ?(wait = 5.0) ?(min_sleep = 0.05) ?(max_sleep = 2.0)
    sink =
  let rng = Random.State.make_self_init () in
  let next_sleep prev =
    let upper = Float.max min_sleep ((prev *. 3.) -. min_sleep) in
    Float.min max_sleep (min_sleep +. Random.State.float rng upper)
  in
  let rec loop prev_sleep =
    if not (sink.should_stop ()) then
      match poll_once ~host ~port ~wait sink with
      | Ok _ -> loop min_sleep
      | Error _ ->
          sink.note_reconnect ();
          let s = next_sleep prev_sleep in
          interruptible_sleep sink s;
          loop s
  in
  loop min_sleep
