module Slens = Bx_strlens.Slens
module Sdiff = Bx_strlens.Sdiff
module Delta = Bx_strlens.Slens_delta

let rs = '\x1e'

type entry = {
  mutable source : string;
  mutable view : string;
  mutable gen : int;
  cache : Delta.cache;
      (* private to this document; mutated under the store mutex *)
}

type t = {
  lenses : (string * Slens.t) list;
  docs : (string * string, entry) Hashtbl.t; (* (lens, docid) *)
  m : Mutex.t;
}

let create ~lenses = { lenses; docs = Hashtbl.create 64; m = Mutex.create () }

let locked t f =
  Mutex.lock t.m;
  Fun.protect f ~finally:(fun () -> Mutex.unlock t.m)

let doc_count t = locked t (fun () -> Hashtbl.length t.docs)

type error =
  | Not_found of string
  | Stale of { current : int; got : int }
  | Bad_request of string
  | Unprocessable of string

let describe = function
  | Not_found m -> m
  | Stale { current; got } ->
      Printf.sprintf "stale generation: document is at %d, patch names %d"
        current got
  | Bad_request m -> m
  | Unprocessable m -> m

(* A docid travels inside patch frames (RS-separated) and path segments,
   so it must be a single printable token. *)
let docid_ok id =
  id <> ""
  && String.for_all (fun c -> c > '\x1f' && c <> '\x7f' && c <> '/') id

let find_lens t name =
  match List.assoc_opt name t.lenses with
  | Some l -> Ok l
  | None -> Error (Not_found (Printf.sprintf "unknown lens %S" name))

let put_doc t ~lens ~docid ~source =
  locked t (fun () ->
      match find_lens t lens with
      | Error _ as e -> e
      | Ok l ->
          if not (docid_ok docid) then
            Error (Bad_request (Printf.sprintf "bad document id %S" docid))
          else begin
            match l.Slens.get source with
            | exception (Slens.Type_error m | Bx_strlens.Split.Split_error m)
              ->
                Error (Unprocessable m)
            | view -> (
                let key = (lens, docid) in
                match Hashtbl.find_opt t.docs key with
                | Some e ->
                    e.source <- source;
                    e.view <- view;
                    e.gen <- e.gen + 1;
                    Delta.invalidate e.cache;
                    Ok e.gen
                | None ->
                    Hashtbl.replace t.docs key
                      { source; view; gen = 1; cache = Delta.make_cache () };
                    Ok 1)
          end)

let get_doc t ~lens ~docid ~view =
  locked t (fun () ->
      match find_lens t lens with
      | Error _ as e -> e
      | Ok _ -> (
          match Hashtbl.find_opt t.docs (lens, docid) with
          | None ->
              Error (Not_found (Printf.sprintf "unknown document %S" docid))
          | Some e -> Ok (e.gen, if view then e.view else e.source)))

let split_once sep str =
  match String.index_opt str sep with
  | None -> None
  | Some i ->
      Some
        (String.sub str 0 i, String.sub str (i + 1) (String.length str - i - 1))

let patch t ~lens ~reverse body =
  locked t (fun () ->
      match find_lens t lens with
      | Error _ as e -> e
      | Ok l -> (
          let frame =
            match split_once rs body with
            | None -> None
            | Some (docid, rest) -> (
                match split_once rs rest with
                | None -> None
                | Some (gen_s, edit_frame) -> (
                    match int_of_string_opt gen_s with
                    | None -> None
                    | Some gen -> Some (docid, gen, edit_frame)))
          in
          match frame with
          | None ->
              Error
                (Bad_request
                   "patch body must be <docid> RS (0x1e) <gen> RS <edit>")
          | Some (docid, gen, edit_frame) -> (
              match Hashtbl.find_opt t.docs (lens, docid) with
              | None ->
                  Error
                    (Not_found (Printf.sprintf "unknown document %S" docid))
              | Some e ->
                  if gen <> e.gen then
                    Error (Stale { current = e.gen; got = gen })
                  else begin
                    match Sdiff.decode edit_frame with
                    | Error m -> Error (Unprocessable ("bad edit: " ^ m))
                    | Ok edit -> (
                        try
                          if reverse then begin
                            (* Source edit, propagated forwards. *)
                            let new_view, view_edit =
                              Delta.get_delta l ~cache:e.cache
                                ~source:e.source ~view:e.view edit
                            in
                            e.source <- Sdiff.apply e.source edit;
                            e.view <- new_view;
                            e.gen <- e.gen + 1;
                            Ok (e.gen, view_edit)
                          end
                          else begin
                            (* View edit, propagated backwards. *)
                            let new_source, source_edit =
                              Delta.put_delta l ~cache:e.cache
                                ~source:e.source ~view:e.view edit
                            in
                            e.view <- Sdiff.apply e.view edit;
                            e.source <- new_source;
                            e.gen <- e.gen + 1;
                            Ok (e.gen, source_edit)
                          end
                        with
                        | Sdiff.Bad_edit m ->
                            Error (Unprocessable ("bad edit: " ^ m))
                        | Slens.Type_error m
                        | Bx_strlens.Split.Split_error m ->
                            (* The full-put fallback may have died halfway
                               through a buffer; the cached decomposition
                               is not to be trusted. *)
                            Delta.invalidate e.cache;
                            Error (Unprocessable m))
                  end)))

let is_doc_path path =
  match String.split_on_char '/' path with
  | [ ""; "slens"; _; ("patch" | "patch_source") ] -> true
  | [ ""; "slens"; _; "doc"; _ ] -> true
  | _ -> false

let apply t ~path ~body =
  match String.split_on_char '/' path with
  | [ ""; "slens"; name; "doc"; docid ] -> (
      match put_doc t ~lens:name ~docid ~source:body with
      | Ok _ -> Ok ()
      | Error e -> Error (describe e))
  | [ ""; "slens"; name; ("patch" | "patch_source" as op) ] -> (
      match patch t ~lens:name ~reverse:(op = "patch_source") body with
      | Ok _ -> Ok ()
      | Error e -> Error (describe e))
  | _ -> Error "not a document-store path"

(* ------------------------------------------------------------------ *)
(* Snapshot dump: a deterministic, length-prefixed flat file.  Only
   (lens, docid, gen, source) is stored — the view is the lens's to
   recompute, which doubles as validation at load. *)

let docs_file = "DOCS.bxdocs"
let magic = "bxdocs1\n"

let dump t =
  locked t (fun () ->
      let entries =
        Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.docs []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf magic;
      Buffer.add_string buf (string_of_int (List.length entries));
      Buffer.add_char buf '\n';
      List.iter
        (fun ((lens, docid), e) ->
          Buffer.add_string buf
            (Printf.sprintf "%d %d %d %d\n" e.gen (String.length lens)
               (String.length docid)
               (String.length e.source));
          Buffer.add_string buf lens;
          Buffer.add_string buf docid;
          Buffer.add_string buf e.source;
          Buffer.add_char buf '\n')
        entries;
      Buffer.contents buf)

let parse s =
  let n = String.length s in
  let fail m = Error ("docstore dump: " ^ m) in
  let mlen = String.length magic in
  if n < mlen || String.sub s 0 mlen <> magic then fail "bad magic"
  else
    let line_end pos =
      match String.index_from_opt s pos '\n' with
      | Some i -> Ok i
      | None -> fail "truncated"
    in
    match line_end mlen with
    | Error _ as e -> e
    | Ok ce -> (
        match int_of_string_opt (String.sub s mlen (ce - mlen)) with
        | None -> fail "bad count"
        | Some count ->
            let rec go k pos acc =
              if k = count then
                if pos = n then Ok (List.rev acc) else fail "trailing bytes"
              else
                match line_end pos with
                | Error _ as e -> e
                | Ok he -> (
                    let header = String.sub s pos (he - pos) in
                    match
                      String.split_on_char ' ' header
                      |> List.map int_of_string_opt
                    with
                    | [ Some gen; Some ll; Some dl; Some sl ]
                      when gen > 0 && ll >= 0 && dl >= 0 && sl >= 0 ->
                        let start = he + 1 in
                        if start + ll + dl + sl + 1 > n then fail "truncated"
                        else
                          let lens = String.sub s start ll in
                          let docid = String.sub s (start + ll) dl in
                          let source = String.sub s (start + ll + dl) sl in
                          if s.[start + ll + dl + sl] <> '\n' then
                            fail "bad record terminator"
                          else
                            go (k + 1)
                              (start + ll + dl + sl + 1)
                              ((lens, docid, gen, source) :: acc)
                    | _ -> fail "bad record header")
            in
            go 0 (ce + 1) [])

let load t s =
  match parse s with
  | Error _ as e -> e
  | Ok records ->
      locked t (fun () ->
          Hashtbl.reset t.docs;
          let rec go = function
            | [] -> Ok ()
            | (lens, docid, gen, source) :: rest -> (
                match List.assoc_opt lens t.lenses with
                | None ->
                    Printf.eprintf
                      "bxwiki: docstore: skipping %S/%S (unknown lens)\n%!"
                      lens docid;
                    go rest
                | Some l -> (
                    match l.Slens.get source with
                    | exception
                        ( Slens.Type_error m
                        | Bx_strlens.Split.Split_error m ) ->
                        Error
                          (Printf.sprintf "docstore dump: %s/%s: %s" lens
                             docid m)
                    | view ->
                        Hashtbl.replace t.docs (lens, docid)
                          { source; view; gen; cache = Delta.make_cache () };
                        go rest))
          in
          go records)

let save_dir t ~dir =
  if doc_count t = 0 then Ok ()
  else
    (* Atomic: tmp + fsync + rename, so a crash mid-write cannot leave a
       half dump where the checksum manifest expects a whole one. *)
    let file = Filename.concat dir docs_file in
    let tmp = file ^ ".tmp" in
    try
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (dump t);
          flush oc;
          Unix.fsync (Unix.descr_of_out_channel oc));
      Sys.rename tmp file;
      Ok ()
    with Sys_error e | Unix.Unix_error (_, _, e) ->
      (try Sys.remove tmp with Sys_error _ -> ());
      Error e

let doc_keys t =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.docs [] |> List.sort compare)

let check_doc t ~lens ~docid =
  locked t (fun () ->
      match List.assoc_opt lens t.lenses with
      | None -> Error (Printf.sprintf "unknown lens %S" lens)
      | Some l -> (
          match Hashtbl.find_opt t.docs (lens, docid) with
          | None -> Error (Printf.sprintf "unknown document %S" docid)
          | Some e -> (
              match l.Slens.get e.source with
              | exception (Slens.Type_error m | Bx_strlens.Split.Split_error m)
                ->
                  Error (Printf.sprintf "get raised: %s" m)
              | view ->
                  if String.equal view e.view then Ok ()
                  else
                    Error
                      (Printf.sprintf
                         "view drift: stored view (%d bytes) <> get source \
                          (%d bytes)"
                         (String.length e.view) (String.length view)))))

let doc_digest_parts t =
  locked t (fun () ->
      Hashtbl.fold
        (fun (lens, docid) e acc -> (lens, docid, e.gen, e.source) :: acc)
        t.docs []
      |> List.sort compare)

let load_dir t ~dir =
  let file = Filename.concat dir docs_file in
  if not (Sys.file_exists file) then begin
    locked t (fun () -> Hashtbl.reset t.docs);
    Ok ()
  end
  else
    try
      let ic = open_in_bin file in
      let s =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      load t s
    with
    | Sys_error e -> Error ("docstore dump: " ^ e)
    | End_of_file -> Error "docstore dump: truncated file"
