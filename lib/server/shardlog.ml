type t = {
  dir : string;
  shards : int;
  seg_dirs : string array;
  segments : Journal.t array;
  mu : Mutex.t;
      (* serialises sequence allocation with the segment write + fsync,
         so the durable records across segments are always a dense
         prefix of the accepted writes *)
  mutable next : int; (* next global sequence number, guarded by [mu] *)
}

type recovery = {
  pages : (string * string) list;
  complete : bool;
  replay : Journal.record list;
  torn : bool;
  crc_errors : int;
  migrated : bool;
  corrupt : (int * string * string) list;
      (* (shard, file, named error): cold files that failed checksum
         verification at boot and were excluded from the load — the
         service quarantines them, never serves their bytes *)
}

let shards t = t.shards

let segment_dir ~dir ~shards k =
  if shards = 1 then dir
  else Filename.concat dir (Printf.sprintf "shard-%03d" k)

let stamp_file dir = Filename.concat dir "SHARDS"
let marker_file dir = Filename.concat dir "INSTALL"
let staging_dir dir = Filename.concat dir "install.tmp"

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* tmp + fsync + rename, like Store.write_file: stamps and manifests mark
   multi-step operations complete, so they must never exist torn. *)
let write_small path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc contents;
      flush oc;
      Unix.fsync (Unix.descr_of_out_channel oc));
  Sys.rename tmp path

let read_stamp dir =
  let file = stamp_file dir in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in file in
    let line =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> try input_line ic with End_of_file -> "")
    in
    match String.split_on_char ' ' (String.trim line) with
    | [ "shards"; n ] -> int_of_string_opt n
    | _ -> None

let write_stamp dir shards =
  write_small (stamp_file dir) (Printf.sprintf "shards %d\n" shards)

let manifest_exists seg_dir =
  Sys.file_exists (Filename.concat (Journal.snapshot_dir seg_dir) "MANIFEST")

let write_manifest dir seq =
  (* The same sealed form Journal.write_manifest produces: the cut point
     carries its own crc, so a flipped MANIFEST reads as corrupt, never
     as a different sequence number. *)
  let body = Printf.sprintf "seq %d" seq in
  write_small
    (Filename.concat dir "MANIFEST")
    (Printf.sprintf "%s crc %08x\n" body (Integrity.crc32 body))

(* Checksum-verify one sealed snapshot directory.  Returns the corrupt
   [(file, named error)] rows — a damaged MANIFEST is itself one — plus
   whether the snapshot is usable at all (a trusted cut point exists). *)
let verify_snapshot seg_dir =
  match Journal.read_manifest ~dir:seg_dir with
  | `None -> (false, 0, [])
  | `Corrupt ->
      (false, 0, [ ("MANIFEST", "manifest checksum mismatch: cut point untrusted") ])
  | `Seq floor ->
      let report =
        Integrity.Digests.verify_dir ~dir:(Journal.snapshot_dir seg_dir)
      in
      (true, floor, report.Integrity.Digests.corrupt)

(* A legacy (pre-sharding) directory is one that has served as a plain
   single-segment journal: its log or snapshot exists at the top level. *)
let legacy_present dir =
  Sys.file_exists (Journal.log_file dir)
  || Sys.file_exists (Journal.snapshot_dir dir)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    failwith (dir ^ " exists and is not a directory")

(* Roll an interrupted snapshot install forward: every staged segment
   snapshot still present in [install.tmp] is swapped in; ones already
   swapped are left alone.  Only then is the marker removed — the
   operation is idempotent from any crash point after the marker was
   written. *)
let finish_install ~dir ~shards =
  if Sys.file_exists (marker_file dir) then begin
    for k = 0 to shards - 1 do
      let staged = Filename.concat (staging_dir dir) (Printf.sprintf "shard-%03d" k) in
      if Sys.file_exists staged then begin
        let seg = segment_dir ~dir ~shards k in
        ensure_dir seg;
        let snap = Journal.snapshot_dir seg in
        let old_ = snap ^ ".old" in
        remove_tree old_;
        if Sys.file_exists snap then Sys.rename snap old_;
        Sys.rename staged snap;
        remove_tree old_
      end
    done;
    Sys.remove (marker_file dir);
    remove_tree (staging_dir dir)
  end
  else remove_tree (staging_dir dir) (* stale staging from a pre-marker crash *)

type segment = {
  seg_j : Journal.t;
  seg_pages : (string * string) list;
  seg_sealed : bool;
  seg_replay : Journal.record list;
  seg_torn : bool;
  seg_crc_errors : int;
  seg_max : int;
  seg_corrupt : (string * string) list;
}

(* Recover one segment: repair its snapshot, checksum-verify the sealed
   cold files (corrupt ones are excluded from the load and reported, not
   served), read (and remember) the log's intact records, and open it
   for appending just past its own last sequence number. *)
let open_segment seg_dir =
  Journal.recover_snapshot ~dir:seg_dir;
  let sealed, floor, corrupt = verify_snapshot seg_dir in
  match Journal.read ~dir:seg_dir with
  | Error e -> Error (Printf.sprintf "%s: journal read: %s" seg_dir e)
  | Ok { Journal.entries; torn; crc_errors; _ } -> (
      let seg_max =
        List.fold_left
          (fun acc (r : Journal.record) -> max acc r.seq)
          floor entries
      in
      match Journal.open_ ~dir:seg_dir ~next_seq:(seg_max + 1) with
      | Error e -> Error (Printf.sprintf "%s: journal open: %s" seg_dir e)
      | Ok j ->
          let pages =
            if sealed then
              match
                Bx_repo.Store.load_pages
                  ~skip:(fun name -> List.mem_assoc name corrupt)
                  ~dir:(Journal.snapshot_dir seg_dir) ()
              with
              | Ok pages -> pages
              | Error _ -> []
            else []
          in
          let replay =
            List.filter (fun (r : Journal.record) -> r.seq > floor) entries
          in
          Ok
            {
              seg_j = j;
              seg_pages = pages;
              seg_sealed = sealed;
              (* a corrupt MANIFEST reads as unsealed: the cut point is
                 untrusted, so boot falls back to seed + overlay + replay
                 — a clean (if stale) prefix, never the corrupted one *)
              seg_replay = replay;
              seg_torn = torn;
              seg_crc_errors = crc_errors;
              seg_max;
              seg_corrupt = corrupt;
            })

let merge_sorted replays =
  List.sort
    (fun (a : Journal.record) (b : Journal.record) -> compare a.seq b.seq)
    (List.concat replays)

let open_segments ~dir ~shards ~migrated ~legacy =
  let rec go k acc =
    if k = shards then Ok (List.rev acc)
    else
      match open_segment (segment_dir ~dir ~shards k) with
      | Error e -> Error e
      | Ok seg -> go (k + 1) (seg :: acc)
  in
  match go 0 [] with
  | Error e -> Error e
  | Ok segs ->
      let js = Array.of_list (List.map (fun s -> s.seg_j) segs) in
      let pages = List.concat_map (fun s -> s.seg_pages) segs in
      let complete = List.for_all (fun s -> s.seg_sealed) segs in
      let replay = merge_sorted (List.map (fun s -> s.seg_replay) segs) in
      let torn = List.exists (fun s -> s.seg_torn) segs in
      let crc_errors =
        List.fold_left (fun acc s -> acc + s.seg_crc_errors) 0 segs
      in
      let max_seq = List.fold_left (fun acc s -> max acc s.seg_max) 0 segs in
      let corrupt =
        List.concat
          (List.mapi
             (fun k s ->
               List.map (fun (file, why) -> (k, file, why)) s.seg_corrupt)
             segs)
      in
      let legacy_pages, legacy_replay, legacy_complete, next =
        match legacy with
        | None -> ([], [], true, max_seq + 1)
        | Some (p, r, c, n) -> (p, r, c, max n (max_seq + 1))
      in
      let t =
        {
          dir;
          shards;
          seg_dirs = Array.init shards (fun k -> segment_dir ~dir ~shards k);
          segments = js;
          mu = Mutex.create ();
          next;
        }
      in
      Ok
        ( t,
          {
            pages = legacy_pages @ pages;
            complete = complete && legacy_complete;
            replay = merge_sorted [ legacy_replay; replay ];
            torn;
            crc_errors;
            migrated;
            corrupt;
          } )

let open_ ~dir ~shards =
  if shards < 1 then Error "shards must be >= 1"
  else
    try
      ensure_dir dir;
      match read_stamp dir with
      | Some n when n <> shards ->
          Error
            (Printf.sprintf
               "journal directory %s is laid out for %d shards, not %d; pass \
                --shards %d (re-sharding requires an explicit export/import)"
               dir n shards n)
      | Some _ ->
          finish_install ~dir ~shards;
          open_segments ~dir ~shards ~migrated:false ~legacy:None
      | None when shards = 1 ->
          open_segments ~dir ~shards ~migrated:false ~legacy:None
      | None when not (legacy_present dir) ->
          (* Fresh directory: stamp it and lay out empty segments.  A
             crash right after the stamp is just a stamped empty
             layout. *)
          write_stamp dir shards;
          open_segments ~dir ~shards ~migrated:false ~legacy:None
      | None -> (
          (* Absorb a legacy single-segment layout.  The legacy files
             stay authoritative (and untouched) until [seal_migration]
             writes the stamp, so a crash anywhere in between redoes
             this from scratch — including wiping any half-built
             segments. *)
          Journal.recover_snapshot ~dir;
          let sealed, floor, lcorrupt = verify_snapshot dir in
          match Journal.read ~dir with
          | Error e -> Error ("journal read: " ^ e)
          | Ok { Journal.entries; torn; crc_errors; _ } ->
              let pages =
                if sealed then
                  match
                    Bx_repo.Store.load_pages
                      ~skip:(fun name -> List.mem_assoc name lcorrupt)
                      ~dir:(Journal.snapshot_dir dir) ()
                  with
                  | Ok pages -> pages
                  | Error _ -> []
                else []
              in
              let replay =
                List.filter (fun (r : Journal.record) -> r.seq > floor) entries
              in
              let max_seq =
                List.fold_left
                  (fun acc (r : Journal.record) -> max acc r.seq)
                  floor entries
              in
              for k = 0 to shards - 1 do
                remove_tree (segment_dir ~dir ~shards k)
              done;
              let lt = (torn, crc_errors) in
              (match
                 open_segments ~dir ~shards ~migrated:true
                   ~legacy:(Some (pages, replay, sealed, max_seq + 1))
               with
              | Error e -> Error e
              | Ok (t, recovery) ->
                  let torn0, crc0 = lt in
                  Ok
                    ( t,
                      {
                        recovery with
                        torn = recovery.torn || torn0;
                        crc_errors = recovery.crc_errors + crc0;
                        corrupt =
                          List.map (fun (f, w) -> (0, f, w)) lcorrupt
                          @ recovery.corrupt;
                      } )))
    with
    | Sys_error e | Failure e -> Error e
    | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

let next_seq t =
  Mutex.lock t.mu;
  let n = t.next in
  Mutex.unlock t.mu;
  n

let record_count t k = Journal.record_count t.segments.(k)

let with_mu t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let append t ~shard ~path ~body =
  with_mu t (fun () ->
      let seq = t.next in
      match Journal.append_seq t.segments.(shard) ~seq ~path ~body with
      | Ok s ->
          t.next <- seq + 1;
          Ok s
      | Error _ as e -> e)

let append_at t ~shard ~seq ~path ~body =
  with_mu t (fun () ->
      match Journal.append_seq t.segments.(shard) ~seq ~path ~body with
      | Ok s ->
          if seq + 1 > t.next then t.next <- seq + 1;
          Ok s
      | Error _ as e -> e)

let floor t =
  Array.fold_left
    (fun acc seg_dir -> max acc (Journal.snapshot_seq ~dir:seg_dir))
    0 t.seg_dirs

let shard_floor t k = Journal.snapshot_seq ~dir:t.seg_dirs.(k)

let tail t ~from =
  let rec go k acc =
    if k = t.shards then Ok (merge_sorted acc)
    else
      match Journal.tail ~dir:t.seg_dirs.(k) ~from with
      | Error e -> Error e
      | Ok records -> go (k + 1) (records :: acc)
  in
  go 0 []

let checkpoint_shard t ~shard ~save =
  Journal.checkpoint t.segments.(shard) ~save

let checkpoint_all t ~save =
  let seq = next_seq t - 1 in
  let rec go k files =
    if k = t.shards then Ok files
    else
      match
        Journal.checkpoint ~seq t.segments.(k) ~save:(fun ~dir -> save k ~dir)
      with
      | Error e -> Error (Printf.sprintf "shard %d: %s" k e)
      | Ok n -> go (k + 1) (files + n)
  in
  go 0 0

let seal_migration t =
  try
    if Sys.file_exists (Journal.log_file t.dir) then
      Sys.remove (Journal.log_file t.dir);
    remove_tree (Journal.snapshot_dir t.dir);
    remove_tree (Journal.snapshot_dir t.dir ^ ".tmp");
    remove_tree (Journal.snapshot_dir t.dir ^ ".old");
    write_stamp t.dir t.shards;
    Ok ()
  with
  | Sys_error e | Failure e -> Error e
  | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)

let snapshot_files t =
  if t.shards = 1 then Journal.snapshot_files ~dir:t.dir
  else
    let rec go k seq acc =
      if k = t.shards then Ok (seq, List.concat (List.rev acc))
      else
        match Journal.snapshot_files ~dir:t.seg_dirs.(k) with
        | Error e -> Error (Printf.sprintf "shard %d: %s" k e)
        | Ok (sk, files) ->
            if k > 0 && sk <> seq then
              Error
                (Printf.sprintf
                   "segments sealed at different cuts (%d vs %d): checkpoint \
                    first"
                   seq sk)
            else
              let prefixed =
                List.map
                  (fun (name, contents) ->
                    (Printf.sprintf "shard-%03d/%s" k name, contents))
                  files
              in
              go (k + 1) sk (prefixed :: acc)
    in
    go 0 0 []

let snapshot_pages t =
  let rec go k acc =
    if k = t.shards then Ok (List.concat (List.rev acc))
    else
      let seg_dir = t.seg_dirs.(k) in
      if not (manifest_exists seg_dir) then go (k + 1) acc
      else
        match Bx_repo.Store.load_pages ~dir:(Journal.snapshot_dir seg_dir) () with
        | Error e -> Error (Printf.sprintf "shard %d: %s" k e)
        | Ok pages -> go (k + 1) (pages :: acc)
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Targeted anti-entropy repair: ship and install one shard's snapshot
   without touching the others.  Names are uniformly prefixed
   "shard-%03d/" even for a single-segment layout, so the wire format is
   one shape. *)

let shard_prefix k = Printf.sprintf "shard-%03d/" k

let snapshot_files_shard t ~shard =
  if shard < 0 || shard >= t.shards then
    Error (Printf.sprintf "no such shard %d" shard)
  else
    match Journal.snapshot_files ~dir:t.seg_dirs.(shard) with
    | Error e -> Error (Printf.sprintf "shard %d: %s" shard e)
    | Ok (seq, files) ->
        Ok
          ( seq,
            List.map
              (fun (name, contents) -> (shard_prefix shard ^ name, contents))
              files )

let snapshot_pages_shard t ~shard =
  if shard < 0 || shard >= t.shards then
    Error (Printf.sprintf "no such shard %d" shard)
  else
    let seg_dir = t.seg_dirs.(shard) in
    if not (manifest_exists seg_dir) then Ok []
    else
      match Bx_repo.Store.load_pages ~dir:(Journal.snapshot_dir seg_dir) () with
      | Error e -> Error (Printf.sprintf "shard %d: %s" shard e)
      | Ok pages -> Ok pages

(* Install one shard's shipped snapshot: strip the shard prefix, then
   let the segment's journal do the verified install (payload DIGESTS
   check, sealed MANIFEST at [seq], atomic swap, log reset to
   [seq + 1]).  The global sequence counter only ever moves forward. *)
let install_shard t ~shard ~seq ~files =
  if shard < 0 || shard >= t.shards then
    Error (Printf.sprintf "no such shard %d" shard)
  else
    let prefix = shard_prefix shard in
    let plen = String.length prefix in
    let rec strip acc = function
      | [] -> Ok (List.rev acc)
      | (name, contents) :: rest ->
          if
            String.length name > plen
            && String.sub name 0 plen = prefix
          then strip ((String.sub name plen (String.length name - plen), contents) :: acc) rest
          else Error (Printf.sprintf "file %S is not in shard %d" name shard)
    in
    match strip [] files with
    | Error e -> Error e
    | Ok flat -> (
        match Journal.install_snapshot t.segments.(shard) ~seq ~files:flat with
        | Error e -> Error e
        | Ok () ->
            with_mu t (fun () -> if seq + 1 > t.next then t.next <- seq + 1);
            Ok ())

(* Sharded snapshot install.  Stage everything under [install.tmp], seal
   each staged segment with a manifest, then write the [INSTALL] marker:
   from that point the swap loop is idempotent and {!finish_install}
   rolls it forward across any crash.  Until the marker exists, the old
   snapshots stay untouched. *)
let install_snapshot t ~seq ~files =
  if t.shards = 1 then Journal.install_snapshot t.segments.(0) ~seq ~files
  else
    try
      let parse name =
        match String.index_opt name '/' with
        | None -> Error (Printf.sprintf "unsharded snapshot file %S" name)
        | Some i ->
            let d = String.sub name 0 i in
            let rest = String.sub name (i + 1) (String.length name - i - 1) in
            if
              rest = "" || rest = "MANIFEST"
              || Filename.basename rest <> rest
              || String.length d <> 9
              || not (String.length d > 6 && String.sub d 0 6 = "shard-")
            then Error (Printf.sprintf "bad snapshot file name %S" name)
            else
              match int_of_string_opt (String.sub d 6 3) with
              | Some k when k >= 0 && k < t.shards -> Ok (k, rest)
              | _ -> Error (Printf.sprintf "bad shard in %S" name)
      in
      let by_shard = Array.make t.shards [] in
      let rec sort_files = function
        | [] -> Ok ()
        | (name, contents) :: rest -> (
            match parse name with
            | Error e -> Error e
            | Ok (k, flat) ->
                by_shard.(k) <- (flat, contents) :: by_shard.(k);
                sort_files rest)
      in
      match sort_files files with
      | Error e -> Error e
      | Ok () ->
          let staging = staging_dir t.dir in
          remove_tree staging;
          ensure_dir staging;
          Bx_fault.Fault.point "shardlog.install.pre_stage";
          let payload_fault = ref None in
          for k = 0 to t.shards - 1 do
            (* Verify each shard's payload against the DIGESTS it ships
               before staging a byte: a mangled transfer is refused
               wholesale, and a pre-digest payload is sealed with a
               locally computed manifest. *)
            if !payload_fault = None then begin
              (match
                 List.assoc_opt Integrity.Digests.name by_shard.(k)
                 |> Option.map Integrity.Digests.parse
               with
              | Some (Error e) ->
                  payload_fault :=
                    Some (Printf.sprintf "shard %d: payload DIGESTS unreadable: %s" k e)
              | Some (Ok manifest) -> (
                  match Integrity.Digests.verify_files ~manifest by_shard.(k) with
                  | [] -> ()
                  | (name, why) :: _ ->
                      payload_fault :=
                        Some
                          (Printf.sprintf
                             "shard %d: payload corrupt, refusing %s: %s" k name
                             why))
              | None -> ());
              if !payload_fault = None then begin
                let d = Filename.concat staging (Printf.sprintf "shard-%03d" k) in
                ensure_dir d;
                List.iter
                  (fun (name, contents) ->
                    write_small (Filename.concat d name) contents)
                  by_shard.(k);
                if not (List.mem_assoc Integrity.Digests.name by_shard.(k)) then
                  Integrity.Digests.write_dir ~dir:d;
                write_manifest d seq
              end
            end
          done;
          match !payload_fault with
          | Some fault ->
              remove_tree staging;
              Error fault
          | None ->
          (* fall through to the marker + swap *)
          Bx_fault.Fault.point "shardlog.install.pre_marker";
          write_small (marker_file t.dir) "install\n";
          Bx_fault.Fault.point "shardlog.install.mid_swap";
          finish_install ~dir:t.dir ~shards:t.shards;
          let rec reset k =
            if k = t.shards then Ok ()
            else
              match Journal.reset t.segments.(k) ~next_seq:(seq + 1) with
              | Error e -> Error e
              | Ok () -> reset (k + 1)
          in
          let r = reset 0 in
          with_mu t (fun () -> if seq + 1 > t.next then t.next <- seq + 1);
          r
    with
    | Sys_error e | Failure e -> Error e
    | Unix.Unix_error (e, _, arg) -> Error (arg ^ ": " ^ Unix.error_message e)
    | Bx_fault.Fault.Injected m -> Error m

let close t = Array.iter Journal.close t.segments
