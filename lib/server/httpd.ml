type request = {
  meth : string;
  path : string;
  query : string;
  body : string;
  keep_alive : bool;
  deadline : float option;
}

type error = { status : int; reason : string }

(* Limits.  Header sizes follow common server defaults; the body cap is
   generous for wiki pages while keeping a hostile client from making the
   service buffer gigabytes. *)
let max_line_bytes = 8192
let max_header_count = 128
let default_max_body = 1024 * 1024

type reader = {
  refill : bytes -> int -> int -> int;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
  (* Wall-clock bound on reading one whole request, armed when its first
     byte arrives.  SO_RCVTIMEO only bounds a single read(2): a slowloris
     peer trickling one header byte per second resets that clock forever,
     while this one runs out. *)
  mutable read_budget : float;  (* seconds; 0. = unbounded *)
  mutable started : float;  (* when the current request's first byte came *)
}

exception Read_deadline

let make_reader refill =
  {
    refill;
    buf = Bytes.create 8192;
    pos = 0;
    len = 0;
    read_budget = 0.;
    started = 0.;
  }

let reader_of_fd fd =
  let refill buf off want =
    Bx_fault.Fault.point "httpd.read";
    Unix.read fd buf off want
  in
  make_reader refill

let reader_of_string s =
  let consumed = ref 0 in
  let refill buf off want =
    let n = min want (String.length s - !consumed) in
    Bytes.blit_string s !consumed buf off n;
    consumed := !consumed + n;
    n
  in
  make_reader refill

(* Returns false at end of stream. *)
let ensure r =
  if r.pos < r.len then true
  else begin
    if
      r.read_budget > 0. && r.started > 0.
      && Unix.gettimeofday () -. r.started > r.read_budget
    then raise Read_deadline;
    r.pos <- 0;
    r.len <- r.refill r.buf 0 (Bytes.length r.buf);
    if r.len > 0 && r.started = 0. then r.started <- Unix.gettimeofday ();
    r.len > 0
  end

exception Line_too_long

(* One CRLF- (or bare-LF-) terminated line, without the terminator.
   None at end of stream. *)
let read_line r =
  let b = Buffer.create 128 in
  let rec go () =
    if not (ensure r) then if Buffer.length b = 0 then None else Some (Buffer.contents b)
    else
      let c = Bytes.get r.buf r.pos in
      r.pos <- r.pos + 1;
      if c = '\n' then Some (Buffer.contents b)
      else begin
        if c <> '\r' then Buffer.add_char b c;
        if Buffer.length b > max_line_bytes then raise Line_too_long;
        go ()
      end
  in
  go ()

let read_exact r n =
  let out = Bytes.create n in
  let rec go off =
    if off = n then Some (Bytes.unsafe_to_string out)
    else if not (ensure r) then None
    else begin
      let take = min (n - off) (r.len - r.pos) in
      Bytes.blit r.buf r.pos out off take;
      r.pos <- r.pos + take;
      go (off + take)
    end
  in
  go 0

let bad status reason = Error (`Bad { status; reason })

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; version ]
    when String.length version >= 7 && String.sub version 0 7 = "HTTP/1." ->
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
            ( String.sub target 0 i,
              String.sub target (i + 1) (String.length target - i - 1) )
        | None -> (target, "")
      in
      Ok (meth, path, query, version)
  | _ -> Error { status = 400; reason = "malformed_request_line" }

(* The deadline header carries the client's remaining budget in
   milliseconds; bound it so a typo cannot pin a connection for a year.
   Malformed or non-positive values are ignored rather than rejected —
   a deadline is advisory, not an input the request depends on. *)
let max_deadline_ms = 3_600_000.

let parse_deadline value =
  match float_of_string_opt (String.trim value) with
  | Some ms when ms > 0. ->
      Some (Unix.gettimeofday () +. Float.min ms max_deadline_ms /. 1000.)
  | _ -> None

let read_request_inner ~max_body r =
  match read_line r with
  | None -> Error `Eof
  | Some "" -> bad 400 "empty_request_line"
  | Some line -> (
      match parse_request_line line with
      | Error e -> Error (`Bad e)
      | Ok (meth, path, query, version) -> (
          let content_length = ref None in
          let connection = ref None in
          let deadline_ms = ref None in
          let rec headers n =
            if n > max_header_count then bad 431 "too_many_headers"
            else
              match read_line r with
              | None -> bad 400 "eof_in_headers"
              | Some "" -> Ok ()
              | Some line -> (
                  match String.index_opt line ':' with
                  | None -> bad 400 "malformed_header"
                  | Some i ->
                      let name =
                        String.lowercase_ascii (String.trim (String.sub line 0 i))
                      in
                      let value =
                        String.trim
                          (String.sub line (i + 1) (String.length line - i - 1))
                      in
                      if name = "content-length" then content_length := Some value
                      else if name = "connection" then
                        connection := Some (String.lowercase_ascii value)
                      else if name = "x-bxwiki-deadline" then
                        deadline_ms := Some value;
                      headers (n + 1))
          in
          match headers 0 with
          | Error e -> Error e
          | Ok () -> (
              let keep_alive =
                match (!connection, version) with
                | Some "close", _ -> false
                | Some v, _ when v = "keep-alive" -> true
                | None, "HTTP/1.0" -> false
                | _ -> true
              in
              let finish body =
                let deadline =
                  match !deadline_ms with
                  | None -> None
                  | Some v -> parse_deadline v
                in
                Ok { meth; path; query; body; keep_alive; deadline }
              in
              match !content_length with
              | None -> finish ""
              | Some v -> (
                  match int_of_string_opt v with
                  | None -> bad 400 "unparseable_content_length"
                  | Some n when n < 0 -> bad 400 "negative_content_length"
                  | Some n when n > max_body -> bad 413 "body_too_large"
                  | Some 0 -> finish ""
                  | Some n -> (
                      match read_exact r n with
                      | None -> bad 400 "truncated_body"
                      | Some body -> finish body)))))
  | exception Line_too_long -> bad 431 "line_too_long"
  | exception Read_deadline -> Error `Deadline

let read_request ?(max_body = default_max_body) ?(read_budget = 0.) r =
  r.read_budget <- read_budget;
  r.started <- 0.;
  (* The per-match [exception] clauses above only cover the request
     line; the header loop and body read raise through to here. *)
  try read_request_inner ~max_body r
  with
  | Line_too_long -> bad 431 "line_too_long"
  | Read_deadline -> Error `Deadline

(* Split "a=1&b=2" into pairs; a bare key maps to "".  No percent
   decoding — the replication endpoints only pass integers. *)
let query_params query =
  if query = "" then []
  else
    String.split_on_char '&' query
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             match String.index_opt kv '=' with
             | None -> Some (kv, "")
             | Some i ->
                 Some
                   ( String.sub kv 0 i,
                     String.sub kv (i + 1) (String.length kv - i - 1) ))

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 410 -> "Gone"
  | 413 -> "Content Too Large"
  | 431 -> "Request Header Fields Too Large"
  | 503 -> "Service Unavailable"
  | 504 -> "Gateway Timeout"
  | _ -> "Internal Server Error"

let write_all fd s =
  Bx_fault.Fault.point "httpd.write";
  let len = String.length s in
  let rec go off =
    if off < len then go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

(* Every 503 carries Retry-After: overload is the one condition where
   the server knows the client should come back, and the retrying client
   keys its backoff off it.  The service scales the value with queue
   depth (1s under light pressure, up to 8s as the queue fills) and ships
   it in the response's headers; this constant is only the fallback for a
   503 built without one. *)
let retry_after_seconds = 1

let write_response fd ~keep_alive (r : Bx_repo.Webui.response) =
  let extra =
    String.concat ""
      (List.map
         (fun (name, value) -> Printf.sprintf "%s: %s\r\n" name value)
         r.Bx_repo.Webui.headers)
  in
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\n\
       Content-Type: %s\r\n\
       Content-Length: %d\r\n\
       %s%sConnection: %s\r\n\
       \r\n"
      r.Bx_repo.Webui.status
      (status_text r.Bx_repo.Webui.status)
      r.Bx_repo.Webui.content_type
      (String.length r.Bx_repo.Webui.body)
      extra
      (if
         r.Bx_repo.Webui.status = 503
         && not
              (List.exists
                 (fun (name, _) ->
                   String.lowercase_ascii name = "retry-after")
                 r.Bx_repo.Webui.headers)
       then Printf.sprintf "Retry-After: %d\r\n" retry_after_seconds
       else "")
      (if keep_alive then "keep-alive" else "close")
  in
  write_all fd (head ^ r.Bx_repo.Webui.body)

let shed_response ?retry_after ~reason () =
  {
    Bx_repo.Webui.status = 503;
    content_type = "text/plain; charset=utf-8";
    body = Printf.sprintf "overloaded: %s, retry later\n" reason;
    headers =
      (match retry_after with
      | None -> []
      | Some seconds -> [ ("Retry-After", string_of_int seconds) ]);
  }

let error_response { status; reason } =
  {
    Bx_repo.Webui.status;
    content_type = "text/html; charset=utf-8";
    body =
      Bx_repo.Webui.html_page ~title:(status_text status)
        (Printf.sprintf "<h1>%d %s</h1><p>%s</p>" status (status_text status)
           reason);
    headers = [];
  }
