(** The hardened HTTP/1.1 wire layer: request parsing and response
    writing, kept free of routing (that is {!Service}) and of policy
    about what a request means (that is {!Bx_repo.Webui}).

    Hardening over the seed server's parser:
    - the request line and each header line are length-capped;
    - header count is capped;
    - [Content-Length] must be a valid non-negative integer (a negative
      or unparseable value is a 400, not an arbitrary
      [really_input_string]) and is capped by [max_body] (413 beyond);
    - persistent connections: HTTP/1.1 keep-alive by default,
      [Connection: close] and HTTP/1.0 semantics honoured;
    - reads run against a socket with a receive timeout ({!Service}
      sets [SO_RCVTIMEO]); a timeout surfaces as
      [Unix.EAGAIN]/[EWOULDBLOCK] from {!read_request}, which the
      caller maps to 408;
    - a wall-clock [read_budget] bounds reading one {e whole} request
      from its first byte: [SO_RCVTIMEO] only limits a single [read(2)],
      so a slowloris peer trickling one header byte at a time would
      otherwise hold a worker forever.  Exhaustion surfaces as
      [`Deadline];
    - an [X-Bxwiki-Deadline: <ms>] request header (the client's
      remaining budget in milliseconds) is parsed into an absolute
      {!field:request.deadline} so the service can shed work whose
      requester has already given up.

    The reader abstraction exists so the parser is testable from plain
    strings — the Content-Length regression tests drive it without a
    socket. *)

type request = {
  meth : string;
  path : string;  (** query string stripped *)
  query : string;  (** the raw query string, without the [?]; [""] if none *)
  body : string;
  keep_alive : bool;
  deadline : float option;
      (** absolute [Unix.gettimeofday] deadline derived from
          [X-Bxwiki-Deadline]; [None] when absent or malformed *)
}

type error = {
  status : int;  (** 400, 413 or 431 *)
  reason : string;
}

type reader

val reader_of_fd : Unix.file_descr -> reader
val reader_of_string : string -> reader

val default_max_body : int
(** 1 MiB — generous for wiki pages. *)

val read_request :
  ?max_body:int ->
  ?read_budget:float ->
  reader ->
  (request, [ `Eof | `Bad of error | `Deadline ]) result
(** Parse one request.  [`Eof] means the peer closed (or never wrote)
    before a request line — the normal end of a keep-alive connection.
    [read_budget] (seconds; [0.] = unbounded, the default) bounds the
    wall-clock time from the request's first byte to its last;
    exhaustion is [`Deadline], which the service sheds and counts as
    [bxwiki_shed_total{reason="deadline"}].  Propagates
    [Unix.Unix_error] from the underlying reads (timeouts, resets); the
    caller owns the socket and the 408/close decision. *)

val write_response :
  Unix.file_descr -> keep_alive:bool -> Bx_repo.Webui.response -> unit
(** Serialise with [Content-Length] and [Connection] headers.  A 503
    additionally carries [Retry-After] — overload is the one condition
    where the server knows the client should come back.  Raises
    [Unix.Unix_error] (e.g. [EPIPE]) if the peer is gone, or on a write
    timeout when the socket has [SO_SNDTIMEO] set (a slow client cannot
    pin a worker forever).

    Failpoints: [httpd.read] fires before each socket refill,
    [httpd.write] before each response write; injected errors surface as
    {!Bx_fault.Fault.Injected}, which the service treats as a dropped
    connection. *)

val shed_response :
  ?retry_after:int -> reason:string -> unit -> Bx_repo.Webui.response
(** The 503 body written when overload protection rejects a connection
    ([reason] is [queue_full] or [deadline]).  [retry_after] ships a
    queue-depth-scaled [Retry-After] header; without it the writer falls
    back to a flat 1s. *)

val error_response : error -> Bx_repo.Webui.response
(** A minimal HTML error body for a wire-level failure. *)

val query_params : string -> (string * string) list
(** Split a raw query string into key/value pairs (no percent decoding —
    the internal endpoints that use queries only pass integers). *)

val status_text : int -> string
