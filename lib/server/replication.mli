(** Journal-shipping replication: the protocol and the follower side.

    A primary serves its journal over a long-poll endpoint and a replica
    applies the stream to its own journal, so at any moment the replica
    is a crash-consistent prefix of the primary and can be promoted:

    {v
      GET /replication/stream?from=<seq>&epoch=<e>&wait=<s>
        200 "bxrepl 1 <epoch> <next_seq> <count>\n" ^ v2 frames
        200 "bxreset 1 <epoch> <floor>\n"      — [from] predates the
            snapshot floor: the follower must bootstrap from a snapshot
        409 — the poller carried a NEWER epoch: the serving node just
            learned it has been deposed and fences itself
      GET /replication/snapshot
        200 "bxsnap 1 <epoch> <seq> <count>\n" ^ one v2 frame per
            snapshot file (path = flat file name, body = contents)
    v}

    The record frames are exactly the journal's v2 on-disk format
    ({!Journal.encode}), so a follower validates every CRC independently
    of the transport and of the primary's disk.

    Epoch fencing: every stream response carries the serving node's
    epoch.  Promotion bumps and persists the epoch before accepting
    writes; a follower rejects any stream whose epoch is below its own,
    and a primary that observes a poll with a higher epoch refuses all
    subsequent writes.  Stale acknowledgements from a deposed primary
    can therefore never re-enter the replication graph.

    This module knows the wire format, the HTTP client and the retry
    loop; everything stateful (registry, journal, locks, metrics) stays
    in {!Service}, reached through the {!sink} callbacks.

    Failpoints: [repl.frame.read] fires on the follower between
    receiving a stream response and decoding its frames; the primary's
    [repl.stream.write], and the service-side [repl.apply] and
    [repl.promote], live in {!Service}. *)

type stream_reply =
  | Records of { epoch : int; next_seq : int; records : Journal.record list }
      (** records with [seq >= from], possibly empty; [next_seq] is the
          sequence number the primary will assign next, so
          [next_seq - follower's next] is the replication lag in
          records. *)
  | Bootstrap of { epoch : int; floor : int }
      (** [from] predates the snapshot floor — the intervening records
          were compacted away and the follower must install a snapshot. *)

val stream_body :
  epoch:int -> next_seq:int -> records:Journal.record list -> string

val reset_body : epoch:int -> floor:int -> string

val snapshot_body :
  epoch:int -> seq:int -> files:(string * string) list -> string

val parse_stream_body : string -> (stream_reply, string) result

val parse_snapshot_body :
  string -> (int * int * (string * string) list, string) result
(** [(epoch, seq, files)]. *)

val request :
  host:string ->
  port:int ->
  ?timeout:float ->
  meth:string ->
  path:string ->
  body:string ->
  unit ->
  (int * string, string) result
(** One loopback HTTP request, [Connection: close]; returns (status,
    body).  Connection failures and timeouts come back as [Error], never
    as exceptions. *)

type apply_error =
  [ `Gap of int * int
    (** (expected, got): the batch starts past our cursor — recoverable
        by snapshot bootstrap, and counted, not fatal *)
  | `Fail of string  (** anything else (journal write, injected fault) *)
  ]

type sink = {
  next_seq : unit -> int;  (** the sequence number we need next *)
  epoch : unit -> int;  (** the highest epoch we have observed *)
  observe_epoch : int -> unit;  (** adopt (and persist) a higher epoch *)
  apply : Journal.record list -> (unit, apply_error) result;
      (** journal and apply a batch; must tolerate a retried prefix *)
  install_snapshot :
    seq:int -> files:(string * string) list -> (unit, string) result;
  digests : unit -> (int * int) list;
      (** local per-shard content digests, as (shard, digest) rows *)
  install_shard :
    shard:int -> seq:int -> files:(string * string) list
    -> (unit, string) result;
      (** targeted anti-entropy repair: install one shard's snapshot
          payload without touching the others *)
  note_progress : behind:int -> unit;
      (** called after every successful poll with the record lag *)
  note_reconnect : unit -> unit;
  note_epoch_reject : unit -> unit;
  note_snapshot_bootstrap : unit -> unit;
  note_gap : expected:int -> got:int -> unit;
      (** a sequence gap was detected (and recovery is about to run) *)
  note_digest : matched:bool -> unit;
      (** an anti-entropy digest comparison completed *)
  should_stop : unit -> bool;
      (** polled between (and during) sleeps; promotion and shutdown
          both stop the loop *)
}

val verify_digests :
  host:string -> port:int -> sink -> (unit, string) result
(** One anti-entropy round: fetch [GET /replication/digest] from the
    upstream, compare with [sink.digests ()], and re-bootstrap exactly
    the diverged shards through [sink.install_shard] (or fully, when the
    shard counts disagree).  An upstream without the endpoint, or a
    transport failure, skips the round ([Ok ()]) — the next caught-up
    poll retries.  {!poll_once} runs this automatically whenever a poll
    finds the replica caught up; exposed so tests and drills can force a
    round synchronously. *)

val poll_once :
  host:string -> port:int -> ?wait:float -> sink -> (int, string) result
(** One poll of the upstream: fetch, epoch-check, apply (or snapshot
    bootstrap).  Returns the records still outstanding after the batch
    was applied — 0 means caught up.  [wait] is the long-poll hold the
    primary is asked for (default 5 s).  A detected sequence gap is
    counted through [sink.note_gap] and healed by a snapshot bootstrap;
    a caught-up poll additionally runs {!verify_digests}. *)

val follow :
  host:string ->
  port:int ->
  ?wait:float ->
  ?min_sleep:float ->
  ?max_sleep:float ->
  sink ->
  unit
(** The follower loop: {!poll_once} until [should_stop].  Successful
    polls chain immediately (the long poll provides pacing); failures
    reconnect under capped decorrelated-jitter backoff — each sleep is
    drawn from [[min_sleep, 3 * previous]] and capped at [max_sleep]
    (defaults 0.05 s and 2 s), so a fleet of followers re-finding a
    recovered primary spreads out instead of stampeding. *)
