type entry = { generation : int; response : Bx_repo.Webui.response }

type shard = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
}

type t = {
  shards : shard array;
  capacity : int; (* per shard *)
  metrics : Metrics.t;
  acquisitions : int Atomic.t;
  contended : int Atomic.t;
}

let create ?(capacity = 256) ?(shards = 1) metrics =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
          { mutex = Mutex.create (); table = Hashtbl.create 64 });
    capacity = max 16 (capacity / shards);
    metrics;
    acquisitions = Atomic.make 0;
    contended = Atomic.make 0;
  }

let shard_count t = Array.length t.shards

(* Each worker domain owns one shard: lookups from different domains
   never take the same mutex, so a cache that exists to make the read
   path cheap cannot itself serialise the read path.  Keep-alive pins a
   connection to one worker, so a client's reads stay warm in the shard
   that served them. *)
let shard_of t =
  t.shards.((Domain.self () :> int) mod Array.length t.shards)

let locked t shard f =
  Atomic.incr t.acquisitions;
  if not (Mutex.try_lock shard.mutex) then begin
    Atomic.incr t.contended;
    Mutex.lock shard.mutex
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock shard.mutex) f

let find t ~path ~generation =
  let shard = shard_of t in
  let found =
    locked t shard (fun () ->
        match Hashtbl.find_opt shard.table path with
        | Some e when e.generation = generation -> Some e.response
        | _ -> None)
  in
  (match found with
  | Some _ -> Metrics.cache_hit t.metrics
  | None -> Metrics.cache_miss t.metrics);
  found

(* The brownout lane: any cached render for [path], however old, beats a
   503 when the fresh path is unaffordable.  The caller reports the
   generation lag to the client (X-Bxwiki-Stale), so correctness-by-
   freshness is traded away *visibly*.  Searches every shard — the
   degraded worker runs on its own domain, whose home shard has never
   rendered anything. *)
let find_stale t ~path =
  let best = ref None in
  Array.iter
    (fun shard ->
      locked t shard (fun () ->
          match Hashtbl.find_opt shard.table path with
          | Some e -> (
              match !best with
              | Some (g, _) when g >= e.generation -> ()
              | _ -> best := Some (e.generation, e.response))
          | None -> ()))
    t.shards;
  !best

let store ?current t ~path ~generation response =
  (* Under per-shard generations different paths are valid at different
     generations; [current] tells the eviction sweep what "fresh" means
     for each cached path, so a write to one registry shard does not
     evict every other shard's still-valid pages. *)
  let current =
    match current with Some f -> f | None -> fun _ -> generation
  in
  let shard = shard_of t in
  locked t shard (fun () ->
      if
        Hashtbl.length shard.table >= t.capacity
        && not (Hashtbl.mem shard.table path)
      then begin
        let stale =
          Hashtbl.fold
            (fun p e acc -> if e.generation <> current p then p :: acc else acc)
            shard.table []
        in
        if stale = [] then Hashtbl.reset shard.table
        else List.iter (Hashtbl.remove shard.table) stale
      end;
      Hashtbl.replace shard.table path { generation; response })

let size t =
  Array.fold_left
    (fun acc shard ->
      acc + locked t shard (fun () -> Hashtbl.length shard.table))
    0 t.shards

let lock_stats t = (Atomic.get t.acquisitions, Atomic.get t.contended)
