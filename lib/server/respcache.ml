type entry = { generation : int; response : Bx_repo.Webui.response }

type t = {
  mutex : Mutex.t;
  table : (string, entry) Hashtbl.t;
  capacity : int;
  metrics : Metrics.t;
}

let create ?(capacity = 256) metrics =
  { mutex = Mutex.create (); table = Hashtbl.create 64; capacity; metrics }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t ~path ~generation =
  let found =
    locked t (fun () ->
        match Hashtbl.find_opt t.table path with
        | Some e when e.generation = generation -> Some e.response
        | _ -> None)
  in
  (match found with
  | Some _ -> Metrics.cache_hit t.metrics
  | None -> Metrics.cache_miss t.metrics);
  found

let store t ~path ~generation response =
  locked t (fun () ->
      if
        Hashtbl.length t.table >= t.capacity
        && not (Hashtbl.mem t.table path)
      then begin
        let stale =
          Hashtbl.fold
            (fun p e acc -> if e.generation <> generation then p :: acc else acc)
            t.table []
        in
        if stale = [] then Hashtbl.reset t.table
        else List.iter (Hashtbl.remove t.table) stale
      end;
      Hashtbl.replace t.table path { generation; response })

let size t = locked t (fun () -> Hashtbl.length t.table)
