type hunk = { at : int; drop : int; insert : string }
type edit = hunk list

exception Bad_edit of string

let bad_edit fmt = Format.kasprintf (fun m -> raise (Bad_edit m)) fmt

let empty = []
let is_empty e = e = []

let payload_bytes e =
  List.fold_left (fun acc h -> acc + String.length h.insert) 0 e

(* ------------------------------------------------------------------ *)
(* Application *)

let check_edit n e =
  let rec go prev_end = function
    | [] -> ()
    | h :: rest ->
        if h.at < prev_end then
          bad_edit "hunk at %d overlaps previous hunk ending at %d" h.at
            prev_end;
        if h.drop < 0 then bad_edit "hunk at %d drops %d bytes" h.at h.drop;
        if h.at + h.drop > n then
          bad_edit "hunk [%d, %d) exceeds document length %d" h.at
            (h.at + h.drop) n;
        go (h.at + h.drop) rest
  in
  go 0 e

let apply_with_span old e =
  let n = String.length old in
  check_edit n e;
  match e with
  | [] -> (old, (0, 0, 0))
  | first :: _ ->
      let buf =
        Buffer.create (n + payload_bytes e)
      in
      let pos =
        List.fold_left
          (fun pos h ->
            Buffer.add_substring buf old pos (h.at - pos);
            Buffer.add_string buf h.insert;
            h.at + h.drop)
          0 e
      in
      Buffer.add_substring buf old pos (n - pos);
      let last = List.fold_left (fun _ h -> h) first e in
      let a = first.at in
      let b_old = last.at + last.drop in
      let shift =
        List.fold_left
          (fun acc h -> acc + String.length h.insert - h.drop)
          0 e
      in
      (Buffer.contents buf, (a, b_old, b_old + shift))

let apply old e = fst (apply_with_span old e)

(* ------------------------------------------------------------------ *)
(* Line table: start offset of every line of [s] (terminators belong to
   their line, the last line may lack one), plus the end sentinel, so
   line [i] is the byte span [starts.(i), starts.(i+1)). *)

let line_starts s =
  let n = String.length s in
  let count = ref 1 in
  for i = 0 to n - 1 do
    if String.unsafe_get s i = '\n' && i < n - 1 then incr count
  done;
  if n = 0 then [| 0 |]
  else begin
    let starts = Array.make (!count + 1) 0 in
    let k = ref 1 in
    for i = 0 to n - 1 do
      if String.unsafe_get s i = '\n' && i < n - 1 then begin
        starts.(!k) <- i + 1;
        incr k
      end
    done;
    starts.(!count) <- n;
    starts
  end

let line_count starts = Array.length starts - 1

(* Byte equality of line [i] of [a] against line [j] of [b]. *)
let lines_equal a sa i b sb j =
  let la = sa.(i + 1) - sa.(i) and lb = sb.(j + 1) - sb.(j) in
  la = lb
  &&
  let pa = sa.(i) and pb = sb.(j) in
  let rec eq k =
    k >= la
    || String.unsafe_get a (pa + k) = String.unsafe_get b (pb + k)
       && eq (k + 1)
  in
  eq 0

(* ------------------------------------------------------------------ *)
(* Myers' greedy shortest edit script (the forward O(ND) variant, with
   one saved frontier per round for the traceback).  Works over
   abstract sequences through [eq]; returns the script as operations
   in order, or [None] when the distance exceeds [cap]. *)

type op = Keep | Del | Ins

let myers ~eq n m ~cap =
  if n = 0 then Some (List.init m (fun _ -> Ins))
  else if m = 0 then Some (List.init n (fun _ -> Del))
  else begin
    let maxd = min (n + m) cap in
    let off = maxd in
    let v = Array.make ((2 * maxd) + 2) 0 in
    let trace = ref [] in
    let found = ref (-1) in
    (try
       for d = 0 to maxd do
         trace := Array.copy v :: !trace;
         let k = ref (-d) in
         while !k <= d do
           let kk = !k in
           let x0 =
             if kk = -d || (kk <> d && v.(off + kk - 1) < v.(off + kk + 1))
             then v.(off + kk + 1)
             else v.(off + kk - 1) + 1
           in
           let x = ref x0 in
           let y = ref (x0 - kk) in
           while !x < n && !y < m && eq !x !y do
             incr x;
             incr y
           done;
           v.(off + kk) <- !x;
           if !x >= n && !y >= m then begin
             found := d;
             raise Exit
           end;
           k := !k + 2
         done
       done
     with Exit -> ());
    if !found < 0 then None
    else begin
      let traces = Array.of_list (List.rev !trace) in
      (* traces.(d) is the frontier at the start of round d — the
         furthest-reaching endpoints of all (d-1)-paths. *)
      let ops = ref [] in
      let x = ref n and y = ref m in
      for d = !found downto 1 do
        let v = traces.(d) in
        let k = !x - !y in
        let prev_k =
          if k = -d || (k <> d && v.(off + k - 1) < v.(off + k + 1)) then
            k + 1
          else k - 1
        in
        let prev_x = v.(off + prev_k) in
        let prev_y = prev_x - prev_k in
        while !x > prev_x && !y > prev_y do
          ops := Keep :: !ops;
          decr x;
          decr y
        done;
        if !x = prev_x then begin
          ops := Ins :: !ops;
          decr y
        end
        else begin
          ops := Del :: !ops;
          decr x
        end
      done;
      while !x > 0 && !y > 0 do
        ops := Keep :: !ops;
        decr x;
        decr y
      done;
      Some !ops
    end
  end

(* ------------------------------------------------------------------ *)
(* diff *)

let myers_cap = 128

let diff old new_ =
  if String.equal old new_ then []
  else begin
    let sa = line_starts old and sb = line_starts new_ in
    let n = line_count sa and m = line_count sb in
    (* Trim common prefix and suffix lines. *)
    let p = ref 0 in
    while !p < n && !p < m && lines_equal old sa !p new_ sb !p do incr p done;
    let q = ref 0 in
    while
      !q < n - !p && !q < m - !p
      && lines_equal old sa (n - 1 - !q) new_ sb (m - 1 - !q)
    do
      incr q
    done;
    let p = !p and q = !q in
    let n' = n - p - q and m' = m - p - q in
    let old_base = sa.(p) in
    let old_stop = sa.(n - q) in
    let single_replace () =
      [
        {
          at = old_base;
          drop = old_stop - old_base;
          insert = String.sub new_ sb.(p) (sb.(m - q) - sb.(p));
        };
      ]
    in
    let eq i j = lines_equal old sa (p + i) new_ sb (p + j) in
    match myers ~eq n' m' ~cap:myers_cap with
    | None -> single_replace ()
    | Some script ->
        (* Fold the op script into replace hunks: runs of Del/Ins merge,
           Keeps flush. *)
        let hunks = ref [] in
        let hstart = ref (-1) in
        let hdrop = ref 0 in
        let ins = Buffer.create 64 in
        let flush () =
          if !hstart >= 0 then begin
            hunks :=
              { at = !hstart; drop = !hdrop; insert = Buffer.contents ins }
              :: !hunks;
            hstart := -1;
            hdrop := 0;
            Buffer.clear ins
          end
        in
        let i = ref p and j = ref p in
        List.iter
          (fun op ->
            match op with
            | Keep ->
                flush ();
                incr i;
                incr j
            | Del ->
                if !hstart < 0 then hstart := sa.(!i);
                hdrop := !hdrop + (sa.(!i + 1) - sa.(!i));
                incr i
            | Ins ->
                if !hstart < 0 then hstart := sa.(!i);
                Buffer.add_substring ins new_ sb.(!j) (sb.(!j + 1) - sb.(!j));
                incr j)
          script;
        flush ();
        List.rev !hunks
  end

(* ------------------------------------------------------------------ *)
(* Framing.  Header line, then per hunk a "[at] [drop] [insert_len]"
   line followed by exactly [insert_len] raw bytes — unambiguous
   whatever the insert contains. *)

let magic = "bxedit1"

let encode e =
  let buf = Buffer.create (64 + payload_bytes e) in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  List.iter
    (fun h ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d\n" h.at h.drop (String.length h.insert));
      Buffer.add_string buf h.insert)
    e;
  Buffer.contents buf

let decode s =
  let n = String.length s in
  let line_end p = match String.index_from_opt s p '\n' with
    | Some i -> Some i
    | None -> None
  in
  match line_end 0 with
  | None -> Error "missing edit header"
  | Some h when String.sub s 0 h <> magic -> Error "bad edit magic"
  | Some h -> (
      let rec go p acc =
        if p >= n then Ok (List.rev acc)
        else
          match line_end p with
          | None -> Error "truncated hunk header"
          | Some e -> (
              match
                String.split_on_char ' ' (String.sub s p (e - p))
                |> List.map int_of_string_opt
              with
              | [ Some at; Some drop; Some len ]
                when at >= 0 && drop >= 0 && len >= 0 ->
                  if e + 1 + len > n then Error "truncated hunk payload"
                  else
                    go
                      (e + 1 + len)
                      ({ at; drop; insert = String.sub s (e + 1) len } :: acc)
              | _ -> Error "bad hunk header")
      in
      match go (h + 1) [] with
      | Error _ as err -> err
      | Ok hunks -> (
          (* Validate ordering with an unbounded length: decode has no
             document at hand, [apply] re-checks against the real one. *)
          match check_edit max_int hunks with
          | () -> Ok hunks
          | exception Bad_edit m -> Error m))
