(** Line-oriented document diffs over byte-span edits — the edit
    language of the delta-lens layer ({!Slens_delta}).

    An {!edit} is a sorted list of non-overlapping {!hunk}s, each
    replacing a byte span of the old document with replacement bytes.
    Spans are {e byte} offsets so application is a handful of blits and
    composition with the slice engine's chunk bounds needs no line
    table; {!diff} nevertheless works {e line-wise} (Myers' greedy
    shortest-edit-script over lines, after trimming the common prefix
    and suffix), so the hunks it produces respect line structure — a
    one-line change to a 5000-line document diffs to one small hunk in
    O(document) byte comparisons and O(changed lines²) search. *)

type hunk = {
  at : int;  (** Byte offset in the {e old} document where the hunk starts. *)
  drop : int;  (** Bytes of the old document the hunk removes. *)
  insert : string;  (** Replacement bytes. *)
}

type edit = hunk list
(** Hunks in ascending [at] order; [at + drop] of one hunk never exceeds
    the [at] of the next (adjacent is allowed, overlap is not). *)

exception Bad_edit of string
(** Raised by {!apply} when an edit is out of bounds, unsorted or
    overlapping. *)

val empty : edit
val is_empty : edit -> bool

val payload_bytes : edit -> int
(** Replacement bytes carried by the edit (what a journal record of the
    edit must ship, up to framing). *)

val apply : string -> edit -> string
(** Apply the edit to the old document.  Raises {!Bad_edit} on a
    malformed edit. *)

val apply_with_span : string -> edit -> string * (int * int * int)
(** [apply_with_span old e] additionally returns the dirty hull
    [(a, b_old, b_new)]: bytes [\[a, b_old)] of the old document were
    replaced by bytes [\[a, b_new)] of the new one, and the documents
    agree byte-for-byte outside those spans (prefix [\[0, a)] verbatim,
    suffix shifted by [b_new - b_old]).  The empty edit yields
    [(0, 0, 0)]. *)

val diff : string -> string -> edit
(** [diff old new_] is an edit with [apply old (diff old new_) =
    new_].  Line-based: common prefix and suffix lines are trimmed, the
    middle runs Myers' O(ND) shortest-script search capped at 128 edit
    steps — beyond the cap (or on documents that are wildly different)
    the middle collapses to a single replace hunk, trading minimality
    for bounded work.  [diff old old] is [empty]. *)

val encode : edit -> string
(** Frame an edit for the wire and the journal: a [bxedit1] header, then
    one [at drop insert_length] line per hunk followed by the raw
    insert bytes.  Unambiguous for arbitrary insert contents. *)

val decode : string -> (edit, string) result
(** Parse {!encode}'s framing; the result is validated to be sorted and
    non-overlapping. *)
