open Bx_regex

exception Split_error of string

let split_error fmt = Format.kasprintf (fun m -> raise (Split_error m)) fmt

let rev_string s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

(* ------------------------------------------------------------------ *)
(* The workspace: the suffix-mark scratch of the star chunker (one byte
   per position, grown geometrically, never shrunk) and the engine's
   split counter, owned by one lens execution and reused by every split
   it performs. *)

type ws = {
  mutable suf : Bytes.t;
  mutable n_splits : int;  (* split decisions made since last harvest *)
}

let make_ws () = { suf = Bytes.create 256; n_splits = 0 }

let splits_performed ws = ws.n_splits
let reset_splits ws = ws.n_splits <- 0

let suf_scratch ws n =
  if Bytes.length ws.suf < n then
    ws.suf <- Bytes.create (max n (2 * Bytes.length ws.suf));
  ws.suf

let sub_for_error s pos len = String.sub s pos len

(* ------------------------------------------------------------------ *)
(* The splitting strategy.  The combinators establish the POPL'08
   unambiguity side conditions {e statically}, at lens construction; at
   run time a well-typed slice therefore has exactly one decomposition,
   and the splitter's job is to find it, not to re-prove its uniqueness.
   That licenses {e first-match} parsing: scan forward with the part's
   DFA, and at each accepting position check that the rest of the slice
   belongs to the rest-language by running the rest DFA forward from
   there.  Wrong candidates die at the rest DFA's sink within a byte or
   two (the rest-language rarely starts the way the part continues), so
   verification is effectively free except at the true boundary — and
   there it is the last full scan, because the search stops.  No suffix
   mark pass, no uniqueness rescan, no reversed automaton. *)

(* Does [s[from .. stop)] belong to [d]'s language?  One table read per
   byte, early exit at the sink. *)
let tail_matches d s from stop =
  let table = Dfa.raw_table d in
  let accept = Dfa.raw_accept d in
  let sink = Dfa.sink d in
  let st = ref Dfa.initial in
  let p = ref from in
  (try
     while !p < stop do
       st :=
         Array.unsafe_get table
           ((!st lsl 8) lor Char.code (String.unsafe_get s !p));
       if !st = sink then raise Exit;
       incr p
     done
   with Exit -> ());
  !p = stop && Array.unsafe_get accept !st

(* The boundary of part [d] within [s[b .. stop)], with [rest]
   recognising what must follow.  Returns the absolute offset just past
   the part, or -1. *)
let find_boundary d rest s b stop =
  let table = Dfa.raw_table d in
  let accept = Dfa.raw_accept d in
  let sink = Dfa.sink d in
  if Array.unsafe_get accept Dfa.initial && tail_matches rest s b stop then b
  else begin
    let found = ref (-1) in
    let st = ref Dfa.initial in
    let j = ref b in
    (try
       while !j < stop && !found < 0 do
         st :=
           Array.unsafe_get table
             ((!st lsl 8) lor Char.code (String.unsafe_get s !j));
         if !st = sink then raise Exit;
         if Array.unsafe_get accept !st && tail_matches rest s (!j + 1) stop
         then found := !j + 1;
         incr j
       done
     with Exit -> ());
    !found
  end

type concat_pos = ws -> string -> int -> int -> int

let make_concat_pos r1 r2 : concat_pos =
  let d1 = Dfa.compile r1 in
  let d2 = Dfa.compile r2 in
  fun ws s pos len ->
    ws.n_splits <- ws.n_splits + 1;
    let point = find_boundary d1 d2 s pos (pos + len) in
    if point < 0 then
      split_error "no split of %S against %a . %a" (sub_for_error s pos len)
        Regex.pp r1 Regex.pp r2
    else point

type concat_splitter = string -> string * string

let make_concat_splitter r1 r2 : concat_splitter =
  let split = make_concat_pos r1 r2 in
  let ws = make_ws () in
  fun s ->
    let n = String.length s in
    let i = split ws s 0 n in
    (String.sub s 0 i, String.sub s i (n - i))

(* ------------------------------------------------------------------ *)
(* Iteration: the unique chunking of a slice against the star of r.
   One backward pass with the reversed star marks the positions whose
   suffix is still in the star; the forward scan steps r's DFA chunk by
   chunk, closing a
   chunk at the unique accepting position whose suffix mark is set.
   The scan reads the dense tables directly — one array load per byte. *)

type star_bounds = ws -> string -> int -> int -> int array

let make_star_bounds r : star_bounds =
  if Regex.nullable r then
    invalid_arg "make_star_splitter: body accepts the empty string";
  let d = Dfa.compile r in
  let dstar_rev = Dfa.compile (Regex.reverse (Regex.star r)) in
  let table = Dfa.raw_table d in
  let accept = Dfa.raw_accept d in
  let sink = Dfa.sink d in
  fun ws s pos len ->
    if len = 0 then [| pos |]
    else begin
      let suf = suf_scratch ws (len + 1) in
      let (_ : int) = Dfa.suffix_marks_sub dstar_rev s ~pos ~len ~into:suf in
      if Bytes.get suf 0 <> '\001' then
        split_error "%S does not belong to (%a)*" (sub_for_error s pos len)
          Regex.pp r;
      let stop = pos + len in
      let bounds = ref (Array.make 16 0) in
      let nb = ref 1 in
      !bounds.(0) <- pos;
      let push b =
        if !nb >= Array.length !bounds then begin
          let bigger = Array.make (2 * Array.length !bounds) 0 in
          Array.blit !bounds 0 bigger 0 !nb;
          bounds := bigger
        end;
        !bounds.(!nb) <- b;
        incr nb
      in
      let i = ref pos in
      while !i < stop do
        (* Scan forward from !i with the chunk DFA; the chunk closes at
           the first accepting position whose suffix is still in the
           star — by static unambiguity, the only one. *)
        let found = ref (-1) in
        let st = ref Dfa.initial in
        let j = ref !i in
        (try
           while !j < stop && !found < 0 do
             st :=
               Array.unsafe_get table
                 ((!st lsl 8) lor Char.code (String.unsafe_get s !j));
             if !st = sink then raise Exit;
             if
               Array.unsafe_get accept !st
               && Bytes.unsafe_get suf (!j + 1 - pos) = '\001'
             then found := !j + 1;
             incr j
           done
         with Exit -> ());
        if !found < 0 then
          split_error "no chunking of %S against (%a)*"
            (sub_for_error s pos len) Regex.pp r;
        ws.n_splits <- ws.n_splits + 1;
        push !found;
        i := !found
      done;
      Array.sub !bounds 0 !nb
    end

type star_splitter = string -> string list

let make_star_splitter r : star_splitter =
  let bounds = make_star_bounds r in
  let ws = make_ws () in
  fun s ->
    let bs = bounds ws s 0 (String.length s) in
    List.init
      (Array.length bs - 1)
      (fun i -> String.sub s bs.(i) (bs.(i + 1) - bs.(i)))

(* ------------------------------------------------------------------ *)
(* The k-ary splitter: the unique boundaries of a slice against
   r0 . r1 . ... . r(k-1), by backtracking descent.  Level i scans its
   part's DFA forward and, at each accepting position, tentatively
   commits and descends to level i+1; a misjudged boundary is detected
   one level down, usually within a byte (the next part's DFA drops
   into its sink), and the scan resumes where it left off.  The final
   part must span to the end of the slice, which is the parse's only
   full verification — so a well-typed slice costs essentially one DFA
   step per byte, and no suffix pass, no rest-language re-scan per
   level, no intermediate copies.  Static unambiguity (checked at lens
   construction) guarantees the first complete parse is the only one. *)

type multi_bounds = ws -> string -> int -> int -> int array

let make_multi_bounds parts : multi_bounds =
  let parts = Array.of_list parts in
  let k = Array.length parts in
  let fwd = Array.map Dfa.compile parts in
  fun ws s pos len ->
    if k = 0 then begin
      if len <> 0 then
        split_error "%S against an empty concatenation"
          (sub_for_error s pos len);
      [| pos |]
    end
    else if k = 1 then [| pos; pos + len |]
    else begin
      let stop = pos + len in
      let bounds = Array.make (k + 1) pos in
      bounds.(k) <- stop;
      let rec parse i b =
        bounds.(i) <- b;
        if i = k - 1 then tail_matches fwd.(i) s b stop
        else begin
          let d = fwd.(i) in
          let table = Dfa.raw_table d in
          let accept = Dfa.raw_accept d in
          let sink = Dfa.sink d in
          if Array.unsafe_get accept Dfa.initial && parse (i + 1) b then true
          else begin
            let st = ref Dfa.initial in
            let j = ref b in
            let ok = ref false in
            (try
               while !j < stop && not !ok do
                 st :=
                   Array.unsafe_get table
                     ((!st lsl 8) lor Char.code (String.unsafe_get s !j));
                 if !st = sink then raise Exit;
                 if Array.unsafe_get accept !st && parse (i + 1) (!j + 1) then
                   ok := true;
                 incr j
               done
             with Exit -> ());
            !ok
          end
        end
      in
      if not (parse 0 pos) then
        split_error "no split of %S against %a . ..." (sub_for_error s pos len)
          Regex.pp parts.(0);
      ws.n_splits <- ws.n_splits + (k - 1);
      bounds
    end
