open Bx_regex

exception Split_error of string

let split_error fmt = Format.kasprintf (fun m -> raise (Split_error m)) fmt

let rev_string s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

type concat_splitter = string -> string * string

(* suffix_ok.(i) tells whether s[i..] belongs to L(r), computed by running a
   DFA for the reversal of r over the reversed string. *)
let suffix_marks rev_dfa s =
  let n = String.length s in
  let marks_rev = Dfa.prefix_marks rev_dfa (rev_string s) in
  Array.init (n + 1) (fun i -> marks_rev.(n - i))

let make_concat_splitter r1 r2 =
  let d1 = Dfa.compile r1 in
  let d2_rev = Dfa.compile (Regex.reverse r2) in
  fun s ->
    let n = String.length s in
    let prefix_ok = Dfa.prefix_marks d1 s in
    let suffix_ok = suffix_marks d2_rev s in
    let points = ref [] in
    for i = n downto 0 do
      if prefix_ok.(i) && suffix_ok.(i) then points := i :: !points
    done;
    match !points with
    | [ i ] -> (String.sub s 0 i, String.sub s i (n - i))
    | [] -> split_error "no split of %S against %a . %a" s Regex.pp r1 Regex.pp r2
    | _ :: _ ->
        split_error "ambiguous split of %S against %a . %a (%d ways)" s
          Regex.pp r1 Regex.pp r2 (List.length !points)

type star_splitter = string -> string list

let make_star_splitter r =
  if Regex.nullable r then
    invalid_arg "make_star_splitter: body accepts the empty string";
  let d = Dfa.compile r in
  let dstar_rev = Dfa.compile (Regex.reverse (Regex.star r)) in
  (* The sink state (empty residual), if present, lets the chunk scan stop
     early; -1 when absent, which no live state ever equals. *)
  let sink = Dfa.sink d in
  fun s ->
    if s = "" then []
    else begin
      let n = String.length s in
      let suffix_ok = suffix_marks dstar_rev s in
      if not suffix_ok.(0) then
        split_error "%S does not belong to (%a)*" s Regex.pp r;
      let rec chunks i acc =
        if i >= n then List.rev acc
        else begin
          (* Scan forward from i with the chunk DFA; the unique end is the
             accepting position whose suffix is still in r*. *)
          let found = ref None in
          let st = ref Dfa.initial in
          (try
             for j = i to n - 1 do
               st := Dfa.step d !st s.[j];
               if !st = sink then raise Exit;
               if Dfa.accepting d !st && suffix_ok.(j + 1) then begin
                 match !found with
                 | None -> found := Some (j + 1)
                 | Some _ ->
                     split_error "ambiguous chunking of %S against (%a)*" s
                       Regex.pp r
               end
             done
           with Exit -> ());
          match !found with
          | None -> split_error "no chunking of %S against (%a)*" s Regex.pp r
          | Some j -> chunks j (String.sub s i (j - i) :: acc)
        end
      in
      chunks 0 []
    end
