(** Typed string lenses in the style of Boomerang (Bohannon, Foster,
    Pierce, Pilkiewicz, Schmitt: "Boomerang: Resourceful Lenses for String
    Data", POPL 2008) — the system in which the original, asymmetric
    Composers example was written.

    A string lens carries its {e source type} and {e view type} as regular
    expressions.  Combinators check the POPL'08 side conditions at
    construction time (unambiguous concatenation, unique iteration,
    disjoint union) using the exact decision procedures of
    {!Bx_regex.Ambig}, and raise {!Type_error} with a witness string when
    a condition fails.

    {2 Execution model}

    Internally every lens is a triple of {e emitters} running over
    [(string, pos, len)] slices and appending to a shared output buffer:
    combinators pass offsets down and bytes flow directly from the input
    string to the single output buffer, with no intermediate substrings.
    Split positions come from the zero-copy {!Split} engine — shared
    prefix/suffix mark passes per run, a single-pass k-way splitter for
    concatenation chains.  The public [get]/[put]/[create] functions seal
    the emitters behind a per-domain execution context that is reused
    across calls ({!stats} reports reuse rates, bytes processed and
    splits performed). *)

exception Type_error of string

type impl
(** The slice-emitter implementation of a lens (opaque). *)

type t = {
  stype : Bx_regex.Regex.t;  (** The source language. *)
  vtype : Bx_regex.Regex.t;  (** The view language. *)
  get : string -> string;
  put : string -> string -> string;  (** [put view source]. *)
  create : string -> string;
  impl : impl;  (** The zero-copy engine behind the string functions. *)
  shape : shape;  (** Structural reflection for {!Slens_delta}. *)
}

(** How the root of the lens decomposes its documents, as much as the
    delta layer needs to localise an edit: a star at the root exposes
    its chunking and alignment policy; everything else is [Opaque] and
    delta operations on it fall back to the full functions.  Correctness
    never depends on the shape — it only gates the fast path. *)
and shape = Opaque | Star of star_shape

and star_shape = {
  body : t;  (** The iterated body lens. *)
  align : align_kind;  (** How [put] pairs view chunks with source chunks. *)
  sbounds : Split.star_bounds;  (** Chunker for source-type slices. *)
  vbounds : Split.star_bounds;  (** Chunker for view-type slices. *)
}

and align_kind =
  | Positional  (** {!star}: i-th view chunk reuses i-th source chunk. *)
  | Keyed of (string -> string)
      (** {!star_key}: first unconsumed source chunk with the same key. *)
  | Diffed of (string -> string)
      (** {!star_diff}: longest common subsequence of chunk keys. *)

(** {1 Primitives} *)

val copy : Bx_regex.Regex.t -> t
(** Identity on [L(r)]. *)

val const : stype:Bx_regex.Regex.t -> view:string -> default:string -> t
(** Map every source in [L(stype)] to the fixed [view] string.  [put]
    restores the old source (the view carries no information); [create]
    returns [default], which must belong to [L(stype)]. *)

val del : Bx_regex.Regex.t -> default:string -> t
(** Delete the source: [const ~view:""]. *)

val ins : string -> t
(** Insert a fixed string into the view; source type is the empty string. *)

val of_funs :
  stype:Bx_regex.Regex.t ->
  vtype:Bx_regex.Regex.t ->
  get:(string -> string) ->
  put:(string -> string -> string) ->
  create:(string -> string) ->
  t
(** Wrap opaque string functions as a lens (no side conditions are
    checked — the caller vouches for well-behavedness).  Used by
    {!Canonizer} quotients; when such a lens runs inside a larger lens,
    its argument slices are materialised at this boundary. *)

(** {1 Combinators} *)

val concat : t -> t -> t
(** Sequential juxtaposition.  Requires unambiguous concatenation of the
    two source types and of the two view types. *)

val concat_list : t list -> t
(** k-ary juxtaposition; the empty list is [copy] of the empty string.
    Runs on the single-pass k-way splitter — one shared suffix pass for
    all the rest-languages instead of a chain of pairwise splits. *)

val union : t -> t -> t
(** Conditional choice.  Requires disjoint source types.  On [put], the
    branch is chosen by the view's type, preferring the branch that also
    matches the old source (overlapping view types are permitted).
    Membership tests short-circuit: the common case decides after two
    DFA scans. *)

val star : t -> t
(** Kleene iteration with {e positional} alignment on [put]: the i-th view
    chunk is put into the i-th source chunk; surplus view chunks are
    created, surplus source chunks discarded.  Requires unique iterability
    of both source and view types. *)

val star_key : key:(string -> string) -> t -> t
(** Kleene iteration with {e dictionary (resourceful) alignment} on [put]
    (POPL'08 dictionary lenses): each view chunk is matched, by [key], to
    the first unconsumed source chunk whose view has the same key, so the
    hidden parts of a chunk follow their key under reordering.  Source
    chunks are indexed by key in a hash table of queues, so alignment is
    linear in the number of chunks.  Same typing obligations as {!star}. *)

val star_diff : key:(string -> string) -> t -> t
(** Kleene iteration with {e order-respecting (diff) alignment} on [put]:
    a longest common subsequence of chunk keys decides which view chunks
    reuse which source chunks, so insertions and deletions in the middle
    of a long list keep every other chunk's hidden data — even with
    duplicate keys, which defeat {!star_key}'s greedy first-match.  Same
    typing obligations as {!star}. *)

val separated : sep:t -> t -> t
(** [separated ~sep l] is the derived lens for a possibly-empty
    [l (sep l)*] list: [l] chunks separated by [sep], or the empty
    string. *)

val compose : t -> t -> t
(** Sequential composition.  Requires the first lens's view type and the
    second's source type to denote the same language. *)

val swap : t -> t -> t
(** Juxtapose two lenses but present them in the opposite order in the
    view. *)

val permute : order:int list -> t list -> t
(** [permute ~order ls] juxtaposes the lenses in list order on the source
    side and presents their views permuted by [order] ([order] lists, for
    each view position, the index of the lens whose view appears there —
    [swap l1 l2] is [permute ~order:[1; 0] [l1; l2]]).  Raises
    {!Type_error} if [order] is not a permutation of [0 .. length-1], or
    on ambiguous concatenations on either side. *)

(** {1 Batched execution} *)

val get_all : ?workers:int -> t -> string list -> string list
(** [get_all ~workers l sources] maps [l.get] over independent documents,
    fanning the work across [workers] domains (default [1] = sequential).
    Documents are claimed from a shared counter, so uneven sizes balance;
    order is preserved.  Each domain reuses its own execution context. *)

val put_all : ?workers:int -> t -> (string * string) list -> string list
(** [put_all ~workers l pairs] maps [l.put view source] over [(view,
    source)] pairs, in parallel like {!get_all}. *)

val create_all : ?workers:int -> t -> string list -> string list
(** [create_all ~workers l views] maps [l.create] in parallel. *)

val parallel_map : workers:int -> ('a -> 'b) -> 'a list -> 'b list
(** The domain fan-out underneath {!get_all}: items are claimed from a
    shared counter by [workers] domains, order is preserved, and every
    domain is joined before the call returns.  If any item's function
    raised, the exception of the {e first such item in list order} is
    re-raised (with its backtrace) after the whole batch has drained —
    so one bad document fails the batch deterministically without
    leaving domains running. *)

val parallel_map_results :
  workers:int -> ('a -> 'b) -> 'a list -> ('b, string) result list
(** The domain fan-out underneath {!get_all} with per-item failure
    accounting instead of fail-the-batch semantics: each item's outcome
    is returned in order, an exception in one item becoming [Error msg]
    for that item while every sibling still runs to completion and every
    domain is joined.  This is what callers fanning whole client loops
    across domains want — the load generator reports a crashed client
    domain in its run summary instead of aborting the run.  The
    [slens.batch.worker] failpoint fires once per item here too. *)

(** {1 Engine statistics} *)

type stats = {
  bytes : int;  (** Input bytes entering top-level lens runs. *)
  splits : int;  (** Split decisions made by the slice engine. *)
  ctx_reuse : int;  (** Runs that reused their domain's context. *)
  ctx_fresh : int;  (** Runs that had to allocate a context. *)
}

val stats : unit -> stats
(** Process-global engine counters (domain-safe). *)

val reset_stats : unit -> unit

(** {1 Inspection and checking} *)

val in_source : t -> string -> bool
(** Membership of a string in the lens's source type. *)

val in_view : t -> string -> bool
(** Membership of a string in the lens's view type. *)

val to_lens : t -> (string, string) Bx.Lens.t
(** Forget the types and view the string lens as a framework lens, so the
    generic lens laws of {!Bx.Lens} apply. *)

val get_put_law : t -> string Bx.Law.t
(** GetPut specialised to string lenses (inputs outside the source type are
    vacuously accepted). *)

val put_get_law : t -> (string * string) Bx.Law.t
(** PutGet specialised to string lenses: inputs are [(source, view)];
    ill-typed inputs are vacuously accepted. *)

(** {1 Engine hooks}

    Low-level access to the slice engine for {!Slens_delta}, which
    splices untouched source bytes around re-run chunks.  Not for
    general use: emitters assume well-typed slices and the caller is
    responsible for upholding that invariant. *)
module Internal : sig
  type ctx
  (** The per-domain execution context of a run. *)

  val exec : int -> (ctx -> unit) -> string
  (** [exec input_bytes emit] acquires the calling domain's context,
      runs [emit], and returns the bytes it appended.  [input_bytes] is
      the instrumentation charge recorded in {!stats}. *)

  val ws : ctx -> Split.ws
  (** The splitter workspace, for running {!Split.star_bounds} closures. *)

  val out_length : ctx -> int
  (** Bytes emitted so far — chunk offsets of the output under
      construction. *)

  val blit : ctx -> string -> int -> int -> unit
  (** Append a raw slice verbatim to the output. *)

  val e_get : t -> ctx -> string -> int -> int -> unit
  val e_put : t -> ctx -> string -> int -> int -> string -> int -> int -> unit
  val e_create : t -> ctx -> string -> int -> int -> unit

  val key_pairing : skeys:string array -> vkeys:string array -> int array
  (** {!star_key}'s alignment over materialised key arrays: for each
      view chunk, the source chunk it reuses ([-1] = create), following
      the first-unconsumed-match discipline. *)

  val diff_pairing : skeys:string array -> vkeys:string array -> int array
  (** {!star_diff}'s alignment: reuse decided by a longest common
      subsequence of the key arrays ([-1] = create). *)
end
