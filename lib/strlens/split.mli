(** Unique splitting of strings against unambiguous regular expressions —
    the parsing engine behind the string-lens combinators.

    Splitters are built once per lens (constructing the DFAs involved) and
    then applied to many strings.  They assume the ambiguity side conditions
    of {!Bx_regex.Ambig} have been established; if an input nevertheless
    splits zero or several ways, {!Split_error} is raised.

    The engine is {e zero-copy}: the position-returning entry points
    ({!make_concat_pos}, {!make_star_bounds}, {!make_multi_bounds}) work on
    [(string, pos, len)] slices and return split {e offsets}, never
    substrings.  Because the unambiguity side conditions are established
    statically, a well-typed slice has exactly one decomposition, and
    the splitters use {e first-match} parsing: scan forward with the
    part's DFA and accept the first position from which the rest of the
    slice belongs to the rest-language (checked by running the rest DFA
    forward, which kills wrong candidates at its sink within a byte or
    two).  The star chunker amortises that check into one right-to-left
    suffix-mark pass — a DFA for the reversed star run over the original
    bytes, so no reversed copy of the input is ever built — written into
    a caller-supplied {!ws} workspace that one lens execution reuses for
    every split it performs.  The string-returning splitters
    ({!make_concat_splitter}, {!make_star_splitter}) are thin
    compatibility wrappers over the slice engine. *)

exception Split_error of string

val rev_string : string -> string
(** Reverse a string (exposed for tests). *)

(** {1 Workspace} *)

type ws
(** Reusable scratch: the star chunker's suffix-mark buffer (grown
    geometrically on demand) and the split counter.  A workspace must
    not be shared between concurrently executing lens runs; give each
    domain its own. *)

val make_ws : unit -> ws

val splits_performed : ws -> int
(** Split decisions made through this workspace since {!reset_splits} —
    the engine's instrumentation counter. *)

val reset_splits : ws -> unit

(** {1 Slice splitters (zero-copy)} *)

type concat_pos = ws -> string -> int -> int -> int
(** [split ws s pos len] returns the absolute offset of the unique
    boundary of [s[pos .. pos+len)] against [r1 . r2]. *)

val make_concat_pos : Bx_regex.Regex.t -> Bx_regex.Regex.t -> concat_pos
(** Build a boundary finder for the (unambiguous) concatenation
    [r1 . r2]: first-match with [r1]'s DFA, each candidate verified by
    running [r2]'s DFA over the remainder (sink bail-out). *)

type star_bounds = ws -> string -> int -> int -> int array
(** [bounds ws s pos len] returns the chunk boundaries of
    [s[pos .. pos+len)] against [r*]: an array [b] with [b.(0) = pos],
    [b.(n) = pos + len], chunk [i] spanning [b.(i) .. b.(i+1))].  The
    empty slice yields [[| pos |]] (zero chunks). *)

val make_star_bounds : Bx_regex.Regex.t -> star_bounds
(** Build a chunker for the (uniquely iterable) [r*].  Requires
    [ε ∉ L(r)]; raises [Invalid_argument] otherwise. *)

type multi_bounds = ws -> string -> int -> int -> int array
(** [bounds ws s pos len] returns the [k+1] part boundaries of
    [s[pos .. pos+len)] against [r0 . r1 . ... . r(k-1)]. *)

val make_multi_bounds : Bx_regex.Regex.t list -> multi_bounds
(** Build a k-way splitter for an (unambiguous) concatenation chain.
    Each level closes by first-match against one DFA for its whole
    rest-language — no pairwise chain over shrinking substring copies,
    no intermediate strings at all. *)

(** {1 String splitters (compatibility wrappers)} *)

type concat_splitter = string -> string * string
(** Split a string of [L(r1)·L(r2)] into its unique [r1]-prefix and
    [r2]-suffix. *)

val make_concat_splitter : Bx_regex.Regex.t -> Bx_regex.Regex.t -> concat_splitter

type star_splitter = string -> string list
(** Split a string of the iteration of [r] into its unique sequence of
    [r]-chunks. *)

val make_star_splitter : Bx_regex.Regex.t -> star_splitter
