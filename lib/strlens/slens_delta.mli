(** Incremental (delta) propagation for string lenses — the
    edit-propagating counterpart of {!Slens}, in the spirit of the
    delta-lens and edit-lens literature (Abou-Saleh, Cheney et al.,
    "Notions of bidirectional computation and entangled state monads";
    Pacheco et al., "A generic scheme and properties of bidirectional
    transformations"): instead of re-running [put] or [get] over a whole
    document for a one-line change, propagate the {e edit}.

    {2 Model}

    A lens whose root is a star ({!Slens.star}, {!Slens.star_key},
    {!Slens.star_diff}) decomposes both its source and its view into
    chunks, and [put]/[get] work chunk-wise.  An edit to the view (or
    source) therefore only {e dirties} the chunks its byte hull
    touches.  [put_delta] localises the edit to a chunk window using
    cached chunk bounds, re-runs the body lens on the window only, and
    splices every untouched source chunk verbatim from the old
    document — for a single-line edit to an n-line document the work is
    O(window), not O(n).

    Three tiers, in decreasing speed:

    - {e fast}: the edit window is rechunked in place and the window's
      alignment decisions provably coincide with full [put]'s (no
      duplicate chunk keys, no window key claiming a chunk outside the
      window, unchanged chunk count for positional stars);
    - {e slow}: the whole new view is rechunked and the alignment is
      replayed from cached chunk keys — still no per-chunk [get] calls
      and byte-identical chunks are spliced, but O(n) pairing;
    - {e fallback}: full {!Slens.t.put} / [get], for opaque-rooted
      lenses, cache misses, or any window that fails to chunk.

    Correctness {e never} depends on the fast path: every tier computes
    exactly the document full [put]/[get] would, and the QCheck suite
    asserts extensional equality against both engines.  Splicing relies
    on the body lens obeying GetPut ([put (get s) s = s]), which every
    combinator-built lens does.

    {2 Cache and preconditions}

    Callers keep one {!cache} per live document.  All delta calls
    require the consistency invariant [view = get source] — the
    document store maintains it by construction.  A cache is private to
    one document and not domain-safe; serialise access per document
    (the server's docstore holds a mutex). *)

type cache
(** Cached decomposition of one (source, view) pair: chunk bounds for
    both sides, per-chunk alignment keys and their index.  Revalidated
    against the strings on every call, so a stale cache costs one
    rebuild, never a wrong answer. *)

val make_cache : unit -> cache

val invalidate : cache -> unit
(** Drop the cached decomposition (the next call rebuilds it). *)

val put_delta :
  Slens.t ->
  cache:cache ->
  source:string ->
  view:string ->
  Sdiff.edit ->
  string * Sdiff.edit
(** [put_delta l ~cache ~source ~view e] propagates the view edit [e]
    backwards: with [new_view = Sdiff.apply view e], returns
    [(new_source, source_edit)] such that [new_source = l.put new_view
    source] (extensionally — the bytes are equal whichever tier ran)
    and [Sdiff.apply source source_edit = new_source].

    Requires [view = l.get source].  Raises {!Sdiff.Bad_edit} on a
    malformed edit and {!Slens.Type_error} if the edited view leaves
    the lens's view type (both before any state is modified). *)

val get_delta :
  Slens.t ->
  cache:cache ->
  source:string ->
  view:string ->
  Sdiff.edit ->
  string * Sdiff.edit
(** [get_delta l ~cache ~source ~view e] propagates the source edit [e]
    forwards: with [new_source = Sdiff.apply source e], returns
    [(new_view, view_edit)] such that [new_view = l.get new_source]
    and [Sdiff.apply view view_edit = new_view].  Same precondition and
    exceptions as {!put_delta}. *)

(** {1 Statistics}

    Process-global, domain-safe counters over all delta traffic. *)

type stats = {
  fast_puts : int;  (** [put_delta] calls served by the window fast path. *)
  slow_puts : int;  (** Served by the full-alignment replay. *)
  fallback_puts : int;  (** Fell back to full [put]. *)
  fast_gets : int;  (** [get_delta] calls served by the window fast path. *)
  fallback_gets : int;  (** Fell back to full [get]. *)
  chunks_reused : int;
      (** Chunks spliced verbatim from the old document (delta calls
          only). *)
  chunks_recomputed : int;  (** Chunks re-run through the body lens. *)
  delta_bytes : int;
      (** Edit payload bytes in and out of delta calls — what the
          journal and replication stream actually carry. *)
  full_bytes : int;
      (** Bytes of the full documents those edits stand for — what a
          non-delta pipeline would have shipped. *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
