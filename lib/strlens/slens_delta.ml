module I = Slens.Internal

(* ------------------------------------------------------------------ *)
(* Instrumentation, process-global and domain-safe. *)

let n_fast_puts = Atomic.make 0
let n_slow_puts = Atomic.make 0
let n_fallback_puts = Atomic.make 0
let n_fast_gets = Atomic.make 0
let n_fallback_gets = Atomic.make 0
let n_reused = Atomic.make 0
let n_recomputed = Atomic.make 0
let n_delta_bytes = Atomic.make 0
let n_full_bytes = Atomic.make 0

type stats = {
  fast_puts : int;
  slow_puts : int;
  fallback_puts : int;
  fast_gets : int;
  fallback_gets : int;
  chunks_reused : int;
  chunks_recomputed : int;
  delta_bytes : int;
  full_bytes : int;
}

let stats () =
  {
    fast_puts = Atomic.get n_fast_puts;
    slow_puts = Atomic.get n_slow_puts;
    fallback_puts = Atomic.get n_fallback_puts;
    fast_gets = Atomic.get n_fast_gets;
    fallback_gets = Atomic.get n_fallback_gets;
    chunks_reused = Atomic.get n_reused;
    chunks_recomputed = Atomic.get n_recomputed;
    delta_bytes = Atomic.get n_delta_bytes;
    full_bytes = Atomic.get n_full_bytes;
  }

let reset_stats () =
  List.iter
    (fun a -> Atomic.set a 0)
    [
      n_fast_puts;
      n_slow_puts;
      n_fallback_puts;
      n_fast_gets;
      n_fallback_gets;
      n_reused;
      n_recomputed;
      n_delta_bytes;
      n_full_bytes;
    ]

let add a k = ignore (Atomic.fetch_and_add a k : int)

(* ------------------------------------------------------------------ *)
(* The cache: the decomposition of one (source, view) pair.  [sb] and
   [vb] are the chunk bounds of source and view (same chunk count — the
   consistency invariant [view = get source] maps chunk-wise), [keys]
   the per-chunk alignment keys for keyed stars, [table] the key ->
   chunk-index map ([dup] marks it untrustworthy: some key occurs on
   more than one chunk, possibly only until the next full rebuild). *)

type star_cache = {
  mutable src : string;
  mutable vw : string;
  mutable sb : int array;
  mutable vb : int array;
  mutable keys : string array; (* [||] for positional stars *)
  table : (string, int) Hashtbl.t;
  mutable dup : bool;
}

type cache = { ws : Split.ws; mutable st : star_cache option }

let make_cache () = { ws = Split.make_ws (); st = None }
let invalidate c = c.st <- None

(* Precondition violations (chunk-count mismatch between the two sides)
   surface as this and route to the full-function fallback. *)
exception Invalid

let keys_of align doc bounds =
  match align with
  | Slens.Positional -> [||]
  | Slens.Keyed key | Slens.Diffed key ->
      let n = Array.length bounds - 1 in
      let ks = Array.make n "" in
      for i = 0 to n - 1 do
        ks.(i) <- key (String.sub doc bounds.(i) (bounds.(i + 1) - bounds.(i)))
      done;
      ks

let rebuild_table st =
  Hashtbl.reset st.table;
  st.dup <- false;
  Array.iteri
    (fun i k ->
      if Hashtbl.mem st.table k then st.dup <- true
      else Hashtbl.add st.table k i)
    st.keys

let ensure_cache c (sh : Slens.star_shape) ~source ~view =
  match c.st with
  | Some st
    when (st.src == source || String.equal st.src source)
         && (st.vw == view || String.equal st.vw view) ->
      st
  | _ ->
      let sb = sh.sbounds c.ws source 0 (String.length source) in
      let vb = sh.vbounds c.ws view 0 (String.length view) in
      if Array.length sb <> Array.length vb then raise Invalid;
      let keys = keys_of sh.align view vb in
      let st =
        match c.st with
        | Some st ->
            st.src <- source;
            st.vw <- view;
            st.sb <- sb;
            st.vb <- vb;
            st.keys <- keys;
            st
        | None ->
            let st =
              {
                src = source;
                vw = view;
                sb;
                vb;
                keys;
                table = Hashtbl.create 64;
                dup = false;
              }
            in
            c.st <- Some st;
            st
      in
      rebuild_table st;
      st

(* ------------------------------------------------------------------ *)
(* Small pure helpers *)

(* Largest index i with a.(i) <= x (requires a.(0) <= x). *)
let find_le a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo + 1) / 2) in
    if a.(mid) <= x then lo := mid else hi := mid - 1
  done;
  !lo

(* Smallest index j with a.(j) >= x (requires a.(last) >= x). *)
let find_ge a x =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if a.(mid) >= x then hi := mid else lo := mid + 1
  done;
  !lo

let slices_equal a apos alen b bpos blen =
  alen = blen
  &&
  let rec eq i =
    i >= alen
    || String.unsafe_get a (apos + i) = String.unsafe_get b (bpos + i)
       && eq (i + 1)
  in
  eq 0

(* Replace bound entries ci..cj of [old] with [window] (absolute values,
   [window.(0) = old.(ci)]) and shift everything after by [shift]. *)
let splice_bounds old ci cj window shift =
  let n_old = Array.length old in
  let mw = Array.length window - 1 in
  let out = Array.make (ci + mw + (n_old - 1 - cj) + 1) 0 in
  Array.blit old 0 out 0 ci;
  Array.blit window 0 out ci (mw + 1);
  for k = cj + 1 to n_old - 1 do
    out.(ci + mw + (k - cj)) <- old.(k) + shift
  done;
  out

(* Replace slots ci..cj-1 of [old] with [window]. *)
let splice_arr old ci cj window =
  let n = Array.length old in
  let mw = Array.length window in
  let out = Array.make (n - (cj - ci) + mw) "" in
  Array.blit old 0 out 0 ci;
  Array.blit window 0 out ci mw;
  Array.blit old cj out (ci + mw) (n - cj);
  out

(* Incremental key-table maintenance for a same-chunk-count window
   replacement: suffix indexes are unchanged, so only the window's
   bindings move.  Only called when the table was exact (no dup). *)
let patch_table st ~ci ~cj ~old_keys ~new_keys =
  for i = ci to cj - 1 do
    Hashtbl.remove st.table old_keys.(i)
  done;
  Array.iteri
    (fun j k ->
      if Hashtbl.mem st.table k then st.dup <- true
      else Hashtbl.add st.table k (ci + j))
    new_keys

(* ------------------------------------------------------------------ *)
(* put_delta tiers *)

(* Slow tier: rechunk the whole new view and replay full put's
   alignment from the cached chunk keys — the cached keys ARE what full
   put would compute per chunk (key (get chunk)), so the pairing
   decisions coincide exactly; byte-identical chunks are spliced
   (GetPut), the rest re-run the body lens.  No per-chunk get calls. *)
let slow_put (sh : Slens.star_shape) c st ~source ~new_view =
  Atomic.incr n_slow_puts;
  let nvb = sh.vbounds c.ws new_view 0 (String.length new_view) in
  let m = Array.length nvb - 1 in
  let nkeys = keys_of sh.align new_view nvb in
  let ns_chunks = Array.length st.sb - 1 in
  let pair =
    match sh.align with
    | Slens.Positional ->
        let p = Array.make m (-1) in
        for j = 0 to m - 1 do
          if j < ns_chunks then p.(j) <- j
        done;
        p
    | Slens.Keyed _ -> I.key_pairing ~skeys:st.keys ~vkeys:nkeys
    | Slens.Diffed _ -> I.diff_pairing ~skeys:st.keys ~vkeys:nkeys
  in
  let nsb = Array.make (m + 1) 0 in
  let reused = ref 0 and recomputed = ref 0 in
  let new_source =
    I.exec (String.length new_view) (fun ctx ->
        for j = 0 to m - 1 do
          nsb.(j) <- I.out_length ctx;
          let vpos = nvb.(j) and vlen = nvb.(j + 1) - nvb.(j) in
          match pair.(j) with
          | -1 ->
              incr recomputed;
              I.e_create sh.body ctx new_view vpos vlen
          | i ->
              if
                slices_equal new_view vpos vlen st.vw st.vb.(i)
                  (st.vb.(i + 1) - st.vb.(i))
              then begin
                incr reused;
                I.blit ctx source st.sb.(i) (st.sb.(i + 1) - st.sb.(i))
              end
              else begin
                incr recomputed;
                I.e_put sh.body ctx new_view vpos vlen source st.sb.(i)
                  (st.sb.(i + 1) - st.sb.(i))
              end
        done;
        nsb.(m) <- I.out_length ctx)
  in
  add n_reused !reused;
  add n_recomputed !recomputed;
  let se = Sdiff.diff source new_source in
  st.src <- new_source;
  st.vw <- new_view;
  st.sb <- nsb;
  st.vb <- nvb;
  st.keys <- nkeys;
  rebuild_table st;
  (new_source, se)

(* Fast tier: only the window [ci, cj) is rechunked and re-aligned;
   everything outside is spliced wholesale and the source edit is the
   single hunk covering the window's source span. *)
let fast_put (sh : Slens.star_shape) st ~source ~new_view ~ci ~cj ~wb ~pair
    ~ykeys =
  Atomic.incr n_fast_puts;
  let mw = Array.length wb - 1 in
  let old_mw = cj - ci in
  let src_len = String.length source in
  let wsb = Array.make (mw + 1) 0 in
  let reused = ref 0 and recomputed = ref 0 in
  let new_source =
    I.exec (wb.(mw) - wb.(0)) (fun ctx ->
        I.blit ctx source 0 st.sb.(ci);
        for j = 0 to mw - 1 do
          wsb.(j) <- I.out_length ctx;
          let vpos = wb.(j) and vlen = wb.(j + 1) - wb.(j) in
          match pair.(j) with
          | -1 ->
              incr recomputed;
              I.e_create sh.body ctx new_view vpos vlen
          | li ->
              let i = ci + li in
              if
                slices_equal new_view vpos vlen st.vw st.vb.(i)
                  (st.vb.(i + 1) - st.vb.(i))
              then begin
                incr reused;
                I.blit ctx source st.sb.(i) (st.sb.(i + 1) - st.sb.(i))
              end
              else begin
                incr recomputed;
                I.e_put sh.body ctx new_view vpos vlen source st.sb.(i)
                  (st.sb.(i + 1) - st.sb.(i))
              end
        done;
        wsb.(mw) <- I.out_length ctx;
        I.blit ctx source st.sb.(cj) (src_len - st.sb.(cj)))
  in
  add n_reused (!reused + (Array.length st.sb - 1 - old_mw));
  add n_recomputed !recomputed;
  let drop = st.sb.(cj) - st.sb.(ci) in
  let ins_len = wsb.(mw) - wsb.(0) in
  let se =
    if
      ins_len = drop
      && slices_equal new_source wsb.(0) ins_len source st.sb.(ci) drop
    then Sdiff.empty
    else
      [
        {
          Sdiff.at = st.sb.(ci);
          drop;
          insert = String.sub new_source wsb.(0) ins_len;
        };
      ]
  in
  let old_keys = st.keys in
  let new_vb = splice_bounds st.vb ci cj wb (wb.(mw) - st.vb.(cj)) in
  let new_sb = splice_bounds st.sb ci cj wsb (ins_len - drop) in
  st.src <- new_source;
  st.vw <- new_view;
  st.sb <- new_sb;
  st.vb <- new_vb;
  (match sh.align with
  | Slens.Positional -> ()
  | Slens.Keyed _ | Slens.Diffed _ ->
      st.keys <- splice_arr old_keys ci cj ykeys;
      if mw = old_mw then patch_table st ~ci ~cj ~old_keys ~new_keys:ykeys
      else rebuild_table st);
  (new_source, se)

(* Dispatch: decide whether the window's alignment decisions provably
   coincide with full put's.
   - Positional: yes iff the window's chunk count is unchanged (a count
     change re-pairs every chunk after the window).
   - Keyed/Diffed: yes if no key is duplicated across the old document
     and no new window key claims a chunk outside the window — then
     every outside chunk pairs with itself and the window pairs
     locally, by the same pairing function full put uses. *)
let star_put (sh : Slens.star_shape) c ~source ~view ~new_view ~a ~b_old
    ~b_new =
  let st = ensure_cache c sh ~source ~view in
  let ci = find_le st.vb a in
  let cj = find_ge st.vb b_old in
  let p = st.vb.(ci) and q = st.vb.(cj) in
  let shift = b_new - b_old in
  let window () = sh.vbounds c.ws new_view p (q + shift - p) in
  match sh.align with
  | Slens.Positional -> (
      match window () with
      | wb when Array.length wb - 1 = cj - ci ->
          let mw = Array.length wb - 1 in
          fast_put sh st ~source ~new_view ~ci ~cj ~wb
            ~pair:(Array.init mw Fun.id) ~ykeys:[||]
      | _ | (exception Split.Split_error _) ->
          slow_put sh c st ~source ~new_view)
  | Slens.Keyed key | Slens.Diffed key -> (
      if st.dup then slow_put sh c st ~source ~new_view
      else
        match window () with
        | exception Split.Split_error _ -> slow_put sh c st ~source ~new_view
        | wb ->
            let mw = Array.length wb - 1 in
            let ykeys = Array.make mw "" in
            for j = 0 to mw - 1 do
              ykeys.(j) <- key (String.sub new_view wb.(j) (wb.(j + 1) - wb.(j)))
            done;
            let outside = ref false in
            for j = 0 to mw - 1 do
              match Hashtbl.find_opt st.table ykeys.(j) with
              | Some i when i < ci || i >= cj -> outside := true
              | _ -> ()
            done;
            if !outside then slow_put sh c st ~source ~new_view
            else
              let skeys = Array.sub st.keys ci (cj - ci) in
              let pairing =
                match sh.align with
                | Slens.Keyed _ -> I.key_pairing
                | _ -> I.diff_pairing
              in
              fast_put sh st ~source ~new_view ~ci ~cj ~wb
                ~pair:(pairing ~skeys ~vkeys:ykeys)
                ~ykeys)

let put_delta (l : Slens.t) ~cache:c ~source ~view edit =
  let new_view, (a, b_old, b_new) = Sdiff.apply_with_span view edit in
  if Sdiff.is_empty edit then (source, Sdiff.empty)
  else begin
    let fallback () =
      Atomic.incr n_fallback_puts;
      let ns = l.Slens.put new_view source in
      let se = Sdiff.diff source ns in
      (match l.Slens.shape with
      | Slens.Opaque -> ()
      | Slens.Star sh -> (
          c.st <- None;
          try ignore (ensure_cache c sh ~source:ns ~view:new_view)
          with _ -> c.st <- None));
      (ns, se)
    in
    let ((ns, se) as result) =
      match l.Slens.shape with
      | Slens.Opaque -> fallback ()
      | Slens.Star sh -> (
          match star_put sh c ~source ~view ~new_view ~a ~b_old ~b_new with
          | r -> r
          | exception Split.Split_error _ ->
              c.st <- None;
              fallback ()
          | exception Invalid ->
              c.st <- None;
              fallback ())
    in
    add n_delta_bytes (Sdiff.payload_bytes edit + Sdiff.payload_bytes se);
    add n_full_bytes (String.length new_view + String.length ns);
    result
  end

(* ------------------------------------------------------------------ *)
(* get_delta: always chunk-wise — get needs no alignment, so the fast
   path is gated only on the window chunking cleanly. *)

let star_get (sh : Slens.star_shape) c ~source ~view ~new_source ~a ~b_old
    ~b_new =
  let st = ensure_cache c sh ~source ~view in
  let ci = find_le st.sb a in
  let cj = find_ge st.sb b_old in
  let p = st.sb.(ci) and q = st.sb.(cj) in
  let shift = b_new - b_old in
  let wsb = sh.sbounds c.ws new_source p (q + shift - p) in
  Atomic.incr n_fast_gets;
  let mw = Array.length wsb - 1 in
  let old_mw = cj - ci in
  let wvb = Array.make (mw + 1) 0 in
  let reused = ref 0 and recomputed = ref 0 in
  let new_view =
    I.exec (q + shift - p) (fun ctx ->
        I.blit ctx view 0 st.vb.(ci);
        for j = 0 to mw - 1 do
          wvb.(j) <- I.out_length ctx;
          let spos = wsb.(j) and slen = wsb.(j + 1) - wsb.(j) in
          if
            j < old_mw
            && slices_equal new_source spos slen source
                 st.sb.(ci + j)
                 (st.sb.(ci + j + 1) - st.sb.(ci + j))
          then begin
            incr reused;
            I.blit ctx view st.vb.(ci + j) (st.vb.(ci + j + 1) - st.vb.(ci + j))
          end
          else begin
            incr recomputed;
            I.e_get sh.body ctx new_source spos slen
          end
        done;
        wvb.(mw) <- I.out_length ctx;
        I.blit ctx view st.vb.(cj) (String.length view - st.vb.(cj)))
  in
  add n_reused (!reused + (Array.length st.sb - 1 - old_mw));
  add n_recomputed !recomputed;
  let drop = st.vb.(cj) - st.vb.(ci) in
  let ins_len = wvb.(mw) - wvb.(0) in
  let ve =
    if
      ins_len = drop
      && slices_equal new_view wvb.(0) ins_len view st.vb.(ci) drop
    then Sdiff.empty
    else
      [
        {
          Sdiff.at = st.vb.(ci);
          drop;
          insert = String.sub new_view wvb.(0) ins_len;
        };
      ]
  in
  let old_keys = st.keys in
  let new_sb = splice_bounds st.sb ci cj wsb shift in
  let new_vb = splice_bounds st.vb ci cj wvb (ins_len - drop) in
  st.src <- new_source;
  st.vw <- new_view;
  st.sb <- new_sb;
  st.vb <- new_vb;
  (match sh.align with
  | Slens.Positional -> ()
  | Slens.Keyed key | Slens.Diffed key ->
      let ykeys = Array.make mw "" in
      for j = 0 to mw - 1 do
        ykeys.(j) <- key (String.sub new_view wvb.(j) (wvb.(j + 1) - wvb.(j)))
      done;
      st.keys <- splice_arr old_keys ci cj ykeys;
      if mw = old_mw && not st.dup then
        patch_table st ~ci ~cj ~old_keys ~new_keys:ykeys
      else rebuild_table st);
  (new_view, ve)

let get_delta (l : Slens.t) ~cache:c ~source ~view edit =
  let new_source, (a, b_old, b_new) = Sdiff.apply_with_span source edit in
  if Sdiff.is_empty edit then (view, Sdiff.empty)
  else begin
    let fallback () =
      Atomic.incr n_fallback_gets;
      let nv = l.Slens.get new_source in
      let ve = Sdiff.diff view nv in
      (match l.Slens.shape with
      | Slens.Opaque -> ()
      | Slens.Star sh -> (
          c.st <- None;
          try ignore (ensure_cache c sh ~source:new_source ~view:nv)
          with _ -> c.st <- None));
      (nv, ve)
    in
    let ((nv, ve) as result) =
      match l.Slens.shape with
      | Slens.Opaque -> fallback ()
      | Slens.Star sh -> (
          match star_get sh c ~source ~view ~new_source ~a ~b_old ~b_new with
          | r -> r
          | exception Split.Split_error _ ->
              c.st <- None;
              fallback ()
          | exception Invalid ->
              c.st <- None;
              fallback ())
    in
    add n_delta_bytes (Sdiff.payload_bytes edit + Sdiff.payload_bytes ve);
    add n_full_bytes (String.length new_source + String.length nv);
    result
  end
