(** The pre-slice {e copying} string-lens engine, kept as a reference
    implementation.  Same combinators and side conditions as {!Slens},
    but execution materialises every intermediate substring.  It exists
    for two purposes: the property suite checks the zero-copy engine
    extensionally equal to this one, and the benchmarks measure the
    speedup against it.  Applications should use {!Slens}. *)

exception Type_error of string

type t = {
  stype : Bx_regex.Regex.t;
  vtype : Bx_regex.Regex.t;
  get : string -> string;
  put : string -> string -> string;
  create : string -> string;
}

val copy : Bx_regex.Regex.t -> t
val const : stype:Bx_regex.Regex.t -> view:string -> default:string -> t
val del : Bx_regex.Regex.t -> default:string -> t
val ins : string -> t
val concat : t -> t -> t
val concat_list : t list -> t
val union : t -> t -> t
val star : t -> t
val star_key : key:(string -> string) -> t -> t
val star_diff : key:(string -> string) -> t -> t
val separated : sep:t -> t -> t
val compose : t -> t -> t
val swap : t -> t -> t
val permute : order:int list -> t list -> t
val in_source : t -> string -> bool
val in_view : t -> string -> bool
