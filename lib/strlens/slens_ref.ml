(* The pre-slice (copying) string-lens engine, kept verbatim as a
   reference implementation: every combinator materialises the
   substrings it works on and concatenates its children's results.
   The QCheck equivalence suite asserts that the zero-copy engine in
   [Slens] computes exactly the same functions, and the P7 benchmark
   series measures the sliced engine against this one.  Not exported
   for application use. *)

open Bx_regex

exception Type_error of string

let type_error fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

(* ------------------------------------------------------------------ *)
(* The original splitters, verbatim: full prefix/suffix mark passes
   with a reversed copy of the input, an explicit uniqueness scan, and
   substring copies for every part.  [Split] has since moved on; the
   baseline must not. *)

let split_error fmt =
  Format.kasprintf (fun m -> raise (Split.Split_error m)) fmt

let rev_string s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

(* suffix_ok.(i) tells whether s[i..] belongs to L(r), computed by
   running a DFA for the reversal of r over the reversed string. *)
let suffix_marks rev_dfa s =
  let n = String.length s in
  let marks_rev = Dfa.prefix_marks rev_dfa (rev_string s) in
  Array.init (n + 1) (fun i -> marks_rev.(n - i))

let make_concat_splitter r1 r2 =
  let d1 = Dfa.compile r1 in
  let d2_rev = Dfa.compile (Regex.reverse r2) in
  fun s ->
    let n = String.length s in
    let prefix_ok = Dfa.prefix_marks d1 s in
    let suffix_ok = suffix_marks d2_rev s in
    let points = ref [] in
    for i = n downto 0 do
      if prefix_ok.(i) && suffix_ok.(i) then points := i :: !points
    done;
    match !points with
    | [ i ] -> (String.sub s 0 i, String.sub s i (n - i))
    | [] ->
        split_error "no split of %S against %a . %a" s Regex.pp r1 Regex.pp r2
    | _ :: _ ->
        split_error "ambiguous split of %S against %a . %a (%d ways)" s
          Regex.pp r1 Regex.pp r2 (List.length !points)

let make_star_splitter r =
  if Regex.nullable r then
    invalid_arg "make_star_splitter: body accepts the empty string";
  let d = Dfa.compile r in
  let dstar_rev = Dfa.compile (Regex.reverse (Regex.star r)) in
  let sink = Dfa.sink d in
  fun s ->
    if s = "" then []
    else begin
      let n = String.length s in
      let suffix_ok = suffix_marks dstar_rev s in
      if not suffix_ok.(0) then
        split_error "%S does not belong to (%a)*" s Regex.pp r;
      let rec chunks i acc =
        if i >= n then List.rev acc
        else begin
          let found = ref None in
          let st = ref Dfa.initial in
          (try
             for j = i to n - 1 do
               st := Dfa.step d !st s.[j];
               if !st = sink then raise Exit;
               if Dfa.accepting d !st && suffix_ok.(j + 1) then begin
                 match !found with
                 | None -> found := Some (j + 1)
                 | Some _ ->
                     split_error "ambiguous chunking of %S against (%a)*" s
                       Regex.pp r
               end
             done
           with Exit -> ());
          match !found with
          | None ->
              split_error "no chunking of %S against (%a)*" s Regex.pp r
          | Some j -> chunks j (String.sub s i (j - i) :: acc)
        end
      in
      chunks 0 []
    end

type t = {
  stype : Regex.t;
  vtype : Regex.t;
  get : string -> string;
  put : string -> string -> string;
  create : string -> string;
}

let require_unambig_concat what r1 r2 =
  match Ambig.unambig_concat r1 r2 with
  | Ok () -> ()
  | Error w ->
      type_error "%s: ambiguous concatenation %a . %a (overlap %S)" what
        Regex.pp r1 Regex.pp r2 w

let require_unambig_star what r =
  match Ambig.unambig_star r with
  | Ok () -> ()
  | Error w ->
      type_error "%s: ambiguous iteration of %a (witness %S)" what Regex.pp r w

let copy r =
  {
    stype = r;
    vtype = r;
    get = Fun.id;
    put = (fun v _ -> v);
    create = Fun.id;
  }

let const ~stype ~view ~default =
  if not (Regex.matches stype default) then
    type_error "const: default %S is not in the source type %a" default
      Regex.pp stype;
  {
    stype;
    vtype = Regex.str view;
    get = (fun _ -> view);
    put =
      (fun v s ->
        if String.equal v view then s
        else type_error "const: put view %S differs from constant %S" v view);
    create =
      (fun v ->
        if String.equal v view then default
        else type_error "const: create view %S differs from constant %S" v view);
  }

let del r ~default = const ~stype:r ~view:"" ~default
let ins s = const ~stype:Regex.epsilon ~view:s ~default:""

let concat l1 l2 =
  require_unambig_concat "concat (source)" l1.stype l2.stype;
  require_unambig_concat "concat (view)" l1.vtype l2.vtype;
  let split_s = make_concat_splitter l1.stype l2.stype in
  let split_v = make_concat_splitter l1.vtype l2.vtype in
  {
    stype = Regex.seq l1.stype l2.stype;
    vtype = Regex.seq l1.vtype l2.vtype;
    get =
      (fun s ->
        let s1, s2 = split_s s in
        l1.get s1 ^ l2.get s2);
    put =
      (fun v s ->
        let v1, v2 = split_v v in
        let s1, s2 = split_s s in
        l1.put v1 s1 ^ l2.put v2 s2);
    create =
      (fun v ->
        let v1, v2 = split_v v in
        l1.create v1 ^ l2.create v2);
  }

let concat_list = function
  | [] -> copy Regex.epsilon
  | l :: rest -> List.fold_left concat l rest

let union l1 l2 =
  (match Ambig.disjoint_union l1.stype l2.stype with
  | Ok () -> ()
  | Error w ->
      type_error "union: source types overlap (witness %S)" w);
  {
    stype = Regex.alt l1.stype l2.stype;
    vtype = Regex.alt l1.vtype l2.vtype;
    get =
      (fun s -> if Regex.matches l1.stype s then l1.get s else l2.get s);
    put =
      (fun v s ->
        let v1 = Regex.matches l1.vtype v and v2 = Regex.matches l2.vtype v in
        let s1 = Regex.matches l1.stype s in
        match (v1, v2, s1) with
        | true, _, true -> l1.put v s
        | _, true, false -> l2.put v s
        | true, false, false -> l1.create v
        | false, true, true -> l2.create v
        | false, false, _ ->
            type_error "union: put view %S matches neither view type" v);
    create =
      (fun v ->
        if Regex.matches l1.vtype v then l1.create v
        else if Regex.matches l2.vtype v then l2.create v
        else type_error "union: create view %S matches neither view type" v);
  }

(* Shared skeleton of [star] and [star_key]: the two differ only in how
   view chunks are aligned with old source chunks during [put]. *)
let star_with ~name ~align l =
  require_unambig_star (name ^ " (source)") l.stype;
  require_unambig_star (name ^ " (view)") l.vtype;
  let split_s = make_star_splitter l.stype in
  let split_v = make_star_splitter l.vtype in
  {
    stype = Regex.star l.stype;
    vtype = Regex.star l.vtype;
    get = (fun s -> String.concat "" (List.map l.get (split_s s)));
    put =
      (fun v s ->
        let vchunks = split_v v and schunks = split_s s in
        String.concat "" (align vchunks schunks));
    create = (fun v -> String.concat "" (List.map l.create (split_v v)));
  }

let star l =
  let rec positional vs ss =
    match (vs, ss) with
    | [], _ -> []
    | v :: vs', s :: ss' -> l.put v s :: positional vs' ss'
    | v :: vs', [] -> l.create v :: positional vs' []
  in
  star_with ~name:"star" ~align:positional l

let star_key ~key l =
  let align vchunks schunks =
    let schunk_arr = Array.of_list schunks in
    let consumed = Array.make (Array.length schunk_arr) false in
    let keys = Array.map (fun s -> key (l.get s)) schunk_arr in
    let find_by_key k =
      let rec scan i =
        if i >= Array.length schunk_arr then None
        else if (not consumed.(i)) && String.equal keys.(i) k then begin
          consumed.(i) <- true;
          Some schunk_arr.(i)
        end
        else scan (i + 1)
      in
      scan 0
    in
    List.map
      (fun v ->
        match find_by_key (key v) with
        | Some s -> l.put v s
        | None -> l.create v)
      vchunks
  in
  star_with ~name:"star_key" ~align l

(* Longest common subsequence of two key arrays, as a list of index
   pairs (i_source, j_view), strictly increasing in both components. *)
let lcs_pairs a b =
  let n = Array.length a and m = Array.length b in
  let table = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      table.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + table.(i + 1).(j + 1)
         else max table.(i + 1).(j) table.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if String.equal a.(i) b.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if table.(i + 1).(j) >= table.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let star_diff ~key l =
  let align vchunks schunks =
    let s_arr = Array.of_list schunks in
    let v_arr = Array.of_list vchunks in
    let skeys = Array.map (fun s -> key (l.get s)) s_arr in
    let vkeys = Array.map key v_arr in
    let matched = lcs_pairs skeys vkeys in
    let source_for = Hashtbl.create 16 in
    List.iter (fun (i, j) -> Hashtbl.replace source_for j i) matched;
    List.mapi
      (fun j v ->
        match Hashtbl.find_opt source_for j with
        | Some i -> l.put v s_arr.(i)
        | None -> l.create v)
      vchunks
  in
  star_with ~name:"star_diff" ~align l

let compose l1 l2 =
  (match Lang.equiv_counterexample l1.vtype l2.stype with
  | None -> ()
  | Some w ->
      type_error
        "compose: view type %a and source type %a differ (witness %S)"
        Regex.pp l1.vtype Regex.pp l2.stype w);
  {
    stype = l1.stype;
    vtype = l2.vtype;
    get = (fun s -> l2.get (l1.get s));
    put = (fun v s -> l1.put (l2.put v (l1.get s)) s);
    create = (fun v -> l1.create (l2.create v));
  }

let swap l1 l2 =
  require_unambig_concat "swap (source)" l1.stype l2.stype;
  require_unambig_concat "swap (view)" l2.vtype l1.vtype;
  let split_s = make_concat_splitter l1.stype l2.stype in
  let split_v = make_concat_splitter l2.vtype l1.vtype in
  {
    stype = Regex.seq l1.stype l2.stype;
    vtype = Regex.seq l2.vtype l1.vtype;
    get =
      (fun s ->
        let s1, s2 = split_s s in
        l2.get s2 ^ l1.get s1);
    put =
      (fun v s ->
        let v2, v1 = split_v v in
        let s1, s2 = split_s s in
        l1.put v1 s1 ^ l2.put v2 s2);
    create =
      (fun v ->
        let v2, v1 = split_v v in
        l1.create v1 ^ l2.create v2);
  }

(* Split a string into k parts against k regexes, left to right, using a
   concat splitter for part i against the concatenation of the rest. *)
let make_multi_splitter parts =
  let rec splitters = function
    | [] | [ _ ] -> []
    | r :: rest ->
        let rest_re = Regex.concat_list rest in
        make_concat_splitter r rest_re :: splitters rest
  in
  let ss = splitters parts in
  fun s ->
    let rec go ss s =
      match ss with
      | [] -> [ s ]
      | split :: ss' ->
          let a, b = split s in
          a :: go ss' b
    in
    go ss s

let permute ~order ls =
  let k = List.length ls in
  if List.sort compare order <> List.init k Fun.id then
    type_error "permute: order is not a permutation of 0..%d" (k - 1);
  let stypes = List.map (fun l -> l.stype) ls in
  let vtypes_permuted =
    List.map (fun i -> (List.nth ls i).vtype) order
  in
  (* Pairwise unambiguity along both concatenations. *)
  let rec check_chain what = function
    | [] | [ _ ] -> ()
    | r :: rest ->
        require_unambig_concat what r (Regex.concat_list rest);
        check_chain what rest
  in
  check_chain "permute (source)" stypes;
  check_chain "permute (view)" vtypes_permuted;
  let split_s = make_multi_splitter stypes in
  let split_v = make_multi_splitter vtypes_permuted in
  let lens_arr = Array.of_list ls in
  let order_arr = Array.of_list order in
  {
    stype = Regex.concat_list stypes;
    vtype = Regex.concat_list vtypes_permuted;
    get =
      (fun s ->
        let pieces = Array.of_list (split_s s) in
        String.concat ""
          (List.map
             (fun i -> lens_arr.(i).get pieces.(i))
             order));
    put =
      (fun v s ->
        let spieces = Array.of_list (split_s s) in
        let vpieces = Array.of_list (split_v v) in
        (* vpieces.(p) is the view of lens order.(p). *)
        let out = Array.make k "" in
        Array.iteri
          (fun p i -> out.(i) <- lens_arr.(i).put vpieces.(p) spieces.(i))
          order_arr;
        String.concat "" (Array.to_list out));
    create =
      (fun v ->
        let vpieces = Array.of_list (split_v v) in
        let out = Array.make k "" in
        Array.iteri
          (fun p i -> out.(i) <- lens_arr.(i).create vpieces.(p))
          order_arr;
        String.concat "" (Array.to_list out));
  }

let separated ~sep l =
  union (copy Regex.epsilon) (concat l (star (concat sep l)))
let in_source l s = Regex.matches l.stype s
let in_view l v = Regex.matches l.vtype v
