open Bx_regex

type t = {
  ctype : Regex.t;
  atype : Regex.t;
  canonize : string -> string;
}

let make ~ctype ~atype ~canonize =
  (match Lang.subset_counterexample atype ctype with
  | None -> ()
  | Some w ->
      raise
        (Slens.Type_error
           (Printf.sprintf
              "canonizer: canonical form %S is outside the concrete type" w)));
  { ctype; atype; canonize }

let identity r = { ctype = r; atype = r; canonize = Fun.id }

let final_newline r =
  (* The unterminated concrete forms: members of r with the final newline
     stripped.  We cannot express "strip" as a regex transform in general,
     so ctype is r | (anything that becomes a member of r when '\n' is
     appended).  For the common case where r is (line '\n')* this is
     exactly r | r·line — we approximate with a runtime-checked union:
     ctype accepts s iff r accepts s or r accepts s ^ "\n". *)
  let canonize s =
    if Regex.matches r s then s
    else if Regex.matches r (s ^ "\n") then s ^ "\n"
    else
      raise
        (Slens.Type_error
           (Printf.sprintf "final_newline: %S not in the quotiented language" s))
  in
  (* A regex over-approximation of ctype for typing purposes: r with an
     optional trailing newline removed is still recognised by r | r'
     where r' = reverse (deriv '\n' (reverse r)).  The derivative of the
     reversal by '\n' is exactly "members of r that end in a newline,
     with that newline removed", reversed. *)
  let unterminated = Regex.reverse (Regex.deriv '\n' (Regex.reverse r)) in
  { ctype = Regex.alt r unterminated; atype = r; canonize }

let left_quot cz (l : Slens.t) =
  (match Lang.equiv_counterexample cz.atype l.Slens.stype with
  | None -> ()
  | Some w ->
      raise
        (Slens.Type_error
           (Printf.sprintf
              "left_quot: canonical type and lens source type differ \
               (witness %S)" w)));
  Slens.of_funs ~stype:cz.ctype ~vtype:l.Slens.vtype
    ~get:(fun s -> l.Slens.get (cz.canonize s))
    ~put:(fun v s -> l.Slens.put v (cz.canonize s))
    ~create:l.Slens.create

let right_quot (l : Slens.t) cz =
  (match Lang.equiv_counterexample cz.atype l.Slens.vtype with
  | None -> ()
  | Some w ->
      raise
        (Slens.Type_error
           (Printf.sprintf
              "right_quot: canonical type and lens view type differ \
               (witness %S)" w)));
  Slens.of_funs ~stype:l.Slens.stype ~vtype:cz.ctype ~get:l.Slens.get
    ~put:(fun v s -> l.Slens.put (cz.canonize v) s)
    ~create:(fun v -> l.Slens.create (cz.canonize v))

let canonized_law cz =
  Bx.Law.make ~name:"canonizer:canonize-into-atype"
    ~description:"canonize lands in atype and is idempotent" (fun s ->
      if not (Regex.matches cz.ctype s) then Bx.Law.holds
      else
        let c = cz.canonize s in
        if not (Regex.matches cz.atype c) then
          Bx.Law.violated "canonize %S = %S is outside atype" s c
        else
          Bx.Law.require (String.equal (cz.canonize c) c)
            "canonize is not idempotent on %S" s)
