open Bx_regex

exception Type_error of string

let type_error fmt = Format.kasprintf (fun m -> raise (Type_error m)) fmt

(* ------------------------------------------------------------------ *)
(* Engine instrumentation, process-global and domain-safe.  [bytes]
   counts input bytes entering top-level runs, [splits] the split
   decisions made by the slice engine, [ctx_reuse]/[ctx_fresh] how
   often a top-level run found its domain's execution context free
   versus having to allocate one. *)

let stat_bytes = Atomic.make 0
let stat_splits = Atomic.make 0
let stat_ctx_reuse = Atomic.make 0
let stat_ctx_fresh = Atomic.make 0

type stats = { bytes : int; splits : int; ctx_reuse : int; ctx_fresh : int }

let stats () =
  {
    bytes = Atomic.get stat_bytes;
    splits = Atomic.get stat_splits;
    ctx_reuse = Atomic.get stat_ctx_reuse;
    ctx_fresh = Atomic.get stat_ctx_fresh;
  }

let reset_stats () =
  Atomic.set stat_bytes 0;
  Atomic.set stat_splits 0;
  Atomic.set stat_ctx_reuse 0;
  Atomic.set stat_ctx_fresh 0

(* ------------------------------------------------------------------ *)
(* The execution context: one shared output buffer, one splitter
   workspace, one spare buffer for the few places that must materialise
   an intermediate string (chunk keys, compose).  Each domain keeps one
   context and reuses it across runs; a re-entrant run (a user key
   function invoking a lens, a lens inside a lens) simply allocates a
   second context for its duration. *)

type ctx = {
  mutable out : Buffer.t;
  ws : Split.ws;
  mutable spare : Buffer.t option;
}

let make_ctx () =
  { out = Buffer.create 1024; ws = Split.make_ws (); spare = None }

let ctx_slot : ctx option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* Run [emit] in a (reused) context and return the bytes it produced.
   [input_bytes] is the instrumentation charge for this run. *)
let exec input_bytes emit =
  let slot = Domain.DLS.get ctx_slot in
  let ctx =
    match !slot with
    | Some ctx ->
        slot := None;
        Atomic.incr stat_ctx_reuse;
        ctx
    | None ->
        Atomic.incr stat_ctx_fresh;
        make_ctx ()
  in
  Fun.protect
    ~finally:(fun () ->
      Buffer.clear ctx.out;
      let (_ : int) = Atomic.fetch_and_add stat_splits (Split.splits_performed ctx.ws) in
      Split.reset_splits ctx.ws;
      slot := Some ctx)
    (fun () ->
      emit ctx;
      let (_ : int) = Atomic.fetch_and_add stat_bytes input_bytes in
      Buffer.contents ctx.out)

(* Redirect the context's output into a side buffer for the duration of
   [emit] and return what it wrote — for the few combinators that need
   an intermediate string (chunk keys, compose). *)
let capture ctx emit =
  let saved = ctx.out in
  let side =
    match ctx.spare with
    | Some b ->
        ctx.spare <- None;
        Buffer.clear b;
        b
    | None -> Buffer.create 128
  in
  ctx.out <- side;
  Fun.protect
    ~finally:(fun () ->
      ctx.out <- saved;
      ctx.spare <- Some side)
    (fun () ->
      emit ();
      Buffer.contents side)

(* ------------------------------------------------------------------ *)
(* Lenses.  The three emitters work over (string, pos, len) slices and
   write to the context's output buffer; the public string-to-string
   functions are the emitters sealed behind a context acquisition. *)

type impl = {
  e_get : ctx -> string -> int -> int -> unit;
  e_put : ctx -> string -> int -> int -> string -> int -> int -> unit;
  e_create : ctx -> string -> int -> int -> unit;
}

type t = {
  stype : Regex.t;
  vtype : Regex.t;
  get : string -> string;
  put : string -> string -> string;
  create : string -> string;
  impl : impl;
  shape : shape;
}

(* Structural reflection for the delta layer: a star at the root tells
   {!Slens_delta} how the document chunks and how put aligns the
   chunks, so an edit can be localised to the chunks it touches.  Every
   other root is [Opaque] and delta calls fall back to the full
   functions. *)
and shape = Opaque | Star of star_shape

and star_shape = {
  body : t;
  align : align_kind;
  sbounds : Split.star_bounds;
  vbounds : Split.star_bounds;
}

and align_kind =
  | Positional
  | Keyed of (string -> string)
  | Diffed of (string -> string)

let seal ?(shape = Opaque) ~stype ~vtype impl =
  (* The emitters assume well-typed slices (splitting re-establishes the
     invariant structurally), so membership is verified once, here, at
     the public string boundary.  The DFAs are compiled on first use and
     shared through the global compile cache. *)
  let ds = lazy (Dfa.compile stype) and dv = lazy (Dfa.compile vtype) in
  let require what d r x =
    if not (Dfa.accepts_sub (Lazy.force d) x ~pos:0 ~len:(String.length x))
    then type_error "%s: %S does not belong to %a" what x Regex.pp r
  in
  {
    stype;
    vtype;
    impl;
    shape;
    get =
      (fun s ->
        require "get" ds stype s;
        let n = String.length s in
        exec n (fun ctx -> impl.e_get ctx s 0 n));
    put =
      (fun v s ->
        require "put" dv vtype v;
        require "put" ds stype s;
        let nv = String.length v and ns = String.length s in
        exec (nv + ns) (fun ctx -> impl.e_put ctx v 0 nv s 0 ns));
    create =
      (fun v ->
        require "create" dv vtype v;
        let n = String.length v in
        exec n (fun ctx -> impl.e_create ctx v 0 n));
  }

let of_funs ~stype ~vtype ~get ~put ~create =
  (* Wrap opaque string functions (canonizers, user code) as a lens;
     inside a larger lens their slices are materialised at this
     boundary. *)
  let impl =
    {
      e_get =
        (fun ctx s pos len -> Buffer.add_string ctx.out (get (String.sub s pos len)));
      e_put =
        (fun ctx v vp vl s sp sl ->
          Buffer.add_string ctx.out (put (String.sub v vp vl) (String.sub s sp sl)));
      e_create =
        (fun ctx v vp vl ->
          Buffer.add_string ctx.out (create (String.sub v vp vl)));
    }
  in
  { stype; vtype; get; put; create; impl; shape = Opaque }

let require_unambig_concat what r1 r2 =
  match Ambig.unambig_concat r1 r2 with
  | Ok () -> ()
  | Error w ->
      type_error "%s: ambiguous concatenation %a . %a (overlap %S)" what
        Regex.pp r1 Regex.pp r2 w

let require_unambig_star what r =
  match Ambig.unambig_star r with
  | Ok () -> ()
  | Error w ->
      type_error "%s: ambiguous iteration of %a (witness %S)" what Regex.pp r w

(* ------------------------------------------------------------------ *)
(* Primitives *)

let copy_impl =
  {
    e_get = (fun ctx s pos len -> Buffer.add_substring ctx.out s pos len);
    e_put = (fun ctx v vp vl _ _ _ -> Buffer.add_substring ctx.out v vp vl);
    e_create = (fun ctx v vp vl -> Buffer.add_substring ctx.out v vp vl);
  }

let copy r = seal ~stype:r ~vtype:r copy_impl

let slice_equal lit s pos len =
  len = String.length lit
  &&
  let rec eq i =
    i >= len || (String.unsafe_get s (pos + i) = String.unsafe_get lit i && eq (i + 1))
  in
  eq 0

let const ~stype ~view ~default =
  if not (Regex.matches stype default) then
    type_error "const: default %S is not in the source type %a" default
      Regex.pp stype;
  seal ~stype ~vtype:(Regex.str view)
    {
      e_get = (fun ctx _ _ _ -> Buffer.add_string ctx.out view);
      e_put =
        (fun ctx v vp vl s sp sl ->
          if slice_equal view v vp vl then Buffer.add_substring ctx.out s sp sl
          else
            type_error "const: put view %S differs from constant %S"
              (String.sub v vp vl) view);
      e_create =
        (fun ctx v vp vl ->
          if slice_equal view v vp vl then Buffer.add_string ctx.out default
          else
            type_error "const: create view %S differs from constant %S"
              (String.sub v vp vl) view);
    }

let del r ~default = const ~stype:r ~view:"" ~default
let ins s = const ~stype:Regex.epsilon ~view:s ~default:""

(* ------------------------------------------------------------------ *)
(* Concatenation.  All concatenations — binary [concat], [concat_list],
   [permute] — run on the k-ary single-pass splitter: one shared
   suffix pass for all the rest-languages, k short forward scans, no
   intermediate substrings. *)

let multi_impl lenses =
  let ls = Array.of_list lenses in
  let k = Array.length ls in
  let split_s = Split.make_multi_bounds (List.map (fun l -> l.stype) lenses) in
  let split_v = Split.make_multi_bounds (List.map (fun l -> l.vtype) lenses) in
  {
    e_get =
      (fun ctx s pos len ->
        let bs = split_s ctx.ws s pos len in
        for i = 0 to k - 1 do
          ls.(i).impl.e_get ctx s bs.(i) (bs.(i + 1) - bs.(i))
        done);
    e_put =
      (fun ctx v vp vl s sp sl ->
        let vb = split_v ctx.ws v vp vl in
        let sb = split_s ctx.ws s sp sl in
        for i = 0 to k - 1 do
          ls.(i).impl.e_put ctx v vb.(i)
            (vb.(i + 1) - vb.(i))
            s sb.(i)
            (sb.(i + 1) - sb.(i))
        done);
    e_create =
      (fun ctx v vp vl ->
        let vb = split_v ctx.ws v vp vl in
        for i = 0 to k - 1 do
          ls.(i).impl.e_create ctx v vb.(i) (vb.(i + 1) - vb.(i))
        done);
  }

let concat l1 l2 =
  require_unambig_concat "concat (source)" l1.stype l2.stype;
  require_unambig_concat "concat (view)" l1.vtype l2.vtype;
  seal
    ~stype:(Regex.seq l1.stype l2.stype)
    ~vtype:(Regex.seq l1.vtype l2.vtype)
    (multi_impl [ l1; l2 ])

(* Pairwise unambiguity along a concatenation chain guarantees the
   k-way split is unique. *)
let rec check_chain what = function
  | [] | [ _ ] -> ()
  | r :: rest ->
      require_unambig_concat what r (Regex.concat_list rest);
      check_chain what rest

let concat_list = function
  | [] -> copy Regex.epsilon
  | [ l ] -> l
  | ls ->
      let stypes = List.map (fun l -> l.stype) ls in
      let vtypes = List.map (fun l -> l.vtype) ls in
      check_chain "concat (source)" stypes;
      check_chain "concat (view)" vtypes;
      seal
        ~stype:(Regex.concat_list stypes)
        ~vtype:(Regex.concat_list vtypes)
        (multi_impl ls)

(* ------------------------------------------------------------------ *)
(* Union.  Membership tests run on compiled DFAs over the slice and
   stop at the first decisive answer: the common put case (view and old
   source both on the same branch) costs two scans, never four. *)

let union l1 l2 =
  (match Ambig.disjoint_union l1.stype l2.stype with
  | Ok () -> ()
  | Error w -> type_error "union: source types overlap (witness %S)" w);
  let ds1 = Dfa.compile l1.stype in
  let dv1 = Dfa.compile l1.vtype in
  let dv2 = Dfa.compile l2.vtype in
  seal
    ~stype:(Regex.alt l1.stype l2.stype)
    ~vtype:(Regex.alt l1.vtype l2.vtype)
    {
      e_get =
        (fun ctx s pos len ->
          if Dfa.accepts_sub ds1 s ~pos ~len then l1.impl.e_get ctx s pos len
          else l2.impl.e_get ctx s pos len);
      e_put =
        (fun ctx v vp vl s sp sl ->
          if Dfa.accepts_sub dv1 v ~pos:vp ~len:vl then
            if Dfa.accepts_sub ds1 s ~pos:sp ~len:sl then
              l1.impl.e_put ctx v vp vl s sp sl
            else if Dfa.accepts_sub dv2 v ~pos:vp ~len:vl then
              l2.impl.e_put ctx v vp vl s sp sl
            else l1.impl.e_create ctx v vp vl
          else if Dfa.accepts_sub dv2 v ~pos:vp ~len:vl then
            if Dfa.accepts_sub ds1 s ~pos:sp ~len:sl then
              l2.impl.e_create ctx v vp vl
            else l2.impl.e_put ctx v vp vl s sp sl
          else
            type_error "union: put view %S matches neither view type"
              (String.sub v vp vl));
      e_create =
        (fun ctx v vp vl ->
          if Dfa.accepts_sub dv1 v ~pos:vp ~len:vl then l1.impl.e_create ctx v vp vl
          else if Dfa.accepts_sub dv2 v ~pos:vp ~len:vl then
            l2.impl.e_create ctx v vp vl
          else
            type_error "union: create view %S matches neither view type"
              (String.sub v vp vl));
    }

(* ------------------------------------------------------------------ *)
(* Iteration.  Chunk boundaries for both sides are computed up front
   (one suffix pass + one table scan each); alignment then pairs view
   chunks with source chunks and emits straight into the output. *)

(* The view of source chunk [i], materialised — alignment keys are user
   strings, so this boundary copy is inherent to the [key] API. *)
let chunk_view ctx l s bounds i =
  capture ctx (fun () ->
      l.impl.e_get ctx s bounds.(i) (bounds.(i + 1) - bounds.(i)))

(* ------------------------------------------------------------------ *)
(* Chunk pairing, shared between the star aligners here and the delta
   layer's slow path ({!Slens_delta}): given the per-chunk keys of both
   sides, decide for every view chunk which source chunk it reuses
   ([-1] = none, create).  Explicit loops — evaluation order carries the
   first-unconsumed-match discipline, which [Array.init] does not
   guarantee. *)

let key_pairing ~skeys ~vkeys =
  let ns = Array.length skeys and nv = Array.length vkeys in
  (* A queue per key preserves the first-unconsumed-match discipline
     without rescanning the chunk array for every view chunk. *)
  let by_key : (string, int Queue.t) Hashtbl.t = Hashtbl.create (2 * ns + 1) in
  for i = 0 to ns - 1 do
    let q =
      match Hashtbl.find_opt by_key skeys.(i) with
      | Some q -> q
      | None ->
          let q = Queue.create () in
          Hashtbl.add by_key skeys.(i) q;
          q
    in
    Queue.push i q
  done;
  let pair = Array.make nv (-1) in
  for j = 0 to nv - 1 do
    match Hashtbl.find_opt by_key vkeys.(j) with
    | Some q when not (Queue.is_empty q) -> pair.(j) <- Queue.pop q
    | _ -> ()
  done;
  pair

(* Longest common subsequence of two key arrays, as a list of index
   pairs (i_source, j_view), strictly increasing in both components. *)
let lcs_pairs a b =
  let n = Array.length a and m = Array.length b in
  let table = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      table.(i).(j) <-
        (if String.equal a.(i) b.(j) then 1 + table.(i + 1).(j + 1)
         else max table.(i + 1).(j) table.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if String.equal a.(i) b.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if table.(i + 1).(j) >= table.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let diff_pairing ~skeys ~vkeys =
  let pair = Array.make (Array.length vkeys) (-1) in
  List.iter (fun (i, j) -> pair.(j) <- i) (lcs_pairs skeys vkeys);
  pair

let star_with ~name ~kind ~align l =
  require_unambig_star (name ^ " (source)") l.stype;
  require_unambig_star (name ^ " (view)") l.vtype;
  let bounds_s = Split.make_star_bounds l.stype in
  let bounds_v = Split.make_star_bounds l.vtype in
  seal
    ~shape:
      (Star { body = l; align = kind; sbounds = bounds_s; vbounds = bounds_v })
    ~stype:(Regex.star l.stype)
    ~vtype:(Regex.star l.vtype)
    {
      e_get =
        (fun ctx s pos len ->
          let bs = bounds_s ctx.ws s pos len in
          for i = 0 to Array.length bs - 2 do
            l.impl.e_get ctx s bs.(i) (bs.(i + 1) - bs.(i))
          done);
      e_put =
        (fun ctx v vp vl s sp sl ->
          let vb = bounds_v ctx.ws v vp vl in
          let sb = bounds_s ctx.ws s sp sl in
          align ctx v vb s sb);
      e_create =
        (fun ctx v vp vl ->
          let vb = bounds_v ctx.ws v vp vl in
          for i = 0 to Array.length vb - 2 do
            l.impl.e_create ctx v vb.(i) (vb.(i + 1) - vb.(i))
          done);
    }

let star l =
  let positional ctx v vb s sb =
    let ns = Array.length sb - 1 in
    for j = 0 to Array.length vb - 2 do
      if j < ns then
        l.impl.e_put ctx v vb.(j) (vb.(j + 1) - vb.(j)) s sb.(j) (sb.(j + 1) - sb.(j))
      else l.impl.e_create ctx v vb.(j) (vb.(j + 1) - vb.(j))
    done
  in
  star_with ~name:"star" ~kind:Positional ~align:positional l

(* Both keyed aligners share one skeleton: materialise the per-chunk
   keys, let a pairing function decide reuse-vs-create per view chunk,
   then emit.  The pairing functions are pure over the key arrays, so
   the delta layer replays exactly the same decisions from its cached
   keys without touching the source bytes. *)
let keyed_align ~key ~pairing l ctx v vb s sb =
  let ns = Array.length sb - 1 and nv = Array.length vb - 1 in
  let skeys = Array.make ns "" in
  for i = 0 to ns - 1 do
    skeys.(i) <- key (chunk_view ctx l s sb i)
  done;
  let vkeys = Array.make nv "" in
  for j = 0 to nv - 1 do
    vkeys.(j) <- key (String.sub v vb.(j) (vb.(j + 1) - vb.(j)))
  done;
  let pair = pairing ~skeys ~vkeys in
  for j = 0 to nv - 1 do
    let vlen = vb.(j + 1) - vb.(j) in
    match pair.(j) with
    | -1 -> l.impl.e_create ctx v vb.(j) vlen
    | i -> l.impl.e_put ctx v vb.(j) vlen s sb.(i) (sb.(i + 1) - sb.(i))
  done

let star_key ~key l =
  star_with ~name:"star_key" ~kind:(Keyed key)
    ~align:(keyed_align ~key ~pairing:key_pairing l)
    l

let star_diff ~key l =
  star_with ~name:"star_diff" ~kind:(Diffed key)
    ~align:(keyed_align ~key ~pairing:diff_pairing l)
    l

(* ------------------------------------------------------------------ *)
(* Composition and permutation *)

let compose l1 l2 =
  (match Lang.equiv_counterexample l1.vtype l2.stype with
  | None -> ()
  | Some w ->
      type_error
        "compose: view type %a and source type %a differ (witness %S)"
        Regex.pp l1.vtype Regex.pp l2.stype w);
  seal ~stype:l1.stype ~vtype:l2.vtype
    {
      e_get =
        (fun ctx s pos len ->
          let mid = capture ctx (fun () -> l1.impl.e_get ctx s pos len) in
          l2.impl.e_get ctx mid 0 (String.length mid));
      e_put =
        (fun ctx v vp vl s sp sl ->
          let mid = capture ctx (fun () -> l1.impl.e_get ctx s sp sl) in
          let mid' =
            capture ctx (fun () ->
                l2.impl.e_put ctx v vp vl mid 0 (String.length mid))
          in
          l1.impl.e_put ctx mid' 0 (String.length mid') s sp sl);
      e_create =
        (fun ctx v vp vl ->
          let mid = capture ctx (fun () -> l2.impl.e_create ctx v vp vl) in
          l1.impl.e_create ctx mid 0 (String.length mid));
    }

let permute ~order ls =
  let k = List.length ls in
  if List.sort compare order <> List.init k Fun.id then
    type_error "permute: order is not a permutation of 0..%d" (k - 1);
  let lens_arr = Array.of_list ls in
  let order_arr = Array.of_list order in
  (* One array pass collects the permuted view types (the old code
     re-walked the list with List.nth per position). *)
  let vtypes_permuted =
    Array.to_list (Array.map (fun i -> lens_arr.(i).vtype) order_arr)
  in
  let stypes = List.map (fun l -> l.stype) ls in
  check_chain "permute (source)" stypes;
  check_chain "permute (view)" vtypes_permuted;
  let split_s = Split.make_multi_bounds stypes in
  let split_v = Split.make_multi_bounds vtypes_permuted in
  (* vpos_of.(i) is the view position of lens i. *)
  let vpos_of = Array.make k 0 in
  Array.iteri (fun p i -> vpos_of.(i) <- p) order_arr;
  seal
    ~stype:(Regex.concat_list stypes)
    ~vtype:(Regex.concat_list vtypes_permuted)
    {
      e_get =
        (fun ctx s pos len ->
          let sb = split_s ctx.ws s pos len in
          for p = 0 to k - 1 do
            let i = order_arr.(p) in
            lens_arr.(i).impl.e_get ctx s sb.(i) (sb.(i + 1) - sb.(i))
          done);
      e_put =
        (fun ctx v vp vl s sp sl ->
          let vb = split_v ctx.ws v vp vl in
          let sb = split_s ctx.ws s sp sl in
          for i = 0 to k - 1 do
            let p = vpos_of.(i) in
            lens_arr.(i).impl.e_put ctx v vb.(p)
              (vb.(p + 1) - vb.(p))
              s sb.(i)
              (sb.(i + 1) - sb.(i))
          done);
      e_create =
        (fun ctx v vp vl ->
          let vb = split_v ctx.ws v vp vl in
          for i = 0 to k - 1 do
            let p = vpos_of.(i) in
            lens_arr.(i).impl.e_create ctx v vb.(p) (vb.(p + 1) - vb.(p))
          done);
    }

let swap l1 l2 = permute ~order:[ 1; 0 ] [ l1; l2 ]

let separated ~sep l =
  union (copy Regex.epsilon) (concat l (star (concat sep l)))

(* ------------------------------------------------------------------ *)
(* Batched execution: fan a list of independent documents across
   domains.  Work is claimed from a shared atomic counter, so uneven
   document sizes balance themselves; each domain reuses its own
   execution context for its whole share. *)

(* The shared core: run [f] over every item, never losing a sibling's
   result to one item's exception.  Each item's outcome is recorded
   individually, every domain drains normally, and the caller decides
   what a failure means — the batched lens API re-raises the first one
   (one ill-typed document fails the whole batch), while callers that
   fan long-lived loops across domains (the load generator's client
   domains) keep the survivors and report the crash per item. *)
let parallel_map_outcomes ~workers f xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let w = max 1 (min workers n) in
  let out = Array.make n None in
  let run i =
    match
      Bx_fault.Fault.point "slens.batch.worker";
      f arr.(i)
    with
    | result -> out.(i) <- Some (Ok result)
    | exception exn ->
        out.(i) <- Some (Error (exn, Printexc.get_raw_backtrace ()))
  in
  if w = 1 then
    for i = 0 to n - 1 do
      run i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run i;
          go ()
        end
      in
      go ()
    in
    let helpers = List.init (w - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) out)

let parallel_map ~workers f xs =
  List.map
    (function
      | Ok r -> r
      | Error (exn, bt) -> Printexc.raise_with_backtrace exn bt)
    (parallel_map_outcomes ~workers f xs)

let parallel_map_results ~workers f xs =
  List.map
    (function
      | Ok r -> Ok r
      | Error (exn, _) -> Error (Printexc.to_string exn))
    (parallel_map_outcomes ~workers f xs)

let get_all ?(workers = 1) l sources = parallel_map ~workers l.get sources

let put_all ?(workers = 1) l pairs =
  parallel_map ~workers (fun (v, s) -> l.put v s) pairs

let create_all ?(workers = 1) l views = parallel_map ~workers l.create views

(* ------------------------------------------------------------------ *)
(* Inspection and checking *)

let in_source l s = Regex.matches l.stype s
let in_view l v = Regex.matches l.vtype v

let to_lens l =
  Bx.Lens.make ~name:"string-lens" ~get:l.get ~put:l.put ~create:l.create

let get_put_law l =
  Bx.Law.make ~name:"slens:GetPut" ~description:"put (get s) s = s" (fun s ->
      if not (in_source l s) then Bx.Law.holds
      else
        let s' = l.put (l.get s) s in
        Bx.Law.require (String.equal s s') "put (get %S) = %S" s s')

let put_get_law l =
  Bx.Law.make ~name:"slens:PutGet" ~description:"get (put v s) = v"
    (fun (s, v) ->
      if not (in_source l s && in_view l v) then Bx.Law.holds
      else
        let v' = l.get (l.put v s) in
        Bx.Law.require (String.equal v v') "get (put %S %S) = %S" v s v')

(* ------------------------------------------------------------------ *)
(* Engine hooks for the delta layer.  {!Slens_delta} splices untouched
   source bytes verbatim and re-runs the body lens only on dirty
   chunks; to do that it needs to drive emitters directly inside a
   context of its own acquisition. *)

module Internal = struct
  type nonrec ctx = ctx

  let exec = exec
  let ws ctx = ctx.ws
  let out_length ctx = Buffer.length ctx.out
  let blit ctx s pos len = Buffer.add_substring ctx.out s pos len
  let e_get l ctx s pos len = l.impl.e_get ctx s pos len
  let e_put l ctx v vp vl s sp sl = l.impl.e_put ctx v vp vl s sp sl
  let e_create l ctx v vp vl = l.impl.e_create ctx v vp vl
  let key_pairing = key_pairing
  let diff_pairing = diff_pairing
end
