(** Bridge between {!Bx.Law} and QCheck: run first-class bx laws under
    random generation, deterministically (fixed seed), and produce either
    QCheck tests (for the alcotest suites) or plain results (for the
    verification reports and the CLI). *)

val to_qcheck :
  ?count:int -> name:string -> 'a QCheck2.Gen.t -> 'a Bx.Law.t -> QCheck2.Test.t
(** A QCheck test asserting the law holds on every generated input. *)

val sample : ?seed:int -> ?count:int -> 'a QCheck2.Gen.t -> 'a list
(** Deterministic sample of [count] values (default 200, seed 42). *)

val holds_on_samples :
  ?seed:int -> ?count:int -> 'a QCheck2.Gen.t -> 'a Bx.Law.t
  -> (unit, string) result
(** [Ok ()] when the law holds on every sampled input; otherwise
    [Error msg] describing the first violation. *)

val find_counterexample :
  ?seed:int -> ?count:int -> 'a QCheck2.Gen.t -> 'a Bx.Law.t -> string option
(** The first violation message found on the samples, if any — used to
    confirm "Not P" claims. *)
