let to_qcheck ?(count = 200) ~name gen law =
  QCheck2.Test.make ~count ~name gen (fun x ->
      match law.Bx.Law.check x with
      | Bx.Law.Holds -> true
      | Bx.Law.Violated msg -> QCheck2.Test.fail_report msg)

let sample ?(seed = 42) ?(count = 200) gen =
  let rand = Random.State.make [| seed |] in
  List.init count (fun _ -> QCheck2.Gen.generate1 ~rand gen)

let holds_on_samples ?seed ?count gen law =
  let inputs = sample ?seed ?count gen in
  match Bx.Law.check_all law inputs with
  | [] -> Ok ()
  | (i, _, msg) :: _ ->
      Error (Printf.sprintf "sample #%d violates %s: %s" i law.Bx.Law.name msg)

let find_counterexample ?seed ?count gen law =
  match holds_on_samples ?seed ?count gen law with
  | Ok () -> None
  | Error msg -> Some msg
