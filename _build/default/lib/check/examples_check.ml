open Bx_catalogue

let string_space name =
  Bx.Model.make ~name ~equal:String.equal ~pp:(fun ppf s -> Fmt.pf ppf "%S" s)

let composers_suite ?seed ?count () =
  Verify.symmetric_suite ?seed ?count ~m_space:Composers.m_space
    ~n_space:Composers.n_space ~gen_m:Generators.composers_m
    ~gen_n:Generators.composers_n Composers.bx

let composers_string_suite ?seed ?count () =
  Verify.lens_suite ?seed ?count ~s_space:(string_space "csv-source")
    ~v_space:(string_space "csv-view") ~gen_s:Generators.composers_source
    ~gen_v:Generators.composers_view
    (Bx_strlens.Slens.to_lens Composers_string.lens)

let uml2rdbms_suite ?seed ?count () =
  Verify.symmetric_suite ?seed ?count ~m_space:Uml2rdbms.uml_space
    ~n_space:Uml2rdbms.schema_space ~gen_m:Generators.uml_model
    ~gen_n:Generators.rdb_schema Uml2rdbms.bx

let families_suite ?seed ?count () =
  Verify.symmetric_suite ?seed ?count ~m_space:Families2persons.families_space
    ~n_space:Families2persons.persons_space ~gen_m:Generators.families
    ~gen_n:Generators.persons
    (Families2persons.bx ())

let bookstore_suite ?seed ?count () =
  Verify.lens_suite ?seed ?count ~s_space:Bookstore.store_space
    ~v_space:Bookstore.view_space ~gen_s:Generators.bookstore
    ~gen_v:Generators.price_list Bookstore.lens

let people_suite ?seed ?count () =
  Verify.lens_suite ?seed ?count ~s_space:People.source_space
    ~v_space:People.view_space ~gen_s:Generators.people_entries
    ~gen_v:Generators.directory People.lens

let lines_suite ?seed ?count () =
  Verify.symmetric_suite ?seed ?count ~m_space:Lines.document_space
    ~n_space:Lines.lines_space ~gen_m:Generators.document
    ~gen_n:Generators.line_list Lines.bx

let celsius_suite ?seed ?count () =
  Verify.symmetric_suite ?seed ?count ~m_space:Celsius.celsius_space
    ~n_space:Celsius.fahrenheit_space ~gen_m:Generators.rational
    ~gen_n:Generators.rational Celsius.bx

let wiki_sync_suite ?seed ?count () =
  let templates =
    List.map Bx_repo.Sync.normalise (Catalogue.all ())
  in
  let template_space =
    Bx.Model.make ~name:"entry" ~equal:Bx_repo.Template.equal
      ~pp:Bx_repo.Template.pp
  in
  let doc_space =
    Bx.Model.make ~name:"page" ~equal:Bx_repo.Markup.equal ~pp:Bx_repo.Markup.pp
  in
  let gen_s = QCheck2.Gen.oneofl templates in
  let gen_v =
    QCheck2.Gen.map Bx_repo.Sync.render_entry (QCheck2.Gen.oneofl templates)
  in
  Verify.lens_suite ?seed ?count ~s_space:template_space ~v_space:doc_space
    ~gen_s ~gen_v Wiki_sync_example.lens

let composers_edit_suite ?seed ?count () =
  let open Bx_catalogue.Composers_edit in
  let consistent m n = Bx_catalogue.Composers.bx.Bx.Symmetric.consistent m n in
  let fwd_inputs =
    QCheck2.Gen.map
      (fun ((m, n), ea) -> (m, n, (m, n), ea))
      (QCheck2.Gen.pair Generators.composers_complement
         Generators.composers_m_edits)
  in
  let bwd_inputs =
    QCheck2.Gen.map
      (fun ((m, n), eb) -> (n, m, (m, n), eb))
      (QCheck2.Gen.pair Generators.composers_complement
         Generators.composers_n_edits)
  in
  let inverted =
    Bx.Elens.make ~name:"COMPOSERS-EDIT^-1" ~init:lens.Bx.Elens.init
      ~fwd:lens.Bx.Elens.bwd ~bwd:lens.Bx.Elens.fwd
  in
  let correct () =
    match
      Qlaw.holds_on_samples ?seed ?count fwd_inputs
        (Bx.Elens.round_trip_law ~ma:m_module ~mb:n_module ~consistent lens)
    with
    | Error _ as e -> e
    | Ok () ->
        Qlaw.holds_on_samples ?seed ?count bwd_inputs
          (Bx.Elens.round_trip_law ~ma:n_module ~mb:m_module
             ~consistent:(fun n m -> consistent m n)
             inverted)
  in
  let stable () =
    Qlaw.holds_on_samples ?seed ?count Generators.composers_complement
      (Bx.Elens.stable_law ~eq_ea:( = ) ~eq_eb:( = ) lens ~ea_id:[] ~eb_id:[])
  in
  [ (Bx.Properties.Correct, correct); (Bx.Properties.Hippocratic, stable) ]

let view_update_suite ?seed ?count () =
  Verify.lens_suite ?seed ?count ~s_space:View_update.base_space
    ~v_space:View_update.view_space ~gen_s:Generators.employee_rows
    ~gen_v:Generators.directory_rows View_update.lens

let formatter_suite ?seed ?count () =
  (* The on-the-nose laws hold on canonical sources (the documented
     domain); the canonizer's own laws cover the sloppy ones. *)
  let base =
    Verify.lens_suite ?seed ?count ~s_space:(string_space "canonical")
      ~v_space:(string_space "canonical") ~gen_s:Generators.canonical_config
      ~gen_v:Generators.canonical_config
      (Bx_strlens.Slens.to_lens Formatter.lens)
  in
  let canonizer_ok () =
    Qlaw.holds_on_samples ?seed ?count Generators.sloppy_config
      (Bx_strlens.Canonizer.canonized_law Formatter.canonizer)
  in
  (* Strengthen the Correct entry with the canonizer laws. *)
  List.map
    (fun (p, checker) ->
      if p = Bx.Properties.Correct then
        ( p,
          fun () ->
            match checker () with Ok () -> canonizer_ok () | e -> e )
      else (p, checker))
    base

let replicas_suite ?seed ?count () =
  let open QCheck2.Gen in
  let kv =
    pair
      (map2 ( ^ )
         (oneofl [ "news/"; "mail/"; "cfg/" ])
         (string_size ~gen:(char_range 'a' 'z') (1 -- 3)))
      (string_size ~gen:(char_range '0' '9') (1 -- 2))
  in
  let dedup_keys l =
    List.fold_left
      (fun acc (k, v) -> if List.mem_assoc k acc then acc else acc @ [ (k, v) ])
      [] l
  in
  let store = map dedup_keys (list_size (0 -- 6) kv) in
  (* Replicas live inside their topic space: that is the bx's domain. *)
  let restricted prefix =
    map
      (List.filter (fun (k, _) ->
           String.length k >= String.length prefix
           && String.sub k 0 (String.length prefix) = prefix))
      store
  in
  let triples =
    map
      (fun ((a, b), c) -> (a, b, c))
      (pair (pair store (restricted "news/")) (restricted "mail/"))
  in
  let consistent_triples =
    map
      (fun (a, b, c) ->
        let b', c' = Bx_catalogue.Replicas.bx.Bx.Multi.restore_from_a a b c in
        (a, b', c'))
      triples
  in
  let mixed = QCheck2.Gen.oneof [ triples; consistent_triples ] in
  let master_space = Bx_catalogue.Replicas.master_space in
  let news_space = Bx_catalogue.Replicas.replica_space "news" in
  let mail_space = Bx_catalogue.Replicas.replica_space "mail" in
  [
    ( Bx.Properties.Correct,
      fun () ->
        Qlaw.holds_on_samples ?seed ?count mixed
          (Bx.Multi.correct3_law Bx_catalogue.Replicas.bx) );
    ( Bx.Properties.Hippocratic,
      fun () ->
        Qlaw.holds_on_samples ?seed ?count mixed
          (Bx.Multi.hippocratic3_law master_space news_space mail_space
             Bx_catalogue.Replicas.bx) );
  ]

let bookstore_edit_suite ?seed ?count () =
  let open Bx_catalogue.Bookstore_edit in
  let consistent view store = view_of_store store = view in
  let consistent_pairs =
    QCheck2.Gen.map
      (fun store -> (view_of_store store, store))
      Generators.bookstore
  in
  let fwd_inputs =
    QCheck2.Gen.map
      (fun ((view, store), ea) -> (view, store, store, ea))
      (QCheck2.Gen.pair consistent_pairs Generators.bookstore_view_edits)
  in
  let bwd_inputs =
    QCheck2.Gen.map
      (fun ((view, store), eb) -> (store, view, store, eb))
      (QCheck2.Gen.pair consistent_pairs Generators.bookstore_store_edits)
  in
  let inverted =
    Bx.Elens.make ~name:"BOOKSTORE-EDIT^-1" ~init:lens.Bx.Elens.init
      ~fwd:lens.Bx.Elens.bwd ~bwd:lens.Bx.Elens.fwd
  in
  let correct () =
    match
      Qlaw.holds_on_samples ?seed ?count fwd_inputs
        (Bx.Elens.round_trip_law ~ma:view_module ~mb:store_module ~consistent
           lens)
    with
    | Error _ as e -> e
    | Ok () ->
        Qlaw.holds_on_samples ?seed ?count bwd_inputs
          (Bx.Elens.round_trip_law ~ma:store_module ~mb:view_module
             ~consistent:(fun store view -> consistent view store)
             inverted)
  in
  let stable () =
    Qlaw.holds_on_samples ?seed ?count Generators.bookstore
      (Bx.Elens.stable_law ~eq_ea:( = ) ~eq_eb:( = ) lens ~ea_id:[] ~eb_id:[])
  in
  [ (Bx.Properties.Correct, correct); (Bx.Properties.Hippocratic, stable) ]

let composers_symlens_suite ?seed ?count () =
  let open Bx_catalogue.Composers_symlens in
  let reachable_complement =
    QCheck2.Gen.map
      (fun (m, n) ->
        snd (lens.Bx.Symlens.putr m { last_n = n; remembered = [] }))
      (QCheck2.Gen.pair Generators.composers_m Generators.composers_n)
  in
  let correct () =
    let rl =
      Qlaw.holds_on_samples ?seed ?count
        (QCheck2.Gen.pair Generators.composers_m reachable_complement)
        (Bx.Symlens.put_rl_law Bx_catalogue.Composers.m_space ~c_equal:( = )
           lens)
    in
    match rl with
    | Error _ as e -> e
    | Ok () ->
        Qlaw.holds_on_samples ?seed ?count
          (QCheck2.Gen.pair Generators.composers_n reachable_complement)
          (Bx.Symlens.put_lr_law Bx_catalogue.Composers.n_space ~c_equal:( = )
             lens)
  in
  let hippocratic () =
    (* Pushing the same side twice changes nothing the second time. *)
    Qlaw.holds_on_samples ?seed ?count
      (QCheck2.Gen.pair Generators.composers_m reachable_complement)
      (Bx.Law.make ~name:"symlens:stable-putr"
         ~description:"putr is idempotent from its own complement"
         (fun (m, c) ->
           let n1, c1 = lens.Bx.Symlens.putr m c in
           let n2, c2 = lens.Bx.Symlens.putr m c1 in
           Bx.Law.require (n1 = n2 && c1 = c2)
             "a second putr changed the state"))
  in
  let undoable () =
    (* The repaired Discussion scenario, over random models: delete each
       entry in turn, restore, and expect the exact original left model. *)
    Qlaw.holds_on_samples ?seed ?count Generators.composers_m
      (Bx.Law.make ~name:"symlens:undoable-delete-restore"
         ~description:"delete then restore recovers m exactly"
         (fun m ->
           let n, c0 = lens.Bx.Symlens.putr m lens.Bx.Symlens.init in
           let m0, c0 =
             (* Normalise m through one putl so comparison is canonical. *)
             lens.Bx.Symlens.putl n c0
           in
           let failures =
             List.concat
               (List.mapi
                  (fun k _ ->
                    let n' = List.filteri (fun i _ -> i <> k) n in
                    let _, c1 = lens.Bx.Symlens.putl n' c0 in
                    let m2, _ = lens.Bx.Symlens.putl n c1 in
                    if Bx_catalogue.Composers.equal_m m0 m2 then [] else [ k ])
                  n)
           in
           Bx.Law.require (failures = [])
             "delete/restore of entry %d lost information"
             (match failures with k :: _ -> k | [] -> -1)))
  in
  [
    (Bx.Properties.Correct, correct);
    (Bx.Properties.Hippocratic, hippocratic);
    (Bx.Properties.Undoable, undoable);
  ]

let suite_for ?seed ?count title =
  match String.uppercase_ascii (String.trim title) with
  | "COMPOSERS" -> Some (composers_suite ?seed ?count ())
  | "COMPOSERS-BOOMERANG" -> Some (composers_string_suite ?seed ?count ())
  | "COMPOSERS-EDIT" -> Some (composers_edit_suite ?seed ?count ())
  | "COMPOSERS-SYMLENS" -> Some (composers_symlens_suite ?seed ?count ())
  | "BOOKSTORE-EDIT" -> Some (bookstore_edit_suite ?seed ?count ())
  | "UML2RDBMS" -> Some (uml2rdbms_suite ?seed ?count ())
  | "FAMILIES2PERSONS" -> Some (families_suite ?seed ?count ())
  | "BOOKSTORE" -> Some (bookstore_suite ?seed ?count ())
  | "PEOPLE" -> Some (people_suite ?seed ?count ())
  | "LINES" -> Some (lines_suite ?seed ?count ())
  | "CELSIUS" -> Some (celsius_suite ?seed ?count ())
  | "FORMATTER" -> Some (formatter_suite ?seed ?count ())
  | "SELECT-PROJECT-VIEW" -> Some (view_update_suite ?seed ?count ())
  | "MASTER-REPLICAS" -> Some (replicas_suite ?seed ?count ())
  | "WIKI-SYNC" -> Some (wiki_sync_suite ?seed ?count ())
  | _ -> None

let suite_for_public = suite_for

let report_for ?seed ?count title =
  match Catalogue.find title with
  | None -> Error (Printf.sprintf "no catalogue entry titled %S" title)
  | Some template ->
      let claims = template.Bx_repo.Template.properties in
      let suite =
        Option.value ~default:[] (suite_for ?seed ?count title)
      in
      Ok (Verify.check_claims suite claims)

let all_reports ?seed ?count () =
  List.filter_map
    (fun template ->
      let title = template.Bx_repo.Template.title in
      if template.Bx_repo.Template.properties = [] then None
      else
        match report_for ?seed ?count title with
        | Ok rows -> Some (title, rows)
        | Error _ -> None)
    (Catalogue.all ())

let suite_for title = suite_for_public title
