lib/check/verify.ml: Bx Fmt Generators List QCheck2 Qlaw
