lib/check/qlaw.mli: Bx QCheck2
