lib/check/examples_check.mli: Verify
