lib/check/generators.ml: Bx Bx_catalogue Bx_models Bx_repo Fun Gen List Option Printf QCheck2 String
