lib/check/qlaw.ml: Bx List Printf QCheck2 Random
