lib/check/generators.mli: Bx Bx_catalogue Bx_models Bx_repo Gen QCheck2
