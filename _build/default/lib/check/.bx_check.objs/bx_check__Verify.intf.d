lib/check/verify.mli: Bx Format QCheck2
