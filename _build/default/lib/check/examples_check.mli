(** Wiring between the catalogue entries and their verification suites:
    given an entry title, produce the claimed-vs-verified report.  This is
    what the CLI's [check] command and the benchmark harness run (the
    executable counterpart of the paper's review step). *)

val suite_for : string -> Verify.suite option
(** The verification suite for a catalogue entry, by title
    (case-insensitive).  [None] for entries with no executable bx (the
    SKETCH class) and for unknown titles. *)

val report_for :
  ?seed:int -> ?count:int -> string -> (Verify.row list, string) result
(** Check every claim of the titled entry's template against its suite.
    [Error] for unknown titles; entries without a suite yield all-
    unsupported rows. *)

val all_reports : ?seed:int -> ?count:int -> unit -> (string * Verify.row list) list
(** Reports for every catalogue entry that has property claims. *)
