type outcome = Verified | Refuted of string | Unsupported

type row = {
  claim : Bx.Properties.claim;
  outcome : outcome;
}

type checker = unit -> (unit, string) result
type suite = (Bx.Properties.t * checker) list

let checker_of_law ?seed ?count gen law () =
  Qlaw.holds_on_samples ?seed ?count gen law

let symmetric_suite ?seed ?count ~m_space ~n_space ~gen_m ~gen_n bx =
  let open QCheck2.Gen in
  let pairs = Generators.mixed_pair bx gen_m gen_n in
  (* Triples whose (m, n) component is consistent, for the conditional
     laws; the interfering third component is arbitrary. *)
  let fwd_triples =
    map
      (fun ((m, n), m') -> (m, m', n))
      (pair (Generators.consistent_pair bx gen_m gen_n) gen_m)
  in
  let bwd_triples =
    map
      (fun ((m, n), n') -> (m, n, n'))
      (pair (Generators.consistent_pair bx gen_m gen_n) gen_n)
  in
  let arb_fwd_triples = map (fun ((m, m'), n) -> (m, m', n)) (pair (pair gen_m gen_m) gen_n) in
  let arb_bwd_triples = map (fun ((m, n), n') -> (m, n, n')) (pair (pair gen_m gen_n) gen_n) in
  let check gen law = checker_of_law ?seed ?count gen law in
  let conj2 c1 c2 () = match c1 () with Ok () -> c2 () | e -> e in
  [
    (Bx.Properties.Correct, check pairs (Bx.Symmetric.correct_law bx));
    ( Bx.Properties.Hippocratic,
      check pairs (Bx.Symmetric.hippocratic_law m_space n_space bx) );
    ( Bx.Properties.Undoable,
      conj2
        (check fwd_triples (Bx.Symmetric.undoable_fwd_law n_space bx))
        (check bwd_triples (Bx.Symmetric.undoable_bwd_law m_space bx)) );
    ( Bx.Properties.History_ignorant,
      conj2
        (check arb_fwd_triples (Bx.Symmetric.history_ignorant_fwd_law n_space bx))
        (check arb_bwd_triples (Bx.Symmetric.history_ignorant_bwd_law m_space bx)) );
    ( Bx.Properties.Oblivious,
      conj2
        (check
           (map (fun ((m, n), n') -> (m, n, n')) (pair (pair gen_m gen_n) gen_n))
           (Bx.Symmetric.oblivious_fwd_law n_space bx))
        (check arb_fwd_triples (Bx.Symmetric.oblivious_bwd_law m_space bx)) );
    ( Bx.Properties.Bijective,
      check pairs (Bx.Symmetric.bijective_law m_space n_space bx) );
  ]

let lens_suite ?seed ?count ~s_space ~v_space ~gen_s ~gen_v lens =
  let open QCheck2.Gen in
  let check gen law = checker_of_law ?seed ?count gen law in
  let conj2 c1 c2 () = match c1 () with Ok () -> c2 () | e -> e in
  let sym = Bx.Symmetric.of_lens ~view_equal:v_space.Bx.Model.equal lens in
  let wb =
    conj2
      (check gen_s (Bx.Lens.get_put_law s_space lens))
      (check (pair gen_s gen_v) (Bx.Lens.put_get_law v_space lens))
  in
  let vwb =
    conj2 wb
      (check
         (map (fun ((s, v), v') -> (s, v, v')) (pair (pair gen_s gen_v) gen_v))
         (Bx.Lens.put_put_law s_space lens))
  in
  (Bx.Properties.Well_behaved, wb)
  :: (Bx.Properties.Very_well_behaved, vwb)
  :: symmetric_suite ?seed ?count ~m_space:s_space ~n_space:v_space ~gen_m:gen_s
       ~gen_n:gen_v sym

let check_claims suite claims =
  List.map
    (fun claim ->
      let property =
        match claim with
        | Bx.Properties.Satisfies p | Bx.Properties.Violates p -> p
      in
      let outcome =
        match List.assoc_opt property suite with
        | None -> Unsupported
        | Some checker -> (
            match (claim, checker ()) with
            | Bx.Properties.Satisfies _, Ok () -> Verified
            | Bx.Properties.Satisfies _, Error msg -> Refuted msg
            | Bx.Properties.Violates _, Error msg ->
                (* The counterexample is the evidence the claim wants. *)
                ignore msg;
                Verified
            | Bx.Properties.Violates _, Ok () ->
                Refuted "no counterexample found on the sampled inputs")
      in
      { claim; outcome })
    claims

let all_upheld rows =
  List.for_all (fun r -> match r.outcome with Refuted _ -> false | _ -> true) rows

let pp_outcome ppf = function
  | Verified -> Fmt.string ppf "verified"
  | Refuted msg -> Fmt.pf ppf "REFUTED (%s)" msg
  | Unsupported -> Fmt.string ppf "unsupported (human review)"

let pp_row ppf r =
  Fmt.pf ppf "%-22s %a" (Bx.Properties.claim_name r.claim) pp_outcome r.outcome

let pp_report ppf rows =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_row) rows
