type ('a, 'b, 'c) t = {
  name : string;
  init : 'c;
  putr : 'a -> 'c -> 'b * 'c;
  putl : 'b -> 'c -> 'a * 'c;
}

let make ~name ~init ~putr ~putl = { name; init; putr; putl }

let of_lens ~default (l : ('s, 'v) Lens.t) =
  {
    name = l.Lens.name;
    init = default;
    putr = (fun s _ -> (l.Lens.get s, s));
    putl =
      (fun v last_s ->
        let s = l.Lens.put v last_s in
        (s, s));
  }

let of_iso (iso : ('a, 'b) Iso.t) =
  {
    name = iso.Iso.name;
    init = ();
    putr = (fun a () -> (iso.Iso.fwd a, ()));
    putl = (fun b () -> (iso.Iso.bwd b, ()));
  }

let invert l =
  { name = l.name ^ "^-1"; init = l.init; putr = l.putl; putl = l.putr }

let compose l1 l2 =
  {
    name = Printf.sprintf "%s; %s" l1.name l2.name;
    init = (l1.init, l2.init);
    putr =
      (fun a (c1, c2) ->
        let b, c1' = l1.putr a c1 in
        let d, c2' = l2.putr b c2 in
        (d, (c1', c2')));
    putl =
      (fun d (c1, c2) ->
        let b, c2' = l2.putl d c2 in
        let a, c1' = l1.putl b c1 in
        (a, (c1', c2')));
  }

let tensor l1 l2 =
  {
    name = Printf.sprintf "(%s * %s)" l1.name l2.name;
    init = (l1.init, l2.init);
    putr =
      (fun (a, a2) (c1, c2) ->
        let b, c1' = l1.putr a c1 in
        let b2, c2' = l2.putr a2 c2 in
        ((b, b2), (c1', c2')));
    putl =
      (fun (b, b2) (c1, c2) ->
        let a, c1' = l1.putl b c1 in
        let a2, c2' = l2.putl b2 c2 in
        ((a, a2), (c1', c2')));
  }

let to_symmetric l ~complement =
  Symmetric.make ~name:l.name
    ~consistent:(fun a b ->
      (* Consistent when pushing a right against the current complement
         reproduces b (without committing the new complement). *)
      let b', _ = l.putr a !complement in
      b' = b)
    ~fwd:(fun a _ ->
      let b, c' = l.putr a !complement in
      complement := c';
      b)
    ~bwd:(fun _ b ->
      let a, c' = l.putl b !complement in
      complement := c';
      a)

let put_rl_law aspace ~c_equal l =
  Law.make
    ~name:(l.name ^ ":PutRL")
    ~description:"putr then putl returns the original left model" (fun (a, c) ->
      let b, c' = l.putr a c in
      let a', c'' = l.putl b c' in
      if not (aspace.Model.equal a a') then
        Law.violated "putl (putr a) = %a, expected %a" aspace.Model.pp a'
          aspace.Model.pp a
      else
        Law.require (c_equal c' c'')
          "the complement drifted on an immediate round trip")

let put_lr_law bspace ~c_equal l =
  Law.make
    ~name:(l.name ^ ":PutLR")
    ~description:"putl then putr returns the original right model" (fun (b, c) ->
      let a, c' = l.putl b c in
      let b', c'' = l.putr a c' in
      if not (bspace.Model.equal b b') then
        Law.violated "putr (putl b) = %a, expected %a" bspace.Model.pp b'
          bspace.Model.pp b
      else
        Law.require (c_equal c' c'')
          "the complement drifted on an immediate round trip")
