type ('e, 'm) edit_module = {
  module_name : string;
  apply : 'e -> 'm -> 'm option;
  compose : 'e -> 'e -> 'e;
  identity : 'e;
}

type ('c, 'ea, 'eb) t = {
  name : string;
  init : 'c;
  fwd : 'ea -> 'c -> 'eb * 'c;
  bwd : 'eb -> 'c -> 'ea * 'c;
}

let make ~name ~init ~fwd ~bwd = { name; init; fwd; bwd }

type 'a list_op =
  | Insert_at of int * 'a
  | Delete_at of int
  | Update_at of int * 'a

type 'a list_edit = 'a list_op list

let apply_list_op op l =
  let n = List.length l in
  match op with
  | Insert_at (i, x) ->
      if i < 0 || i > n then None
      else
        let rec ins i l =
          if i = 0 then x :: l
          else match l with [] -> [ x ] | y :: tl -> y :: ins (i - 1) tl
        in
        Some (ins i l)
  | Delete_at i ->
      if i < 0 || i >= n then None
      else Some (List.filteri (fun j _ -> j <> i) l)
  | Update_at (i, x) ->
      if i < 0 || i >= n then None
      else Some (List.mapi (fun j y -> if j = i then x else y) l)

let list_edit_module () =
  {
    module_name = "list-edits";
    apply =
      (fun edit l ->
        List.fold_left
          (fun acc op ->
            match acc with None -> None | Some l -> apply_list_op op l)
          (Some l) edit);
    compose = (fun e1 e2 -> e1 @ e2);
    identity = [];
  }

let map_ops f =
  List.map (function
    | Insert_at (i, x) -> Insert_at (i, f x)
    | Delete_at i -> Delete_at i
    | Update_at (i, x) -> Update_at (i, f x))

let list_map_iso (iso : ('a, 'b) Iso.t) =
  {
    name = Printf.sprintf "edit-map %s" iso.Iso.name;
    init = ();
    fwd = (fun ea () -> (map_ops iso.Iso.fwd ea, ()));
    bwd = (fun eb () -> (map_ops iso.Iso.bwd eb, ()));
  }

let compose l1 l2 =
  {
    name = Printf.sprintf "%s; %s" l1.name l2.name;
    init = (l1.init, l2.init);
    fwd =
      (fun ea (c1, c2) ->
        let eb, c1' = l1.fwd ea c1 in
        let ec, c2' = l2.fwd eb c2 in
        (ec, (c1', c2')));
    bwd =
      (fun ec (c1, c2) ->
        let eb, c2' = l2.bwd ec c2 in
        let ea, c1' = l1.bwd eb c1 in
        (ea, (c1', c2')));
  }

let stable_law ~eq_ea ~eq_eb lens ~ea_id ~eb_id =
  Law.make
    ~name:(lens.name ^ ":stable")
    ~description:"identity edits translate to identity edits" (fun c ->
      let eb, c1 = lens.fwd ea_id c in
      let ea, c2 = lens.bwd eb_id c in
      if not (eq_eb eb eb_id) then
        Law.violated "fwd mapped the identity edit to a non-identity edit"
      else if not (eq_ea ea ea_id) then
        Law.violated "bwd mapped the identity edit to a non-identity edit"
      else
        Law.require (c1 = c && c2 = c)
          "translating an identity edit changed the complement")

let round_trip_law ~ma ~mb ~consistent lens =
  Law.make
    ~name:(lens.name ^ ":propagates-consistency")
    ~description:
      "consistent models stay consistent after propagating an applicable edit"
    (fun (m, n, c, ea) ->
      if not (consistent m n) then Law.holds
      else
        match ma.apply ea m with
        | None -> Law.holds
        | Some m' -> (
            let eb, _c' = lens.fwd ea c in
            match mb.apply eb n with
            | None ->
                Law.violated
                  "translated edit does not apply to the opposite model"
            | Some n' ->
                Law.require (consistent m' n')
                  "models diverged after edit propagation"))
