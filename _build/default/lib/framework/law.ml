type verdict = Holds | Violated of string

type 'a t = {
  name : string;
  description : string;
  check : 'a -> verdict;
}

let make ~name ~description check = { name; description; check }
let holds = Holds
let violated fmt = Format.kasprintf (fun msg -> Violated msg) fmt

let require cond fmt =
  Format.kasprintf (fun msg -> if cond then Holds else Violated msg) fmt

let contramap f law = { law with check = (fun b -> law.check (f b)) }

let conj ~name ~description laws =
  let check x =
    let rec first = function
      | [] -> Holds
      | law :: rest -> (
          match law.check x with
          | Holds -> first rest
          | Violated msg -> Violated (Printf.sprintf "[%s] %s" law.name msg))
    in
    first laws
  in
  { name; description; check }

let is_violated = function Violated _ -> true | Holds -> false

let check_all law inputs =
  List.mapi (fun i x -> (i, x, law.check x)) inputs
  |> List.filter_map (fun (i, x, v) ->
         match v with Holds -> None | Violated msg -> Some (i, x, msg))

let pp_verdict ppf = function
  | Holds -> Fmt.string ppf "holds"
  | Violated msg -> Fmt.pf ppf "violated: %s" msg
