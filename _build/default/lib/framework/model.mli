(** Model spaces.

    A {e model space} is one of the "classes of models" that a bidirectional
    transformation relates (Cheney et al., BX 2014, section 3).  The paper
    uses "model" inclusively: any appropriately precise description of the
    information sources being transformed.  We represent a model space over
    an OCaml type ['a] as a descriptor bundling the operations every law
    checker and pretty-printer needs. *)

type 'a t = {
  name : string;  (** Human-readable name of the space, e.g. ["M"]. *)
  equal : 'a -> 'a -> bool;  (** Semantic equality of models. *)
  pp : Format.formatter -> 'a -> unit;  (** Pretty-printer for diagnostics. *)
}

val make :
  name:string -> equal:('a -> 'a -> bool) -> pp:(Format.formatter -> 'a -> unit)
  -> 'a t
(** [make ~name ~equal ~pp] builds a model-space descriptor. *)

val pair : 'a t -> 'b t -> ('a * 'b) t
(** Product of two model spaces; equality is componentwise. *)

val list : 'a t -> 'a list t
(** Lists over a model space; equality is elementwise and length-sensitive. *)

val string : string t
(** The space of strings with structural equality. *)

val int : int t
(** The space of integers. *)

val show : 'a t -> 'a -> string
(** [show space m] renders [m] with the space's printer. *)
