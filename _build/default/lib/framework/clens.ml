type ('s, 'v, 'c) t = {
  name : string;
  split : 's -> 'v * 'c;
  merge : 'v * 'c -> 's;
}

let make ~name ~split ~merge = { name; split; merge }
let view l s = fst (l.split s)
let complement l s = snd (l.split s)

let to_lens ~default l =
  Lens.make ~name:l.name
    ~get:(fun s -> fst (l.split s))
    ~put:(fun v s -> l.merge (v, snd (l.split s)))
    ~create:(fun v -> l.merge (v, default))

let to_symmetric ~view_equal ~default l =
  Symmetric.of_lens ~view_equal (to_lens ~default l)

let of_iso (iso : ('s, 'v) Iso.t) =
  {
    name = iso.Iso.name;
    split = (fun s -> (iso.Iso.fwd s, ()));
    merge = (fun (v, ()) -> iso.Iso.bwd v);
  }

let pair_first () =
  { name = "fst"; split = Fun.id; merge = Fun.id }

let compose l1 l2 =
  {
    name = Printf.sprintf "%s; %s" l1.name l2.name;
    split =
      (fun s ->
        let v, c1 = l1.split s in
        let w, c2 = l2.split v in
        (w, (c1, c2)));
    merge =
      (fun (w, (c1, c2)) -> l1.merge (l2.merge (w, c2), c1));
  }

let split_merge_law space l =
  Law.make
    ~name:(l.name ^ ":merge-split-inverse")
    ~description:"merge (split s) = s" (fun s ->
      let s' = l.merge (l.split s) in
      Law.require (space.Model.equal s s') "merge (split %a) = %a"
        space.Model.pp s space.Model.pp s')

let merge_split_law vspace ~c_equal l =
  Law.make
    ~name:(l.name ^ ":split-merge-inverse")
    ~description:"split (merge (v, c)) = (v, c)" (fun (v, c) ->
      let v', c' = l.split (l.merge (v, c)) in
      Law.require (vspace.Model.equal v v' && c_equal c c')
        "split (merge (v, c)) differs in the %s component"
        (if vspace.Model.equal v v' then "complement" else "view"))

let induced_put_put_law space ~default l =
  Lens.put_put_law space (to_lens ~default l)
