exception Error of string

type ('s, 'v) t = {
  name : string;
  get : 's -> 'v;
  put : 'v -> 's -> 's;
  create : 'v -> 's;
}

let make ~name ~get ~put ~create = { name; get; put; create }
let error fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let id =
  { name = "id"; get = Fun.id; put = (fun v _ -> v); create = Fun.id }

let compose l1 l2 =
  {
    name = Printf.sprintf "%s; %s" l1.name l2.name;
    get = (fun s -> l2.get (l1.get s));
    put = (fun v s -> l1.put (l2.put v (l1.get s)) s);
    create = (fun v -> l1.create (l2.create v));
  }

let of_iso (iso : ('a, 'b) Iso.t) =
  {
    name = iso.Iso.name;
    get = iso.Iso.fwd;
    put = (fun v _ -> iso.Iso.bwd v);
    create = iso.Iso.bwd;
  }

let first ~default =
  {
    name = "fst";
    get = (fun (a, _) -> a);
    put = (fun a (_, b) -> (a, b));
    create = (fun a -> (a, default));
  }

let second ~default =
  {
    name = "snd";
    get = (fun (_, b) -> b);
    put = (fun b (a, _) -> (a, b));
    create = (fun b -> (default, b));
  }

let pair l1 l2 =
  {
    name = Printf.sprintf "(%s * %s)" l1.name l2.name;
    get = (fun (s1, s2) -> (l1.get s1, l2.get s2));
    put = (fun (v1, v2) (s1, s2) -> (l1.put v1 s1, l2.put v2 s2));
    create = (fun (v1, v2) -> (l1.create v1, l2.create v2));
  }

let const ~view ~view_equal ~default =
  {
    name = "const";
    get = (fun _ -> view);
    put =
      (fun v s ->
        if view_equal v view then s
        else error "const lens: put view differs from the constant");
    create =
      (fun v ->
        if view_equal v view then default
        else error "const lens: create view differs from the constant");
  }

(* Positional alignment: pad with [create], truncate surplus sources. *)
let list_map l =
  let rec put_all vs ss =
    match (vs, ss) with
    | [], _ -> []
    | v :: vs', s :: ss' -> l.put v s :: put_all vs' ss'
    | v :: vs', [] -> l.create v :: put_all vs' []
  in
  {
    name = Printf.sprintf "map %s" l.name;
    get = List.map l.get;
    put = put_all;
    create = List.map l.create;
  }

(* Key-based (resourceful) alignment.  For each view element in order, the
   first not-yet-consumed source element with the same key is reused, so its
   hidden data survives reordering of the view. *)
let list_key_map ~source_key ~view_key l =
  let put vs ss =
    let consumed = Array.make (List.length ss) false in
    let ss_arr = Array.of_list ss in
    let find_source k =
      let rec scan i =
        if i >= Array.length ss_arr then None
        else if (not consumed.(i)) && source_key ss_arr.(i) = k then (
          consumed.(i) <- true;
          Some ss_arr.(i))
        else scan (i + 1)
      in
      scan 0
    in
    let put_one v =
      match find_source (view_key v) with
      | Some s -> l.put v s
      | None -> l.create v
    in
    List.map put_one vs
  in
  {
    name = Printf.sprintf "keymap %s" l.name;
    get = List.map l.get;
    put;
    create = List.map l.create;
  }

(* Longest common subsequence of two key arrays as strictly increasing
   index pairs. *)
let lcs_pairs equal a b =
  let n = Array.length a and m = Array.length b in
  let table = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      table.(i).(j) <-
        (if equal a.(i) b.(j) then 1 + table.(i + 1).(j + 1)
         else max table.(i + 1).(j) table.(i).(j + 1))
    done
  done;
  let rec walk i j acc =
    if i >= n || j >= m then List.rev acc
    else if equal a.(i) b.(j) then walk (i + 1) (j + 1) ((i, j) :: acc)
    else if table.(i + 1).(j) >= table.(i).(j + 1) then walk (i + 1) j acc
    else walk i (j + 1) acc
  in
  walk 0 0 []

let list_diff_map ~source_key ~view_key l =
  let put vs ss =
    let s_arr = Array.of_list ss in
    let v_arr = Array.of_list vs in
    let skeys = Array.map source_key s_arr in
    let vkeys = Array.map view_key v_arr in
    let matched = lcs_pairs ( = ) skeys vkeys in
    let source_for = Hashtbl.create 16 in
    List.iter (fun (i, j) -> Hashtbl.replace source_for j i) matched;
    List.mapi
      (fun j v ->
        match Hashtbl.find_opt source_for j with
        | Some i -> l.put v s_arr.(i)
        | None -> l.create v)
      vs
  in
  {
    name = Printf.sprintf "diffmap %s" l.name;
    get = List.map l.get;
    put;
    create = List.map l.create;
  }

let filter ~keep ~default:_ =
  let get = List.filter keep in
  let put vs ss =
    List.iter
      (fun v ->
        if not (keep v) then
          error "filter lens: put view contains a hidden element")
      vs;
    (* Walk the old source, replacing kept elements by the updated views in
       order; hidden elements stay in place.  Surplus views append, surplus
       kept sources are dropped. *)
    let rec weave vs ss =
      match (vs, ss) with
      | vs, [] -> vs
      | vs, s :: ss' when not (keep s) -> s :: weave vs ss'
      | v :: vs', _ :: ss' -> v :: weave vs' ss'
      | [], _ :: ss' -> weave [] ss'
    in
    weave vs ss
  in
  { name = "filter"; get; put; create = Fun.id }

let get_put_law space l =
  Law.make
    ~name:(l.name ^ ":GetPut")
    ~description:"put (get s) s = s" (fun s ->
      let s' = l.put (l.get s) s in
      Law.require (space.Model.equal s s') "put (get s) s = %a, expected %a"
        space.Model.pp s' space.Model.pp s)

let put_get_law vspace l =
  Law.make
    ~name:(l.name ^ ":PutGet")
    ~description:"get (put v s) = v" (fun (s, v) ->
      let v' = l.get (l.put v s) in
      Law.require (vspace.Model.equal v v') "get (put v s) = %a, expected %a"
        vspace.Model.pp v' vspace.Model.pp v)

let create_get_law vspace l =
  Law.make
    ~name:(l.name ^ ":CreateGet")
    ~description:"get (create v) = v" (fun v ->
      let v' = l.get (l.create v) in
      Law.require (vspace.Model.equal v v') "get (create v) = %a, expected %a"
        vspace.Model.pp v' vspace.Model.pp v)

let put_put_law space l =
  Law.make
    ~name:(l.name ^ ":PutPut")
    ~description:"put v' (put v s) = put v' s" (fun (s, v, v') ->
      let lhs = l.put v' (l.put v s) in
      let rhs = l.put v' s in
      Law.require (space.Model.equal lhs rhs)
        "put v' (put v s) = %a but put v' s = %a" space.Model.pp lhs
        space.Model.pp rhs)

let well_behaved_laws sspace vspace l =
  Law.conj
    ~name:(l.name ^ ":well-behaved")
    ~description:"GetPut and PutGet"
    [
      Law.contramap (fun (s, _) -> s) (get_put_law sspace l);
      put_get_law vspace l;
    ]
