(** Symmetric edit lenses (after Hofmann, Pierce, Wagner, POPL 2011).

    Section 3 of the paper notes that restoration functions "might require
    as input extra information, e.g. concerning the edit that has been
    done".  Edit lenses make that precise: instead of whole states, an edit
    lens propagates {e edits} — elements of a monoid acting partially on
    models — and threads a {e complement} that records the private data of
    each side. *)

(** An edit module: a monoid of edits acting partially on a set of models. *)
type ('e, 'm) edit_module = {
  module_name : string;
  apply : 'e -> 'm -> 'm option;
      (** Partial monoid action; [None] when the edit does not apply. *)
  compose : 'e -> 'e -> 'e;  (** [compose e1 e2] performs [e1] then [e2]. *)
  identity : 'e;  (** The neutral edit. *)
}

(** A symmetric edit lens between edit modules over ['m] and ['n], with
    complement type ['c]. *)
type ('c, 'ea, 'eb) t = {
  name : string;
  init : 'c;  (** Complement for the canonical initial pair of models. *)
  fwd : 'ea -> 'c -> 'eb * 'c;
      (** Translate a left edit into a right edit, updating the complement. *)
  bwd : 'eb -> 'c -> 'ea * 'c;
      (** Translate a right edit into a left edit, updating the complement. *)
}

val make :
  name:string -> init:'c -> fwd:('ea -> 'c -> 'eb * 'c)
  -> bwd:('eb -> 'c -> 'ea * 'c) -> ('c, 'ea, 'eb) t
(** Package an edit lens. *)

(** {1 A stock edit module: list edits} *)

(** Primitive edits on lists. *)
type 'a list_op =
  | Insert_at of int * 'a  (** Insert before position [i] (0-based). *)
  | Delete_at of int  (** Delete the element at position [i]. *)
  | Update_at of int * 'a  (** Replace the element at position [i]. *)

type 'a list_edit = 'a list_op list
(** A composite edit: primitive operations applied left to right. *)

val apply_list_op : 'a list_op -> 'a list -> 'a list option
(** Apply one primitive operation; [None] when out of range. *)

val list_edit_module : unit -> ('a list_edit, 'a list) edit_module
(** The edit module of composite list edits under concatenation. *)

val map_ops : ('a -> 'b) -> 'a list_edit -> 'b list_edit
(** Transport a list edit through a function on elements. *)

val list_map_iso : ('a, 'b) Iso.t -> (unit, 'a list_edit, 'b list_edit) t
(** The edit lens that maps list edits elementwise through an isomorphism.
    Stateless (unit complement). *)

val compose : ('c1, 'ea, 'eb) t -> ('c2, 'eb, 'ec) t -> ('c1 * 'c2, 'ea, 'ec) t
(** Sequential composition of edit lenses: edits flow through the middle
    edit language, complements pair up — the construction that works for
    edit lenses where state-based symmetric composition fails (see the
    glossary's "composition problem"). *)

(** {1 Laws} *)

val stable_law : eq_ea:('ea -> 'ea -> bool) -> eq_eb:('eb -> 'eb -> bool)
  -> ('c, 'ea, 'eb) t -> ea_id:'ea -> eb_id:'eb -> 'c Law.t
(** Stability: translating an identity edit yields an identity edit and
    leaves the complement unchanged (checked up to the supplied edit
    equalities; complement equality uses polymorphic [=]). *)

val round_trip_law :
  ma:('ea, 'm) edit_module -> mb:('eb, 'n) edit_module
  -> consistent:('m -> 'n -> bool) -> ('c, 'ea, 'eb) t
  -> ('m * 'n * 'c * 'ea) Law.t
(** Consistency propagation: if [m] and [n] are consistent and [ea] applies
    to [m], then the translated edit applies to [n] and the results are
    consistent again.  Inputs where the hypotheses fail are vacuously
    accepted. *)
