type t =
  | Correct
  | Hippocratic
  | Undoable
  | History_ignorant
  | Well_behaved
  | Very_well_behaved
  | Oblivious
  | Simply_matching
  | Least_change
  | Bijective

let all =
  [
    Correct;
    Hippocratic;
    Undoable;
    History_ignorant;
    Well_behaved;
    Very_well_behaved;
    Oblivious;
    Simply_matching;
    Least_change;
    Bijective;
  ]

let name = function
  | Correct -> "correct"
  | Hippocratic -> "hippocratic"
  | Undoable -> "undoable"
  | History_ignorant -> "history-ignorant"
  | Well_behaved -> "well-behaved"
  | Very_well_behaved -> "very-well-behaved"
  | Oblivious -> "oblivious"
  | Simply_matching -> "simply-matching"
  | Least_change -> "least-change"
  | Bijective -> "bijective"

let normalise s =
  String.lowercase_ascii (String.trim s)
  |> String.map (function ' ' | '_' -> '-' | c -> c)

let of_name s =
  let s = normalise s in
  List.find_opt (fun p -> String.equal (name p) s) all

let describe = function
  | Correct ->
      "Restoration re-establishes consistency: after fwd (resp. bwd) the \
       two models satisfy the consistency relation."
  | Hippocratic ->
      "Restoration never modifies models that are already consistent \
       ('first, do no harm')."
  | Undoable ->
      "For consistent (m, n), restoring after an interfering change and \
       then restoring again with the original model returns exactly the \
       original state: fwd m (fwd m' n) = n, and dually for bwd. The \
       paper's Composers discussion shows why this is usually too strong: \
       data hidden from one side (the composers' dates) cannot be \
       reconstructed."
  | History_ignorant ->
      "Restoration forgets intermediate states: fwd m' (fwd m n) = fwd m' \
       n (the symmetric analogue of the PutPut lens law)."
  | Well_behaved ->
      "For asymmetric lenses: GetPut (put (get s) s = s) and PutGet (get \
       (put v s) = v) both hold."
  | Very_well_behaved ->
      "A well-behaved lens additionally satisfying PutPut: put v' (put v \
       s) = put v' s."
  | Oblivious ->
      "Restoration ignores the model being overwritten: fwd m n does not \
       depend on n (and dually). Oblivious bx are exactly those induced by \
       plain functions."
  | Simply_matching ->
      "Restoration works by computing a matching (alignment) between \
       corresponding items of the two models and repairing each matched \
       pair independently; unmatched items are created or deleted. A \
       structural property of the restoration strategy rather than an \
       equational law."
  | Least_change ->
      "Restoration picks a consistent model as close as possible to the \
       one being repaired, for a stated notion of distance (the research \
       programme of the 'Theory of Least Change' project that motivates \
       the repository)."
  | Bijective ->
      "The consistency relation is a bijection between the two model \
       spaces; restoration is function application in each direction."

let machine_checkable = function
  | Correct | Hippocratic | Undoable | History_ignorant | Well_behaved
  | Very_well_behaved | Oblivious | Bijective ->
      true
  | Simply_matching | Least_change -> false

type claim = Satisfies of t | Violates of t

let claim_name = function
  | Satisfies p -> name p
  | Violates p -> "not " ^ name p

let claim_of_name s =
  let s = String.trim (String.lowercase_ascii s) in
  let prefix = "not " in
  if String.length s > String.length prefix
     && String.equal (String.sub s 0 (String.length prefix)) prefix then
    Option.map
      (fun p -> Violates p)
      (of_name (String.sub s (String.length prefix)
                  (String.length s - String.length prefix)))
  else Option.map (fun p -> Satisfies p) (of_name s)

let pp ppf p = Fmt.string ppf (name p)
let pp_claim ppf c = Fmt.string ppf (claim_name c)
