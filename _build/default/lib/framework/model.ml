type 'a t = {
  name : string;
  equal : 'a -> 'a -> bool;
  pp : Format.formatter -> 'a -> unit;
}

let make ~name ~equal ~pp = { name; equal; pp }

let pair a b =
  {
    name = Printf.sprintf "(%s * %s)" a.name b.name;
    equal = (fun (x1, y1) (x2, y2) -> a.equal x1 x2 && b.equal y1 y2);
    pp = Fmt.pair ~sep:(Fmt.any ",@ ") a.pp b.pp;
  }

let list a =
  {
    name = Printf.sprintf "%s list" a.name;
    equal = (fun l1 l2 -> List.length l1 = List.length l2 && List.for_all2 a.equal l1 l2);
    pp = Fmt.brackets (Fmt.list ~sep:Fmt.semi a.pp);
  }

let string = { name = "string"; equal = String.equal; pp = Fmt.string }
let int = { name = "int"; equal = Int.equal; pp = Fmt.int }
let show space m = Fmt.str "%a" space.pp m
