(** Symmetric state-based bx (Stevens, "Bidirectional model transformations
    in QVT", SoSyM 2010) — the kernel description the repository template is
    built around (Cheney et al., BX 2014, section 3).

    A bx between model spaces [M] and [N] comprises a consistency relation
    [R ⊆ M × N] and two consistency-restoration functions: [fwd : M → N → N]
    (the left model is authoritative; repair the right) and
    [bwd : M → N → M] (the right model is authoritative; repair the left).
    Restoration here depends only on the states of the two models
    (state-based bx); see {!Elens} for the edit-based alternative the
    template also admits. *)

type ('m, 'n) t = {
  name : string;
  consistent : 'm -> 'n -> bool;  (** The consistency relation R. *)
  fwd : 'm -> 'n -> 'n;
      (** [fwd m n] repairs [n] so that it is consistent with the
          authoritative [m]. *)
  bwd : 'm -> 'n -> 'm;
      (** [bwd m n] repairs [m] so that it is consistent with the
          authoritative [n]. *)
}

val make :
  name:string -> consistent:('m -> 'n -> bool) -> fwd:('m -> 'n -> 'n)
  -> bwd:('m -> 'n -> 'm) -> ('m, 'n) t
(** Package a symmetric bx. *)

val of_lens : view_equal:('v -> 'v -> bool) -> ('s, 'v) Lens.t -> ('s, 'v) t
(** A well-behaved lens induces a symmetric bx: [m] and [n] are consistent
    when [get m = n]; [fwd] is [get]; [bwd] is [put]. *)

val of_iso : ('a, 'b) Iso.t -> equal_b:('b -> 'b -> bool) -> ('a, 'b) t
(** An isomorphism induces a (bijective) symmetric bx. *)

val invert : ('m, 'n) t -> ('n, 'm) t
(** Swap the roles of the two model spaces. *)

val product : ('m, 'n) t -> ('p, 'q) t -> ('m * 'p, 'n * 'q) t
(** Componentwise product of two bx. *)

val identity : ('m, 'm) t
(** The identity bx: consistency is equality up to [(==)]-free structural
    equality supplied by OCaml's polymorphic [=]; restoration copies the
    authoritative side.  Intended for tests and documentation. *)

(** {1 Laws}

    Note: sequential composition of symmetric state-based bx is famously
    problematic (there is no canonical middle model to restore through); the
    repository glossary discusses this, and no [compose] is provided. *)

val correct_fwd_law : ('m, 'n) t -> ('m * 'n) Law.t
(** Correctness, forward half: [consistent m (fwd m n)]. *)

val correct_bwd_law : ('m, 'n) t -> ('m * 'n) Law.t
(** Correctness, backward half: [consistent (bwd m n) n]. *)

val correct_law : ('m, 'n) t -> ('m * 'n) Law.t
(** Correctness: both halves. *)

val hippocratic_fwd_law : 'n Model.t -> ('m, 'n) t -> ('m * 'n) Law.t
(** Hippocraticness, forward half: if [consistent m n] then [fwd m n = n]
    (inputs that are already consistent are vacuously accepted). *)

val hippocratic_bwd_law : 'm Model.t -> ('m, 'n) t -> ('m * 'n) Law.t
(** Hippocraticness, backward half: if [consistent m n] then [bwd m n = m]. *)

val hippocratic_law : 'm Model.t -> 'n Model.t -> ('m, 'n) t -> ('m * 'n) Law.t
(** Hippocraticness: both halves. *)

val undoable_fwd_law : 'n Model.t -> ('m, 'n) t -> ('m * 'm * 'n) Law.t
(** Forward undoability (Stevens 2010): for consistent [(m, n)] and any
    [m'], [fwd m (fwd m' n) = n] — redoing with the original [m] undoes the
    effect of the interfering [m'].  Inputs with inconsistent [(m, n)] are
    vacuously accepted. *)

val undoable_bwd_law : 'm Model.t -> ('m, 'n) t -> ('m * 'n * 'n) Law.t
(** Backward undoability: for consistent [(m, n)] and any [n'],
    [bwd (bwd m n') n = m].  This is the direction the paper's Composers
    discussion shows failing (deleted dates cannot be restored). *)

val history_ignorant_fwd_law : 'n Model.t -> ('m, 'n) t -> ('m * 'm * 'n) Law.t
(** Forward history ignorance (PutPut analogue):
    [fwd m' (fwd m n) = fwd m' n]. *)

val history_ignorant_bwd_law : 'm Model.t -> ('m, 'n) t -> ('m * 'n * 'n) Law.t
(** Backward history ignorance: [bwd (bwd m n) n' = bwd m n']. *)

val oblivious_fwd_law : 'n Model.t -> ('m, 'n) t -> ('m * 'n * 'n) Law.t
(** Forward obliviousness: [fwd m n = fwd m n'] — restoration ignores the
    model being overwritten. *)

val oblivious_bwd_law : 'm Model.t -> ('m, 'n) t -> ('m * 'm * 'n) Law.t
(** Backward obliviousness: [bwd m n = bwd m' n]. *)

val bijective_law :
  'm Model.t -> 'n Model.t -> ('m, 'n) t -> ('m * 'n) Law.t
(** Bijectivity (checked via restoration): [bwd (fwd m n) ... ] recovers
    [m] and dually — precisely, [bwd m' (fwd m n) = m] where [m' = m], and
    [fwd (bwd m n) n' = n] where [n' = n]; combined with obliviousness
    this characterises a bijection.  The law checks
    [bwd m (fwd m n) = m] and [fwd (bwd m n) n = n]. *)
