(** First-class bx laws.

    A law is a named, checkable predicate over some input type — typically a
    tuple of models drawn from the spaces a bx relates.  Laws are the bridge
    between the informal "Properties" field of a repository entry (Cheney et
    al., BX 2014, section 3) and machine verification: each property claim is
    backed by one or more laws, which test harnesses evaluate on enumerated
    or randomly generated inputs. *)

type verdict =
  | Holds  (** The law is satisfied on this input. *)
  | Violated of string  (** The law fails; the payload explains how. *)

type 'a t = {
  name : string;  (** Short identifier, e.g. ["correct-fwd"]. *)
  description : string;  (** One-sentence statement of the law. *)
  check : 'a -> verdict;  (** Evaluate the law on one input. *)
}

val make : name:string -> description:string -> ('a -> verdict) -> 'a t
(** [make ~name ~description check] packages a law. *)

val holds : verdict
(** The positive verdict. *)

val violated : ('a, Format.formatter, unit, verdict) format4 -> 'a
(** [violated fmt ...] builds a negative verdict with a formatted message. *)

val require : bool -> ('a, Format.formatter, unit, verdict) format4 -> 'a
(** [require cond fmt ...] is {!holds} when [cond] is true, otherwise a
    {!Violated} verdict carrying the formatted message. *)

val contramap : ('b -> 'a) -> 'a t -> 'b t
(** [contramap f law] checks [law] on [f b]; useful to adapt input shapes. *)

val conj : name:string -> description:string -> 'a t list -> 'a t
(** [conj ~name ~description laws] holds iff every law in [laws] holds; the
    verdict reports the first violation, prefixed with the violated law's
    name. *)

val is_violated : verdict -> bool
(** [is_violated v] is true on {!Violated} verdicts. *)

val check_all : 'a t -> 'a list -> (int * 'a * string) list
(** [check_all law inputs] evaluates [law] on every input and returns the
    indices, inputs and messages of the violations (empty = law held
    everywhere). *)

val pp_verdict : Format.formatter -> verdict -> unit
(** Render a verdict as ["holds"] or ["violated: <msg>"]. *)
