type ('a, 'b, 'c) t = {
  name : string;
  consistent3 : 'a -> 'b -> 'c -> bool;
  restore_from_a : 'a -> 'b -> 'c -> 'b * 'c;
  restore_from_b : 'a -> 'b -> 'c -> 'a * 'c;
  restore_from_c : 'a -> 'b -> 'c -> 'a * 'b;
}

let make ~name ~consistent3 ~restore_from_a ~restore_from_b ~restore_from_c =
  { name; consistent3; restore_from_a; restore_from_b; restore_from_c }

let of_two_lenses ~view_equal_b ~view_equal_c (lb : ('a, 'b) Lens.t)
    (lc : ('a, 'c) Lens.t) =
  {
    name = Printf.sprintf "span(%s, %s)" lb.Lens.name lc.Lens.name;
    consistent3 =
      (fun a b c ->
        view_equal_b (lb.Lens.get a) b && view_equal_c (lc.Lens.get a) c);
    restore_from_a = (fun a _ _ -> (lb.Lens.get a, lc.Lens.get a));
    restore_from_b =
      (fun a b _ ->
        let a' = lb.Lens.put b a in
        (a', lc.Lens.get a'));
    restore_from_c =
      (fun a _ c ->
        let a' = lc.Lens.put c a in
        (a', lb.Lens.get a'));
  }

let correct3_law bx =
  Law.make
    ~name:(bx.name ^ ":correct3")
    ~description:"restoration from any side re-establishes consistency"
    (fun (a, b, c) ->
      let b1, c1 = bx.restore_from_a a b c in
      if not (bx.consistent3 a b1 c1) then
        Law.violated "restore_from_a left the triple inconsistent"
      else
        let a2, c2 = bx.restore_from_b a b c in
        if not (bx.consistent3 a2 b c2) then
          Law.violated "restore_from_b left the triple inconsistent"
        else
          let a3, b3 = bx.restore_from_c a b c in
          Law.require
            (bx.consistent3 a3 b3 c)
            "restore_from_c left the triple inconsistent")

let hippocratic3_law aspace bspace cspace bx =
  Law.make
    ~name:(bx.name ^ ":hippocratic3")
    ~description:"a consistent triple is untouched by restoration"
    (fun (a, b, c) ->
      if not (bx.consistent3 a b c) then Law.holds
      else
        let b1, c1 = bx.restore_from_a a b c in
        let a2, c2 = bx.restore_from_b a b c in
        let a3, b3 = bx.restore_from_c a b c in
        if not (bspace.Model.equal b b1 && cspace.Model.equal c c1) then
          Law.violated "restore_from_a modified a consistent triple"
        else if not (aspace.Model.equal a a2 && cspace.Model.equal c c2) then
          Law.violated "restore_from_b modified a consistent triple"
        else
          Law.require
            (aspace.Model.equal a a3 && bspace.Model.equal b b3)
            "restore_from_c modified a consistent triple")
