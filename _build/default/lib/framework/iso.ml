type ('a, 'b) t = {
  name : string;
  fwd : 'a -> 'b;
  bwd : 'b -> 'a;
}

let make ~name ~fwd ~bwd = { name; fwd; bwd }
let id = { name = "id"; fwd = Fun.id; bwd = Fun.id }

let inverse iso =
  { name = iso.name ^ "^-1"; fwd = iso.bwd; bwd = iso.fwd }

let compose f g =
  {
    name = Printf.sprintf "%s; %s" f.name g.name;
    fwd = (fun a -> g.fwd (f.fwd a));
    bwd = (fun c -> f.bwd (g.bwd c));
  }

let pair f g =
  {
    name = Printf.sprintf "(%s * %s)" f.name g.name;
    fwd = (fun (a, c) -> (f.fwd a, g.fwd c));
    bwd = (fun (b, d) -> (f.bwd b, g.bwd d));
  }

let list_map f =
  {
    name = Printf.sprintf "map %s" f.name;
    fwd = List.map f.fwd;
    bwd = List.map f.bwd;
  }

let swap () =
  { name = "swap"; fwd = (fun (a, b) -> (b, a)); bwd = (fun (b, a) -> (a, b)) }

let fwd_bwd_law space iso =
  Law.make ~name:(iso.name ^ ":bwd-fwd-inverse")
    ~description:"bwd (fwd a) = a" (fun a ->
      let a' = iso.bwd (iso.fwd a) in
      Law.require (space.Model.equal a a') "bwd (fwd %a) = %a" space.Model.pp a
        space.Model.pp a')

let bwd_fwd_law space iso =
  Law.make ~name:(iso.name ^ ":fwd-bwd-inverse")
    ~description:"fwd (bwd b) = b" (fun b ->
      let b' = iso.fwd (iso.bwd b) in
      Law.require (space.Model.equal b b') "fwd (bwd %a) = %a" space.Model.pp b
        space.Model.pp b')
