let fwd_law ~candidates ~distance (bx : ('m, 'n) Symmetric.t) =
  Law.make
    ~name:(bx.Symmetric.name ^ ":least-change-fwd")
    ~description:
      "no proposed consistent repair is closer to the overwritten model \
       than fwd's answer"
    (fun (m, n) ->
      let chosen = bx.Symmetric.fwd m n in
      let chosen_distance = distance n chosen in
      let better =
        List.find_opt
          (fun n' ->
            bx.Symmetric.consistent m n' && distance n n' < chosen_distance)
          (candidates m n)
      in
      match better with
      | None -> Law.holds
      | Some n' ->
          Law.violated
            "a consistent repair at distance %d beats fwd's answer at %d"
            (distance n n') chosen_distance)

let bwd_law ~candidates ~distance (bx : ('m, 'n) Symmetric.t) =
  Law.make
    ~name:(bx.Symmetric.name ^ ":least-change-bwd")
    ~description:
      "no proposed consistent repair is closer to the overwritten model \
       than bwd's answer"
    (fun (m, n) ->
      let chosen = bx.Symmetric.bwd m n in
      let chosen_distance = distance m chosen in
      let better =
        List.find_opt
          (fun m' ->
            bx.Symmetric.consistent m' n && distance m m' < chosen_distance)
          (candidates m n)
      in
      match better with
      | None -> Law.holds
      | Some m' ->
          Law.violated
            "a consistent repair at distance %d beats bwd's answer at %d"
            (distance m m') chosen_distance)

let list_edit_distance ~equal a b =
  let a = Array.of_list a and b = Array.of_list b in
  let n = Array.length a and m = Array.length b in
  let row = Array.init (m + 1) Fun.id in
  for i = 1 to n do
    let prev_diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to m do
      let cost = if equal a.(i - 1) b.(j - 1) then 0 else 1 in
      let next = min (min (row.(j) + 1) (row.(j - 1) + 1)) (!prev_diag + cost) in
      prev_diag := row.(j);
      row.(j) <- next
    done
  done;
  row.(m)

let set_distance ~compare a b =
  let sa = List.sort_uniq compare a and sb = List.sort_uniq compare b in
  let in_ l x = List.exists (fun y -> compare x y = 0) l in
  List.length (List.filter (fun x -> not (in_ sb x)) sa)
  + List.length (List.filter (fun x -> not (in_ sa x)) sb)
