(** Least-change checking.

    The paper's authors founded the repository as a foundation for the
    EPSRC project {e A Theory of Least Change for Bidirectional
    Transformations}: the principle that restoration should pick a
    consistent model {e as close as possible} to the one being repaired.
    The principle is relative to a notion of distance and to the set of
    consistent alternatives considered, so the law here is parameterised
    by both: a [candidates] function proposing alternative consistent
    repairs, and a [distance] on the repaired model's space.

    The law is {e relative} minimality: no proposed candidate may beat
    the bx's own answer.  With an exhaustive candidate set it is absolute
    minimality; with a heuristic set it is a strong regression test. *)

val fwd_law :
  candidates:('m -> 'n -> 'n list) -> distance:('n -> 'n -> int)
  -> ('m, 'n) Symmetric.t -> ('m * 'n) Law.t
(** For input [(m, n)]: every candidate [n'] with
    [consistent m n'] must satisfy
    [distance n n' >= distance n (fwd m n)].  Candidates that are not
    consistent are ignored (the candidate function may over-propose). *)

val bwd_law :
  candidates:('m -> 'n -> 'm list) -> distance:('m -> 'm -> int)
  -> ('m, 'n) Symmetric.t -> ('m * 'n) Law.t
(** Dual: no consistent candidate [m'] may be closer to [m] than
    [bwd m n]. *)

(** {1 Stock distances} *)

val list_edit_distance : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> int
(** Levenshtein distance over list elements (insertions, deletions and
    substitutions all cost 1). *)

val set_distance : compare:('a -> 'a -> int) -> 'a list -> 'a list -> int
(** Size of the symmetric difference of the two lists viewed as sets. *)
