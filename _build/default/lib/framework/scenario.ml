type ('m, 'n) step =
  | Edit_left of string * ('m -> 'm)
  | Edit_right of string * ('n -> 'n)

type ('m, 'n) scenario = {
  scenario_name : string;
  scenario_description : string;
  initial_left : 'm;
  initial_right : 'n;
  steps : ('m, 'n) step list;
}

type ('m, 'n) outcome = {
  final_left : 'm;
  final_right : 'n;
  restorations : int;
  step_log : (string * bool) list;
  consistent_throughout : bool;
}

let make ~name ?(description = "") ~initial_left ~initial_right steps =
  {
    scenario_name = name;
    scenario_description = description;
    initial_left;
    initial_right;
    steps;
  }

let run (bx : ('m, 'n) Symmetric.t) scenario =
  let left = ref scenario.initial_left in
  (* Establish consistency once before the steps (restoration #1). *)
  let right = ref (bx.Symmetric.fwd scenario.initial_left scenario.initial_right) in
  let restorations = ref 1 in
  let log = ref [] in
  let all_ok = ref (bx.Symmetric.consistent !left !right) in
  List.iter
    (fun step ->
      let label =
        match step with
        | Edit_left (label, edit) ->
            left := edit !left;
            right := bx.Symmetric.fwd !left !right;
            label
        | Edit_right (label, edit) ->
            right := edit !right;
            left := bx.Symmetric.bwd !left !right;
            label
      in
      incr restorations;
      let ok = bx.Symmetric.consistent !left !right in
      all_ok := !all_ok && ok;
      log := (label, ok) :: !log)
    scenario.steps;
  {
    final_left = !left;
    final_right = !right;
    restorations = !restorations;
    step_log = List.rev !log;
    consistent_throughout = !all_ok;
  }

let pp_outcome ppf outcome =
  List.iter
    (fun (label, ok) ->
      Fmt.pf ppf "%-40s %s@." label (if ok then "consistent" else "INCONSISTENT"))
    outcome.step_log;
  Fmt.pf ppf "restorations: %d; consistent throughout: %b@."
    outcome.restorations outcome.consistent_throughout
