(** Benchmark scenarios: scripted alternations of edits and restoration
    over a symmetric bx, in the style of the BenchmarX proposal (whose
    authors the paper reports discussing "extra optional sections that may
    be necessary for benchmark examples").

    A scenario starts from an initial left model, derives the right model
    by forward restoration, then interprets a list of steps; after every
    edit the opposite model is restored and consistency re-checked.  The
    outcome records the final pair, a per-step log, and whether
    consistency held throughout — the invariant every BENCHMARK-class
    entry's workloads are expected to maintain. *)

type ('m, 'n) step =
  | Edit_left of string * ('m -> 'm)
      (** Edit the left model (then restore the right). *)
  | Edit_right of string * ('n -> 'n)
      (** Edit the right model (then restore the left). *)

type ('m, 'n) scenario = {
  scenario_name : string;
  scenario_description : string;
  initial_left : 'm;
  initial_right : 'n;
      (** A seed for the right model (often empty); the run starts by
          restoring it from [initial_left]. *)
  steps : ('m, 'n) step list;
}

type ('m, 'n) outcome = {
  final_left : 'm;
  final_right : 'n;
  restorations : int;  (** Restoration calls performed (steps + 1). *)
  step_log : (string * bool) list;
      (** Step label and whether the pair was consistent afterwards. *)
  consistent_throughout : bool;
}

val make :
  name:string -> ?description:string -> initial_left:'m -> initial_right:'n
  -> ('m, 'n) step list -> ('m, 'n) scenario

val run : ('m, 'n) Symmetric.t -> ('m, 'n) scenario -> ('m, 'n) outcome

val pp_outcome :
  Format.formatter -> ('m, 'n) outcome -> unit
(** One line per step plus the summary; model contents are not printed. *)
