(** Constant-complement lenses (Bancilhon and Spyratos, 1981) — the
    database-heritage end of the bx spectrum the paper's introduction
    spans.

    A complement lens decomposes a source into a view and a {e complement}
    holding exactly the information the view misses: [split : S -> V * C]
    and [merge : V * C -> S].  When [split] and [merge] are mutually
    inverse, the induced ordinary lens ([put v s = merge (v, complement of
    s)]) is very well-behaved, and the induced symmetric bx is undoable —
    the classical explanation of why COMPOSERS (which has no complement)
    is not. *)

type ('s, 'v, 'c) t = {
  name : string;
  split : 's -> 'v * 'c;
  merge : 'v * 'c -> 's;
}

val make :
  name:string -> split:('s -> 'v * 'c) -> merge:('v * 'c -> 's)
  -> ('s, 'v, 'c) t

val view : ('s, 'v, 'c) t -> 's -> 'v
val complement : ('s, 'v, 'c) t -> 's -> 'c

val to_lens : default:'c -> ('s, 'v, 'c) t -> ('s, 'v) Lens.t
(** The induced ordinary lens; [create] merges with [default]. *)

val to_symmetric :
  view_equal:('v -> 'v -> bool) -> default:'c -> ('s, 'v, 'c) t
  -> ('s, 'v) Symmetric.t
(** The induced symmetric bx ([of_lens] of {!to_lens}). *)

val of_iso : ('s, 'v) Iso.t -> ('s, 'v, unit) t
(** An isomorphism has a trivial complement. *)

val pair_first : unit -> ('a * 'b, 'a, 'b) t
(** The canonical example: project the first component, the second is the
    complement. *)

val compose : ('s, 'v, 'c1) t -> ('v, 'w, 'c2) t -> ('s, 'w, 'c1 * 'c2) t
(** Complements compose by pairing. *)

(** {1 Laws} *)

val split_merge_law : 's Model.t -> ('s, 'v, 'c) t -> 's Law.t
(** [merge (split s) = s]. *)

val merge_split_law :
  'v Model.t -> c_equal:('c -> 'c -> bool) -> ('s, 'v, 'c) t
  -> ('v * 'c) Law.t
(** [split (merge (v, c)) = (v, c)].  Together with {!split_merge_law}
    this makes the decomposition a bijection [S ≅ V × C]. *)

val induced_put_put_law :
  's Model.t -> default:'c -> ('s, 'v, 'c) t -> ('s * 'v * 'v) Law.t
(** The theorem, as a checkable law: the induced lens satisfies PutPut. *)
