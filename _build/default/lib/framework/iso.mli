(** Isomorphisms: the bijective special case of a bx.

    An isomorphism is a bx in which consistency is a bijection, so
    restoration in either direction is simply function application.  Many
    textbook examples (unit conversion, encoding changes) live here; isos
    also embed into {!Lens} and {!Symmetric}. *)

type ('a, 'b) t = {
  name : string;
  fwd : 'a -> 'b;  (** The forward direction. *)
  bwd : 'b -> 'a;  (** The backward direction, inverse of [fwd]. *)
}

val make : name:string -> fwd:('a -> 'b) -> bwd:('b -> 'a) -> ('a, 'b) t
(** [make ~name ~fwd ~bwd] packages an isomorphism.  The inverse laws are
    not checked here; use {!fwd_bwd_law} and {!bwd_fwd_law}. *)

val id : ('a, 'a) t
(** The identity isomorphism. *)

val inverse : ('a, 'b) t -> ('b, 'a) t
(** Swap the two directions. *)

val compose : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** [compose f g] applies [f] then [g] forwards, and [g] then [f] backwards. *)

val pair : ('a, 'b) t -> ('c, 'd) t -> ('a * 'c, 'b * 'd) t
(** Componentwise product of isomorphisms. *)

val list_map : ('a, 'b) t -> ('a list, 'b list) t
(** Elementwise image of an isomorphism on lists. *)

val swap : unit -> ('a * 'b, 'b * 'a) t
(** The pair-swapping isomorphism. *)

val fwd_bwd_law : 'a Model.t -> ('a, 'b) t -> 'a Law.t
(** Law: [bwd (fwd a) = a]. *)

val bwd_fwd_law : 'b Model.t -> ('a, 'b) t -> 'b Law.t
(** Law: [fwd (bwd b) = b]. *)
