(** The vocabulary of bx properties.

    The repository template's "Properties" field (Cheney et al., BX 2014,
    section 3) links to "a separate glossary of terms such as
    'hippocraticness'".  This module is that glossary's vocabulary: the
    property names, their definitions, and the polarity with which an entry
    may claim them (the paper's Composers entry claims "Correct",
    "Hippocratic", "Not undoable", "Simply matching"). *)

type t =
  | Correct
  | Hippocratic
  | Undoable
  | History_ignorant
  | Well_behaved
  | Very_well_behaved
  | Oblivious
  | Simply_matching
  | Least_change
  | Bijective

val all : t list
(** Every property, in a stable order. *)

val name : t -> string
(** Canonical lower-case hyphenated name, e.g. ["history-ignorant"]. *)

val of_name : string -> t option
(** Inverse of {!name}; case-insensitive, accepts spaces for hyphens. *)

val describe : t -> string
(** Glossary definition, one or two sentences. *)

val machine_checkable : t -> bool
(** Whether the property has an executable law in this framework (e.g.
    "simply matching" and "least change" are structural/semantic notions we
    document but do not check mechanically). *)

(** A claim an entry makes about its bx: the property holds, or pointedly
    does not (the paper's "Not undoable"). *)
type claim = Satisfies of t | Violates of t

val claim_name : claim -> string
(** ["correct"] or ["not undoable"]-style rendering. *)

val claim_of_name : string -> claim option
(** Parse a claim; a leading ["not "] marks a {!Violates} claim. *)

val pp : Format.formatter -> t -> unit
val pp_claim : Format.formatter -> claim -> unit
