(** Multiary (three-model) symmetric bx.

    The template (section 3) says an example "will typically define two
    {e or more} classes of models, together with a consistency relation
    between them" — this module is the three-model instance: a
    consistency relation over triples and, per model, a restoration
    function that takes that model as authoritative and repairs the other
    two.  Correctness and hippocraticness generalise pointwise; the
    binary laws of {!Symmetric} are recovered by fixing one component. *)

type ('a, 'b, 'c) t = {
  name : string;
  consistent3 : 'a -> 'b -> 'c -> bool;
  restore_from_a : 'a -> 'b -> 'c -> 'b * 'c;
      (** [a] is authoritative; repair [b] and [c]. *)
  restore_from_b : 'a -> 'b -> 'c -> 'a * 'c;
  restore_from_c : 'a -> 'b -> 'c -> 'a * 'b;
}

val make :
  name:string -> consistent3:('a -> 'b -> 'c -> bool)
  -> restore_from_a:('a -> 'b -> 'c -> 'b * 'c)
  -> restore_from_b:('a -> 'b -> 'c -> 'a * 'c)
  -> restore_from_c:('a -> 'b -> 'c -> 'a * 'b)
  -> ('a, 'b, 'c) t

val of_two_lenses :
  view_equal_b:('b -> 'b -> bool) -> view_equal_c:('c -> 'c -> bool)
  -> ('a, 'b) Lens.t -> ('a, 'c) Lens.t -> ('a, 'b, 'c) t
(** The span construction: a shared source with two lens-maintained
    views.  Consistency: both views agree with the source.  Restoring
    from the source regenerates both views; restoring from a view puts it
    into the source and regenerates the other view. *)

(** {1 Laws} *)

val correct3_law : ('a, 'b, 'c) t -> ('a * 'b * 'c) Law.t
(** After restoring from any of the three models, the triple is
    consistent. *)

val hippocratic3_law :
  'a Model.t -> 'b Model.t -> 'c Model.t -> ('a, 'b, 'c) t
  -> ('a * 'b * 'c) Law.t
(** A consistent triple is untouched by restoration from any side. *)
