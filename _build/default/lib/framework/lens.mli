(** Asymmetric state-based lenses (Foster et al., "Combinators for
    bidirectional tree transformations"; Bohannon et al., POPL 2008).

    A lens relates a {e source} space ['s] to a {e view} space ['v].  [get]
    extracts the view from a source; [put] takes an updated view and the old
    source and produces an updated source; [create] builds a source from a
    view alone (used when there is no old source to consult).

    A lens is {e well-behaved} when GetPut and PutGet hold, and {e very
    well-behaved} when additionally PutPut holds.  These laws are exposed as
    first-class {!Law.t} values so test harnesses can verify the claims a
    repository entry makes. *)

exception Error of string
(** Raised by partial lens operations, e.g. putting a view that the lens
    cannot reflect ([const]), or applying a lens outside its domain. *)

type ('s, 'v) t = {
  name : string;
  get : 's -> 'v;
  put : 'v -> 's -> 's;
  create : 'v -> 's;
}

val make :
  name:string -> get:('s -> 'v) -> put:('v -> 's -> 's) -> create:('v -> 's)
  -> ('s, 'v) t
(** Package a lens from its three components. *)

val error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [error fmt ...] raises {!Error} with a formatted message. *)

val id : ('a, 'a) t
(** The identity lens. *)

val compose : ('a, 'b) t -> ('b, 'c) t -> ('a, 'c) t
(** Sequential composition: the view of the first is the source of the
    second. *)

val of_iso : ('a, 'b) Iso.t -> ('a, 'b) t
(** Every isomorphism is a (very well-behaved) lens with trivial [create]. *)

val first : default:'b -> ('a * 'b, 'a) t
(** Project the first component; the second is the complement.  [create]
    pairs the view with [default]. *)

val second : default:'a -> ('a * 'b, 'b) t
(** Project the second component. *)

val pair : ('s, 'v) t -> ('s2, 'v2) t -> ('s * 's2, 'v * 'v2) t
(** Parallel composition on pairs. *)

val const : view:'v -> view_equal:('v -> 'v -> bool) -> default:'s -> ('s, 'v) t
(** [const ~view ~view_equal ~default] maps every source to the constant
    [view].  [put] requires the incoming view to equal [view] (raises
    {!Error} otherwise) and leaves the source unchanged; [create] returns
    [default]. *)

val list_map : ('s, 'v) t -> ('s list, 'v list) t
(** Elementwise lens with {e positional} alignment on [put]: the i-th view
    element is put into the i-th old source element; surplus views are
    [create]d; surplus sources are discarded. *)

val list_key_map :
  source_key:('s -> 'k) -> view_key:('v -> 'k) -> ('s, 'v) t
  -> ('s list, 'v list) t
(** Elementwise lens with {e key-based (resourceful) alignment} on [put]: a
    view element is put into the first unconsumed old source element with a
    matching key, preserving that element's hidden data; unmatched views are
    [create]d.  This is the state-level analogue of POPL'08 dictionary
    lenses. *)

val list_diff_map :
  source_key:('s -> 'k) -> view_key:('v -> 'k) -> ('s, 'v) t
  -> ('s list, 'v list) t
(** Elementwise lens with {e order-respecting (LCS) alignment} on [put]: a
    longest common subsequence of keys decides which view elements reuse
    which source elements, so middle insertions and deletions leave the
    rest of the list's hidden data in place — including among duplicate
    keys, where {!list_key_map}'s greedy first-match misassigns. *)

val filter : keep:('s -> bool) -> default:'s -> ('s list, 's list) t
(** [filter ~keep ~default] shows only the elements satisfying [keep].
    [put] splices the updated kept elements back among the hidden (non-kept)
    elements, preserving the hidden ones in place; surplus view elements are
    appended; [create] uses the view itself.  Raises {!Error} if a view
    element fails [keep] (the view must stay within the visible space). *)

(** {1 Laws} *)

val get_put_law : 's Model.t -> ('s, 'v) t -> 's Law.t
(** GetPut: [put (get s) s = s] — putting back an unmodified view changes
    nothing (the acceptability half of well-behavedness). *)

val put_get_law : 'v Model.t -> ('s, 'v) t -> ('s * 'v) Law.t
(** PutGet: [get (put v s) = v] — a put view is exactly recovered. *)

val create_get_law : 'v Model.t -> ('s, 'v) t -> 'v Law.t
(** CreateGet: [get (create v) = v]. *)

val put_put_law : 's Model.t -> ('s, 'v) t -> ('s * 'v * 'v) Law.t
(** PutPut: [put v' (put v s) = put v' s] — very-well-behavedness. *)

val well_behaved_laws : 's Model.t -> 'v Model.t -> ('s, 'v) t -> ('s * 'v) Law.t
(** Conjunction of GetPut and PutGet, adapted to a common input shape. *)
