type ('m, 'n) t = {
  name : string;
  consistent : 'm -> 'n -> bool;
  fwd : 'm -> 'n -> 'n;
  bwd : 'm -> 'n -> 'm;
}

let make ~name ~consistent ~fwd ~bwd = { name; consistent; fwd; bwd }

let of_lens ~view_equal (l : ('s, 'v) Lens.t) =
  {
    name = l.Lens.name;
    consistent = (fun m n -> view_equal (l.Lens.get m) n);
    fwd = (fun m _ -> l.Lens.get m);
    bwd = (fun m n -> l.Lens.put n m);
  }

let of_iso (iso : ('a, 'b) Iso.t) ~equal_b =
  {
    name = iso.Iso.name;
    consistent = (fun a b -> equal_b (iso.Iso.fwd a) b);
    fwd = (fun a _ -> iso.Iso.fwd a);
    bwd = (fun _ b -> iso.Iso.bwd b);
  }

let invert bx =
  {
    name = bx.name ^ "^-1";
    consistent = (fun n m -> bx.consistent m n);
    fwd = (fun n m -> bx.bwd m n);
    bwd = (fun n m -> bx.fwd m n);
  }

let product bx1 bx2 =
  {
    name = Printf.sprintf "(%s * %s)" bx1.name bx2.name;
    consistent =
      (fun (m, p) (n, q) -> bx1.consistent m n && bx2.consistent p q);
    fwd = (fun (m, p) (n, q) -> (bx1.fwd m n, bx2.fwd p q));
    bwd = (fun (m, p) (n, q) -> (bx1.bwd m n, bx2.bwd p q));
  }

let identity =
  {
    name = "identity";
    consistent = (fun m n -> m = n);
    fwd = (fun m _ -> m);
    bwd = (fun _ n -> n);
  }

let correct_fwd_law bx =
  Law.make
    ~name:(bx.name ^ ":correct-fwd")
    ~description:"consistent m (fwd m n)" (fun (m, n) ->
      Law.require (bx.consistent m (bx.fwd m n))
        "fwd produced a model inconsistent with the authoritative side")

let correct_bwd_law bx =
  Law.make
    ~name:(bx.name ^ ":correct-bwd")
    ~description:"consistent (bwd m n) n" (fun (m, n) ->
      Law.require (bx.consistent (bx.bwd m n) n)
        "bwd produced a model inconsistent with the authoritative side")

let correct_law bx =
  Law.conj
    ~name:(bx.name ^ ":correct")
    ~description:"restoration re-establishes consistency in both directions"
    [ correct_fwd_law bx; correct_bwd_law bx ]

let hippocratic_fwd_law nspace bx =
  Law.make
    ~name:(bx.name ^ ":hippocratic-fwd")
    ~description:"consistent m n implies fwd m n = n" (fun (m, n) ->
      if not (bx.consistent m n) then Law.holds
      else
        let n' = bx.fwd m n in
        Law.require (nspace.Model.equal n n')
          "fwd changed an already-consistent model: %a became %a"
          nspace.Model.pp n nspace.Model.pp n')

let hippocratic_bwd_law mspace bx =
  Law.make
    ~name:(bx.name ^ ":hippocratic-bwd")
    ~description:"consistent m n implies bwd m n = m" (fun (m, n) ->
      if not (bx.consistent m n) then Law.holds
      else
        let m' = bx.bwd m n in
        Law.require (mspace.Model.equal m m')
          "bwd changed an already-consistent model: %a became %a"
          mspace.Model.pp m mspace.Model.pp m')

let hippocratic_law mspace nspace bx =
  Law.conj
    ~name:(bx.name ^ ":hippocratic")
    ~description:"restoration never modifies already-consistent models"
    [ hippocratic_fwd_law nspace bx; hippocratic_bwd_law mspace bx ]

let undoable_fwd_law nspace bx =
  Law.make
    ~name:(bx.name ^ ":undoable-fwd")
    ~description:"consistent m n implies fwd m (fwd m' n) = n"
    (fun (m, m', n) ->
      if not (bx.consistent m n) then Law.holds
      else
        let n'' = bx.fwd m (bx.fwd m' n) in
        Law.require (nspace.Model.equal n n'')
          "redoing fwd with the original model gave %a, expected %a"
          nspace.Model.pp n'' nspace.Model.pp n)

let undoable_bwd_law mspace bx =
  Law.make
    ~name:(bx.name ^ ":undoable-bwd")
    ~description:"consistent m n implies bwd (bwd m n') n = m"
    (fun (m, n, n') ->
      if not (bx.consistent m n) then Law.holds
      else
        let m'' = bx.bwd (bx.bwd m n') n in
        Law.require (mspace.Model.equal m m'')
          "redoing bwd with the original model gave %a, expected %a"
          mspace.Model.pp m'' mspace.Model.pp m)

let history_ignorant_fwd_law nspace bx =
  Law.make
    ~name:(bx.name ^ ":history-ignorant-fwd")
    ~description:"fwd m' (fwd m n) = fwd m' n" (fun (m, m', n) ->
      let lhs = bx.fwd m' (bx.fwd m n) in
      let rhs = bx.fwd m' n in
      Law.require (nspace.Model.equal lhs rhs)
        "fwd m' (fwd m n) = %a but fwd m' n = %a" nspace.Model.pp lhs
        nspace.Model.pp rhs)

let history_ignorant_bwd_law mspace bx =
  Law.make
    ~name:(bx.name ^ ":history-ignorant-bwd")
    ~description:"bwd (bwd m n) n' = bwd m n'" (fun (m, n, n') ->
      let lhs = bx.bwd (bx.bwd m n) n' in
      let rhs = bx.bwd m n' in
      Law.require (mspace.Model.equal lhs rhs)
        "bwd (bwd m n) n' = %a but bwd m n' = %a" mspace.Model.pp lhs
        mspace.Model.pp rhs)

let oblivious_fwd_law nspace bx =
  Law.make
    ~name:(bx.name ^ ":oblivious-fwd")
    ~description:"fwd m n = fwd m n'" (fun (m, n, n') ->
      let a = bx.fwd m n and b = bx.fwd m n' in
      Law.require (nspace.Model.equal a b)
        "fwd depends on the overwritten model: %a vs %a" nspace.Model.pp a
        nspace.Model.pp b)

let oblivious_bwd_law mspace bx =
  Law.make
    ~name:(bx.name ^ ":oblivious-bwd")
    ~description:"bwd m n = bwd m' n" (fun (m, m', n) ->
      let a = bx.bwd m n and b = bx.bwd m' n in
      Law.require (mspace.Model.equal a b)
        "bwd depends on the overwritten model: %a vs %a" mspace.Model.pp a
        mspace.Model.pp b)

let bijective_law mspace nspace bx =
  Law.make
    ~name:(bx.name ^ ":bijective")
    ~description:"bwd m (fwd m n) = m and fwd (bwd m n) n = n"
    (fun (m, n) ->
      let m' = bx.bwd m (bx.fwd m n) in
      if not (mspace.Model.equal m m') then
        Law.violated "bwd (fwd m n) = %a, expected %a" mspace.Model.pp m'
          mspace.Model.pp m
      else
        let n' = bx.fwd (bx.bwd m n) n in
        Law.require (nspace.Model.equal n n')
          "fwd (bwd m n) = %a, expected %a" nspace.Model.pp n' nspace.Model.pp
          n)
