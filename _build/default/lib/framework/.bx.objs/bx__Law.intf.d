lib/framework/law.mli: Format
