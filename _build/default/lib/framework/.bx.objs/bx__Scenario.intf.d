lib/framework/scenario.mli: Format Symmetric
