lib/framework/lens.mli: Format Iso Law Model
