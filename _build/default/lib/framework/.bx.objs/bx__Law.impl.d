lib/framework/law.ml: Fmt Format List Printf
