lib/framework/clens.mli: Iso Law Lens Model Symmetric
