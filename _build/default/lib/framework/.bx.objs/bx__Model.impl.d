lib/framework/model.ml: Fmt Format Int List Printf String
