lib/framework/elens.ml: Iso Law List Printf
