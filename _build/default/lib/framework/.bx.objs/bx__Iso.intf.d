lib/framework/iso.mli: Law Model
