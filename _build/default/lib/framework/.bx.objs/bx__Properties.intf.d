lib/framework/properties.mli: Format
