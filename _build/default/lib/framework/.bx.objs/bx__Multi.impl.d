lib/framework/multi.ml: Law Lens Model Printf
