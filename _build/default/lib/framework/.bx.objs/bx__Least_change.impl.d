lib/framework/least_change.ml: Array Fun Law List Symmetric
