lib/framework/scenario.ml: Fmt List Symmetric
