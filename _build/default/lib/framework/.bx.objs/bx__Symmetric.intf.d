lib/framework/symmetric.mli: Iso Law Lens Model
