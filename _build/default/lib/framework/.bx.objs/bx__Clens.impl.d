lib/framework/clens.ml: Fun Iso Law Lens Model Printf Symmetric
