lib/framework/properties.ml: Fmt List Option String
