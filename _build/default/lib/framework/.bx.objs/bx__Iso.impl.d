lib/framework/iso.ml: Fun Law List Model Printf
