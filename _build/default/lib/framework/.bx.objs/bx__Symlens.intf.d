lib/framework/symlens.mli: Iso Law Lens Model Symmetric
