lib/framework/symmetric.ml: Iso Law Lens Model Printf
