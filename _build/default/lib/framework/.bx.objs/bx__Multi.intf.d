lib/framework/multi.mli: Law Lens Model
