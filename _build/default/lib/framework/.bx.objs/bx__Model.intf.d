lib/framework/model.mli: Format
