lib/framework/lens.ml: Array Format Fun Hashtbl Iso Law List Model Printf
