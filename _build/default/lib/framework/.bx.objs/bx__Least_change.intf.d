lib/framework/least_change.mli: Law Symmetric
