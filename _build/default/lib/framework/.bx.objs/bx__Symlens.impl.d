lib/framework/symlens.ml: Iso Law Lens Model Printf Symmetric
