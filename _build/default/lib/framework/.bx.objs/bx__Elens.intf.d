lib/framework/elens.mli: Iso Law
