(** State-based symmetric lenses (Hofmann, Pierce, Wagner, POPL 2011):
    two model spaces with a {e complement} that carries the information
    private to each side across restorations.

    Where {!Symmetric} restoration sees only the two states — which is
    why the paper's Composers Discussion loses the dates — a symmetric
    lens threads a complement [c], so [putr : a -> c -> b * c] can stash
    what [b] cannot represent and recover it later.  Composition works
    (complements pair up), in contrast to the state-based composition
    problem recorded in the glossary. *)

type ('a, 'b, 'c) t = {
  name : string;
  init : 'c;  (** The complement for the missing-history case. *)
  putr : 'a -> 'c -> 'b * 'c;
      (** The left model is authoritative: produce the right model and
          the updated complement. *)
  putl : 'b -> 'c -> 'a * 'c;
}

val make :
  name:string -> init:'c -> putr:('a -> 'c -> 'b * 'c)
  -> putl:('b -> 'c -> 'a * 'c) -> ('a, 'b, 'c) t

val of_lens : default:'s -> ('s, 'v) Lens.t -> ('s, 'v, 's) t
(** An asymmetric lens as a symmetric lens whose complement is the last
    source seen ([default] seeds it). *)

val of_iso : ('a, 'b) Iso.t -> ('a, 'b, unit) t
(** Isomorphisms need no complement. *)

val invert : ('a, 'b, 'c) t -> ('b, 'a, 'c) t
(** Swap left and right. *)

val compose : ('a, 'b, 'c1) t -> ('b, 'd, 'c2) t -> ('a, 'd, 'c1 * 'c2) t
(** Sequential composition through the middle space; complements pair. *)

val tensor : ('a, 'b, 'c1) t -> ('a2, 'b2, 'c2) t
  -> ('a * 'a2, 'b * 'b2, 'c1 * 'c2) t
(** Parallel composition on pairs. *)

val to_symmetric :
  ('a, 'b, 'c) t -> complement:'c ref -> ('a, 'b) Symmetric.t
(** Run the symmetric lens as a plain {!Symmetric} bx by storing the
    complement in the given cell: [fwd]/[bwd] read and update it.  This
    is how complement-carrying restoration plugs into scenario runners
    and law checkers written for state-based bx (the cell makes the
    statefulness explicit). *)

(** {1 Laws} *)

val put_rl_law :
  'a Model.t -> c_equal:('c -> 'c -> bool) -> ('a, 'b, 'c) t
  -> ('a * 'c) Law.t
(** (PutRL) If [putr a c = (b, c')] then [putl b c' = (a, c')]: pushing
    right and immediately pulling back is stable. *)

val put_lr_law :
  'b Model.t -> c_equal:('c -> 'c -> bool) -> ('a, 'b, 'c) t
  -> ('b * 'c) Law.t
(** (PutLR) The mirror image. *)
