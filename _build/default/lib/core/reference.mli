(** Bibliographic references: the template's "References" field, giving
    traceability back to the originating sources of an example. *)

type t = {
  ref_authors : string list;
  ref_title : string;
  ref_venue : string;
  ref_year : int;
  ref_doi : string option;
}

val make :
  authors:string list -> title:string -> venue:string -> year:int
  -> ?doi:string -> unit -> t

val pp : Format.formatter -> t -> unit
(** Human-readable one-line citation. *)

val to_line : t -> string
(** Machine-parseable single-line form:
    ["[year] author1; author2 | title | venue | doi"] (doi segment omitted
    when absent).  Used by the wiki rendering so references survive the
    template/wiki round trip. *)

val of_line : string -> (t, string) result
(** Inverse of {!to_line}. *)

val to_bibtex : key:string -> t -> string
(** A BibTeX [@inproceedings]-style record. *)
