type inline =
  | Text of string
  | Bold of string
  | Italic of string
  | Code of string
  | Link of { target : string; label : string }

type block =
  | Heading of int * string
  | Para of inline list
  | Bullets of string list
  | Code_block of string list

type doc = block list

let render_inline = function
  | Text s -> s
  | Bold s -> "**" ^ s ^ "**"
  | Italic s -> "//" ^ s ^ "//"
  | Code s -> "{{" ^ s ^ "}}"
  | Link { target; label } -> "[[[" ^ target ^ "|" ^ label ^ "]]]"

let render_inlines inlines = String.concat "" (List.map render_inline inlines)

let render_block = function
  | Heading (level, text) -> String.make (max 1 level) '+' ^ " " ^ text
  | Para inlines -> render_inlines inlines
  | Bullets items -> String.concat "\n" (List.map (fun i -> "* " ^ i) items)
  | Code_block lines ->
      String.concat "\n" (("[[code]]" :: lines) @ [ "[[/code]]" ])

let render doc =
  match doc with
  | [] -> ""
  | _ -> String.concat "\n\n" (List.map render_block doc) ^ "\n"

(* --- inline parsing ----------------------------------------------- *)

(* Scan for the two-character markers; on finding an opener, look for its
   closer.  Unclosed markers fall through as literal text. *)
let parse_inlines line =
  let n = String.length line in
  let out = ref [] in
  let buf = Buffer.create 32 in
  let flush_text () =
    if Buffer.length buf > 0 then begin
      out := Text (Buffer.contents buf) :: !out;
      Buffer.clear buf
    end
  in
  let find_close marker from =
    let m = String.length marker in
    let rec scan i =
      if i + m > n then None
      else if String.sub line i m = marker then Some i
      else scan (i + 1)
    in
    scan from
  in
  let rec go i =
    if i >= n then ()
    else if i + 3 <= n && String.sub line i 3 = "[[[" then begin
      match find_close "]]]" (i + 3) with
      | Some close ->
          let body = String.sub line (i + 3) (close - i - 3) in
          let target, label =
            match String.index_opt body '|' with
            | Some k ->
                ( String.sub body 0 k,
                  String.sub body (k + 1) (String.length body - k - 1) )
            | None -> (body, body)
          in
          flush_text ();
          out := Link { target; label } :: !out;
          go (close + 3)
      | None ->
          Buffer.add_char buf line.[i];
          go (i + 1)
    end
    else if i + 2 <= n then begin
      let two = String.sub line i 2 in
      let marked ctor marker =
        match find_close marker (i + 2) with
        | Some close when close > i + 2 ->
            let body = String.sub line (i + 2) (close - i - 2) in
            flush_text ();
            out := ctor body :: !out;
            go (close + 2)
        | _ ->
            Buffer.add_char buf line.[i];
            go (i + 1)
      in
      match two with
      | "**" -> marked (fun s -> Bold s) "**"
      | "//" -> marked (fun s -> Italic s) "//"
      | "{{" -> marked (fun s -> Code s) "}}"
      | _ ->
          Buffer.add_char buf line.[i];
          go (i + 1)
    end
    else begin
      Buffer.add_char buf line.[i];
      go (i + 1)
    end
  in
  go 0;
  flush_text ();
  List.rev !out

let plain_text inlines =
  String.concat ""
    (List.map
       (function
         | Text s | Bold s | Italic s | Code s -> s
         | Link { label; _ } -> label)
       inlines)

(* --- block parsing ------------------------------------------------- *)

let heading_of_line line =
  let n = String.length line in
  let rec plusses i = if i < n && line.[i] = '+' then plusses (i + 1) else i in
  let level = plusses 0 in
  if level > 0 && level < n && line.[level] = ' ' then
    Some (level, String.sub line (level + 1) (n - level - 1))
  else None

let is_bullet line =
  String.length line >= 2 && line.[0] = '*' && line.[1] = ' '

let bullet_text line = String.sub line 2 (String.length line - 2)

let parse text =
  let lines = String.split_on_char '\n' text in
  let rec blocks acc = function
    | [] -> Ok (List.rev acc)
    | "" :: rest -> blocks acc rest
    | "[[code]]" :: rest ->
        let rec collect body = function
          | "[[/code]]" :: rest -> Ok (List.rev body, rest)
          | line :: rest -> collect (line :: body) rest
          | [] -> Error "unterminated [[code]] block"
        in
        (match collect [] rest with
        | Error e -> Error e
        | Ok (body, rest) -> blocks (Code_block body :: acc) rest)
    | line :: rest when heading_of_line line <> None ->
        let level, htext = Option.get (heading_of_line line) in
        blocks (Heading (level, htext) :: acc) rest
    | line :: rest when is_bullet line ->
        let rec collect items = function
          | l :: rest when is_bullet l -> collect (bullet_text l :: items) rest
          | rest -> (List.rev items, rest)
        in
        let items, rest = collect [ bullet_text line ] rest in
        blocks (Bullets items :: acc) rest
    | line :: rest ->
        (* A paragraph: subsequent ordinary lines join with spaces. *)
        let stops l =
          l = "" || l = "[[code]]" || heading_of_line l <> None || is_bullet l
        in
        let rec collect para = function
          | l :: rest when not (stops l) -> collect (l :: para) rest
          | rest -> (List.rev para, rest)
        in
        let para, rest = collect [ line ] rest in
        blocks (Para (parse_inlines (String.concat " " para)) :: acc) rest
  in
  blocks [] lines

let heading_text = function Heading (_, t) -> Some t | _ -> None
let equal (a : doc) b = a = b

let pp_inline ppf = function
  | Text s -> Fmt.pf ppf "Text %S" s
  | Bold s -> Fmt.pf ppf "Bold %S" s
  | Italic s -> Fmt.pf ppf "Italic %S" s
  | Code s -> Fmt.pf ppf "Code %S" s
  | Link { target; label } -> Fmt.pf ppf "Link (%S, %S)" target label

let pp_block ppf = function
  | Heading (l, t) -> Fmt.pf ppf "Heading %d %S" l t
  | Para inlines ->
      Fmt.pf ppf "Para [%a]" (Fmt.list ~sep:Fmt.semi pp_inline) inlines
  | Bullets items ->
      Fmt.pf ppf "Bullets [%a]" (Fmt.list ~sep:Fmt.semi (Fmt.fmt "%S")) items
  | Code_block lines -> Fmt.pf ppf "Code_block (%d lines)" (List.length lines)

let pp ppf doc = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_block) doc

(* --- Markdown export ------------------------------------------------- *)

let markdown_inline = function
  | Text s -> s
  | Bold s -> "**" ^ s ^ "**"
  | Italic s -> "*" ^ s ^ "*"
  | Code s -> "`" ^ s ^ "`"
  | Link { target; label } -> "[" ^ label ^ "](" ^ target ^ ")"

let markdown_block = function
  | Heading (level, text) -> String.make (max 1 level) '#' ^ " " ^ text
  | Para inlines -> String.concat "" (List.map markdown_inline inlines)
  | Bullets items -> String.concat "\n" (List.map (fun i -> "- " ^ i) items)
  | Code_block lines -> String.concat "\n" (("```" :: lines) @ [ "```" ])

let to_markdown doc =
  match doc with
  | [] -> ""
  | _ -> String.concat "\n\n" (List.map markdown_block doc) ^ "\n"

(* --- HTML export ------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let html_inline = function
  | Text s -> html_escape s
  | Bold s -> "<strong>" ^ html_escape s ^ "</strong>"
  | Italic s -> "<em>" ^ html_escape s ^ "</em>"
  | Code s -> "<code>" ^ html_escape s ^ "</code>"
  | Link { target; label } ->
      Printf.sprintf "<a href=\"%s\">%s</a>" (html_escape target)
        (html_escape label)

let html_block = function
  | Heading (level, text) ->
      let level = min 6 (max 1 level) in
      Printf.sprintf "<h%d>%s</h%d>" level (html_escape text) level
  | Para inlines ->
      "<p>" ^ String.concat "" (List.map html_inline inlines) ^ "</p>"
  | Bullets items ->
      "<ul>"
      ^ String.concat ""
          (List.map (fun i -> "<li>" ^ html_escape i ^ "</li>") items)
      ^ "</ul>"
  | Code_block lines ->
      "<pre><code>"
      ^ html_escape (String.concat "\n" lines)
      ^ "</code></pre>"

let to_html doc = String.concat "\n" (List.map html_block doc)
