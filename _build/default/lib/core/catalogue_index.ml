let latest_entries registry =
  List.filter_map
    (fun id ->
      match Registry.latest registry id with
      | Ok t -> Some (id, t)
      | Error _ -> None)
    (Registry.ids registry)

(* Group entries by a list-valued key function. *)
let group_by keys_of entries =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (id, t) ->
      List.iter
        (fun key ->
          (match Hashtbl.find_opt tbl key with
          | None ->
              order := key :: !order;
              Hashtbl.replace tbl key [ id ]
          | Some ids ->
              if not (List.exists (Identifier.equal id) ids) then
                Hashtbl.replace tbl key (ids @ [ id ])))
        (keys_of t))
    entries;
  List.rev_map (fun key -> (key, Hashtbl.find tbl key)) !order

let by_class registry =
  let groups =
    group_by (fun t -> t.Template.classes) (latest_entries registry)
  in
  let in_order =
    [ Template.Precise; Template.Industrial; Template.Sketch; Template.Benchmark ]
  in
  List.filter_map
    (fun cls ->
      Option.map
        (fun ids -> (cls, List.sort Identifier.compare ids))
        (List.assoc_opt cls groups))
    in_order

let by_property registry =
  group_by (fun t -> t.Template.properties) (latest_entries registry)
  |> List.map (fun (claim, ids) -> (claim, List.sort Identifier.compare ids))
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Bx.Properties.claim_name a) (Bx.Properties.claim_name b))

let by_author registry =
  group_by
    (fun t ->
      List.map (fun c -> c.Contributor.person_name) t.Template.authors)
    (latest_entries registry)
  |> List.map (fun (name, ids) -> (name, List.sort Identifier.compare ids))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let by_reference registry =
  group_by
    (fun t ->
      List.map (fun r -> r.Reference.ref_title) t.Template.references)
    (latest_entries registry)
  |> List.map (fun (title, ids) -> (title, List.sort Identifier.compare ids))
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let related registry id =
  match Registry.latest registry id with
  | Error _ -> []
  | Ok t ->
      let shares_key groups keys =
        List.concat_map
          (fun key -> Option.value ~default:[] (List.assoc_opt key groups))
          keys
      in
      let by_ref = by_reference registry in
      let by_auth = by_author registry in
      let refs = List.map (fun r -> r.Reference.ref_title) t.Template.references in
      let auths =
        List.map (fun c -> c.Contributor.person_name) t.Template.authors
      in
      shares_key by_ref refs @ shares_key by_auth auths
      |> List.filter (fun other -> not (Identifier.equal other id))
      |> List.sort_uniq Identifier.compare

let render registry =
  let bullet_group to_string (key, ids) =
    Printf.sprintf "%s: %s" (to_string key)
      (String.concat ", " (List.map Identifier.to_string ids))
  in
  [
    Markup.Heading (1, "Index");
    Markup.Heading (2, "By class");
    Markup.Bullets (List.map (bullet_group Template.class_name) (by_class registry));
    Markup.Heading (2, "By property");
    Markup.Bullets
      (List.map (bullet_group Bx.Properties.claim_name) (by_property registry));
    Markup.Heading (2, "By author");
    Markup.Bullets (List.map (bullet_group Fun.id) (by_author registry));
    Markup.Heading (2, "By cited source");
    Markup.Bullets (List.map (bullet_group Fun.id) (by_reference registry));
  ]
