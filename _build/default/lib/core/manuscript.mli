(** The archival manuscript of section 5.2: "If the repository reaches a
    point of relative maturity or stability, it may make sense to collect
    the most recent versions of all of the examples in it into a
    manuscript (with all authors and reviewers named), and publish it
    formally as a citable, archival technical report."

    {!generate} produces exactly that, as a single wiki document: a
    preamble with the recommended repository citation, a table of
    contents, every entry's latest version (headings demoted one level so
    entry titles nest under the manuscript title), and a credits section
    naming every contributing author and reviewer. *)

val generate : Registry.t -> string
(** The manuscript as wiki text. *)

val contributors : Registry.t -> (string * string list) list
(** Every person named in the repository with the entries they touched:
    [(person, entry ids)], sorted by name; authors and reviewers alike. *)

val bibliography : Registry.t -> string
(** BibTeX records for every entry (latest version) plus the repository
    itself. *)
