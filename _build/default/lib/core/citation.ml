let repository_name = "The Bx Examples Repository"
let repository_url = "http://bx-community.wikidot.com"

let authors_of t =
  String.concat ", "
    (List.map
       (fun c -> c.Contributor.person_name)
       t.Template.authors)

let entry ~id t =
  Printf.sprintf "%s. \"%s\", version %s. %s, %s/%s." (authors_of t)
    t.Template.title
    (Version.to_string t.Template.version)
    repository_name repository_url
    (Identifier.wiki_path id)

let entry_bibtex ~id t =
  Printf.sprintf
    "@misc{%s-%s,\n\
    \  author       = {%s},\n\
    \  title        = {%s},\n\
    \  howpublished = {%s, \\url{%s/%s}},\n\
    \  note         = {Version %s}\n\
     }"
    (String.lowercase_ascii (Identifier.to_string id))
    (Version.to_string t.Template.version)
    (String.concat " and "
       (List.map (fun c -> c.Contributor.person_name) t.Template.authors))
    t.Template.title repository_name repository_url
    (Identifier.wiki_path id)
    (Version.to_string t.Template.version)

let repository () =
  Printf.sprintf
    "The Bx Community. %s. %s. Curated following Cheney, Gibbons, McKinna, \
     Stevens: Towards a Repository of Bx Examples, BX 2014."
    repository_name repository_url
