(** Cross-reference indexing — the "more advanced indexing, and
    traceability back to the originating sources" the template section
    anticipates the repository needing as it grows.

    All indexes run over each entry's latest version. *)

val by_class : Registry.t -> (Template.example_class * Identifier.t list) list
(** Entries per class, classes in declaration order, ids sorted; classes
    with no entries are omitted. *)

val by_property : Registry.t -> (Bx.Properties.claim * Identifier.t list) list
(** Entries per property claim, sorted by claim name. *)

val by_author : Registry.t -> (string * Identifier.t list) list
(** Entries per contributing author (not reviewers), sorted by name. *)

val by_reference : Registry.t -> (string * Identifier.t list) list
(** Entries per cited source (keyed by the reference's title), sorted —
    the traceability map back to the originating literature. *)

val related : Registry.t -> Identifier.t -> Identifier.t list
(** Entries related to the given one: sharing a cited source or a
    contributing author.  Sorted, without the entry itself. *)

val render : Registry.t -> Markup.doc
(** The whole index as a wiki page. *)
