type t = { major : int; minor : int }

let make major minor =
  if major < 0 || minor < 0 then
    invalid_arg "Version.make: negative component";
  { major; minor }

let initial = { major = 0; minor = 1 }
let major v = v.major
let minor v = v.minor
let is_provisional v = v.major = 0
let bump_minor v = { v with minor = v.minor + 1 }

let promote v =
  if is_provisional v then { major = 1; minor = 0 }
  else { major = v.major + 1; minor = 0 }

let compare a b =
  match Int.compare a.major b.major with
  | 0 -> Int.compare a.minor b.minor
  | c -> c

let equal a b = compare a b = 0
let to_string v = Printf.sprintf "%d.%d" v.major v.minor

let of_string s =
  match String.split_on_char '.' (String.trim s) with
  | [ ma; mi ] -> (
      match (int_of_string_opt ma, int_of_string_opt mi) with
      | Some ma, Some mi when ma >= 0 && mi >= 0 -> Ok { major = ma; minor = mi }
      | _ -> Error (Printf.sprintf "invalid version %S" s))
  | _ -> Error (Printf.sprintf "invalid version %S" s)

let pp ppf v = Fmt.string ppf (to_string v)
