(** The section 5.4 bx: keeping the wiki rendering of an entry and its
    structured (markup-independent) form consistent {e via a bidirectional
    transformation} — the paper proposes exactly this for the repository's
    own maintenance.

    The lens's source is the structured {!Template.t}; its view is a
    {!Markup.doc} wiki page.  [get] renders the canonical page; [put]
    parses an edited page back.  Absence of an {e optional} section
    (restoration, properties, variants, references, reviewers, comments, artefacts)
    means that field is now empty — deleting the section deletes the
    data, so put/get round trips are exact.  Absence of a {e required}
    section (version, type, overview, models, consistency,
    discussion, authors) falls back to the old template (the complement),
    and unknown extra sections are ignored.  [put] normalises free-text
    whitespace (paragraphs survive, line breaks inside a paragraph do
    not), so GetPut holds exactly on normalised templates and PutGet on
    canonical pages — both are covered in the test suite. *)

exception Parse_error of string

val render_entry : Template.t -> Markup.doc
(** The canonical wiki page for an entry: a level-1 title heading and one
    level-2 section per template field, omitting empty optional fields. *)

val parse_entry : fallback:Template.t -> Markup.doc -> (Template.t, string) result
(** Rebuild a template from a page.  Absent optional sections become
    empty; absent required sections keep the [fallback]'s value.
    Malformed section contents (an unparseable version, property, or
    reference) are an error. *)

val blank : title:string -> Template.t
(** A minimal template used as the fallback when creating from a page with
    no pre-existing structured form. *)

val lens : unit -> (Template.t, Markup.doc) Bx.Lens.t
(** The bx itself.  [put] and [create] raise {!Parse_error} on malformed
    pages. *)

val normalise : Template.t -> Template.t
(** Normalise all free-text fields the way a render/parse round trip does:
    paragraph breaks (blank lines) are kept, other whitespace runs become
    single spaces.  [get]/[put] round trips are identities exactly on
    normalised templates. *)

val wiki_text : Template.t -> string
(** Shorthand: {!Markup.render} of {!render_entry}. *)

val of_wiki_text : ?fallback:Template.t -> string -> (Template.t, string) result
(** Parse wiki text into a template; without [fallback], a {!blank} one is
    used (the title then comes from the page's level-1 heading). *)
