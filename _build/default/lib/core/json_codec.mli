(** JSON interchange for repository entries — the "more structured
    solution (e.g. to facilitate a move to a different platform than a
    wiki)" that section 5.1 anticipates eventually wanting.

    {!decode} inverts {!encode} exactly (property-tested), so the JSON
    form is a faithful second serialisation alongside the wiki pages. *)

val encode : Template.t -> Bx_models.Json.t
(** Every template field, structurally (references as objects, claims as
    their canonical names, the version as a string). *)

val decode : Bx_models.Json.t -> (Template.t, string) result
(** Rejects missing required fields, unknown property claims, malformed
    versions and ill-shaped references. *)

val to_string : ?indent:int -> Template.t -> string
val of_string : string -> (Template.t, string) result
