type t = { person_name : string; affiliation : string option }

let make ?affiliation person_name = { person_name; affiliation }
let equal a b = a = b

let pp ppf c =
  match c.affiliation with
  | None -> Fmt.string ppf c.person_name
  | Some a -> Fmt.pf ppf "%s (%s)" c.person_name a

let to_string c = Fmt.str "%a" pp c

let of_string s =
  let s = String.trim s in
  let n = String.length s in
  if n > 0 && s.[n - 1] = ')' then
    match String.rindex_opt s '(' with
    | Some i when i > 0 ->
        {
          person_name = String.trim (String.sub s 0 i);
          affiliation = Some (String.sub s (i + 1) (n - i - 2));
        }
    | _ -> { person_name = s; affiliation = None }
  else { person_name = s; affiliation = None }
