type t = string (* canonical: uppercase letters, digits, single hyphens *)

let canonicalise s =
  let buf = Buffer.create (String.length s) in
  let pending_hyphen = ref false in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' ->
          if !pending_hyphen && Buffer.length buf > 0 then
            Buffer.add_char buf '-';
          pending_hyphen := false;
          Buffer.add_char buf (Char.uppercase_ascii c)
      | _ -> pending_hyphen := true)
    s;
  Buffer.contents buf

let of_title title =
  let id = canonicalise title in
  if String.equal id "" then
    Error (Printf.sprintf "title %S has no alphanumeric content" title)
  else Ok id

let of_string = of_title
let to_string id = id
let equal = String.equal
let compare = String.compare
let pp = Fmt.string
let wiki_path id = "examples:" ^ String.lowercase_ascii id
