(** Entry versions.

    The paper (section 3, "Version"; section 5.2) prescribes a {e linear
    sequence of numbered versions} per example, with [0.x] marking
    unreviewed (provisional) entries.  Approval promotes an entry to
    [1.0]; subsequent revisions bump the minor number. *)

type t

val make : int -> int -> t
(** [make major minor]; both components must be non-negative. *)

val initial : t
(** [0.1] — the version assigned to a freshly submitted example. *)

val major : t -> int
val minor : t -> int

val is_provisional : t -> bool
(** True exactly for [0.x] versions (unreviewed, per the paper). *)

val bump_minor : t -> t
(** The next version in the linear sequence: [x.y] to [x.(y+1)]. *)

val promote : t -> t
(** The version after approval: a provisional [0.x] becomes [1.0]; an
    already-approved [x.y] becomes [(x+1).0]. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val to_string : t -> string
(** ["0.1"], ["1.0"], ... *)

val of_string : string -> (t, string) result
val pp : Format.formatter -> t -> unit
