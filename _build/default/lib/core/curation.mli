(** The three-level curatorial structure of section 5.1:

    - anyone with a wiki {e account} can comment on an example;
    - named {e reviewers} — recognised community members — endorse an
      example as being of usable quality;
    - a small group of {e curators} has overall editorial control.

    This module is the pure permission model; {!Registry} enforces it. *)

type role = Member | Reviewer | Curator

type account = {
  account_name : string;
  role : role;
}

val account : ?role:role -> string -> account
(** Default role: {!Member}. *)

val role_name : role -> string
val role_of_name : string -> role option

val can_comment : account -> bool
(** Every account holder may comment (the barrier to entry is the account
    itself, per section 5.1). *)

val can_review : account -> bool
(** Reviewers and curators. *)

val can_approve : account -> bool
(** Curators only. *)

val can_edit : author_names:string list -> account -> bool
(** Editing an entry is not uncontrolled: curators may edit anything; other
    accounts only entries they co-authored (matched by name). *)

val pp_account : Format.formatter -> account -> unit
