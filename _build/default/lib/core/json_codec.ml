open Bx_models

let ( let* ) r f = match r with Error e -> Error e | Ok x -> f x

let encode_contributor (c : Contributor.t) =
  Json.Obj
    (("name", Json.String c.person_name)
    ::
    (match c.affiliation with
    | None -> []
    | Some a -> [ ("affiliation", Json.String a) ]))

let encode_reference (r : Reference.t) =
  Json.Obj
    ([
       ("authors", Json.List (List.map (fun a -> Json.String a) r.ref_authors));
       ("title", Json.String r.ref_title);
       ("venue", Json.String r.ref_venue);
       ("year", Json.Int r.ref_year);
     ]
    @ match r.ref_doi with None -> [] | Some d -> [ ("doi", Json.String d) ])

let encode (t : Template.t) =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("version", Json.String (Version.to_string t.version));
      ( "classes",
        Json.List
          (List.map (fun c -> Json.String (Template.class_name c)) t.classes) );
      ("overview", Json.String t.overview);
      ( "models",
        Json.List
          (List.map
             (fun (m : Template.model_desc) ->
               Json.Obj
                 ([
                    ("name", Json.String m.model_name);
                    ("description", Json.String m.model_description);
                  ]
                 @
                 match m.meta_model with
                 | None -> []
                 | Some meta -> [ ("meta", Json.String meta) ]))
             t.models) );
      ("consistency", Json.String t.consistency);
      ( "restoration",
        Json.Obj
          [
            ("forward", Json.String t.restoration.rest_forward);
            ("backward", Json.String t.restoration.rest_backward);
          ] );
      ( "properties",
        Json.List
          (List.map
             (fun claim -> Json.String (Bx.Properties.claim_name claim))
             t.properties) );
      ( "variants",
        Json.List
          (List.map
             (fun (v : Template.variant) ->
               Json.Obj
                 [
                   ("name", Json.String v.variant_name);
                   ("description", Json.String v.variant_description);
                 ])
             t.variants) );
      ("discussion", Json.String t.discussion);
      ("references", Json.List (List.map encode_reference t.references));
      ("authors", Json.List (List.map encode_contributor t.authors));
      ("reviewers", Json.List (List.map encode_contributor t.reviewers));
      ( "comments",
        Json.List
          (List.map
             (fun (c : Template.comment) ->
               Json.Obj
                 [
                   ("author", Json.String c.comment_author);
                   ("text", Json.String c.comment_text);
                 ])
             t.comments) );
      ( "artefacts",
        Json.List
          (List.map
             (fun (a : Template.artefact) ->
               Json.Obj
                 [
                   ("name", Json.String a.artefact_name);
                   ( "kind",
                     Json.String (Template.artefact_kind_name a.artefact_kind) );
                   ("location", Json.String a.location);
                 ])
             t.artefacts) );
    ]

(* --- decoding -------------------------------------------------------- *)

let str_field json name =
  match Json.member name json with
  | Some (Json.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "field %s is not a string" name)
  | None -> Error (Printf.sprintf "missing field %s" name)

let list_field json name decode_item =
  match Json.member name json with
  | None -> Ok []
  | Some (Json.List items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest ->
            let* v = decode_item item in
            go (v :: acc) rest
      in
      go [] items
  | Some _ -> Error (Printf.sprintf "field %s is not an array" name)

let decode_contributor json =
  let* name = str_field json "name" in
  let affiliation =
    Option.bind (Json.member "affiliation" json) Json.to_str
  in
  Ok (Contributor.make ?affiliation name)

let decode_reference json =
  let* title = str_field json "title" in
  let* venue = str_field json "venue" in
  let* authors =
    list_field json "authors" (fun a ->
        match Json.to_str a with
        | Some s -> Ok s
        | None -> Error "author is not a string")
  in
  let* year =
    match Json.member "year" json with
    | Some (Json.Int y) -> Ok y
    | _ -> Error "missing or non-integer reference year"
  in
  let doi = Option.bind (Json.member "doi" json) Json.to_str in
  Ok (Reference.make ~authors ~title ~venue ~year ?doi ())

let decode json =
  let* title = str_field json "title" in
  let* version_s = str_field json "version" in
  let* version = Version.of_string version_s in
  let* classes =
    list_field json "classes" (fun c ->
        match Option.bind (Json.to_str c) Template.class_of_name with
        | Some cls -> Ok cls
        | None -> Error "unknown class")
  in
  let* overview = str_field json "overview" in
  let* models =
    list_field json "models" (fun m ->
        let* name = str_field m "name" in
        let* description = str_field m "description" in
        let meta = Option.bind (Json.member "meta" m) Json.to_str in
        Ok (Template.model_desc ?meta_model:meta ~name description))
  in
  let* consistency = str_field json "consistency" in
  let* restoration =
    match Json.member "restoration" json with
    | None -> Ok Template.{ rest_forward = ""; rest_backward = "" }
    | Some r ->
        let* forward = str_field r "forward" in
        let* backward = str_field r "backward" in
        Ok Template.{ rest_forward = forward; rest_backward = backward }
  in
  let* properties =
    list_field json "properties" (fun p ->
        match Option.bind (Json.to_str p) Bx.Properties.claim_of_name with
        | Some claim -> Ok claim
        | None -> Error "unknown property claim")
  in
  let* variants =
    list_field json "variants" (fun v ->
        let* name = str_field v "name" in
        let* description = str_field v "description" in
        Ok (Template.variant ~name description))
  in
  let* discussion = str_field json "discussion" in
  let* references = list_field json "references" decode_reference in
  let* authors = list_field json "authors" decode_contributor in
  let* reviewers = list_field json "reviewers" decode_contributor in
  let* comments =
    list_field json "comments" (fun c ->
        let* author = str_field c "author" in
        let* text = str_field c "text" in
        Ok (Template.comment ~author text))
  in
  let* artefacts =
    list_field json "artefacts" (fun a ->
        let* name = str_field a "name" in
        let* kind = str_field a "kind" in
        let* location = str_field a "location" in
        Ok
          (Template.artefact ~name
             ~kind:(Template.artefact_kind_of_name kind)
             location))
  in
  Ok
    (Template.make ~title ~version ~classes ~overview ~models ~consistency
       ~restoration ~properties ~variants ~discussion ~references ~authors
       ~reviewers ~comments ~artefacts ())

let to_string ?indent t = Json.to_string ?indent (encode t)

let of_string s =
  let* json = Json.of_string s in
  decode json
