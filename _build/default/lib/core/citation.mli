(** Recommended citation formats for repository entries (section 5.2: "it
    seems like a good idea to recommend a format for citations to examples
    (including versions) or to the repository itself"). *)

val repository_name : string
(** ["The Bx Examples Repository"]. *)

val repository_url : string
(** The canonical home of the repository. *)

val entry : id:Identifier.t -> Template.t -> string
(** One-line citation for an entry at a specific version, e.g.
    ["P. Stevens et al. \"COMPOSERS\", version 0.1. The Bx Examples
    Repository, <url>/examples:composers."]. *)

val entry_bibtex : id:Identifier.t -> Template.t -> string
(** BibTeX [@misc] record for the entry, keyed by id and version. *)

val repository : unit -> string
(** Citation for the repository as a whole. *)
