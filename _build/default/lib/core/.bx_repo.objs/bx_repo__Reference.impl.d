lib/core/reference.ml: Fmt List Printf String
