lib/core/sync.ml: Bx Contributor List Markup Option Printf Reference String Template Version
