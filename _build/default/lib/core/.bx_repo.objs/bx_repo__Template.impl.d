lib/core/template.ml: Bx Contributor Fmt Format List Reference String Version
