lib/core/markup.ml: Buffer Fmt List Option Printf String
