lib/core/reference.mli: Format
