lib/core/version.ml: Fmt Int Printf String
