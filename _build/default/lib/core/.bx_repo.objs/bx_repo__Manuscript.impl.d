lib/core/manuscript.ml: Citation Contributor Hashtbl Identifier List Markup Option Printf Registry String Sync Template Version
