lib/core/glossary.ml: Bx Fmt List String
