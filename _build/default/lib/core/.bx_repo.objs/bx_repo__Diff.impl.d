lib/core/diff.ml: Bx Contributor Fmt List Reference String Template
