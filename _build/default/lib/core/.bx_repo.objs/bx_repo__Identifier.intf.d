lib/core/identifier.mli: Format
