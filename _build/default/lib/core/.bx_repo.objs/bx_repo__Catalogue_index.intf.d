lib/core/catalogue_index.mli: Bx Identifier Markup Registry Template
