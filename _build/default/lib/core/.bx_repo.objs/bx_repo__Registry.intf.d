lib/core/registry.mli: Bx Curation Identifier Template Version
