lib/core/manuscript.mli: Registry
