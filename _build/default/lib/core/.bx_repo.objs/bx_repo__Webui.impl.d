lib/core/webui.ml: Catalogue_index Citation Curation Filename Glossary Identifier Json_codec List Manuscript Markup Printf Registry String Sync Template Version
