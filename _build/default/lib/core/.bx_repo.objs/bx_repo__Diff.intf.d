lib/core/diff.mli: Format Template
