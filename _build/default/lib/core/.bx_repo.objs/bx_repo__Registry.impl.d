lib/core/registry.ml: Bx Citation Contributor Curation Hashtbl Identifier List Printf String Sync Template Version
