lib/core/template.mli: Bx Contributor Format Reference Version
