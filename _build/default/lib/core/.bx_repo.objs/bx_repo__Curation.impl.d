lib/core/curation.ml: Fmt List String
