lib/core/json_codec.mli: Bx_models Template
