lib/core/contributor.ml: Fmt String
