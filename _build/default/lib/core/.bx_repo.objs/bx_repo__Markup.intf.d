lib/core/markup.mli: Format
