lib/core/json_codec.ml: Bx Bx_models Contributor Json List Option Printf Reference Template Version
