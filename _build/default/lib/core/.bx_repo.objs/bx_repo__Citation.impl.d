lib/core/citation.ml: Contributor Identifier List Printf String Template Version
