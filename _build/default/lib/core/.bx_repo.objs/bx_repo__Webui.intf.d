lib/core/webui.mli: Curation Registry
