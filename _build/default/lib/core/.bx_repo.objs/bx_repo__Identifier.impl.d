lib/core/identifier.ml: Buffer Char Fmt Printf String
