lib/core/citation.mli: Identifier Template
