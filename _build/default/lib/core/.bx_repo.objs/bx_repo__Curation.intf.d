lib/core/curation.mli: Format
