lib/core/glossary.mli: Format
