lib/core/sync.mli: Bx Markup Template
