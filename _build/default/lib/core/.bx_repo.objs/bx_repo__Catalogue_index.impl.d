lib/core/catalogue_index.ml: Bx Contributor Fun Hashtbl Identifier List Markup Option Printf Reference Registry String Template
