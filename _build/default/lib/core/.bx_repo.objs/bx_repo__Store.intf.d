lib/core/store.mli: Registry
