lib/core/contributor.mli: Format
