lib/core/store.ml: Array Filename Fun Identifier Json_codec List Printf Registry Result String Sys Version
