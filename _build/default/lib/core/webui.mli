(** The wiki, as a pure request handler: the routing and rendering behind
    the [bxwiki] server, kept free of sockets so the test suite can drive
    it directly.

    Routes (paths are wiki paths, e.g. ["/examples:composers"]):
    - [GET /] — the index page (entry list and cross-reference index);
    - [GET /<page>] — an entry's latest version as HTML;
    - [GET /<page>.wiki] — the raw wiki text (the {!Sync} get direction);
    - [GET /<page>.json] — the structured form ({!Json_codec});
    - [GET /manuscript] — the section 5.2 archival collection;
    - [GET /glossary] — the property glossary;
    - [POST /<page>] with wiki text as the body — parse the edited page
      through the {!Sync} lens and {!Registry.revise} the entry (the
      section 5.4 bx, live);
    - anything else — 404.

    POSTs are performed as the configured editor account; permission and
    validation failures surface as 403/400 with the message in the
    body. *)

type response = {
  status : int;
  content_type : string;
  body : string;
}

val handle :
  ?editor:Curation.account -> ?pages:(string * (unit -> string * string)) list
  -> Registry.t -> meth:string -> path:string -> body:string -> response
(** [editor] defaults to a curator account named ["wiki"] (curators may
    edit anything, which is what a self-hosted wiki wants).  [pages] adds
    extra GET routes: each maps a path to a thunk producing (title, HTML
    fragment) — how the server mounts content from libraries this one
    cannot depend on (the live verification report, say). *)

val html_page : title:string -> string -> string
(** Wrap an HTML fragment in the wiki's page chrome (exposed for the
    server's error pages). *)
