(** Field-level differences between two versions of an entry — what a
    reviewer looks at before re-endorsing a revision, and what the
    version history renders in the CLI. *)

type change = {
  field : string;  (** Template field name, e.g. ["overview"]. *)
  before : string;  (** Short rendering of the old value. *)
  after : string;  (** Short rendering of the new value. *)
}

val templates : Template.t -> Template.t -> change list
(** All fields whose rendered value differs (the version field is
    excluded: two versions of one entry always differ there). *)

val pp : Format.formatter -> change list -> unit
(** One block per change, with before/after lines; ["(no changes)"] when
    empty. *)
