(** A small wiki markup: AST, renderer and parser.

    The repository is hosted on a wiki (the paper, section 1 and 5.4); this
    module is the markup-independent representation the paper suggests
    maintaining alongside the wiki text.  The dialect is wikidot-flavoured:

    - headings: a line of [+] signs then a space then the heading text,
      the number of signs giving the level;
    - bullet lists: lines starting with ["* "];
    - code blocks: lines between [[[code]]] and [[[/code]]], kept verbatim;
    - paragraphs: runs of ordinary lines, with inline markup
      [**bold**], [//italic//], [{{code}}] and [[[[target|label]]]];
    - a blank line separates blocks.

    {!parse} inverts {!render} on canonical documents (see the test
    suite); this pair is the raw material of the {!Sync} lens. *)

type inline =
  | Text of string
  | Bold of string
  | Italic of string
  | Code of string
  | Link of { target : string; label : string }

type block =
  | Heading of int * string  (** level (1-based), text *)
  | Para of inline list
  | Bullets of string list  (** items kept as raw text *)
  | Code_block of string list  (** verbatim lines *)

type doc = block list

val render : doc -> string
(** Render to wiki text, blocks separated by blank lines, ending with a
    newline (empty document renders to the empty string). *)

val render_inlines : inline list -> string

val parse : string -> (doc, string) result
(** Parse wiki text.  Unterminated code blocks are an error; everything
    else is total. *)

val parse_inlines : string -> inline list
(** Parse the inline markup of one line of paragraph text.  Unbalanced
    markers are treated as literal text. *)

val plain_text : inline list -> string
(** Concatenated text content with markers stripped. *)

val heading_text : block -> string option
(** [Some text] for headings, [None] otherwise. *)

val equal : doc -> doc -> bool
val pp : Format.formatter -> doc -> unit

val to_markdown : doc -> string
(** Render as Markdown (export only; there is no Markdown parser) — the
    "move to a different platform than a wiki" escape hatch of section
    5.1. *)

val html_escape : string -> string
(** Escape [&], [<], [>] and double quotes for HTML contexts. *)

val to_html : doc -> string
(** Render as an HTML fragment (headings, paragraphs, lists, code blocks,
    inline markup; everything escaped).  Used by the bxwiki server. *)
