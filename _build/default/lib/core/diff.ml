type change = { field : string; before : string; after : string }

let render_list f xs = String.concat "; " (List.map f xs)

let field_renderings (t : Template.t) =
  [
    ("title", t.title);
    ("classes", render_list Template.class_name t.classes);
    ("overview", t.overview);
    ( "models",
      render_list
        (fun (m : Template.model_desc) ->
          m.model_name ^ ": " ^ m.model_description)
        t.models );
    ("consistency", t.consistency);
    ("forward restoration", t.restoration.rest_forward);
    ("backward restoration", t.restoration.rest_backward);
    ("properties", render_list Bx.Properties.claim_name t.properties);
    ( "variants",
      render_list
        (fun (v : Template.variant) ->
          v.variant_name ^ ": " ^ v.variant_description)
        t.variants );
    ("discussion", t.discussion);
    ("references", render_list Reference.to_line t.references);
    ("authors", render_list Contributor.to_string t.authors);
    ("reviewers", render_list Contributor.to_string t.reviewers);
    ( "comments",
      render_list
        (fun (c : Template.comment) -> c.comment_author ^ ": " ^ c.comment_text)
        t.comments );
    ( "artefacts",
      render_list
        (fun (a : Template.artefact) -> a.artefact_name ^ " -> " ^ a.location)
        t.artefacts );
  ]

let templates t1 t2 =
  List.filter_map
    (fun ((field, before), (_, after)) ->
      if String.equal before after then None else Some { field; before; after })
    (List.combine (field_renderings t1) (field_renderings t2))

let pp ppf = function
  | [] -> Fmt.string ppf "(no changes)"
  | changes ->
      Fmt.pf ppf "@[<v>%a@]"
        (Fmt.list ~sep:Fmt.cut (fun ppf c ->
             Fmt.pf ppf "@[<v 2>%s:@,- %s@,+ %s@]" c.field
               (if c.before = "" then "(empty)" else c.before)
               (if c.after = "" then "(empty)" else c.after)))
        changes
