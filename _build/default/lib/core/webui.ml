type response = {
  status : int;
  content_type : string;
  body : string;
}

let html_page ~title body =
  Printf.sprintf
    "<!doctype html>\n\
     <html><head><meta charset=\"utf-8\"><title>%s</title>\n\
     <style>body{font-family:sans-serif;max-width:50em;margin:2em \
     auto;padding:0 1em;line-height:1.5}code,pre{background:#f4f4f4}\n\
     h1{border-bottom:2px solid #ccc}h2{color:#444}</style></head>\n\
     <body>%s</body></html>\n"
    (Markup.html_escape title) body

let respond ?(content_type = "text/html; charset=utf-8") status body =
  { status; content_type; body }

let not_found path =
  respond 404 (html_page ~title:"Not found" ("<h1>No such page</h1><p>" ^ Markup.html_escape path ^ "</p>"))

let index_page registry =
  let entry_list =
    Markup.Bullets
      (List.map
         (fun id ->
           let path = Identifier.wiki_path id in
           Printf.sprintf "%s — /%s" (Identifier.to_string id) path)
         (Registry.ids registry))
  in
  let doc =
    [
      Markup.Heading (1, Citation.repository_name);
      Markup.Para
        [
          Markup.Text
            "A curated repository of bidirectional transformation \
             examples. Every page is a lens view of a structured entry; \
             editing a page and posting it back runs the section 5.4 bx.";
        ];
      Markup.Heading (2, "Entries");
      entry_list;
    ]
    @ Catalogue_index.render registry
  in
  respond 200 (html_page ~title:Citation.repository_name (Markup.to_html doc))

(* "/examples:composers.wiki" -> (id-ish page name, `Wiki) etc. *)
let split_extension path =
  let strip suffix =
    Filename.chop_suffix_opt ~suffix path
  in
  match strip ".wiki" with
  | Some base -> (base, `Wiki)
  | None -> (
      match strip ".json" with
      | Some base -> (base, `Json)
      | None -> (path, `Html))

let find_entry registry page =
  (* Pages look like "examples:composers"; identifiers canonicalise the
     part after the colon. *)
  let name =
    match String.index_opt page ':' with
    | Some i -> String.sub page (i + 1) (String.length page - i - 1)
    | None -> page
  in
  match Identifier.of_string name with
  | Error _ -> None
  | Ok id -> (
      match Registry.latest registry id with
      | Ok template -> Some (id, template)
      | Error _ -> None)

let glossary_page () =
  let doc =
    Markup.Heading (1, "Glossary")
    :: List.concat_map
         (fun (term, definition) ->
           [ Markup.Heading (2, term); Markup.Para [ Markup.Text definition ] ])
         (Glossary.terms ())
  in
  respond 200 (html_page ~title:"Glossary" (Markup.to_html doc))

let get registry path =
  if path = "/" || path = "" then index_page registry
  else if path = "/glossary" then glossary_page ()
  else if path = "/manuscript" then
    match Markup.parse (Manuscript.generate registry) with
    | Ok doc ->
        respond 200 (html_page ~title:"Collected Examples" (Markup.to_html doc))
    | Error e -> respond 500 (html_page ~title:"Error" (Markup.html_escape e))
  else
    let page, format =
      split_extension (String.sub path 1 (String.length path - 1))
    in
    match find_entry registry page with
    | None -> not_found path
    | Some (id, template) -> (
        match format with
        | `Wiki ->
            respond ~content_type:"text/plain; charset=utf-8" 200
              (Sync.wiki_text template)
        | `Json ->
            respond ~content_type:"application/json" 200
              (Json_codec.to_string ~indent:2 template ^ "\n")
        | `Html ->
            let doc = Sync.render_entry template in
            let footer =
              Printf.sprintf
                "<hr><p><a href=\"/\">index</a> · <a \
                 href=\"/%s.wiki\">wiki source</a> · <a \
                 href=\"/%s.json\">json</a> · cite: %s</p>"
                page page
                (Markup.html_escape (Citation.entry ~id template))
            in
            respond 200
              (html_page ~title:template.Template.title
                 (Markup.to_html doc ^ footer)))

let post ~editor registry path body =
  let page, _ = split_extension (String.sub path 1 (String.length path - 1)) in
  match find_entry registry page with
  | None -> not_found path
  | Some (id, current) -> (
      match Sync.of_wiki_text ~fallback:current body with
      | Error e ->
          respond 400
            (html_page ~title:"Bad page" ("<p>" ^ Markup.html_escape e ^ "</p>"))
      | Ok edited -> (
          match Registry.revise registry ~as_:editor id edited with
          | Ok version ->
              respond 200
                (html_page ~title:"Saved"
                   (Printf.sprintf "<p>Saved as version %s.</p>"
                      (Version.to_string version)))
          | Error (Registry.Permission_denied msg) ->
              respond 403 (html_page ~title:"Forbidden" (Markup.html_escape msg))
          | Error e ->
              respond 400
                (html_page ~title:"Rejected"
                   (Markup.html_escape (Registry.error_message e)))))

let default_editor = Curation.account ~role:Curation.Curator "wiki"

let handle ?(editor = default_editor) ?(pages = []) registry ~meth ~path ~body
    =
  match String.uppercase_ascii meth with
  | "GET" -> (
      match List.assoc_opt path pages with
      | Some render ->
          let title, fragment = render () in
          respond 200 (html_page ~title fragment)
      | None -> get registry path)
  | "POST" -> post ~editor registry path body
  | _ ->
      respond 405
        (html_page ~title:"Method not allowed" "<p>Use GET or POST.</p>")
