let extra_terms =
  [
    ( "bx",
      "A bidirectional transformation: a mechanism for maintaining \
       consistency between two (or more) related sources of information, \
       comprising a consistency relation and consistency-restoration \
       behaviour." );
    ( "state-based",
      "A bx whose restoration functions depend only on the current states \
       of the models (as opposed to the edits that produced them)." );
    ( "delta-based",
      "A bx whose restoration consumes extra information about the change \
       that was made (an edit, delta, or alignment), not just the \
       resulting states.  Edit lenses are the archetype." );
    ( "symmetric",
      "A bx in which both models may contain information missing from the \
       other, so neither restoration direction is a plain function of one \
       model." );
    ( "asymmetric",
      "A bx in which one model (the view) is fully determined by the other \
       (the source); the lens framework of get/put/create." );
    ( "lens",
      "An asymmetric bx given by get : S -> V, put : V -> S -> S and \
       create : V -> S, subject to round-tripping laws." );
    ( "consistency relation",
      "The relation R between model spaces that defines when two models \
       agree; restoration re-establishes it." );
    ( "consistency restoration",
      "The functions that repair one model, given the other as \
       authoritative, so that the pair satisfies the consistency relation." );
    ( "composition problem",
      "Sequential composition of symmetric state-based bx is not canonical: \
       restoring through a middle model space requires a middle state that \
       plain state-based bx do not carry.  One reason edit/complement-based \
       formulations exist." );
    ( "dictionary lens",
      "A resourceful string lens (POPL 2008) whose iteration aligns chunks \
       by key rather than by position, so hidden data follows its key \
       under reordering." );
    ( "resourceful",
      "Of a lens: put re-uses pieces of the old source by aligning chunks \
       with view chunks (by key, position or diff), so hidden data \
       follows the data it belongs to.  Introduced with dictionary \
       lenses in the Boomerang work." );
    ( "canonizer",
      "A map from a concrete language onto canonical representatives, \
       used to quotient a lens's source or view: the lens laws then hold \
       up to canonization (Foster et al., Quotient Lenses)." );
    ( "quotient lens",
      "A lens whose laws hold modulo an equivalence induced by \
       canonizers on either side; the standard treatment of whitespace \
       and other formatting freedom." );
    ( "constant complement",
      "The classical database condition for translatable view updates \
       (Bancilhon and Spyratos): the source decomposes as view times \
       complement, and updates must keep the complement constant.  \
       Constant-complement lenses are very well-behaved and undoable." );
    ( "view update",
      "The database ancestor of the lens framework: translating an \
       update of a derived view back to the base tables, correctly \
       (Dayal and Bernstein) and unambiguously." );
    ( "span",
      "A multi-model bx built from one shared source and a lens per \
       view; the standard way to present an n-ary bx using binary \
       machinery." );
    ( "benchmark",
      "A repository entry class (after the BenchmarX proposal): an \
       example packaged with workloads, scenarios and measurement \
       points, rather than just a definition." );
    ( "alignment",
      "The matching between parts of the two models that restoration \
       uses to decide what to update, create and delete; positional, \
       key-based and diff-based alignments are the common choices." );
    ( "curated repository",
      "A resource put together by sustained human effort of a \
       knowledgeable community (Buneman et al.), as opposed to one \
       extracted automatically; the organisational model of this \
       repository." );
  ]

let all () =
  let property_terms =
    List.map
      (fun p -> (Bx.Properties.name p, Bx.Properties.describe p))
      Bx.Properties.all
  in
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (property_terms @ extra_terms)

let normalise s =
  String.lowercase_ascii (String.trim s)
  |> String.map (function ' ' | '_' -> '-' | c -> c)

let lookup term =
  let t = normalise term in
  List.find_map
    (fun (name, def) -> if String.equal (normalise name) t then Some def else None)
    (all ())

let terms = all

let pp_entry ppf (term, def) = Fmt.pf ppf "@[<v 2>%s@,@[%a@]@]" term Fmt.text def
