type t = {
  ref_authors : string list;
  ref_title : string;
  ref_venue : string;
  ref_year : int;
  ref_doi : string option;
}

let make ~authors ~title ~venue ~year ?doi () =
  {
    ref_authors = authors;
    ref_title = title;
    ref_venue = venue;
    ref_year = year;
    ref_doi = doi;
  }

let pp ppf r =
  Fmt.pf ppf "%s. \"%s\". %s, %d%a"
    (String.concat ", " r.ref_authors)
    r.ref_title r.ref_venue r.ref_year
    (fun ppf -> function
      | None -> ()
      | Some doi -> Fmt.pf ppf ". DOI %s" doi)
    r.ref_doi

let to_line r =
  let base =
    Printf.sprintf "[%d] %s | %s | %s" r.ref_year
      (String.concat "; " r.ref_authors)
      r.ref_title r.ref_venue
  in
  match r.ref_doi with None -> base | Some doi -> base ^ " | " ^ doi

let of_line line =
  let line = String.trim line in
  let fail () = Error (Printf.sprintf "unparseable reference %S" line) in
  if String.length line < 6 || line.[0] <> '[' then fail ()
  else
    match String.index_opt line ']' with
    | None -> fail ()
    | Some close -> (
        match int_of_string_opt (String.sub line 1 (close - 1)) with
        | None -> fail ()
        | Some year -> (
            let rest =
              String.trim
                (String.sub line (close + 1) (String.length line - close - 1))
            in
            match String.split_on_char '|' rest |> List.map String.trim with
            | [ authors; title; venue ] ->
                Ok
                  {
                    ref_authors = String.split_on_char ';' authors |> List.map String.trim;
                    ref_title = title;
                    ref_venue = venue;
                    ref_year = year;
                    ref_doi = None;
                  }
            | [ authors; title; venue; doi ] ->
                Ok
                  {
                    ref_authors = String.split_on_char ';' authors |> List.map String.trim;
                    ref_title = title;
                    ref_venue = venue;
                    ref_year = year;
                    ref_doi = Some doi;
                  }
            | _ -> fail ()))

let to_bibtex ~key r =
  let doi_line =
    match r.ref_doi with
    | None -> ""
    | Some doi -> Printf.sprintf ",\n  doi       = {%s}" doi
  in
  Printf.sprintf
    "@inproceedings{%s,\n\
    \  author    = {%s},\n\
    \  title     = {%s},\n\
    \  booktitle = {%s},\n\
    \  year      = {%d}%s\n\
     }"
    key
    (String.concat " and " r.ref_authors)
    r.ref_title r.ref_venue r.ref_year doi_line
