type example_class = Precise | Industrial | Sketch | Benchmark

let class_name = function
  | Precise -> "PRECISE"
  | Industrial -> "INDUSTRIAL"
  | Sketch -> "SKETCH"
  | Benchmark -> "BENCHMARK"

let class_of_name s =
  match String.uppercase_ascii (String.trim s) with
  | "PRECISE" -> Some Precise
  | "INDUSTRIAL" -> Some Industrial
  | "SKETCH" -> Some Sketch
  | "BENCHMARK" -> Some Benchmark
  | _ -> None

type model_desc = {
  model_name : string;
  model_description : string;
  meta_model : string option;
}

type restoration = { rest_forward : string; rest_backward : string }
type variant = { variant_name : string; variant_description : string }
type comment = { comment_author : string; comment_text : string }
type artefact_kind = Code | Diagram | Sample_data | Proof | Other of string

type artefact = {
  artefact_name : string;
  artefact_kind : artefact_kind;
  location : string;
}

type t = {
  title : string;
  version : Version.t;
  classes : example_class list;
  overview : string;
  models : model_desc list;
  consistency : string;
  restoration : restoration;
  properties : Bx.Properties.claim list;
  variants : variant list;
  discussion : string;
  references : Reference.t list;
  authors : Contributor.t list;
  reviewers : Contributor.t list;
  comments : comment list;
  artefacts : artefact list;
}

let make ~title ?(version = Version.initial) ~classes ~overview ~models
    ~consistency ?(restoration = { rest_forward = ""; rest_backward = "" })
    ?(properties = []) ?(variants = []) ?(discussion = "") ?(references = [])
    ~authors ?(reviewers = []) ?(comments = []) ?(artefacts = []) () =
  {
    title;
    version;
    classes;
    overview;
    models;
    consistency;
    restoration;
    properties;
    variants;
    discussion;
    references;
    authors;
    reviewers;
    comments;
    artefacts;
  }

let model_desc ?meta_model ~name model_description =
  { model_name = name; model_description; meta_model }

let variant ~name variant_description =
  { variant_name = name; variant_description }

let comment ~author comment_text = { comment_author = author; comment_text }

let artefact ~name ~kind location =
  { artefact_name = name; artefact_kind = kind; location }

let is_provisional t = Version.is_provisional t.version

let validate t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  if String.trim t.title = "" then err "title must be nonempty";
  if t.classes = [] then err "at least one class (type) is required";
  if List.mem Precise t.classes && List.mem Sketch t.classes then
    err "PRECISE and SKETCH are mutually exclusive";
  if String.trim t.overview = "" then err "overview must be present";
  if String.trim t.consistency = "" then
    err "the consistency relation must be described";
  if String.trim t.discussion = "" then err "discussion must be present";
  if List.mem Precise t.classes then begin
    if List.length t.models < 2 then
      err "a PRECISE example must describe at least two models";
    if String.trim t.restoration.rest_forward = "" then
      err "a PRECISE example must describe forward restoration";
    if String.trim t.restoration.rest_backward = "" then
      err "a PRECISE example must describe backward restoration"
  end;
  if t.models = [] then err "at least one model must be described";
  if t.authors = [] then err "at least one contributing author is required";
  if Version.is_provisional t.version && t.reviewers <> [] then
    err "a version 0.x entry cannot list reviewers";
  if (not (Version.is_provisional t.version)) && t.reviewers = [] then
    err "a reviewed (version >= 1.0) entry must list its reviewers";
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let count_sentences s =
  String.fold_left
    (fun n c -> if c = '.' || c = '!' || c = '?' then n + 1 else n)
    0 s

let lint t =
  let advice = ref [] in
  let warn fmt = Format.kasprintf (fun m -> advice := m :: !advice) fmt in
  if count_sentences t.overview > 3 then
    warn
      "overview has more than three sentences; the template recommends a \
       thumbnail of two or three";
  if List.mem Precise t.classes && t.properties = [] then
    warn "a PRECISE example usually states its expected properties";
  if List.mem Industrial t.classes && t.artefacts = [] then
    warn
      "an INDUSTRIAL example cannot be explained separately from its \
       artefacts; attach some";
  List.iter
    (fun v ->
      if String.trim v.variant_description = "" then
        warn "variant %S has an empty description" v.variant_name)
    t.variants;
  List.rev !advice

let equal a b = a = b

let pp_text_field ppf (name, text) =
  if String.trim text <> "" then Fmt.pf ppf "@,@[<v 2>%s:@,%a@]" name Fmt.text text

let pp ppf t =
  Fmt.pf ppf "@[<v>%s (version %a)" t.title Version.pp t.version;
  Fmt.pf ppf "@,Type: %s"
    (String.concat ", " (List.map class_name t.classes));
  pp_text_field ppf ("Overview", t.overview);
  Fmt.pf ppf "@,@[<v 2>Models:%a@]"
    (Fmt.list ~sep:Fmt.nop (fun ppf m ->
         Fmt.pf ppf "@,%s: %a" m.model_name Fmt.text m.model_description))
    t.models;
  pp_text_field ppf ("Consistency", t.consistency);
  pp_text_field ppf ("Forward restoration", t.restoration.rest_forward);
  pp_text_field ppf ("Backward restoration", t.restoration.rest_backward);
  if t.properties <> [] then
    Fmt.pf ppf "@,Properties: %s"
      (String.concat ", "
         (List.map Bx.Properties.claim_name t.properties));
  if t.variants <> [] then
    Fmt.pf ppf "@,@[<v 2>Variants:%a@]"
      (Fmt.list ~sep:Fmt.nop (fun ppf v ->
           Fmt.pf ppf "@,%s: %a" v.variant_name Fmt.text v.variant_description))
      t.variants;
  pp_text_field ppf ("Discussion", t.discussion);
  if t.references <> [] then
    Fmt.pf ppf "@,@[<v 2>References:%a@]"
      (Fmt.list ~sep:Fmt.nop (fun ppf r -> Fmt.pf ppf "@,%a" Reference.pp r))
      t.references;
  Fmt.pf ppf "@,Authors: %s"
    (String.concat ", " (List.map Contributor.to_string t.authors));
  if t.reviewers <> [] then
    Fmt.pf ppf "@,Reviewers: %s"
      (String.concat ", " (List.map Contributor.to_string t.reviewers));
  if t.comments <> [] then
    Fmt.pf ppf "@,@[<v 2>Comments:%a@]"
      (Fmt.list ~sep:Fmt.nop (fun ppf c ->
           Fmt.pf ppf "@,%s: %a" c.comment_author Fmt.text c.comment_text))
      t.comments;
  if t.artefacts <> [] then
    Fmt.pf ppf "@,@[<v 2>Artefacts:%a@]"
      (Fmt.list ~sep:Fmt.nop (fun ppf a ->
           Fmt.pf ppf "@,%s: %s" a.artefact_name a.location))
      t.artefacts;
  Fmt.pf ppf "@]"

let artefact_kind_name = function
  | Code -> "code"
  | Diagram -> "diagram"
  | Sample_data -> "sample-data"
  | Proof -> "proof"
  | Other s -> s

let artefact_kind_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "code" -> Code
  | "diagram" -> Diagram
  | "sample-data" -> Sample_data
  | "proof" -> Proof
  | other -> Other other
