(** The repository itself: a curated, versioned store of example entries.

    Behaviour follows sections 5.1–5.2 of the paper:
    - entries are submitted at version [0.1] and remain {e provisional}
      ([0.x]) until reviewed and approved;
    - anyone with an account comments; reviewers endorse; curators approve
      (three-level curatorial structure) — and an author may not endorse
      their own entry;
    - approval promotes the entry to [1.0], recording the endorsing
      reviewers in the template;
    - {e old versions are kept available} so published references remain
      valid;
    - identifiers are stable; citation strings are generated per version;
    - the whole store exports to (and re-imports from) wiki pages through
      the {!Sync} lens. *)

type t

type error =
  | Not_found of string
  | Permission_denied of string
  | Invalid of string list
  | Conflict of string

val error_message : error -> string

val create : unit -> t
val ids : t -> Identifier.t list
(** Sorted. *)

val size : t -> int

(** {1 Contribution workflow} *)

val submit :
  t -> as_:Curation.account -> Template.t -> (Identifier.t, error) result
(** Add a new entry.  The template must validate, must be provisional
    (version [0.x], no reviewers), and its identifier (from the title) must
    be fresh.  Any account may submit. *)

val comment :
  t -> as_:Curation.account -> Identifier.t -> text:string -> (unit, error) result
(** Append a comment (attributed to the account) to the latest version. *)

val endorse :
  t -> as_:Curation.account -> Identifier.t -> (unit, error) result
(** A reviewer endorses the latest version as being of usable quality.
    Requires review permission; authors cannot endorse their own entries;
    endorsing twice is a conflict. *)

val endorsements : t -> Identifier.t -> (string list, error) result
(** Names of reviewers who endorsed the latest version so far. *)

val approve :
  t -> as_:Curation.account -> Identifier.t -> (Version.t, error) result
(** A curator approves an entry that has at least one endorsement: a new
    version is created by {!Version.promote}, with the endorsing reviewers
    recorded in the template's Reviewers field. *)

val revise :
  t -> as_:Curation.account -> Identifier.t -> Template.t
  -> (Version.t, error) result
(** Publish a new version of an existing entry (same identifier; the title
    must not change, preserving stable references).  Requires edit
    permission (curator, or a listed author of the latest version).  The
    version is forced to the next in the linear sequence; pending
    endorsements are cleared. *)

(** {1 Lookup} *)

val latest : t -> Identifier.t -> (Template.t, error) result
val find_version : t -> Identifier.t -> Version.t -> (Template.t, error) result
val versions : t -> Identifier.t -> (Version.t list, error) result
(** Oldest first. *)

type query = {
  q_class : Template.example_class option;
  q_property : Bx.Properties.claim option;
  q_text : string option;  (** Case-insensitive substring over all fields. *)
}

val query : ?cls:Template.example_class -> ?property:Bx.Properties.claim
  -> ?text:string -> unit -> query

val search : t -> query -> Identifier.t list
(** Identifiers of entries whose latest version matches all given
    criteria. *)

(** {1 Citations and export} *)

val cite :
  t -> ?version:Version.t -> Identifier.t -> (string, error) result

val cite_bibtex :
  t -> ?version:Version.t -> Identifier.t -> (string, error) result

val export : t -> (string * string) list
(** All versions of all entries as (path, wiki text) pairs — the local,
    wiki-markup-independent copy of section 5.4.  Paths look like
    ["examples:composers/0.1"]; the latest version is additionally
    exported at ["examples:composers"]. *)

val import : (string * string) list -> (t, string) result
(** Rebuild a registry from an {!export} dump (versioned pages only; the
    latest-version aliases are ignored).  Round-trips with {!export} up to
    page ordering. *)
