type role = Member | Reviewer | Curator
type account = { account_name : string; role : role }

let account ?(role = Member) account_name = { account_name; role }

let role_name = function
  | Member -> "member"
  | Reviewer -> "reviewer"
  | Curator -> "curator"

let role_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "member" -> Some Member
  | "reviewer" -> Some Reviewer
  | "curator" -> Some Curator
  | _ -> None

let can_comment _ = true
let can_review a = match a.role with Reviewer | Curator -> true | Member -> false
let can_approve a = match a.role with Curator -> true | Reviewer | Member -> false

let can_edit ~author_names a =
  match a.role with
  | Curator -> true
  | Reviewer | Member -> List.mem a.account_name author_names

let pp_account ppf a =
  Fmt.pf ppf "%s [%s]" a.account_name (role_name a.role)
