type entry = {
  id : Identifier.t;
  mutable history : (Version.t * Template.t) list; (* newest first *)
  mutable pending : string list; (* endorsing reviewer account names *)
}

type t = { mutable entries : entry list }

type error =
  | Not_found of string
  | Permission_denied of string
  | Invalid of string list
  | Conflict of string

let error_message = function
  | Not_found id -> Printf.sprintf "no entry %s" id
  | Permission_denied what -> Printf.sprintf "permission denied: %s" what
  | Invalid msgs -> "invalid template: " ^ String.concat "; " msgs
  | Conflict what -> Printf.sprintf "conflict: %s" what

let create () = { entries = [] }

let ids t =
  List.sort Identifier.compare (List.map (fun e -> e.id) t.entries)

let size t = List.length t.entries

let find_entry t id =
  List.find_opt (fun e -> Identifier.equal e.id id) t.entries

let latest_of entry =
  match entry.history with
  | (_, template) :: _ -> template
  | [] -> assert false (* entries always hold at least one version *)

let author_names (template : Template.t) =
  List.map (fun c -> c.Contributor.person_name) template.Template.authors

let submit t ~as_:_ template =
  match Template.validate template with
  | Error msgs -> Error (Invalid msgs)
  | Ok () ->
      if not (Template.is_provisional template) then
        Error
          (Invalid [ "a new submission must carry a provisional 0.x version" ])
      else (
        match Identifier.of_title template.Template.title with
        | Error e -> Error (Invalid [ e ])
        | Ok id ->
            if find_entry t id <> None then
              Error
                (Conflict
                   (Printf.sprintf "an entry %s already exists"
                      (Identifier.to_string id)))
            else begin
              t.entries <-
                t.entries
                @ [
                    {
                      id;
                      history = [ (template.Template.version, template) ];
                      pending = [];
                    };
                  ];
              Ok id
            end)

let with_entry t id f =
  match find_entry t id with
  | None -> Error (Not_found (Identifier.to_string id))
  | Some entry -> f entry

let comment t ~as_ id ~text =
  with_entry t id (fun entry ->
      if not (Curation.can_comment as_) then
        Error (Permission_denied "commenting requires an account")
      else begin
        match entry.history with
        | (v, template) :: older ->
            let template =
              {
                template with
                Template.comments =
                  template.Template.comments
                  @ [ Template.comment ~author:as_.Curation.account_name text ];
              }
            in
            entry.history <- (v, template) :: older;
            Ok ()
        | [] -> assert false
      end)

let endorse t ~as_ id =
  with_entry t id (fun entry ->
      if not (Curation.can_review as_) then
        Error (Permission_denied "endorsing requires reviewer status")
      else
        let template = latest_of entry in
        if List.mem as_.Curation.account_name (author_names template) then
          Error (Permission_denied "authors cannot endorse their own entry")
        else if List.mem as_.Curation.account_name entry.pending then
          Error (Conflict "already endorsed by this reviewer")
        else begin
          entry.pending <- entry.pending @ [ as_.Curation.account_name ];
          Ok ()
        end)

let endorsements t id = with_entry t id (fun entry -> Ok entry.pending)

let approve t ~as_ id =
  with_entry t id (fun entry ->
      if not (Curation.can_approve as_) then
        Error (Permission_denied "approval requires curator status")
      else if entry.pending = [] then
        Error (Conflict "no endorsements: an entry needs at least one reviewer")
      else begin
        match entry.history with
        | (v, template) :: _ ->
            let version = Version.promote v in
            let template =
              {
                template with
                Template.version;
                Template.reviewers =
                  List.map Contributor.make entry.pending;
              }
            in
            (match Template.validate template with
            | Error msgs -> Error (Invalid msgs)
            | Ok () ->
                entry.history <- (version, template) :: entry.history;
                entry.pending <- [];
                Ok version)
        | [] -> assert false
      end)

let revise t ~as_ id template =
  with_entry t id (fun entry ->
      let current = latest_of entry in
      if not (Curation.can_edit ~author_names:(author_names current) as_) then
        Error (Permission_denied "editing requires curator status or authorship")
      else (
        match Identifier.of_title template.Template.title with
        | Error e -> Error (Invalid [ e ])
        | Ok new_id when not (Identifier.equal new_id id) ->
            Error
              (Conflict
                 "revisions may not change the title: identifiers are stable")
        | Ok _ ->
            let version =
              Version.bump_minor current.Template.version
            in
            let template = { template with Template.version } in
            (match Template.validate template with
            | Error msgs -> Error (Invalid msgs)
            | Ok () ->
                entry.history <- (version, template) :: entry.history;
                entry.pending <- [];
                Ok version)))

let latest t id = with_entry t id (fun entry -> Ok (latest_of entry))

let find_version t id version =
  with_entry t id (fun entry ->
      match
        List.find_opt (fun (v, _) -> Version.equal v version) entry.history
      with
      | Some (_, template) -> Ok template
      | None ->
          Error
            (Not_found
               (Printf.sprintf "%s version %s" (Identifier.to_string id)
                  (Version.to_string version))))

let versions t id =
  with_entry t id (fun entry ->
      Ok (List.rev_map fst entry.history))

type query = {
  q_class : Template.example_class option;
  q_property : Bx.Properties.claim option;
  q_text : string option;
}

let query ?cls ?property ?text () =
  { q_class = cls; q_property = property; q_text = text }

let contains_ci haystack needle =
  let h = String.lowercase_ascii haystack in
  let n = String.lowercase_ascii needle in
  let hl = String.length h and nl = String.length n in
  if nl = 0 then true
  else
    let rec scan i = i + nl <= hl && (String.sub h i nl = n || scan (i + 1)) in
    scan 0

let full_text (template : Template.t) =
  String.concat "\n"
    ([
       template.Template.title;
       template.Template.overview;
       template.Template.consistency;
       template.Template.restoration.Template.rest_forward;
       template.Template.restoration.Template.rest_backward;
       template.Template.discussion;
     ]
    @ List.map
        (fun (m : Template.model_desc) ->
          m.model_name ^ " " ^ m.model_description)
        template.Template.models
    @ List.map
        (fun (v : Template.variant) ->
          v.variant_name ^ " " ^ v.variant_description)
        template.Template.variants
    @ List.map Contributor.to_string template.Template.authors)

let matches q (template : Template.t) =
  (match q.q_class with
  | None -> true
  | Some c -> List.mem c template.Template.classes)
  && (match q.q_property with
     | None -> true
     | Some p -> List.mem p template.Template.properties)
  &&
  match q.q_text with
  | None -> true
  | Some text -> contains_ci (full_text template) text

let search t q =
  List.filter (fun e -> matches q (latest_of e)) t.entries
  |> List.map (fun e -> e.id)
  |> List.sort Identifier.compare

let resolve t id version =
  match version with
  | None -> latest t id
  | Some v -> find_version t id v

let cite t ?version id =
  match resolve t id version with
  | Error e -> Error e
  | Ok template -> Ok (Citation.entry ~id template)

let cite_bibtex t ?version id =
  match resolve t id version with
  | Error e -> Error e
  | Ok template -> Ok (Citation.entry_bibtex ~id template)

let export t =
  List.concat_map
    (fun entry ->
      let path = Identifier.wiki_path entry.id in
      let versioned =
        List.rev_map
          (fun (v, template) ->
            (path ^ "/" ^ Version.to_string v, Sync.wiki_text template))
          entry.history
      in
      versioned @ [ (path, Sync.wiki_text (latest_of entry)) ])
    t.entries

let import pages =
  let versioned =
    List.filter (fun (path, _) -> String.contains path '/') pages
  in
  let parse_page (path, text) =
    match String.index_opt path '/' with
    | None -> Error (Printf.sprintf "unversioned page %s" path)
    | Some i -> (
        let version_s =
          String.sub path (i + 1) (String.length path - i - 1)
        in
        match Version.of_string version_s with
        | Error e -> Error e
        | Ok version -> (
            match Sync.of_wiki_text text with
            | Error e -> Error (Printf.sprintf "%s: %s" path e)
            | Ok template -> Ok (version, template)))
  in
  let by_id : (string, Identifier.t * (Version.t * Template.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let order = ref [] in
  let rec build = function
    | [] -> Ok ()
    | page :: rest -> (
        match parse_page page with
        | Error e -> Error e
        | Ok (version, template) -> (
            match Identifier.of_title template.Template.title with
            | Error e -> Error e
            | Ok id ->
                let key = Identifier.to_string id in
                (match Hashtbl.find_opt by_id key with
                | None ->
                    order := key :: !order;
                    Hashtbl.replace by_id key (id, [ (version, template) ])
                | Some (id, history) ->
                    Hashtbl.replace by_id key
                      (id, (version, template) :: history));
                build rest))
  in
  match build versioned with
  | Error e -> Error e
  | Ok () ->
      let entries =
        List.rev_map
          (fun key ->
            let id, history = Hashtbl.find by_id key in
            {
              id;
              history =
                List.sort (fun (v1, _) (v2, _) -> Version.compare v2 v1) history;
              pending = [];
            })
          !order
      in
      Ok { entries }
