(** The glossary the template's "Properties" field links to (section 3):
    definitions of the bx property vocabulary plus the surrounding terms of
    art used across the repository. *)

val lookup : string -> string option
(** Look up a term (case- and separator-insensitive).  Property names
    resolve to the {!Bx.Properties} definitions; further terms
    ("state-based", "delta-based", "bx", "composition problem", ...) are
    defined here. *)

val terms : unit -> (string * string) list
(** All glossary entries as (term, definition), sorted by term. *)

val pp_entry : Format.formatter -> string * string -> unit
