(** Stable identifiers for repository entries.

    The paper stresses (section 2, section 5.2) that each example needs a
    {e stable reference} so papers can cite it durably: a well-chosen name,
    one main variation per example, and a linear version sequence.  An
    identifier is the canonical upper-case slug of the entry's title —
    [COMPOSERS], [UML2RDBMS], ... — and never changes across versions. *)

type t

val of_title : string -> (t, string) result
(** Canonicalise a title: letters are upper-cased, runs of spaces and
    punctuation become single hyphens, digits are kept.  Fails on titles
    with no alphanumeric content. *)

val of_string : string -> (t, string) result
(** Parse an identifier that is already in canonical form (accepts any
    case; re-canonicalises). *)

val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val wiki_path : t -> string
(** The wiki page path for an entry, mirroring the Bx wiki layout:
    ["examples:composers"]. *)
