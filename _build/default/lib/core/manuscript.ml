let latest_entries registry =
  List.filter_map
    (fun id ->
      match Registry.latest registry id with
      | Ok t -> Some (id, t)
      | Error _ -> None)
    (Registry.ids registry)

let contributors registry =
  let tbl = Hashtbl.create 16 in
  let add person id =
    let name = person.Contributor.person_name in
    let ids = Option.value ~default:[] (Hashtbl.find_opt tbl name) in
    if not (List.mem id ids) then Hashtbl.replace tbl name (ids @ [ id ])
  in
  List.iter
    (fun (id, t) ->
      let id = Identifier.to_string id in
      List.iter (fun p -> add p id) t.Template.authors;
      List.iter (fun p -> add p id) t.Template.reviewers)
    (latest_entries registry);
  Hashtbl.fold (fun name ids acc -> (name, ids) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Demote every heading one level so entry titles nest under the
   manuscript title. *)
let demote doc =
  List.map
    (function
      | Markup.Heading (level, text) -> Markup.Heading (level + 1, text)
      | block -> block)
    doc

let generate registry =
  let entries = latest_entries registry in
  let toc =
    Markup.Bullets
      (List.map
         (fun (id, t) ->
           Printf.sprintf "%s (version %s)"
             (Identifier.to_string id)
             (Version.to_string t.Template.version))
         entries)
  in
  let body = List.concat_map (fun (_, t) -> demote (Sync.render_entry t)) entries in
  let credits =
    Markup.Bullets
      (List.map
         (fun (name, ids) ->
           Printf.sprintf "%s: %s" name (String.concat ", " ids))
         (contributors registry))
  in
  let doc =
    [
      Markup.Heading (1, Citation.repository_name ^ ": Collected Examples");
      Markup.Para
        [
          Markup.Text
            "An archival collection of the most recent version of every \
             example in the repository. Cite the repository as: ";
        ];
      Markup.Para [ Markup.Text (Citation.repository ()) ];
      Markup.Heading (2, "Contents");
      toc;
    ]
    @ body
    @ [ Markup.Heading (2, "Credits"); credits ]
  in
  Markup.render doc

let bibliography registry =
  let entries = latest_entries registry in
  String.concat "\n\n"
    (List.map (fun (id, t) -> Citation.entry_bibtex ~id t) entries
    @ [
        Printf.sprintf
          "@misc{bx-examples-repository,\n\
          \  title        = {%s},\n\
          \  howpublished = {\\url{%s}}\n\
           }"
          Citation.repository_name Citation.repository_url;
      ])
