exception Parse_error of string

(* --- text normalisation ------------------------------------------- *)

(* Split free text into paragraphs on blank lines; inside a paragraph,
   collapse whitespace runs to single spaces. *)
let paragraphs_of_text text =
  let lines = String.split_on_char '\n' text in
  let rec group current acc = function
    | [] ->
        let acc = if current = [] then acc else List.rev current :: acc in
        List.rev acc
    | l :: rest ->
        if String.trim l = "" then
          let acc = if current = [] then acc else List.rev current :: acc in
          group [] acc rest
        else group (l :: current) acc rest
  in
  let collapse para =
    String.concat " " para |> String.split_on_char ' '
    |> List.filter (fun w -> w <> "")
    |> String.concat " "
  in
  group [] [] lines |> List.map collapse |> List.filter (fun p -> p <> "")

let normalise_text text = String.concat "\n\n" (paragraphs_of_text text)

let normalise (t : Template.t) =
  {
    t with
    overview = normalise_text t.overview;
    consistency = normalise_text t.consistency;
    discussion = normalise_text t.discussion;
    restoration =
      {
        rest_forward = normalise_text t.restoration.rest_forward;
        rest_backward = normalise_text t.restoration.rest_backward;
      };
    models =
      List.map
        (fun (m : Template.model_desc) ->
          { m with model_description = normalise_text m.model_description })
        t.models;
    variants =
      List.map
        (fun (v : Template.variant) ->
          { v with variant_description = normalise_text v.variant_description })
        t.variants;
  }

(* --- rendering ----------------------------------------------------- *)

let paras_of text =
  List.map (fun p -> Markup.Para (Markup.parse_inlines p)) (paragraphs_of_text text)

let section name blocks =
  if blocks = [] then [] else Markup.Heading (2, name) :: blocks

let text_section name text =
  if String.trim text = "" then [] else section name (paras_of text)

let bullet_section name items =
  if items = [] then [] else section name [ Markup.Bullets items ]

let model_bullet (m : Template.model_desc) =
  let base = m.model_name ^ ": " ^ normalise_text m.model_description in
  match m.meta_model with
  | None -> base
  | Some meta -> base ^ " [meta: " ^ meta ^ "]"

let artefact_bullet (a : Template.artefact) =
  Printf.sprintf "%s [%s]: %s" a.artefact_name
    (Template.artefact_kind_name a.artefact_kind)
    a.location

let render_entry (t : Template.t) =
  let open Markup in
  List.concat
    [
      [ Heading (1, t.title) ];
      section "Version" [ Para [ Text (Version.to_string t.version) ] ];
      section "Type"
        [
          Para
            [ Text (String.concat ", " (List.map Template.class_name t.classes)) ];
        ];
      text_section "Overview" t.overview;
      bullet_section "Models" (List.map model_bullet t.models);
      text_section "Consistency" t.consistency;
      (let fwd = String.trim t.restoration.rest_forward in
       let bwd = String.trim t.restoration.rest_backward in
       if fwd = "" && bwd = "" then []
       else
         [ Heading (2, "Consistency Restoration") ]
         @ (if fwd = "" then []
            else Heading (3, "Forward") :: paras_of t.restoration.rest_forward)
         @
         if bwd = "" then []
         else Heading (3, "Backward") :: paras_of t.restoration.rest_backward);
      bullet_section "Properties"
        (List.map Bx.Properties.claim_name t.properties);
      bullet_section "Variants"
        (List.map
           (fun (v : Template.variant) ->
             v.variant_name ^ ": " ^ normalise_text v.variant_description)
           t.variants);
      text_section "Discussion" t.discussion;
      bullet_section "References" (List.map Reference.to_line t.references);
      bullet_section "Authors" (List.map Contributor.to_string t.authors);
      bullet_section "Reviewers" (List.map Contributor.to_string t.reviewers);
      bullet_section "Comments"
        (List.map
           (fun (c : Template.comment) ->
             c.comment_author ^ ": " ^ c.comment_text)
           t.comments);
      bullet_section "Artefacts" (List.map artefact_bullet t.artefacts);
    ]

(* --- parsing -------------------------------------------------------- *)

(* Group a page into its title and (section name, blocks) pairs; level-3
   headings stay inside their section's block list. *)
let sections_of_doc doc =
  match doc with
  | Markup.Heading (1, title) :: rest ->
      let rec group acc current_name current_blocks = function
        | [] -> List.rev ((current_name, List.rev current_blocks) :: acc)
        | Markup.Heading (2, name) :: rest ->
            group
              ((current_name, List.rev current_blocks) :: acc)
              name [] rest
        | block :: rest -> group acc current_name (block :: current_blocks) rest
      in
      let sections =
        match rest with
        | [] -> []
        | _ -> (
            match group [] "" [] rest with
            | ("", []) :: sections -> sections
            | sections -> sections)
      in
      Ok (title, sections)
  | _ -> Error "page must start with a level-1 title heading"

let text_of_blocks blocks =
  List.filter_map
    (function
      | Markup.Para inlines -> Some (Markup.render_inlines inlines)
      | _ -> None)
    blocks
  |> String.concat "\n\n"

let bullets_of_blocks blocks =
  List.concat_map
    (function Markup.Bullets items -> items | _ -> [])
    blocks

let split_on_first marker s =
  let mlen = String.length marker in
  let n = String.length s in
  let rec scan i =
    if i + mlen > n then None
    else if String.sub s i mlen = marker then
      Some (String.sub s 0 i, String.sub s (i + mlen) (n - i - mlen))
    else scan (i + 1)
  in
  scan 0

let parse_model item =
  match split_on_first ": " item with
  | None -> Error (Printf.sprintf "model bullet %S lacks a 'NAME: description'" item)
  | Some (name, rest) ->
      let description, meta =
        match split_on_first " [meta: " rest with
        | Some (desc, meta_part)
          when String.length meta_part > 0
               && meta_part.[String.length meta_part - 1] = ']' ->
            (desc, Some (String.sub meta_part 0 (String.length meta_part - 1)))
        | _ -> (rest, None)
      in
      Ok
        Template.
          { model_name = name; model_description = description; meta_model = meta }

let parse_variant item =
  match split_on_first ": " item with
  | None -> Error (Printf.sprintf "variant bullet %S lacks a 'name: description'" item)
  | Some (name, description) ->
      Ok Template.{ variant_name = name; variant_description = description }

let parse_comment item =
  match split_on_first ": " item with
  | None -> Error (Printf.sprintf "comment bullet %S lacks an 'author: text'" item)
  | Some (author, text) ->
      Ok Template.{ comment_author = author; comment_text = text }

let parse_artefact item =
  match split_on_first " [" item with
  | None -> Error (Printf.sprintf "artefact bullet %S lacks a '[kind]'" item)
  | Some (name, rest) -> (
      match split_on_first "]: " rest with
      | None ->
          Error (Printf.sprintf "artefact bullet %S lacks a ']: location'" item)
      | Some (kind, location) ->
          Ok
            Template.
              {
                artefact_name = name;
                artefact_kind = Template.artefact_kind_of_name kind;
                location;
              })

let parse_property item =
  match Bx.Properties.claim_of_name item with
  | Some claim -> Ok claim
  | None -> Error (Printf.sprintf "unknown property claim %S" item)

let rec collect_results f = function
  | [] -> Ok []
  | x :: rest -> (
      match f x with
      | Error e -> Error e
      | Ok y -> (
          match collect_results f rest with
          | Error e -> Error e
          | Ok ys -> Ok (y :: ys)))

(* Forward/Backward subsections of Consistency Restoration. *)
let parse_restoration blocks =
  let rec group current acc = function
    | [] -> List.rev ((fst current, List.rev (snd current)) :: acc)
    | Markup.Heading (3, name) :: rest ->
        group (name, []) ((fst current, List.rev (snd current)) :: acc) rest
    | block :: rest -> group (fst current, block :: snd current) acc rest
  in
  let groups = group ("", []) [] blocks in
  let find name =
    List.find_map
      (fun (n, blocks) ->
        if String.lowercase_ascii n = name then Some (text_of_blocks blocks)
        else None)
      groups
  in
  Template.
    {
      rest_forward = Option.value ~default:"" (find "forward");
      rest_backward = Option.value ~default:"" (find "backward");
    }

let blank ~title =
  Template.make ~title ~classes:[] ~overview:"" ~models:[] ~consistency:""
    ~authors:[] ()

let parse_entry ~fallback doc =
  match sections_of_doc doc with
  | Error e -> Error e
  | Ok (title, sections) ->
      let ( let* ) r f = match r with Error e -> Error e | Ok x -> f x in
      let find name =
        List.find_map
          (fun (n, blocks) ->
            if String.lowercase_ascii (String.trim n) = name then Some blocks
            else None)
          sections
      in
      let text_field name default =
        match find name with
        | None -> default
        | Some blocks -> text_of_blocks blocks
      in
      (* Optional list-valued sections: absence from the page means the
         field is empty (a deletion), keeping put/get round trips exact. *)
      let bullet_field name parse =
        match find name with
        | None -> Ok []
        | Some blocks -> collect_results parse (bullets_of_blocks blocks)
      in
      (* Required sections fall back to the old entry when absent. *)
      let required_bullet_field name parse default =
        match find name with
        | None -> Ok default
        | Some blocks -> collect_results parse (bullets_of_blocks blocks)
      in
      let* version =
        match find "version" with
        | None -> Ok fallback.Template.version
        | Some blocks -> Version.of_string (text_of_blocks blocks)
      in
      let* classes =
        match find "type" with
        | None -> Ok fallback.Template.classes
        | Some blocks ->
            text_of_blocks blocks |> String.split_on_char ','
            |> List.map String.trim
            |> List.filter (fun s -> s <> "")
            |> collect_results (fun s ->
                   match Template.class_of_name s with
                   | Some c -> Ok c
                   | None -> Error (Printf.sprintf "unknown example class %S" s))
      in
      let* models =
        required_bullet_field "models" parse_model fallback.Template.models
      in
      let* properties = bullet_field "properties" parse_property in
      let* variants = bullet_field "variants" parse_variant in
      let* references = bullet_field "references" Reference.of_line in
      let* authors =
        required_bullet_field "authors"
          (fun s -> Ok (Contributor.of_string s))
          fallback.Template.authors
      in
      let* reviewers =
        bullet_field "reviewers" (fun s -> Ok (Contributor.of_string s))
      in
      let* comments = bullet_field "comments" parse_comment in
      let* artefacts = bullet_field "artefacts" parse_artefact in
      let restoration =
        (* Restoration may legitimately be empty (SKETCH entries), so it
           follows the absence-means-empty rule. *)
        match find "consistency restoration" with
        | None -> Template.{ rest_forward = ""; rest_backward = "" }
        | Some blocks -> parse_restoration blocks
      in
      Ok
        {
          Template.title;
          version;
          classes;
          overview = text_field "overview" fallback.Template.overview;
          models;
          consistency = text_field "consistency" fallback.Template.consistency;
          restoration;
          properties;
          variants;
          discussion = text_field "discussion" fallback.Template.discussion;
          references;
          authors;
          reviewers;
          comments;
          artefacts;
        }

let lens () =
  Bx.Lens.make ~name:"template-wiki-sync" ~get:render_entry
    ~put:(fun doc t ->
      match parse_entry ~fallback:t doc with
      | Ok t' -> t'
      | Error e -> raise (Parse_error e))
    ~create:(fun doc ->
      let title =
        match doc with Markup.Heading (1, t) :: _ -> t | _ -> "UNTITLED"
      in
      match parse_entry ~fallback:(blank ~title) doc with
      | Ok t -> t
      | Error e -> raise (Parse_error e))

let wiki_text t = Markup.render (render_entry t)

let of_wiki_text ?fallback text =
  match Markup.parse text with
  | Error e -> Error e
  | Ok doc ->
      let fallback =
        match fallback with
        | Some f -> f
        | None ->
            let title =
              match doc with Markup.Heading (1, t) :: _ -> t | _ -> "UNTITLED"
            in
            blank ~title
      in
      parse_entry ~fallback doc
