(** Contributing authors and reviewers of repository entries.  Listing
    both is the paper's incentive mechanism for contributions (section
    5.2, "traceability and credit"). *)

type t = {
  person_name : string;
  affiliation : string option;
}

val make : ?affiliation:string -> string -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** ["Name (Affiliation)"] or just ["Name"]. *)

val to_string : t -> string
val of_string : string -> t
(** Inverse of {!to_string}: an optional parenthesised affiliation at the
    end is split off. *)
