(** The repository entry template — section 3 of the paper, field for
    field.  Required fields must be present (even if brief); optional
    fields ("?" in the paper) may be empty.  {!validate} enforces the
    paper's structural rules; {!lint} reports softer style advice. *)

(** The class of an example (section 2): precise small examples, sketches
    of plausible-but-unworked bx, industrial-scale examples, and — per the
    discussion with the BenchmarX authors — benchmarks. *)
type example_class = Precise | Industrial | Sketch | Benchmark

val class_name : example_class -> string
(** Upper-case, as the paper writes them: ["PRECISE"], ... *)

val class_of_name : string -> example_class option

(** One of the "two or more classes of models" the bx relates. *)
type model_desc = {
  model_name : string;  (** e.g. ["M"]. *)
  model_description : string;
  meta_model : string option;  (** Optional formal expression. *)
}

(** The "Consistency Restoration" field, split into its two directions. *)
type restoration = {
  rest_forward : string;
  rest_backward : string;
}

(** A variation point (section 3, "Variants"): the base example is fixed
    and each reasonable alternative choice is recorded here. *)
type variant = {
  variant_name : string;
  variant_description : string;
}

(** A wiki member's comment on an entry. *)
type comment = {
  comment_author : string;
  comment_text : string;
}

type artefact_kind = Code | Diagram | Sample_data | Proof | Other of string

(** An auxiliary artefact: executable code, diagrams for papers, sample
    inputs and outputs, proof scripts ... *)
type artefact = {
  artefact_name : string;
  artefact_kind : artefact_kind;
  location : string;  (** A path or URL. *)
}

type t = {
  title : string;
  version : Version.t;
  classes : example_class list;
  overview : string;
  models : model_desc list;
  consistency : string;
  restoration : restoration;
  properties : Bx.Properties.claim list;  (* optional *)
  variants : variant list;  (* optional *)
  discussion : string;
  references : Reference.t list;  (* optional *)
  authors : Contributor.t list;
  reviewers : Contributor.t list;  (* optional: empty while provisional *)
  comments : comment list;
  artefacts : artefact list;  (* optional *)
}

val make :
  title:string -> ?version:Version.t -> classes:example_class list
  -> overview:string -> models:model_desc list -> consistency:string
  -> ?restoration:restoration -> ?properties:Bx.Properties.claim list
  -> ?variants:variant list -> ?discussion:string
  -> ?references:Reference.t list -> authors:Contributor.t list
  -> ?reviewers:Contributor.t list -> ?comments:comment list
  -> ?artefacts:artefact list -> unit -> t
(** Build a template; omitted optional fields default to empty, the
    version to {!Version.initial}. *)

val model_desc : ?meta_model:string -> name:string -> string -> model_desc
val variant : name:string -> string -> variant
val comment : author:string -> string -> comment
val artefact : name:string -> kind:artefact_kind -> string -> artefact

val validate : t -> (unit, string list) result
(** The paper's structural rules:
    - the title is nonempty;
    - at least one class is given, and PRECISE and SKETCH are mutually
      exclusive;
    - the overview, consistency and discussion fields are nonempty;
    - a PRECISE example describes at least two models and both restoration
      directions;
    - at least one author is listed;
    - the version is [0.x] if and only if no reviewers are listed. *)

val lint : t -> string list
(** Style advice (never fatal): overview longer than the recommended two
    or three sentences; a PRECISE example without property claims; an
    INDUSTRIAL example without artefacts; empty variant descriptions. *)

val is_provisional : t -> bool
(** Shorthand for {!Version.is_provisional} on the entry's version. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
(** A plain-text rendering of all fields, for terminals. *)

val artefact_kind_name : artefact_kind -> string
val artefact_kind_of_name : string -> artefact_kind
