(** Unique splitting of strings against unambiguous regular expressions —
    the parsing engine behind the string-lens combinators.

    Splitters are built once per lens (constructing the DFAs involved) and
    then applied to many strings.  They assume the ambiguity side conditions
    of {!Bx_regex.Ambig} have been established; if an input nevertheless
    splits zero or several ways, {!Split_error} is raised. *)

exception Split_error of string

val rev_string : string -> string
(** Reverse a string (exposed for tests). *)

type concat_splitter = string -> string * string
(** Split a string of [L(r1)·L(r2)] into its unique [r1]-prefix and
    [r2]-suffix. *)

val make_concat_splitter : Bx_regex.Regex.t -> Bx_regex.Regex.t -> concat_splitter
(** Build a splitter for the (unambiguous) concatenation [r1 · r2].
    Internally: a forward DFA for [r1] marks accepted prefixes, a DFA for
    the reverse of [r2] run over the reversed string marks accepted
    suffixes; the unique split point is where both mark. *)

type star_splitter = string -> string list
(** Split a string of the iteration of [r] into its unique sequence of
    [r]-chunks. *)

val make_star_splitter : Bx_regex.Regex.t -> star_splitter
(** Build a splitter for the (uniquely iterable) [r*].  Requires
    [ε ∉ L(r)]. *)
