lib/strlens/slens.mli: Bx Bx_regex
