lib/strlens/canonizer.ml: Bx Bx_regex Fun Lang Printf Regex Slens String
