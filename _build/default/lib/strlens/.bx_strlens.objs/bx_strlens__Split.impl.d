lib/strlens/split.ml: Array Bx_regex Dfa Format List Regex String
