lib/strlens/split.mli: Bx_regex
