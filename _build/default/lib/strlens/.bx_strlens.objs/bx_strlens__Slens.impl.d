lib/strlens/slens.ml: Ambig Array Bx Bx_regex Format Fun Hashtbl Lang List Regex Split String
