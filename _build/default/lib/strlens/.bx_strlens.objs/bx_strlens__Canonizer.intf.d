lib/strlens/canonizer.mli: Bx Bx_regex Slens
