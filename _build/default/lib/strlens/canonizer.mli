(** Canonizers and quotient lenses (Foster, Pilkiewicz, Pierce: "Quotient
    Lenses", ICFP 2008).

    A canonizer presents a language [ctype] modulo an equivalence: it maps
    every string of [ctype] to a canonical representative in [atype]
    (with [atype ⊆ ctype] up to the equivalence), and [choose] picks a
    member of each class — here, [choose] is the identity embedding of
    the canonical form.  Quotienting a lens on the source or view side
    relaxes the lens laws to hold only up to canonization, which is how
    Boomerang handles whitespace, optional terminators and other
    formatting freedom. *)

type t = {
  ctype : Bx_regex.Regex.t;  (** The concrete (quotiented) language. *)
  atype : Bx_regex.Regex.t;  (** The canonical representatives. *)
  canonize : string -> string;  (** [ctype] to [atype]; idempotent. *)
}

val make :
  ctype:Bx_regex.Regex.t -> atype:Bx_regex.Regex.t
  -> canonize:(string -> string) -> t
(** Package a canonizer.  Checks that [atype] is a subset of [ctype] (the
    canonical forms are themselves acceptable concrete forms) and raises
    {!Slens.Type_error} otherwise. *)

val identity : Bx_regex.Regex.t -> t
(** The trivial canonizer on a language. *)

val final_newline : Bx_regex.Regex.t -> t
(** For a language [r] of newline-terminated texts: accept also the form
    missing the final newline, and canonize by appending it.  ([ctype] is
    [r | r-without-final-newline]; [atype] is [r].)  The LINES entry's
    "final-newline-optional" variant. *)

val left_quot : t -> Slens.t -> Slens.t
(** [left_quot cz l] quotients the {e source}: the new source type is
    [cz.ctype]; get canonizes then applies [l]; put produces the canonical
    concrete form.  Requires [cz.atype] to equal [l]'s source type. *)

val right_quot : Slens.t -> t -> Slens.t
(** [right_quot l cz] quotients the {e view}: the new view type is
    [cz.ctype]; put canonizes the edited view before applying [l].
    Requires [cz.atype] to equal [l]'s view type. *)

val canonized_law : t -> string Bx.Law.t
(** [canonize] lands in [atype] and is idempotent (checked per input). *)
