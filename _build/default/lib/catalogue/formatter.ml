open Bx_regex
open Bx_strlens

let word = Regex.plus (Regex.cset (Cset.union (Cset.range 'a' 'z') (Cset.range '0' '9')))
let spaces = Regex.star (Regex.chr ' ')

let line ~sloppy =
  let eq =
    if sloppy then Regex.concat_list [ spaces; Regex.chr '='; spaces ]
    else Regex.chr '='
  in
  Regex.concat_list [ word; eq; word; Regex.chr '\n' ]

let key_value_doc = Regex.star (line ~sloppy:true)
let canonical_doc = Regex.star (line ~sloppy:false)

let canonize_line l =
  match String.index_opt l '=' with
  | None -> l
  | Some i ->
      let key = String.trim (String.sub l 0 i) in
      let value = String.trim (String.sub l (i + 1) (String.length l - i - 1)) in
      key ^ "=" ^ value

let canonizer =
  Canonizer.make ~ctype:key_value_doc ~atype:canonical_doc
    ~canonize:(fun s ->
      String.split_on_char '\n' s
      |> List.map canonize_line
      |> String.concat "\n")

let lens = Canonizer.left_quot canonizer (Slens.copy canonical_doc)
let format = lens.Slens.get

let template =
  let open Bx_repo in
  Template.make ~title:"FORMATTER"
    ~classes:[ Template.Precise ]
    ~overview:
      "A freely formatted key=value configuration file kept consistent \
       with its canonical form: the bx every code formatter implicitly \
       implements, expressed as a quotient lens."
    ~models:
      [
        Template.model_desc ~name:"Sloppy"
          "key = value lines with arbitrary spaces around the equals \
           sign." ~meta_model:"(word ' '* '=' ' '* word '\\n')*";
        Template.model_desc ~name:"Canonical"
          "The same lines with no spaces around the equals sign."
          ~meta_model:"(word '=' word '\\n')*";
      ]
    ~consistency:
      "The canonical document is the sloppy document with the whitespace \
       around every equals sign removed; two sloppy documents are \
       equivalent when they canonize identically."
    ~restoration:
      {
        Template.rest_forward = "get: canonize (format) the document.";
        Template.rest_backward =
          "put: install the edited canonical document as the new source \
           (the formatting freedom of the old source is deliberately \
           not preserved — formatters normalise).";
      }
    ~properties:
      Bx.Properties.
        [ Satisfies Correct; Satisfies Hippocratic; Satisfies Well_behaved ]
    ~variants:
      [
        Template.variant ~name:"preserve-formatting"
          "Keep the old source's spacing where the canonical content is \
           unchanged (a resourceful quotient lens): friendlier to diffs, \
           considerably harder to specify.";
      ]
    ~discussion:
      "The smallest honest example of quotienting: the lens laws cannot \
       hold on the nose on the sloppy side (get is not injective), and \
       the quotient-lens discipline says exactly which equalities to \
       expect instead — GetPut up to canonization, PutGet on the nose. \
       The property suite checks the on-the-nose laws over canonical \
       sources and the canonizer's own laws over sloppy ones."
    ~references:
      [
        Reference.make
          ~authors:[ "J. Nathan Foster"; "Alexandre Pilkiewicz"; "Benjamin C. Pierce" ]
          ~title:"Quotient Lenses" ~venue:"ICFP" ~year:2008
          ~doi:"10.1145/1411204.1411257" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Oxford" "Jeremy Gibbons" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/formatter.ml";
      ]
    ()
