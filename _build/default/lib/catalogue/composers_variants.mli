(** The variation points of the COMPOSERS example (section 4, "Variants").
    Each variant resolves one of the choices the template leaves open —
    and one deliberately resolves it badly, to exhibit the property
    failure the paper predicts. *)

open Composers

val insert_at_beginning : (m, n) Bx.Symmetric.t
(** Variant: new entries are added at the {e beginning} of [n] (still in
    alphabetical order among themselves).  Correct and hippocratic, like
    the base example. *)

val fresh_dates : string -> (m, n) Bx.Symmetric.t
(** Variant: newly created composers receive the given dates token instead
    of [????-????]. *)

val name_as_key : (m, n) Bx.Symmetric.t
(** Variant: name is a key.  Backward restoration {e updates the
    nationality} of an existing composer with a matching name (keeping its
    dates) rather than creating a second composer — resolving the
    Britten/British vs Britten/English question in favour of modification.
    Requires key-consistency (at most one entry per name in [n]); on other
    inputs it behaves like the base example.  Consistency additionally
    requires names to determine nationalities. *)

val alphabetical_n : (m, n) Bx.Symmetric.t
(** The {e deliberately wrong} variant: forward restoration keeps [n]
    fully sorted.  The paper points out this forfeits hippocraticness
    ("we fail hippocraticness if we choose to reorder when nothing at all
    need be changed") — the test suite and the variant bench exhibit the
    violation. *)
