type entry = { person : string; age : int; email : string }

let entry_iso =
  Bx.Iso.make ~name:"entry-pairs"
    ~fwd:(fun e -> ((e.person, e.age), e.email))
    ~bwd:(fun ((person, age), email) -> { person; age; email })

(* The element lens: through the iso, then project away the email
   (keeping it as the pair complement). *)
let element_lens =
  Bx.Lens.compose (Bx.Lens.of_iso entry_iso)
    (Bx.Lens.first ~default:"unknown@example.org")

let lens =
  Bx.Lens.list_key_map
    ~source_key:(fun e -> e.person)
    ~view_key:fst element_lens

let bx = Bx.Symmetric.of_lens ~view_equal:(fun a b -> a = b) lens

let pp_entry ppf e = Fmt.pf ppf "%s (%d) <%s>" e.person e.age e.email

let source_space =
  Bx.Model.make ~name:"address-book"
    ~equal:(fun a b -> a = b)
    ~pp:(Fmt.brackets (Fmt.list ~sep:Fmt.semi pp_entry))

let view_space =
  Bx.Model.make ~name:"directory"
    ~equal:(fun a b -> a = b)
    ~pp:
      (Fmt.brackets
         (Fmt.list ~sep:Fmt.semi
            (Fmt.pair ~sep:(Fmt.any ": ") Fmt.string Fmt.int)))

let template =
  let open Bx_repo in
  Template.make ~title:"PEOPLE"
    ~classes:[ Template.Precise ]
    ~overview:
      "An address book of (name, age, email) records viewed as a (name, \
       age) directory. Built entirely from generic lens combinators — \
       the entry for people wondering what a bx library buys them."
    ~models:
      [
        Template.model_desc ~name:"AddressBook"
          "An ordered list of records with name, age and email.";
        Template.model_desc ~name:"Directory"
          "An ordered list of (name, age) pairs.";
      ]
    ~consistency:
      "The directory is the address book with each record's email \
       removed, in order."
    ~restoration:
      {
        Template.rest_forward = "get: drop the email of every record.";
        Template.rest_backward =
          "put: align directory rows with records by name (first \
           unconsumed match); matched records keep their email, new \
           names receive unknown@example.org.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Well_behaved;
          Violates Very_well_behaved;
        ]
    ~variants:
      [
        Template.variant ~name:"positional-alignment"
          "Use list_map instead of list_key_map: simpler, but emails stop \
           following renames/reorders.";
      ]
    ~discussion:
      "Deliberately boring semantics so the compositional construction \
       is the point: an iso into nested pairs, the generic first-lens, \
       and a key-aligned list map; every law then follows from the \
       combinators' laws."
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James McKinna" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/people.ml";
      ]
    ()
