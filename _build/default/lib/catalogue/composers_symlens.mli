(** COMPOSERS-SYMLENS — the Composers example as a state-based symmetric
    lens (Hofmann–Pierce–Wagner), whose complement remembers the dates of
    every composer it has ever seen, keyed by (name, nationality).

    This entry exists to {e repair} the failure the paper's section 4
    Discussion exhibits: there, "the absence of any extra information
    besides the models means that the dates cannot be restored".  The
    complement is exactly that extra information — deleting an entry from
    [n] and restoring it brings the composer back {e with the original
    dates}, so the delete/restore round trip of the Discussion succeeds. *)

open Composers

type complement = {
  last_n : n;  (** The right model as last seen (preserves entry order). *)
  remembered : ((string * string) * string list) list;
      (** Dates ever seen per (name, nationality), newest knowledge
          first; survives deletion from both models. *)
}

val lens : (m, n, complement) Bx.Symlens.t

val remembered_dates : complement -> string * string -> string list
(** The dates the complement holds for a pair (empty if never seen). *)

(** The paper's Discussion scenario, replayed through the symmetric
    lens: this time the dates come back. *)
type repair_trace = {
  initial_m : m;
  initial_n : n;
  m_after_delete : m;
  m_after_restore : m;
  dates_recovered : bool;
}

val repair_counterexample : unit -> repair_trace

val template : Bx_repo.Template.t
