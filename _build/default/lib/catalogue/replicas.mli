(** MASTER-REPLICAS — a three-model bx (the template's "two or more
    classes of models" taken literally): a master key-value store and two
    filtered replicas, each holding the entries under its own topic
    prefix.  Built as a span of two filter-style lenses over the master,
    via {!Bx.Multi.of_two_lenses}. *)

type store = (string * string) list
(** Key-value pairs; keys unique, order significant. *)

val news_prefix : string
(** ["news/"]. *)

val mail_prefix : string
(** ["mail/"]. *)

val news_lens : (store, store) Bx.Lens.t
(** The master restricted to [news/] keys. *)

val mail_lens : (store, store) Bx.Lens.t

val bx : (store, store, store) Bx.Multi.t
(** Consistency: each replica equals the master's restriction to its
    prefix.  Restoring from the master regenerates both replicas;
    restoring from a replica merges it into the master (preserving
    foreign-prefix entries in place) and regenerates the other replica. *)

val master_space : store Bx.Model.t
val replica_space : string -> store Bx.Model.t

val template : Bx_repo.Template.t
