open Bx_models
open Genealogy

type policy = Prefer_parent | Prefer_child

let families_space =
  Bx.Model.make ~name:"Families" ~equal:equal_families ~pp:pp_families

let persons_space =
  Bx.Model.make ~name:"Persons" ~equal:equal_persons ~pp:pp_persons

let gender_of_tag = function `Male -> Male | `Female -> Female

(* The (full name, gender) multiset a family register denotes, in register
   order. *)
let targets_of_families fams =
  List.concat_map
    (fun f ->
      List.map
        (fun (first, tag) -> (first ^ " " ^ f.last_name, gender_of_tag tag))
        (family_members f))
    fams

let key_of_person p = (p.full_name, p.gender)

(* A consumable multiset over an arbitrary key. *)
module Bag = struct
  type 'k t = ('k, int) Hashtbl.t

  let of_list keys : _ t =
    let bag = Hashtbl.create 16 in
    List.iter
      (fun k -> Hashtbl.replace bag k (1 + Option.value ~default:0 (Hashtbl.find_opt bag k)))
      keys;
    bag

  let take bag k =
    match Hashtbl.find_opt bag k with
    | Some n when n > 0 ->
        Hashtbl.replace bag k (n - 1);
        true
    | _ -> false
end

let consistent fams pers =
  let ts = List.sort compare (targets_of_families fams) in
  let ps = List.sort compare (List.map key_of_person pers) in
  ts = ps

(* Forward: persons follow the families.  Existing persons matching a
   member survive (keeping their birthday and list position); members with
   no person yet are appended, in register order, with an unknown
   birthday. *)
let fwd fams pers =
  let targets = targets_of_families fams in
  let remaining = Bag.of_list targets in
  let kept = List.filter (fun p -> Bag.take remaining (key_of_person p)) pers in
  let kept_keys = Bag.of_list (List.map key_of_person kept) in
  let missing = List.filter (fun t -> not (Bag.take kept_keys t)) targets in
  kept
  @ List.map
      (fun (full_name, gender) -> { full_name; gender; birthday = "unknown" })
      missing

(* Backward: families follow the persons.  Members with no matching person
   are removed; persons with no member join (or found) the family of their
   last name according to the policy. *)
let bwd ~policy fams pers =
  let remaining = Bag.of_list (List.map key_of_person pers) in
  let filter_member f tag first =
    Bag.take remaining (first ^ " " ^ f.last_name, gender_of_tag tag)
  in
  let filtered =
    List.map
      (fun f ->
        let father =
          match f.father with
          | Some x when filter_member f `Male x -> Some x
          | _ -> None
        in
        let mother =
          match f.mother with
          | Some x when filter_member f `Female x -> Some x
          | _ -> None
        in
        let sons = List.filter (filter_member f `Male) f.sons in
        let daughters = List.filter (filter_member f `Female) f.daughters in
        { f with father; mother; sons; daughters })
      fams
  in
  (* Identify leftover person objects: those not consumed by the filter. *)
  let survived =
    Bag.of_list (List.map key_of_person pers)
  in
  (* Re-consume what the filtered families account for. *)
  List.iter
    (fun f ->
      List.iter
        (fun (first, tag) ->
          ignore
            (Bag.take survived (first ^ " " ^ f.last_name, gender_of_tag tag)))
        (family_members f))
    filtered;
  let leftovers =
    List.filter (fun p -> Bag.take survived (key_of_person p)) pers
  in
  let place fams p =
    match split_full_name p.full_name with
    | None -> fams (* unsplittable names cannot be placed *)
    | Some (first, last) ->
        let as_child f =
          match p.gender with
          | Male -> { f with sons = f.sons @ [ first ] }
          | Female -> { f with daughters = f.daughters @ [ first ] }
        in
        let as_member f =
          match (policy, p.gender) with
          | Prefer_parent, Male when f.father = None ->
              { f with father = Some first }
          | Prefer_parent, Female when f.mother = None ->
              { f with mother = Some first }
          | _ -> as_child f
        in
        let rec insert = function
          | [] ->
              let fresh = family last in
              [ as_member fresh ]
          | f :: rest when f.last_name = last -> as_member f :: rest
          | f :: rest -> f :: insert rest
        in
        insert fams
  in
  List.fold_left place filtered leftovers

let bx ?(policy = Prefer_parent) () =
  Bx.Symmetric.make
    ~name:
      (match policy with
      | Prefer_parent -> "FAMILIES2PERSONS/prefer-parent"
      | Prefer_child -> "FAMILIES2PERSONS/prefer-child")
    ~consistent ~fwd ~bwd:(bwd ~policy)

let template =
  let open Bx_repo in
  Template.make ~title:"FAMILIES2PERSONS"
    ~classes:[ Template.Precise; Template.Benchmark ]
    ~overview:
      "The model-transformation community's benchmark: a register of \
       families with role-tagged members against a flat register of \
       persons with gender and birthday. Information is private on both \
       sides, so the bx is genuinely symmetric."
    ~models:
      [
        Template.model_desc ~name:"Families"
          "Families with a last name, optional father and mother, and \
           lists of sons and daughters (first names).";
        Template.model_desc ~name:"Persons"
          "Persons with a full name (first and last), a gender and a \
           birthday.";
      ]
    ~consistency:
      "The multiset of (full name, gender) pairs derived from family \
       members — father and sons male, mother and daughters female — \
       equals the multiset of the persons' (full name, gender) pairs."
    ~restoration:
      {
        Template.rest_forward =
          "Persons follow the families: persons matching a member survive \
           with their birthday; members without a person are appended \
           with an unknown birthday; unmatched persons are deleted.";
        Template.rest_backward =
          "Families follow the persons: members without a matching \
           person are removed; persons without a member join the family \
           of their last name — as a parent if that slot is free under \
           the prefer-parent policy, as a child otherwise — or found a \
           new family.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Violates Undoable;
          Violates History_ignorant;
        ]
    ~variants:
      [
        Template.variant ~name:"prefer-child"
          "New persons always join as children, never as parents.";
        Template.variant ~name:"drop-empty-families"
          "Remove families whose last member disappears; the base example \
           keeps them (removing them would violate hippocraticness on \
           registers that already contain empty families).";
      ]
    ~discussion:
      "The benchmark's decision points — where does a new person go, and \
       what happens to emptied families — are what make it a good test \
       of bx languages; BenchmarX builds its measurement scenarios around \
       them. Deleting a person and re-adding them forgets their role and \
       any siblings' grouping: not undoable."
    ~references:
      [
        Reference.make
          ~authors:
            [
              "Anthony Anjorin"; "Alcino Cunha"; "Holger Giese";
              "Frank Hermann"; "Arend Rensink"; "Andy Schuerr";
            ]
          ~title:"BenchmarX" ~venue:"BX Workshop" ~year:2014 ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James McKinna" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/families2persons.ml";
      ]
    ()
