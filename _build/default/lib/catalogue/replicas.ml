type store = (string * string) list

let news_prefix = "news/"
let mail_prefix = "mail/"

let has_prefix prefix (key, _) =
  String.length key >= String.length prefix
  && String.sub key 0 (String.length prefix) = prefix

let restriction_lens prefix =
  Bx.Lens.filter ~keep:(has_prefix prefix) ~default:("", "")

let news_lens =
  let l = restriction_lens news_prefix in
  { l with Bx.Lens.name = "news-replica" }

let mail_lens =
  let l = restriction_lens mail_prefix in
  { l with Bx.Lens.name = "mail-replica" }

let bx =
  Bx.Multi.of_two_lenses ~view_equal_b:( = ) ~view_equal_c:( = ) news_lens
    mail_lens

let pp_store =
  Fmt.brackets
    (Fmt.list ~sep:Fmt.semi (Fmt.pair ~sep:(Fmt.any "=") Fmt.string Fmt.string))

let master_space =
  Bx.Model.make ~name:"master" ~equal:( = ) ~pp:pp_store

let replica_space name = Bx.Model.make ~name ~equal:( = ) ~pp:pp_store

let template =
  let open Bx_repo in
  Template.make ~title:"MASTER-REPLICAS"
    ~classes:[ Template.Precise ]
    ~overview:
      "A three-model bx: a master key-value store and two topic replicas \
       (news/ and mail/), each holding exactly the master's entries \
       under its prefix. The smallest honest example with more than two \
       models."
    ~models:
      [
        Template.model_desc ~name:"Master"
          "An ordered key-value store; keys are namespaced by topic \
           prefixes.";
        Template.model_desc ~name:"NewsReplica"
          "The entries whose keys start with news/.";
        Template.model_desc ~name:"MailReplica"
          "The entries whose keys start with mail/.";
      ]
    ~consistency:
      "Each replica equals the restriction of the master to its prefix, \
       in master order. (A ternary consistency relation, as the template \
       explicitly allows.)"
    ~restoration:
      {
        Template.rest_forward =
          "From the master: regenerate both replicas by restriction.";
        Template.rest_backward =
          "From a replica: splice its entries back among the master's \
           foreign-prefix entries (which stay in place), then regenerate \
           the other replica from the updated master.";
      }
    ~properties:
      Bx.Properties.[ Satisfies Correct; Satisfies Hippocratic ]
    ~variants:
      [
        Template.variant ~name:"overlapping-topics"
          "Let the prefixes overlap (a key tagged with both topics): the \
           two replicas then constrain each other and restoring from one \
           may modify the other even when the master is untouched — the \
           multi-model composition problem in miniature.";
      ]
    ~discussion:
      "Binary formalisms handle this by pairing two lenses with a shared \
       source (a span); the interesting question the entry exists to \
       pose is what the {\\it ternary} laws should be — the pointwise \
       generalisation checked here (restoration from any side restores \
       consistency and fixes consistent triples) is the weakest \
       reasonable candidate."
    ~references:
      [
        Reference.make ~authors:[ "Perdita Stevens" ]
          ~title:"Bidirectional Transformations in the Large"
          ~venue:"MODELS" ~year:2017 ~doi:"10.1109/MODELS.2017.8" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "Perdita Stevens" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/replicas.ml";
      ]
    ()
