(** FAMILIES2PERSONS — the model-transformation community's benchmark bx
    (the running example of the BenchmarX companion paper the repository
    proposal discusses): a register of families with role-tagged members
    against a flat register of persons with gender and birthday.

    Information is private on both sides: birthdays exist only for
    persons; the parent/child role and family grouping only for families.
    The example is therefore genuinely symmetric and not undoable. *)

(** What backward restoration does with a person whose family exists but
    who is not yet a member — the benchmark's famous decision point. *)
type policy =
  | Prefer_parent  (** Become father/mother if the slot is free. *)
  | Prefer_child  (** Always join as son/daughter. *)

val families_space : Bx_models.Genealogy.families Bx.Model.t
val persons_space : Bx_models.Genealogy.persons Bx.Model.t

val bx :
  ?policy:policy -> unit
  -> (Bx_models.Genealogy.families, Bx_models.Genealogy.persons) Bx.Symmetric.t
(** Consistency: the multiset of (full name, gender) derived from family
    members equals that of the persons.  Forward keeps the birthdays of
    persons that survive (aligned by name and gender); backward keeps
    family structure where possible and places new persons according to
    [policy] (default {!Prefer_parent}), creating a fresh family when no
    family carries the person's last name.  Persons whose full name has no
    space cannot be placed and are dropped by backward restoration —
    consistency forces every person's name to split. *)

val template : Bx_repo.Template.t
