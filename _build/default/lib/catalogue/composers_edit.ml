open Composers

type m_edit = Add_composer of composer | Remove_composer of composer
type n_edit = Insert_entry of int * (string * string) | Delete_entry of int
type complement = m * n

let pair_of (c : composer) = (c.name, c.nationality)

let apply_m_edit edit m =
  match edit with
  | Add_composer c -> if List.mem c m then None else Some (canon_m (c :: m))
  | Remove_composer c ->
      if List.mem c m then
        Some (List.filter (fun c' -> c' <> c) m)
      else None

let apply_n_edit edit n =
  match edit with
  | Insert_entry (i, p) ->
      if i < 0 || i > List.length n then None
      else
        let rec ins i n =
          if i = 0 then p :: n
          else match n with [] -> [ p ] | x :: tl -> x :: ins (i - 1) tl
        in
        Some (ins i n)
  | Delete_entry i ->
      if i < 0 || i >= List.length n then None
      else Some (List.filteri (fun j _ -> j <> i) n)

let fold_apply apply edits model =
  List.fold_left
    (fun acc e -> match acc with None -> None | Some x -> apply e x)
    (Some model) edits

let m_module : (m_edit list, m) Bx.Elens.edit_module =
  {
    Bx.Elens.module_name = "composer-set-edits";
    apply = fold_apply apply_m_edit;
    compose = (fun e1 e2 -> e1 @ e2);
    identity = [];
  }

let n_module : (n_edit list, n) Bx.Elens.edit_module =
  {
    Bx.Elens.module_name = "entry-list-edits";
    apply = fold_apply apply_n_edit;
    compose = (fun e1 e2 -> e1 @ e2);
    identity = [];
  }

(* Indices of every entry with the given pair, descending so deletions do
   not shift later targets. *)
let delete_all_indices n p =
  List.mapi (fun i q -> (i, q)) n
  |> List.filter (fun (_, q) -> q = p)
  |> List.rev_map (fun (i, _) -> Delete_entry i)

(* Translate one M-edit against the current pair; returns the N-edits and
   the updated pair.  Inapplicable edits translate to nothing and leave
   the complement unchanged (the lens is total; the edit module's
   application reports the failure to the caller instead). *)
let fwd_one edit ((m, n) as c) =
  match apply_m_edit edit m with
  | None -> ([], c)
  | Some m' -> (
      match edit with
      | Add_composer comp ->
          let p = pair_of comp in
          if List.mem p n then ([], (m', n))
          else
            let e = [ Insert_entry (List.length n, p) ] in
            ( e,
              (m', Option.value ~default:n (fold_apply apply_n_edit e n)) )
      | Remove_composer comp ->
          let p = pair_of comp in
          let still_covered = List.exists (fun c' -> pair_of c' = p) m' in
          if still_covered then ([], (m', n))
          else
            let e = delete_all_indices n p in
            ( e,
              (m', Option.value ~default:n (fold_apply apply_n_edit e n)) ))

let bwd_one edit ((m, n) as c) =
  match apply_n_edit edit n with
  | None -> ([], c)
  | Some n' -> (
      match edit with
      | Insert_entry (_, p) ->
          let derivable = List.exists (fun c' -> pair_of c' = p) m in
          if derivable then ([], (m, n'))
          else
            let comp =
              { name = fst p; dates = unknown_dates; nationality = snd p }
            in
            ([ Add_composer comp ], (canon_m (comp :: m), n'))
      | Delete_entry i ->
          let p = List.nth n i in
          let still_listed = List.mem p n' in
          if still_listed then ([], (m, n'))
          else
            let victims = List.filter (fun c' -> pair_of c' = p) m in
            ( List.map (fun v -> Remove_composer v) victims,
              (List.filter (fun c' -> pair_of c' <> p) m, n') ))

let translate one edits c =
  let out, c' =
    List.fold_left
      (fun (acc, c) e ->
        let es, c' = one e c in
        (acc @ es, c'))
      ([], c) edits
  in
  (out, c')

let lens : (complement, m_edit list, n_edit list) Bx.Elens.t =
  Bx.Elens.make ~name:"COMPOSERS-EDIT" ~init:([], [])
    ~fwd:(translate fwd_one)
    ~bwd:(translate bwd_one)

let initial = ([], [])

let consistent_complement (m, n) = bx.Bx.Symmetric.consistent m n

let apply_consistently ((m, n) as c) edits =
  match m_module.Bx.Elens.apply edits m with
  | None -> Error "edit does not apply to the composer set"
  | Some m' -> (
      let n_edits, _c' = lens.Bx.Elens.fwd edits c in
      match n_module.Bx.Elens.apply n_edits n with
      | None -> Error "translated edit does not apply to the entry list"
      | Some n' -> Ok (m', n'))

let template =
  let open Bx_repo in
  Template.make ~title:"COMPOSERS-EDIT"
    ~classes:[ Template.Precise ]
    ~overview:
      "The delta-based Composers: the same two models as COMPOSERS, but \
       restoration consumes edits rather than states, as a symmetric \
       edit lens whose complement is the current pair of models."
    ~models:
      [
        Template.model_desc ~name:"M"
          "A set of composer objects (name, dates, nationality), edited \
           by adding or removing composers.";
        Template.model_desc ~name:"N"
          "An ordered list of (name, nationality) pairs, edited by \
           position-based insertion and deletion.";
      ]
    ~consistency:
      "As in COMPOSERS: the two models embody the same set of (name, \
       nationality) pairs. The lens maintains the invariant that its \
       complement is always a consistent pair."
    ~restoration:
      {
        Template.rest_forward =
          "Translate each M-edit: adding a composer appends its pair to \
           n unless an equal entry exists; removing the last composer \
           covering a pair deletes every entry with that pair.";
        Template.rest_backward =
          "Translate each N-edit: inserting an underivable pair creates \
           a composer with ????-???? dates; deleting the last entry for \
           a pair removes every composer with that pair.";
      }
    ~properties:
      Bx.Properties.[ Satisfies Correct; Satisfies Hippocratic ]
    ~variants:
      [
        Template.variant ~name:"positional-insert-fwd"
          "Adding a composer could insert its entry at an alphabetical \
           position rather than the end; since the edit says nothing \
           about position, the end is the least-surprising choice.";
      ]
    ~discussion:
      "The payoff of edits: removing one of two composers sharing a \
       (name, nationality) pair is a visible M-edit but translates to \
       the empty N-edit — the state-based COMPOSERS cannot even express \
       that the user meant to remove one specific object. Stability and \
       consistency-propagation are the edit-lens analogues of \
       hippocraticness and correctness, and both are property-tested."
    ~references:
      [
        Reference.make
          ~authors:[ "Martin Hofmann"; "Benjamin C. Pierce"; "Daniel Wagner" ]
          ~title:"Symmetric Lenses" ~venue:"POPL" ~year:2011
          ~doi:"10.1145/1926385.1926428" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James McKinna" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/composers_edit.ml";
      ]
    ()
