open Composers

type complement = {
  last_n : n;
  remembered : ((string * string) * string list) list;
}

let pair_of (c : composer) = (c.name, c.nationality)

let remembered_dates complement pair =
  Option.value ~default:[] (List.assoc_opt pair complement.remembered)

(* Fold the composers of m into the memory: the dates for each pair
   present in m replace the remembered ones; pairs absent from m keep
   their last-known dates — that persistence is the whole point. *)
let remember m remembered =
  let pairs =
    List.sort_uniq compare (List.map pair_of m)
  in
  let fresh =
    List.map
      (fun pair ->
        ( pair,
          List.filter_map
            (fun c -> if pair_of c = pair then Some c.dates else None)
            m ))
      pairs
  in
  fresh
  @ List.filter (fun (pair, _) -> not (List.mem_assoc pair fresh)) remembered

let putr m complement =
  let n' = bx.Bx.Symmetric.fwd m complement.last_n in
  let complement' =
    { last_n = n'; remembered = remember m complement.remembered }
  in
  (n', complement')

let putl n complement =
  let pairs = List.sort_uniq compare n in
  let m' =
    List.concat_map
      (fun ((name, nationality) as pair) ->
        match remembered_dates complement pair with
        | [] -> [ { name; dates = unknown_dates; nationality } ]
        | dates ->
            List.map (fun dates -> { name; dates; nationality }) dates)
      pairs
    |> canon_m
  in
  let complement' =
    { last_n = n; remembered = remember m' complement.remembered }
  in
  (m', complement')

let lens : (m, n, complement) Bx.Symlens.t =
  Bx.Symlens.make ~name:"COMPOSERS-SYMLENS"
    ~init:{ last_n = []; remembered = [] }
    ~putr ~putl

type repair_trace = {
  initial_m : m;
  initial_n : n;
  m_after_delete : m;
  m_after_restore : m;
  dates_recovered : bool;
}

let repair_counterexample () =
  let britten =
    composer ~name:"Britten" ~dates:"1913-1976" ~nationality:"English"
  in
  let tippett =
    composer ~name:"Tippett" ~dates:"1905-1998" ~nationality:"English"
  in
  let initial_m = canon_m [ britten; tippett ] in
  let initial_n, c0 = putr initial_m lens.Bx.Symlens.init in
  (* Delete Britten's entry from n, pull left. *)
  let n_deleted = List.filter (fun (name, _) -> name <> "Britten") initial_n in
  let m_after_delete, c1 = putl n_deleted c0 in
  (* Restore the entry, pull left again: the complement remembers. *)
  let m_after_restore, _c2 = putl initial_n c1 in
  {
    initial_m;
    initial_n;
    m_after_delete;
    m_after_restore;
    dates_recovered = equal_m initial_m m_after_restore;
  }

let template =
  let open Bx_repo in
  Template.make ~title:"COMPOSERS-SYMLENS"
    ~classes:[ Template.Precise ]
    ~overview:
      "The Composers example as a state-based symmetric lens whose \
       complement remembers every composer's dates by (name, \
       nationality). The repair of the base entry's undoability failure: \
       delete and restore an entry, and the dates come back."
    ~models:
      [
        Template.model_desc ~name:"M"
          "As in COMPOSERS: a set of composers with name, dates, \
           nationality.";
        Template.model_desc ~name:"N"
          "As in COMPOSERS: an ordered list of (name, nationality) \
           pairs.";
      ]
    ~consistency:
      "As in COMPOSERS, relative to the complement: pushing the \
       authoritative side through the lens reproduces the other side."
    ~restoration:
      {
        Template.rest_forward =
          "putr: restore n exactly as the base example does, and record \
           every composer's dates in the complement (existing memories \
           for vanished pairs are kept).";
        Template.rest_backward =
          "putl: rebuild m from n's pairs, taking dates from the \
           complement's memory where available and ????-???? only for \
           pairs never seen.";
      }
    ~properties:
      Bx.Properties.
        [ Satisfies Correct; Satisfies Hippocratic; Satisfies Undoable ]
    ~variants:
      [
        Template.variant ~name:"bounded-memory"
          "Forget remembered dates after k restorations: undoability \
           then degrades gracefully back to the base example's \
           behaviour.";
      ]
    ~discussion:
      "The paper's Discussion says the dates cannot be restored because \
       there is no extra information besides the models; symmetric \
       lenses carry exactly that extra information as a complement, and \
       their composition works where state-based symmetric composition \
       does not. The price: the complement is real state that must live \
       somewhere (here, wherever the lens value is threaded), and \
       undoability holds only within one complement's lifetime."
    ~references:
      [
        Reference.make
          ~authors:[ "Martin Hofmann"; "Benjamin C. Pierce"; "Daniel Wagner" ]
          ~title:"Symmetric Lenses" ~venue:"POPL" ~year:2011
          ~doi:"10.1145/1926385.1926428" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "Perdita Stevens" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/composers_symlens.ml";
      ]
    ()
