(** FORMATTER — a quotient bx: a freely formatted key=value configuration
    file against its canonical form.  Real-world instances are pervasive
    (code formatters, normalising serialisers); the Boomerang lineage
    handles them with canonizers and quotient lenses (Foster et al.,
    ICFP 2008), which is exactly how this entry is built: a whitespace
    canonizer quotienting the source of a copy lens.

    The lens laws hold {e up to canonization}: on already-canonical
    sources they hold on the nose (which is what the property suite
    checks); on sloppy sources, GetPut returns the canonical form — the
    formatter's entire point. *)

val key_value_doc : Bx_regex.Regex.t
(** The sloppy source language: lines [key \[sp\]= \[sp\]value] with any
    number of spaces around the [=], newline-terminated.  Keys and values
    are nonempty words over [a-z0-9]. *)

val canonical_doc : Bx_regex.Regex.t
(** The canonical language: no spaces around [=]. *)

val canonizer : Bx_strlens.Canonizer.t
(** Strips the spaces around [=] on every line. *)

val lens : Bx_strlens.Slens.t
(** [left_quot canonizer (copy canonical_doc)]: get formats, put installs
    the edited canonical text. *)

val format : string -> string
(** Shorthand for the get direction. *)

val template : Bx_repo.Template.t
