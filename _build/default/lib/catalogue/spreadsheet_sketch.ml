let template =
  let open Bx_repo in
  Template.make ~title:"SPREADSHEET"
    ~classes:[ Template.Sketch ]
    ~overview:
      "A sketch: keeping a spreadsheet's formula view and its computed \
       value grid consistent in both directions, so edits to computed \
       cells propagate back to inputs."
    ~models:
      [
        Template.model_desc ~name:"Formulas"
          "A grid of cells holding constants or formulas over other cells.";
        Template.model_desc ~name:"Values"
          "The same grid with every cell reduced to its computed value.";
      ]
    ~consistency:
      "Evaluating the formula grid yields the value grid."
    ~discussion:
      "Forward restoration is evaluation; backward restoration is the \
       interesting part — editing a computed cell must choose which \
       inputs to adjust (a least-change question) or whether to \
       overwrite the formula with a constant. Details deliberately not \
       worked out; candidates for the PRECISE version include \
       constraint-based and lens-per-formula designs."
    ~authors:
      [ Contributor.make ~affiliation:"University of Oxford" "Jeremy Gibbons" ]
    ()
