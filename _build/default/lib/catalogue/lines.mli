(** LINES — the smallest string bx in the folklore: a newline-terminated
    document against its list of lines.  On its domain (documents where
    every line is terminated and lines contain no newline) it is a
    bijection, so the bx is oblivious, undoable and history-ignorant — a
    useful contrast with the lossy examples. *)

val valid_document : string -> bool
(** Empty, or ending in a newline. *)

val valid_lines : string list -> bool
(** No element contains a newline. *)

val iso : (string, string list) Bx.Iso.t
val lens : (string, string list) Bx.Lens.t
val bx : (string, string list) Bx.Symmetric.t

val document_space : string Bx.Model.t
val lines_space : string list Bx.Model.t

val template : Bx_repo.Template.t
