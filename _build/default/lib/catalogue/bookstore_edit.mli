(** BOOKSTORE-EDIT — the delta-based bookstore: price-list edits against
    tree edits on the store, as a symmetric edit lens whose complement is
    the current store tree.

    The payoff over the state-based BOOKSTORE lens: an [Update_at] on the
    view translates to {e relabels of exactly the changed leaves}, so an
    edit to one book's price touches one tree node — no realignment, no
    risk to any other book's author.

    Domain: stores whose root children are all well-formed book nodes
    (title/author/price leaves in that order), and tree edits that
    preserve that shape; out-of-shape edits translate to the empty edit
    and are reported through the edit module's partiality. *)

type store = string Bx_models.Tree.t
type view_edit = (string * int) Bx.Elens.list_edit
type store_edit = string Bx_models.Tree_edit.edit

val well_formed : store -> bool
(** Every root child parses as a book node. *)

val view_of_store : store -> (string * int) list
(** The price list a store denotes (the consistency relation's right
    side). *)

val view_module : (view_edit, (string * int) list) Bx.Elens.edit_module
val store_module : (store_edit, store) Bx.Elens.edit_module

val lens : (store, view_edit, store_edit) Bx.Elens.t
(** [fwd] translates view edits to tree edits (insert/delete whole book
    subtrees; updates become leaf relabels); [bwd] translates tree edits
    back (author relabels are silent — they are the hidden data).  The
    complement is the current store. *)

val initial : store
(** An empty store. *)

val template : Bx_repo.Template.t
