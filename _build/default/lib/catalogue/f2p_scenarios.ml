open Bx_models.Genealogy

type step =
  | Edit_families of string * (families -> families)
  | Edit_persons of string * (persons -> persons)

type scenario = {
  scenario_name : string;
  description : string;
  initial_families : families;
  steps : step list;
}

type outcome = {
  final_families : families;
  final_persons : persons;
  restorations : int;
  consistent_after_every_step : bool;
}

(* Deterministic pools; index arithmetic only (no randomness). *)
let first_pool = [| "Ada"; "Ben"; "Cay"; "Dan"; "Eva"; "Fox"; "Gil"; "Hal" |]

let nth_first i = first_pool.(i mod Array.length first_pool) ^ string_of_int i

let nth_family i =
  family
    ~father:(nth_first (4 * i))
    ~mother:(nth_first ((4 * i) + 1))
    ~sons:[ nth_first ((4 * i) + 2) ]
    ~daughters:[ nth_first ((4 * i) + 3) ]
    (Printf.sprintf "Fam%04d" i)

let synthetic_families k = List.init k nth_family

let batch_forward k =
  {
    scenario_name = Printf.sprintf "batch-forward(%d)" k;
    description = "create all families, derive persons once";
    initial_families = synthetic_families k;
    steps = [ Edit_families ("noop", Fun.id) ];
  }

let incremental_forward k =
  {
    scenario_name = Printf.sprintf "incremental-forward(%d)" k;
    description = "add families one at a time, restoring after each";
    initial_families = [];
    steps =
      List.init k (fun i ->
          Edit_families
            ( Printf.sprintf "add Fam%04d" i,
              fun fams -> fams @ [ nth_family i ] ));
  }

let backward_churn k =
  let fams = synthetic_families (max 1 (k / 4)) in
  let victim i =
    (* A deterministic person to delete and re-add. *)
    let f = List.nth fams (i mod List.length fams) in
    match f.father with
    | Some father -> father ^ " " ^ f.last_name
    | None -> "none"
  in
  {
    scenario_name = Printf.sprintf "backward-churn(%d)" k;
    description = "delete and re-add persons, restoring families each time";
    initial_families = fams;
    steps =
      List.concat
        (List.init k (fun i ->
             let name = victim i in
             [
               Edit_persons
                 ( Printf.sprintf "delete %s" name,
                   List.filter (fun p -> p.full_name <> name) );
               Edit_persons
                 ( Printf.sprintf "re-add %s" name,
                   fun pers -> pers @ [ person Male name ] );
             ]));
  }

(* Interpretation delegates to the generic scenario runner of the
   framework; this module only supplies the FAMILIES2PERSONS shapes. *)
let run ?policy scenario =
  let bx = Families2persons.bx ?policy () in
  let generic =
    Bx.Scenario.make ~name:scenario.scenario_name
      ~description:scenario.description
      ~initial_left:scenario.initial_families ~initial_right:[]
      (List.map
         (function
           | Edit_families (label, edit) -> Bx.Scenario.Edit_left (label, edit)
           | Edit_persons (label, edit) -> Bx.Scenario.Edit_right (label, edit))
         scenario.steps)
  in
  let outcome = Bx.Scenario.run bx generic in
  {
    final_families = outcome.Bx.Scenario.final_left;
    final_persons = outcome.Bx.Scenario.final_right;
    restorations = outcome.Bx.Scenario.restorations;
    consistent_after_every_step = outcome.Bx.Scenario.consistent_throughout;
  }

let all k = [ batch_forward k; incremental_forward k; backward_churn k ]
