open Bx_models

type book = { title : string; author : string; price : int }

let book_node b =
  Tree.node "book"
    [
      Tree.leaf ("title=" ^ b.title);
      Tree.leaf ("author=" ^ b.author);
      Tree.leaf ("price=" ^ string_of_int b.price);
    ]

let store_of_books books = Tree.node "store" (List.map book_node books)

let field prefix t =
  List.find_map
    (fun (c : string Tree.t) ->
      let l = c.Tree.label in
      let plen = String.length prefix in
      if String.length l > plen && String.sub l 0 plen = prefix then
        Some (String.sub l plen (String.length l - plen))
      else None)
    t.Tree.children

let book_of_node t =
  match (field "title=" t, field "author=" t, field "price=" t) with
  | Some title, Some author, Some price_s ->
      Option.map (fun price -> { title; author; price })
        (int_of_string_opt price_s)
  | _ -> None

let books_of_store store =
  List.filter_map
    (fun (c : string Tree.t) ->
      if String.equal c.Tree.label "book" then book_of_node c else None)
    store.Tree.children

let get store = List.map (fun b -> (b.title, b.price)) (books_of_store store)

let put view store =
  let olds = books_of_store store in
  let consumed = Array.make (List.length olds) false in
  let old_arr = Array.of_list olds in
  let author_for title =
    let rec scan i =
      if i >= Array.length old_arr then "unknown"
      else if (not consumed.(i)) && old_arr.(i).title = title then begin
        consumed.(i) <- true;
        old_arr.(i).author
      end
      else scan (i + 1)
    in
    scan 0
  in
  store_of_books
    (List.map
       (fun (title, price) -> { title; author = author_for title; price })
       view)

let create view =
  store_of_books
    (List.map (fun (title, price) -> { title; author = "unknown"; price }) view)

let lens = Bx.Lens.make ~name:"BOOKSTORE" ~get ~put ~create

let store_space =
  Bx.Model.make ~name:"store"
    ~equal:(Tree.equal String.equal)
    ~pp:(Tree.pp Fmt.string)

let view_space =
  Bx.Model.make ~name:"price-list"
    ~equal:(fun a b -> a = b)
    ~pp:
      (Fmt.brackets
         (Fmt.list ~sep:Fmt.semi
            (Fmt.pair ~sep:(Fmt.any ": ") Fmt.string Fmt.int)))

let template =
  let open Bx_repo in
  Template.make ~title:"BOOKSTORE"
    ~classes:[ Template.Precise ]
    ~overview:
      "A tree lens: an XML-ish bookstore of (title, author, price) \
       records viewed as a flat (title, price) list. Authors are hidden \
       data that follow their book by title alignment."
    ~models:
      [
        Template.model_desc ~name:"Store"
          "A tree: a store node whose book children carry title, author \
           and price leaves.";
        Template.model_desc ~name:"PriceList"
          "An ordered list of (title, price) pairs.";
      ]
    ~consistency:
      "The price list equals the store's books projected to (title, \
       price), in order."
    ~restoration:
      {
        Template.rest_forward = "get: project each book to (title, price).";
        Template.rest_backward =
          "put: rebuild the store from the list; a book keeps the author \
           of the first unconsumed old book with the same title; new \
           titles get the author 'unknown'.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Well_behaved;
          Violates Very_well_behaved;
        ]
    ~variants:
      [
        Template.variant ~name:"key-on-title-and-price"
          "Align by (title, price) instead of title alone: renaming \
           semantics change when duplicate titles exist.";
      ]
    ~discussion:
      "The shape Foster et al. use to motivate tree lens combinators; \
       PutPut fails because dropping a title and re-adding it within two \
       separate puts loses the author."
    ~references:
      [
        Reference.make
          ~authors:
            [
              "J. Nathan Foster"; "Michael B. Greenwald";
              "Jonathan T. Moore"; "Benjamin C. Pierce"; "Alan Schmitt";
            ]
          ~title:
            "Combinators for bidirectional tree transformations: A \
             linguistic approach to the view-update problem"
          ~venue:"TOPLAS 29(3)" ~year:2007 ~doi:"10.1145/1232420.1232424" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Oxford" "Jeremy Gibbons" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/catalogue/bookstore.ml";
      ]
    ()
