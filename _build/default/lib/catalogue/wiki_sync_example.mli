(** WIKI-SYNC — the repository's own section 5.4 bx, registered as an
    entry in the repository it maintains: the lens between a structured
    entry ({!Bx_repo.Template.t}) and its wiki page ({!Bx_repo.Markup.doc}).
    The paper explicitly wonders "whether maintaining it in a
    wiki-markup-independent form, and maintaining consistency between that
    and the wiki via a bidirectional transformation, might add value" —
    this entry is the affirmative answer. *)

val lens : (Bx_repo.Template.t, Bx_repo.Markup.doc) Bx.Lens.t
(** {!Bx_repo.Sync.lens}, re-exported for the catalogue. *)

val template : Bx_repo.Template.t
