(** COMPOSERS-EDIT — the delta-based variant of the Composers example.

    Section 3 of the paper explicitly allows restoration functions that
    "require as input extra information, e.g. concerning the edit that
    has been done".  This entry takes the same two model spaces as
    COMPOSERS but propagates {e edits} instead of whole states, as a
    symmetric edit lens whose complement is the current pair of models.

    Because the edit carries intent, behaviours the state-based bx cannot
    express become possible: removing one composer whose (name,
    nationality) pair is still covered by another composer touches
    nothing on the other side, and deleting then re-inserting an entry in
    [n] within a session only loses dates if no covering composer
    remains. *)

open Composers

(** Edits to the composer set [M]. *)
type m_edit =
  | Add_composer of composer
  | Remove_composer of composer
      (** Removal is by value; absent values make the edit inapplicable. *)

(** Edits to the entry list [N] (position-based, like the framework's
    list edits). *)
type n_edit =
  | Insert_entry of int * (string * string)
  | Delete_entry of int

type complement = m * n
(** The edit lens's complement: the current (consistent) pair of models. *)

val m_module : (m_edit list, m) Bx.Elens.edit_module
val n_module : (n_edit list, n) Bx.Elens.edit_module

val lens : (complement, m_edit list, n_edit list) Bx.Elens.t
(** [fwd] translates M-edits to N-edits (adding a composer appends its
    pair at the end of [n] unless already present; removing the last
    composer covering a pair deletes every entry with that pair).
    [bwd] translates N-edits to M-edits (inserting an underivable pair
    creates a composer with [????-????]; deleting the last entry for a
    pair removes every composer with that pair). *)

val initial : complement
(** The empty pair of models. *)

val apply_consistently :
  complement -> m_edit list -> (complement, string) result
(** Apply an M-edit to both sides through the lens, returning the new
    (still consistent) pair.  [Error] when the edit does not apply. *)

val consistent_complement : complement -> bool
(** Whether the stored pair satisfies the COMPOSERS consistency
    relation. *)

val template : Bx_repo.Template.t
