let lens = Bx_repo.Sync.lens ()

let template =
  let open Bx_repo in
  Template.make ~title:"WIKI-SYNC"
    ~classes:[ Template.Precise ]
    ~overview:
      "The repository's own maintenance bx: a structured, \
       markup-independent entry against its rendered wiki page, kept \
       consistent by a lens. Proposed in the founding paper itself as a \
       guard against the wiki's demise."
    ~models:
      [
        Template.model_desc ~name:"Entry"
          "A structured repository entry following the standard template \
           (title, version, type, overview, models, consistency, \
           restoration, properties, variants, discussion, references, \
           authors, reviewers, comments, artefacts).";
        Template.model_desc ~name:"Page"
          "A wiki page: a level-1 title heading followed by one level-2 \
           section per field, in template order.";
      ]
    ~consistency:
      "The page is the canonical rendering of the entry: every field \
       appears in its section with the canonical formatting, and empty \
       optional fields are omitted."
    ~restoration:
      {
        Template.rest_forward = "get: render the entry to its canonical page.";
        Template.rest_backward =
          "put: parse the edited page; deleting an optional section \
           empties that field, deleting a required section falls back to \
           the entry's old value (the entry is the complement), unknown \
           extra sections are ignored, and malformed section contents \
           are rejected.";
      }
    ~properties:
      Bx.Properties.[ Satisfies Correct; Satisfies Hippocratic;
                      Satisfies Well_behaved ]
    ~variants:
      [
        Template.variant ~name:"strict-put"
          "Reject pages with unknown sections instead of ignoring them: \
           tighter, but then wiki members cannot leave free-form notes \
           outside the template.";
      ]
    ~discussion:
      "Having the repository maintain itself with a bx is more than a \
       party trick: every template evolution immediately stress-tests \
       the lens laws, and the exported pages double as the local backup \
       the paper's section 5.4 calls for."
    ~references:
      [
        Reference.make
          ~authors:
            [ "James Cheney"; "James McKinna"; "Perdita Stevens"; "Jeremy Gibbons" ]
          ~title:"Towards a Repository of Bx Examples"
          ~venue:"EDBT/ICDT Workshops (BX)" ~year:2014 ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James Cheney" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/core/sync.ml";
      ]
    ()
