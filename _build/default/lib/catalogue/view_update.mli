(** SELECT-PROJECT-VIEW — the view-update problem, the database-heritage
    bx the paper's first sentence gestures at ("from databases, to
    model-driven development, to programming languages"): a base table of
    employees against a select-project view, with the classical
    translatability conditions (predicate membership for selections, key
    retention for projections) enforced by {!Bx_models.Relalg}. *)

val employees : Bx_models.Relational.table
(** id (key, INT), name (TEXT), dept (TEXT), salary (INT). *)

val engineering_directory : Bx_models.Relalg.query
(** σ(dept = "eng") then π(id, name): the engineering phone directory. *)

val lens :
  (Bx_models.Relational.row list, Bx_models.Relational.row list) Bx.Lens.t

val base_space : Bx_models.Relational.row list Bx.Model.t
val view_space : Bx_models.Relational.row list Bx.Model.t

val sample_rows : Bx_models.Relational.row list
(** A small, well-typed base table for demos and tests. *)

val template : Bx_repo.Template.t
