open Bx_models

let employees =
  Relational.table "employees"
    [
      Relational.column ~primary:true "id" Relational.Int_t;
      Relational.column "name" Relational.Text_t;
      Relational.column "dept" Relational.Text_t;
      Relational.column "salary" Relational.Int_t;
    ]

let engineering_directory =
  Relalg.Seq
    (Relalg.Select (Relalg.Eq ("dept", Relational.Text_v "eng")),
     Relalg.Project [ "id"; "name" ])

let lens = Relalg.lens employees engineering_directory

let rows_space name =
  Bx.Model.make ~name
    ~equal:(fun a b -> (a : Relational.row list) = b)
    ~pp:
      (Fmt.brackets
         (Fmt.list ~sep:Fmt.semi
            (Fmt.brackets (Fmt.list ~sep:Fmt.comma Relational.pp_value))))

let base_space = rows_space "employees"
let view_space = rows_space "directory"

let sample_rows =
  Relational.
    [
      [ Int_v 1; Text_v "ada"; Text_v "eng"; Int_v 90 ];
      [ Int_v 2; Text_v "ben"; Text_v "sales"; Int_v 60 ];
      [ Int_v 3; Text_v "cay"; Text_v "eng"; Int_v 80 ];
    ]

let template =
  let open Bx_repo in
  Template.make ~title:"SELECT-PROJECT-VIEW"
    ~classes:[ Template.Precise ]
    ~overview:
      "The classical view-update problem as a bx: a base table of \
       employees and a select-project view (the engineering directory), \
       with updates to the view translated back to the table."
    ~models:
      [
        Template.model_desc ~name:"Base"
          "Rows of employees(id KEY, name, dept, salary).";
        Template.model_desc ~name:"View"
          "Rows of the view: id and name of employees whose dept is eng.";
      ]
    ~consistency:
      "The view equals the query result: select dept = eng, project id \
       and name, in base-table order."
    ~restoration:
      {
        Template.rest_forward = "Evaluate the query.";
        Template.rest_backward =
          "Translate the view update: view rows are aligned to base rows \
           by the retained key; matched rows keep their hidden dept and \
           salary; new ids are inserted with the selection-satisfying \
           dept and default salary; rows outside the selection are \
           untouched.";
      }
    ~properties:
      Bx.Properties.
        [
          Satisfies Correct;
          Satisfies Hippocratic;
          Satisfies Well_behaved;
          Violates Very_well_behaved;
        ]
    ~variants:
      [
        Template.variant ~name:"project-without-key"
          "Dropping the key from the projection makes the update \
           untranslatable; the implementation rejects the query at \
           construction time rather than guessing.";
        Template.variant ~name:"delete-outside-selection"
          "Let a view deletion delete the base row instead of leaving \
           rows outside the selection untouched: the other classical \
           translation choice.";
      ]
    ~discussion:
      "Bancilhon and Spyratos explained translatable view updates via \
       constant complements; Dayal and Bernstein catalogued the correct \
       translations for select-project views. This entry wires those \
       conditions into lens construction: selections must be respected \
       by the view, projections must retain the key — violations are \
       static errors, and the surviving lens is well-behaved but not \
       very well-behaved (a dropped and re-added id forgets its \
       salary)."
    ~references:
      [
        Reference.make
          ~authors:[ "Francois Bancilhon"; "Nicolas Spyratos" ]
          ~title:"Update Semantics of Relational Views"
          ~venue:"ACM TODS 6(4)" ~year:1981 ~doi:"10.1145/319628.319634" ();
        Reference.make
          ~authors:[ "Umeshwar Dayal"; "Philip A. Bernstein" ]
          ~title:"On the Correct Translation of Update Operations on \
                  Relational Views"
          ~venue:"ACM TODS 7(3)" ~year:1982 ~doi:"10.1145/319732.319740" ();
      ]
    ~authors:
      [ Contributor.make ~affiliation:"University of Edinburgh" "James Cheney" ]
    ~artefacts:
      [
        Template.artefact ~name:"ocaml-implementation" ~kind:Template.Code
          "lib/models/relalg.ml";
      ]
    ()
