open Composers

let pair_of (c : composer) = (c.name, c.nationality)

let insert_at_beginning =
  let fwd m n =
    let pairs_m = List.sort_uniq compare (List.map pair_of m) in
    let kept = List.filter (fun p -> List.mem p pairs_m) n in
    let missing = List.filter (fun p -> not (List.mem p kept)) pairs_m in
    missing @ kept
  in
  Bx.Symmetric.make ~name:"COMPOSERS/insert-at-beginning"
    ~consistent:bx.Bx.Symmetric.consistent ~fwd ~bwd:bx.Bx.Symmetric.bwd

let fresh_dates dates =
  let bwd m n =
    let kept = List.filter (fun c -> List.mem (pair_of c) n) m in
    let derivable = List.map pair_of kept in
    let missing =
      List.sort_uniq compare
        (List.filter (fun p -> not (List.mem p derivable)) n)
    in
    canon_m
      (kept
      @ List.map
          (fun (name, nationality) -> { name; dates; nationality })
          missing)
  in
  Bx.Symmetric.make
    ~name:(Printf.sprintf "COMPOSERS/fresh-dates(%s)" dates)
    ~consistent:bx.Bx.Symmetric.consistent ~fwd:bx.Bx.Symmetric.fwd ~bwd

(* Name as key: consistency also requires each name to determine its
   nationality across the two models; backward restoration updates
   nationalities in place, preserving dates. *)
let name_as_key =
  let functional pairs =
    List.for_all
      (fun (name, nat) ->
        List.for_all (fun (n', nat') -> n' <> name || nat' = nat) pairs)
      pairs
  in
  let consistent m n =
    bx.Bx.Symmetric.consistent m n
    && functional (List.map pair_of m @ n)
  in
  let bwd m n =
    let names_n = List.map fst n in
    let kept = List.filter (fun c -> List.mem c.name names_n) m in
    let updated =
      List.map
        (fun c ->
          match List.assoc_opt c.name n with
          | Some nationality -> { c with nationality }
          | None -> c)
        kept
    in
    let covered = List.map (fun c -> c.name) updated in
    let missing =
      List.sort_uniq compare
        (List.filter (fun (name, _) -> not (List.mem name covered)) n)
    in
    canon_m
      (updated
      @ List.map
          (fun (name, nationality) ->
            { name; dates = unknown_dates; nationality })
          missing)
  in
  Bx.Symmetric.make ~name:"COMPOSERS/name-as-key" ~consistent
    ~fwd:bx.Bx.Symmetric.fwd ~bwd

let alphabetical_n =
  let fwd m n =
    List.sort compare (bx.Bx.Symmetric.fwd m n)
  in
  Bx.Symmetric.make ~name:"COMPOSERS/alphabetical-n"
    ~consistent:bx.Bx.Symmetric.consistent ~fwd ~bwd:bx.Bx.Symmetric.bwd
