(** PEOPLE — record projection assembled from the framework's generic
    combinators (no hand-written get/put): an address book of (name, age,
    email) records viewed as a (name, age) directory, with emails the
    hidden data, aligned by name.  Demonstrates building a bx
    compositionally with {!Bx.Lens.list_key_map} and {!Bx.Iso}. *)

type entry = { person : string; age : int; email : string }

val entry_iso : (entry, (string * int) * string) Bx.Iso.t
(** Records against nested pairs, so the generic pair lenses apply. *)

val lens : (entry list, (string * int) list) Bx.Lens.t
(** get: project each entry to (name, age).  put: key-aligned by name;
    new names get email ["unknown@example.org"]. *)

val bx : (entry list, (string * int) list) Bx.Symmetric.t

val source_space : entry list Bx.Model.t
val view_space : (string * int) list Bx.Model.t

val template : Bx_repo.Template.t
